//! The solver-as-a-service walkthrough: register operators once, run
//! mixed-format jobs concurrently with streaming telemetry, verify
//! bit-identity against sequential runs, watch admission control
//! reject an over-budget job with a typed error, and survive failures
//! — a missed deadline resumed bit-identically from its checkpoint and
//! a stagnating format rescued by retry-with-escalation.
//!
//! Run with: `cargo run --release --example solver_service`
//!
//! Pass `--quiet` to drop the wall-clock lines — every remaining line
//! is deterministic (bit-identical at any thread count), so runs diff
//! cleanly.

use frsz2_repro::solver_service::{
    estimated_basis_bytes, AdmissionPolicy, BasisSelection, FaultSpec, JobSpec, PrecondSpec,
    RetryPolicy, ServiceConfig, ServiceError, SolveCheckpoint, SolverService,
};
use frsz2_repro::spla::dense::manufactured_rhs;
use frsz2_repro::spla::gen;
use std::time::{Duration, Instant};

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");

    // ------------------------------------------------------------------
    // 1. Register operators once. Registration caches the expensive
    //    analysis: sparse-format selection, row statistics, and the
    //    factorized preconditioner.
    // ------------------------------------------------------------------
    let service = SolverService::with_defaults();
    let smooth = gen::conv_diff_3d(12, 12, 12, [0.3, 0.2, 0.1], 0.3);
    let wide = gen::wide_range_conv_diff(7, 7, 7, 24, 0x5202);
    let (_, b_smooth) = manufactured_rhs(&smooth);
    let (_, b_wide) = manufactured_rhs(&wide);

    println!("== registered operators ==");
    for (name, a, precond) in [
        ("smooth", &smooth, PrecondSpec::Jacobi),
        ("wide", &wide, PrecondSpec::None),
    ] {
        let info = service.register_csr(name, a, precond).expect("register");
        println!(
            "{:<8} {:>6} rows {:>7} nnz  format={:<12} precond={:<8} \
             row len mean {:.2} max {}  recommended basis: {}",
            info.name,
            info.rows,
            info.nnz,
            info.sparse_format,
            info.preconditioner,
            info.row_stats.mean,
            info.row_stats.max,
            info.recommended_basis,
        );
    }

    // ------------------------------------------------------------------
    // 2. A mixed batch: fixed rungs, the per-block adaptive store, the
    //    auto pick, and the escalating adaptive driver.
    // ------------------------------------------------------------------
    let job = |op: &str, b: &[f64], basis: BasisSelection, target: f64, threads: usize| {
        let mut spec = JobSpec::new(op, b.to_vec());
        spec.basis = basis;
        spec.opts.target_rrn = target;
        spec.threads = threads;
        if op == "wide" {
            spec.opts.restart = 30;
            spec.opts.max_iters = 1200;
        }
        spec
    };
    let fixed = |name: &str| BasisSelection::Fixed(name.into());
    let batch = vec![
        job("smooth", &b_smooth, fixed("frsz2_21"), 1e-3, 2),
        job("smooth", &b_smooth, fixed("float64"), 1e-10, 2),
        job("smooth", &b_smooth, fixed("frsz2_ab"), 1e-6, 2),
        job("smooth", &b_smooth, BasisSelection::Auto, 1e-3, 2),
        job("wide", &b_wide, BasisSelection::Adaptive, 1e-10, 2),
    ];

    // Sequential single-threaded reference first.
    let t = Instant::now();
    let reference: Vec<_> = batch
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            spec.threads = 1;
            service.solve(&spec).expect("reference solve")
        })
        .collect();
    let sequential_s = t.elapsed().as_secs_f64();

    // Concurrent batch with per-cycle telemetry through a channel.
    let (tx, rx) = std::sync::mpsc::channel();
    let t = Instant::now();
    let results = service.run_batch_streaming(&batch, tx);
    let concurrent_s = t.elapsed().as_secs_f64();
    let events: Vec<_> = rx.try_iter().collect();

    println!("\n== concurrent batch ({} jobs) ==", batch.len());
    for (i, (spec, result)) in batch.iter().zip(&results).enumerate() {
        let r = result.as_ref().expect("batch solve");
        let trajectory = r.stats.format_trajectory.join(" → ");
        println!(
            "job {i} on {:<7} {:<28} {:>5} iters  rrn {:.2e}  [{}]",
            spec.operator,
            format!("({:?})", spec.basis),
            r.stats.iterations,
            r.stats.final_rrn,
            trajectory,
        );
    }
    println!(
        "telemetry: {} cycle events streamed while jobs ran (cycle, residual, format, \
         basis traffic)",
        events.len()
    );

    // ------------------------------------------------------------------
    // 3. The headline guarantee: concurrent results are bit-identical
    //    to the sequential single-threaded reference.
    // ------------------------------------------------------------------
    let mut identical = true;
    for (r, c) in reference.iter().zip(&results) {
        let c = c.as_ref().unwrap();
        identical &= r.x.len() == c.x.len()
            && r.x
                .iter()
                .zip(&c.x)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && r.stats.format_trajectory == c.stats.format_trajectory;
    }
    assert!(identical, "concurrent batch diverged from sequential runs");
    println!("bit-identity: concurrent == sequential-1-thread for every job ✓");
    if !quiet {
        println!("wall: sequential {sequential_s:.2} s, concurrent {concurrent_s:.2} s");
    }

    // ------------------------------------------------------------------
    // 4. Admission control: a budget below the float64 job's basis
    //    reservation rejects it with a typed error — never a panic,
    //    never an OOM.
    // ------------------------------------------------------------------
    let f64_cost = estimated_basis_bytes(
        frsz2_repro::krylov::basis_format::by_name("float64")
            .expect("float64")
            .as_ref(),
        smooth.rows(),
        frsz2_repro::krylov::GmresOptions::default().restart,
        1,
        1,
    );
    let budgeted = SolverService::new(ServiceConfig {
        basis_budget_bytes: Some(f64_cost - 1),
        admission: AdmissionPolicy::Reject,
    });
    budgeted
        .register_csr("smooth", &smooth, PrecondSpec::Jacobi)
        .expect("register");
    println!("\n== admission control (budget {} bytes) ==", f64_cost - 1);
    match budgeted.solve(&job("smooth", &b_smooth, fixed("float64"), 1e-10, 1)) {
        Err(e @ ServiceError::BudgetExceeded { .. }) => println!("float64 job rejected: {e}"),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    let r = budgeted
        .solve(&job("smooth", &b_smooth, fixed("frsz2_21"), 1e-3, 1))
        .expect("compressed job fits");
    println!(
        "frsz2_21 job admitted under the same budget and converged ({} iters, rrn {:.2e})",
        r.stats.iterations, r.stats.final_rrn
    );

    // ------------------------------------------------------------------
    // 5. Surviving failures.
    //
    //    (a) Deadline → checkpoint → resume: a zero deadline (made
    //        deterministic by a per-boundary sleep fault) halts the job
    //        at its first restart boundary. The typed error carries the
    //        boundary's checkpoint; serialize it, decode it, and resume
    //        — the resumed solve is bit-identical to an uninterrupted
    //        one.
    // ------------------------------------------------------------------
    println!("\n== surviving failures ==");
    let mut plain = job("smooth", &b_smooth, fixed("frsz2_21"), 1e-8, 1);
    plain.opts.restart = 10; // several boundaries on this easy operator
    let uninterrupted = service.solve(&plain).expect("reference solve");
    let mut rushed = plain.clone();
    rushed.deadline = Some(Duration::ZERO);
    rushed.fault = Some(FaultSpec {
        sleep_per_boundary_ms: 1,
        ..FaultSpec::default()
    });
    let checkpoint = match service.solve(&rushed) {
        Err(ServiceError::DeadlineExceeded { checkpoint, .. }) => checkpoint,
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    };
    let bytes = checkpoint.encode(None);
    println!(
        "deadline hit at restart boundary {} (rrn {:.2e}); checkpoint = {} bytes",
        checkpoint.restarts,
        checkpoint.explicit_rrn,
        bytes.len(),
    );
    let mut resumed_spec = plain.clone();
    resumed_spec.resume = Some(Box::new(
        SolveCheckpoint::decode(&bytes, None).expect("decode checkpoint"),
    ));
    let resumed = service.solve(&resumed_spec).expect("resumed solve");
    assert!(
        resumed.x.len() == uninterrupted.x.len()
            && resumed
                .x
                .iter()
                .zip(&uninterrupted.x)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && resumed.stats.iterations == uninterrupted.stats.iterations,
        "resume diverged from the uninterrupted solve"
    );
    println!(
        "resumed from the checkpoint: {} iters, rrn {:.2e} — bit-identical to the \
         uninterrupted solve ✓",
        resumed.stats.iterations, resumed.stats.final_rrn
    );

    // ------------------------------------------------------------------
    //    (b) Retry with escalation: frsz2_16's accuracy floor cannot
    //        reach 1e-10 on the wide-range operator. A retry policy
    //        escalates the basis one ladder rung per attempt until the
    //        explicit residual actually meets the target.
    // ------------------------------------------------------------------
    let mut stubborn = job("wide", &b_wide, fixed("frsz2_16"), 1e-10, 1);
    stubborn.opts.max_iters = 600;
    stubborn.retry = Some(RetryPolicy::quick(3));
    let report = service.solve_report(&stubborn).expect("retried job");
    assert!(report.result.stats.converged, "escalation must recover");
    println!(
        "frsz2_16 @ 1e-10 on `wide`: {} attempts ({}) → converged, rrn {:.2e} ✓",
        report.attempts,
        report.formats_tried.join(" → "),
        report.result.stats.final_rrn,
    );
}
