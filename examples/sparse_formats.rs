//! Sparse-format walkthrough: convert one operator to ELL and
//! SELL-C-σ, let the runtime heuristic pick a format, verify the
//! bit-identity contract, and show what the warp-level simulator says
//! about coalescing.
//!
//! Run with: `cargo run --release --example sparse_formats`

use frsz2_repro::frsz2::{Frsz2Config, Frsz2Store};
use frsz2_repro::gpusim::spmv::{spmv_csr_sim, spmv_sell_sim};
use frsz2_repro::gpusim::{estimate, H100_PCIE};
use frsz2_repro::krylov::{gmres_with, GmresOptions, Identity};
use frsz2_repro::spla::dense::manufactured_rhs;
use frsz2_repro::spla::{auto_format, gen, Ell, SellCSigma, SparseMatrix};

fn main() {
    // --- 1. One matrix, three formats --------------------------------
    let a = gen::conv_diff_3d(20, 20, 20, [0.4, 0.2, 0.1], 0.2);
    let ell = Ell::from_csr(&a);
    let sell = SellCSigma::from_csr(&a, 32, 256);
    println!(
        "matrix: {} rows, {} nnz (7-point convection-diffusion)",
        a.rows(),
        a.nnz()
    );
    for m in [&a as &dyn SparseMatrix, &ell, &sell] {
        println!(
            "  {:<14} {:>9} storage bytes ({:.2} bytes/nnz)",
            m.format_name(),
            m.storage_bytes(),
            m.storage_bytes() as f64 / m.nnz() as f64
        );
    }

    // --- 2. The runtime choice ---------------------------------------
    let choice = auto_format(&a);
    println!("auto_format picks: {}", choice.name());

    // --- 3. Bit-identity: the format is a pure performance knob ------
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
    let reference = a.mul_vec(&x);
    for m in [&ell as &dyn SparseMatrix, &sell] {
        let mut y = vec![0.0; a.rows()];
        m.spmv(&x, &mut y);
        assert!(
            y.iter()
                .zip(&reference)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "{} diverged from CSR",
            m.format_name()
        );
    }
    println!("ELL and SELL SpMV are bit-identical to CSR");

    // --- 4. Why SELL exists: warp coalescing on the simulator --------
    let (y_csr, c_csr) = spmv_csr_sim(&a, &x);
    let (y_sell, c_sell) = spmv_sell_sim(&sell, &x);
    assert_eq!(y_csr, y_sell);
    let t_csr = estimate(&H100_PCIE, &c_csr).total;
    let t_sell = estimate(&H100_PCIE, &c_sell).total;
    println!(
        "simulated H100 SpMV: scalar-CSR reads {} sectors, SELL-32-256 reads {} \
         ({:.1}x fewer); modeled speedup {:.2}x",
        c_csr.sectors_read,
        c_sell.sectors_read,
        c_csr.sectors_read as f64 / c_sell.sectors_read as f64,
        t_csr / t_sell
    );

    // --- 5. CB-GMRES l=21 on the auto-selected format ----------------
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        target_rrn: 1e-10,
        max_iters: 5000,
        ..GmresOptions::default()
    };
    let cfg = Frsz2Config::new(32, 21);
    let op = choice.build(&a);
    let r = gmres_with(op.as_ref(), &b, &x0, &opts, &Identity, |rows, cols| {
        Frsz2Store::with_config(cfg, rows, cols)
    });
    assert!(r.stats.converged);
    println!(
        "CB-GMRES l=21 on {}: {} iterations to rrn {:.2e} \
         ({:.1} bits/basis value)",
        op.format_name(),
        r.stats.iterations,
        r.stats.final_rrn,
        r.stats.basis_bits_per_value
    );
}
