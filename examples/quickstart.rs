//! Quickstart: compress a vector with FRSZ2, inspect the error bound,
//! then solve a small sparse system with CB-GMRES using the compressed
//! Krylov basis.
//!
//! Run with: `cargo run --release --example quickstart`

use frsz2_repro::frsz2::{Frsz2Config, Frsz2Store, Frsz2Vector};
use frsz2_repro::krylov::{gmres, GmresOptions, Identity};
use frsz2_repro::numfmt::DenseStore;
use frsz2_repro::spla::dense::manufactured_rhs;
use frsz2_repro::spla::gen;

fn main() {
    // --- 1. The codec on its own -------------------------------------
    let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin() / 3.0).collect();
    let cfg = Frsz2Config::new(32, 32); // BS = 32, l = 32: "frsz2_32"
    let compressed = Frsz2Vector::compress(cfg, &data);
    println!(
        "compressed {} f64 values to {} bytes ({:.1} bits/value incl. block exponents)",
        data.len(),
        compressed.storage_bytes(),
        compressed.bits_per_value()
    );

    let restored = compressed.decompress();
    let max_err = data
        .iter()
        .zip(&restored)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max abs error {max_err:.3e} (bound: one ULP of the fraction at block scale)");
    println!("random access: element 1234 = {}", compressed.get(1234));

    // --- 2. CB-GMRES with a compressed basis --------------------------
    let a = gen::conv_diff_3d(16, 16, 16, [0.4, 0.2, 0.1], 0.1);
    let (x_true, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        target_rrn: 1e-12,
        max_iters: 2000,
        ..GmresOptions::default()
    };

    println!("\nsolving a {0}x{0} convection-diffusion system:", a.rows());
    let full = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &opts, &Identity);
    let comp = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &opts, &Identity);
    for r in [&full, &comp] {
        let err: f64 =
            r.x.iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
        println!(
            "  {:<10} {} iterations, final RRN {:.2e}, ‖x - x*‖ = {err:.2e}, basis {:.0} bits/value",
            r.stats.format, r.stats.iterations, r.stats.final_rrn, r.stats.basis_bits_per_value
        );
    }
    println!(
        "\nthe compressed basis costs {} extra iterations and halves the basis traffic",
        comp.stats.iterations as i64 - full.stats.iterations as i64
    );
}
