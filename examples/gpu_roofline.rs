//! Mini Figure 4: run the simulated H100 streaming kernels at a few
//! arithmetic intensities and print the roofline crossovers.
//!
//! Run with: `cargo run --release --example gpu_roofline`

use frsz2_repro::gpusim::kernels::{ai_series, stream_bandwidth_fraction, StreamFormat};
use frsz2_repro::gpusim::H100_PCIE;

fn main() {
    println!(
        "H100-PCIe model: {:.0} GB/s, {:.1} TFLOP/s fp64 -> {:.0} fp64 ops per loaded f64\n",
        H100_PCIE.mem_bw / 1e9,
        H100_PCIE.fp64_flops / 1e12,
        H100_PCIE.flops_per_f64_loaded()
    );

    let n = 1 << 18;
    let ais = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0];
    println!("GFLOP/s by arithmetic intensity (FLOP per loaded value):");
    print!("{:<16}", "format");
    for ai in ais {
        print!("{ai:>9.0}");
    }
    println!();
    for fmt in StreamFormat::figure4_set() {
        let series = ai_series(&H100_PCIE, fmt, n, &ais);
        print!("{:<16}", fmt.label());
        for p in &series {
            print!("{:>9.0}", p.gflops);
        }
        println!();
    }

    println!("\nstreaming bandwidth fraction (of 2000 GB/s peak):");
    for fmt in StreamFormat::figure4_set() {
        println!(
            "  {:<16} {:>6.1}%",
            fmt.label(),
            stream_bandwidth_fraction(&H100_PCIE, fmt, n) * 100.0
        );
    }
    println!("\npaper anchors: frsz2_32 at 99.6% of bandwidth; frsz2_16 fastest per value");
    println!("but not 2x float32; frsz2_21 no faster than frsz2_32 (unaligned reads).");
}
