//! Adaptive-precision basis escalation on a PR02R-like problem.
//!
//! FRSZ2 stores one exponent per 32-value block, so a Krylov vector
//! whose neighbouring entries span many binades flushes its small
//! entries to zero (§VI-A, Fig. 9b): with `l = 16` the basis only
//! keeps ~14 bits below the block max, and on a similarity-scaled
//! operator the solve stagnates far above the target. The adaptive
//! driver watches the *explicit* restart residual, escalates
//! `frsz2_16 → frsz2_21 → frsz2_32 → float64` on stagnation evidence,
//! and converges — while spending its early cycles in the cheap
//! formats.
//!
//! Run with `cargo run --release --example adaptive_basis`.

use frsz2_repro::krylov::{adaptive_gmres, basis_format, AdaptiveOptions, GmresOptions, Identity};
use frsz2_repro::spla::dense::manufactured_rhs;
use frsz2_repro::spla::gen;

fn main() {
    // 8^3 convection-diffusion operator, similarity-scaled across ~24
    // binades: the PR02R regime where within-block exponent spread
    // defeats narrow FRSZ2 (see `gen::wide_range_conv_diff`).
    let a = gen::wide_range_conv_diff(8, 8, 8, 24, 0x5202);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];

    let opts = GmresOptions {
        restart: 30,
        max_iters: 1200,
        target_rrn: 1e-10,
        ..GmresOptions::default()
    };

    println!("fixed-format solves (target 1e-10):");
    for name in ["frsz2_16", "frsz2_21", "frsz2_32", "float64"] {
        let fmt = basis_format::by_name(name).unwrap();
        let r = basis_format::gmres_dyn(&a, &b, &x0, &opts, &Identity, fmt.as_ref());
        println!(
            "  {name:>9}: converged={} iters={:4} final_rrn={:.2e} ({:.1} bits/value)",
            r.stats.converged,
            r.stats.iterations,
            r.stats.final_rrn,
            fmt.bits_per_value(a.rows())
        );
    }

    let aopts = AdaptiveOptions {
        gmres: opts,
        ..AdaptiveOptions::default()
    };
    let r = adaptive_gmres(&a, &b, &x0, &aopts, &Identity);
    println!(
        "\nadaptive: converged={} iters={} final_rrn={:.2e} escalations={}",
        r.stats.converged, r.stats.iterations, r.stats.final_rrn, r.stats.escalations
    );
    println!("  per-cycle formats: {:?}", r.stats.format_trajectory);
    let explicit: Vec<String> = r
        .history
        .iter()
        .filter(|p| p.explicit)
        .map(|p| format!("{:.1e}@{}", p.rrn, p.iteration))
        .collect();
    println!("  explicit residuals: {}", explicit.join(" "));
}
