//! Every compressor in the workspace against the same Krylov-style
//! vector: achieved rate, worst-case error, and round-trip wall time
//! (the Table II comparison as a library-level API tour).
//!
//! Run with: `cargo run --release --example compressor_shootout`
//!
//! Pass `--quiet` to drop the wall-clock throughput column — the
//! remaining output is deterministic, so runs diff cleanly.

use frsz2_repro::frsz2::Frsz2Config;
use frsz2_repro::lossy::cast::{CastF16, CastF32};
use frsz2_repro::lossy::frsz2_adapter::Frsz2Compressor;
use frsz2_repro::lossy::{registry, Compressor};
use std::time::Instant;

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    // Unit-norm uncorrelated vector: what CB-GMRES actually stores.
    let n = 64 * 1024;
    let mut data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.618_033).sin()).collect();
    let nrm = data.iter().map(|v| v * v).sum::<f64>().sqrt();
    data.iter_mut().for_each(|v| *v /= nrm);

    let mut codecs: Vec<Box<dyn Compressor>> = vec![
        Box::new(Frsz2Compressor::new(Frsz2Config::new(32, 16))),
        Box::new(Frsz2Compressor::new(Frsz2Config::new(32, 21))),
        Box::new(Frsz2Compressor::new(Frsz2Config::new(32, 32))),
        Box::new(CastF32),
        Box::new(CastF16),
    ];
    for info in registry::TABLE_TWO.iter() {
        codecs.push(Box::new(RegistryCodec(
            registry::by_name(info.name).unwrap(),
        )));
    }

    if quiet {
        println!("{:<16} {:>12} {:>12}", "codec", "bits/value", "max |err|");
    } else {
        println!(
            "{:<16} {:>12} {:>12} {:>14}",
            "codec", "bits/value", "max |err|", "roundtrip MB/s"
        );
    }
    for codec in &codecs {
        let mut out = vec![0.0; n];
        let t = Instant::now();
        let bits = codec.roundtrip(&data, &mut out);
        let dt = t.elapsed().as_secs_f64();
        let max_err = data
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        if quiet {
            println!(
                "{:<16} {:>12.1} {:>12.2e}",
                codec.name(),
                bits as f64 / n as f64,
                max_err,
            );
        } else {
            println!(
                "{:<16} {:>12.1} {:>12.2e} {:>14.0}",
                codec.name(),
                bits as f64 / n as f64,
                max_err,
                n as f64 * 8.0 / dt / 1e6
            );
        }
    }
    println!(
        "\nNote the rate/quality frontier: frsz2_32 keeps ~1e-9 error at 33 bits/value \
         on data the prediction-based codecs cannot decorrelate (§III-A)."
    );
}

/// Adapter so registry Arc codecs fit in the Box<dyn Compressor> list.
struct RegistryCodec(std::sync::Arc<dyn Compressor>);

impl Compressor for RegistryCodec {
    fn name(&self) -> String {
        self.0.name()
    }
    fn compress(&self, data: &[f64]) -> Vec<u8> {
        self.0.compress(data)
    }
    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        self.0.decompress(bytes, n)
    }
}
