//! The FRSZ2 failure mode (paper §VI-A, Figs. 9b/10): when consecutive
//! Krylov entries span more binades than the `l − 2` significand window,
//! block normalization flushes the small ones to zero and convergence
//! stagnates. The same data ordered so neighbours share magnitude
//! (HV15R-style) compresses fine.
//!
//! Run with: `cargo run --release --example wide_dynamic_range`

use frsz2_repro::frsz2::error::{error_stats, predicted_flush_fraction};
use frsz2_repro::frsz2::{Frsz2Config, Frsz2Vector};
use frsz2_repro::spla::gen;
use frsz2_repro::spla::stats::exponent_range;

fn main() {
    // A vector spanning ~40 binades, PR02R-style (uncorrelated order).
    let n = 32 * 1024;
    let phi = gen::phi_uncorrelated(n, 40, 42);
    let scattered: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * 0.73).sin() + 1.1) * f64::powi(2.0, phi[i]))
        .collect();
    // The same magnitudes sorted so neighbours match (HV15R-style order).
    let mut sorted = scattered.clone();
    sorted.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());

    let (lo, hi) = exponent_range(&scattered);
    println!("data spans 2^{lo} .. 2^{hi} ({} binades)\n", hi - lo);

    let cfg = Frsz2Config::new(32, 32);
    for (label, data) in [
        ("uncorrelated (PR02R-like)", &scattered),
        ("sorted (HV15R-like)", &sorted),
    ] {
        let v = Frsz2Vector::compress(cfg, data);
        let out = v.decompress();
        let stats = error_stats(data, &out);
        let predicted = predicted_flush_fraction(cfg, data);
        println!("{label}:");
        println!(
            "  predicted flush fraction {:.1}%, observed {:.1}% ({} of {} nonzeros), max rel err {:.2e}",
            predicted * 100.0,
            stats.flushed_to_zero as f64 / stats.count as f64 * 100.0,
            stats.flushed_to_zero,
            stats.count,
            stats.max_rel
        );
    }

    println!(
        "\nThis is why the paper's PR02R stalls under frsz2_32 while HV15R does not: \
         the matrices have near-identical value distributions, but HV15R's ordering \
         keeps neighbouring Krylov entries at similar magnitude (§VI-A)."
    );

    // What helps: a longer significand window.
    println!("\nwindow sweep on the uncorrelated data:");
    for l in [16u32, 32, 48, 64] {
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::compress(cfg, &scattered);
        let stats = error_stats(&scattered, &v.decompress());
        println!(
            "  l = {l:>2}: flushed {:>6.2}%  ({:.1} bits/value)",
            stats.flushed_to_zero as f64 / stats.count as f64 * 100.0,
            v.bits_per_value()
        );
    }
}
