//! The paper's motivating scenario: an atmospheric-model-style
//! convection-diffusion solve where storage precision of the Krylov
//! basis trades bandwidth against convergence (Figs. 5/8 in miniature).
//!
//! Run with: `cargo run --release --example convection_diffusion`
//!
//! Pass `--quiet` to drop the wall-clock column — every remaining
//! column is deterministic (bit-identical at any thread count), so
//! runs diff cleanly.

use frsz2_repro::frsz2::{Frsz2Config, Frsz2Store};
use frsz2_repro::krylov::{gmres, gmres_with, GmresOptions, Identity};
use frsz2_repro::numfmt::{DenseStore, BF16, F16};
use frsz2_repro::spla::dense::manufactured_rhs;
use frsz2_repro::spla::suite;

fn main() {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let m = suite::build("atmosmodd", 0.6).expect("suite matrix");
    let a = m.matrix;
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        target_rrn: 1e-13,
        max_iters: 4000,
        ..GmresOptions::default()
    };
    println!(
        "atmosmodd analogue at 60% scale: n = {}, nnz = {}, target RRN 1e-13\n",
        a.rows(),
        a.nnz()
    );
    if quiet {
        println!(
            "{:<10} {:>10} {:>12} {:>12}",
            "format", "iterations", "final RRN", "bits/value"
        );
    } else {
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>10}",
            "format", "iterations", "final RRN", "bits/value", "wall [s]"
        );
    }

    let report = move |format: &str, r: &frsz2_repro::krylov::SolveResult| {
        if quiet {
            println!(
                "{:<10} {:>10} {:>12.2e} {:>12.0}",
                format, r.stats.iterations, r.stats.final_rrn, r.stats.basis_bits_per_value,
            );
        } else {
            println!(
                "{:<10} {:>10} {:>12.2e} {:>12.0} {:>10.2}",
                format,
                r.stats.iterations,
                r.stats.final_rrn,
                r.stats.basis_bits_per_value,
                r.stats.wall_time.as_secs_f64()
            );
        }
    };

    report(
        "float64",
        &gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &opts, &Identity),
    );
    report(
        "float32",
        &gmres::<DenseStore<f32>, _, _>(&a, &b, &x0, &opts, &Identity),
    );
    report(
        "float16",
        &gmres::<DenseStore<F16>, _, _>(&a, &b, &x0, &opts, &Identity),
    );
    report(
        "bfloat16",
        &gmres::<DenseStore<BF16>, _, _>(&a, &b, &x0, &opts, &Identity),
    );
    for l in [16u32, 21, 32] {
        let cfg = Frsz2Config::new(32, l);
        let r = gmres_with(&a, &b, &x0, &opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        report(&cfg.name(), &r);
    }

    println!(
        "\nexpected shape (paper Fig. 8, atmosmod group): float64 needs the fewest \
         iterations, frsz2_32 is close behind, float32 trails it, float16 roughly doubles."
    );
}
