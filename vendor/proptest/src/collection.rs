//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec()`]: an exact size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
