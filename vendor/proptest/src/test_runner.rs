//! Test configuration, case errors, and the deterministic RNG.

/// Per-`proptest!` block configuration (subset of the real crate).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass: a genuine failure or a
/// `prop_assume!` rejection.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: false,
        }
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: true,
        }
    }

    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// xoshiro256++ seeded from an FNV-1a hash of the test name: each test
/// gets an independent but fully deterministic stream, so failures
/// reproduce run-to-run without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
