//! Deterministic mini property-testing framework with the [proptest]
//! API surface this workspace uses.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! replaces the real proptest. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; inputs are reproducible because generation is
//!   deterministic (the RNG is seeded from the test name).
//! * **Rejection (`prop_assume!`) skips the case** instead of retrying
//!   with fresh inputs.
//! * Only the strategies the workspace tests use are provided: numeric
//!   ranges, `Just`, tuples, `prop_map`, weighted/unweighted
//!   `prop_oneof!`, `prop::collection::vec`, and `prop::num::f64`.
//!
//! Swapping the real proptest back in requires only a `Cargo.toml`
//! change; the test sources are written against the real API.
//!
//! [proptest]: https://crates.io/crates/proptest

pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy collections (`prop::collection::vec`, `prop::num::f64`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Assert a boolean property; on failure the current case returns an
/// error (reported with the case number by the generated test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal (`PartialEq`), with optional context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Assert two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Reject the current case when a precondition does not hold (the case
/// is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Weighted or unweighted choice between strategies producing the same
/// value type. `prop_oneof![a, b]` picks uniformly; `prop_oneof![3 => a,
/// 1 => b]` picks `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Generate `#[test]` functions that run a body against sampled inputs.
///
/// Supports the real proptest surface used in this workspace: an
/// optional `#![proptest_config(...)]` header, doc comments / attributes
/// per test, and `pattern in strategy` argument bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg =
                            $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e.is_rejection() => rejected += 1,
                    ::std::result::Result::Err(e) => panic!(
                        "proptest `{}`, case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    ),
                }
            }
            assert!(
                rejected < config.cases,
                "proptest `{}`: every case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    (($config:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            (a, b) in (0u32..10, -5i64..=5),
            x in -1.0f64..1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn oneof_and_map(
            l in prop_oneof![Just(4u32), Just(21), Just(64)],
            y in (0u32..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(l == 4 || l == 21 || l == 64);
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(-2.0f64..2.0, 3..17),
            w in prop::collection::vec(0u64..5, 4),
        ) {
            prop_assert!((3..17).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in prop::num::f64::ANY) {
            prop_assume!(x.is_finite());
            prop_assert!(!x.is_nan());
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 10..20);
        let mut r1 = TestRng::for_test("det");
        let mut r2 = TestRng::for_test("det");
        for _ in 0..10 {
            assert_eq!(strat.new_value(&mut r1), strat.new_value(&mut r2));
        }
    }
}
