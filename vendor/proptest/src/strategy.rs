//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of `Self::Value`. Unlike the real
/// proptest there is no value tree / shrinking: a strategy samples a
/// concrete value directly.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let pick = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo as i128 + pick as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).new_value(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
