//! Numeric strategies (`prop::num::f64::{ANY, NORMAL}`).

#[allow(non_camel_case_types)]
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Any bit pattern — includes ±0, subnormals, ±∞ and NaN; pair with
    /// `prop_assume!(x.is_finite())` where finiteness matters.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            ::core::primitive::f64::from_bits(rng.next_u64())
        }
    }

    /// Normal (non-zero, non-subnormal, finite) values of either sign,
    /// uniform over sign/exponent/mantissa bits.
    #[derive(Clone, Copy, Debug)]
    pub struct Normal;
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let sign = rng.next_u64() & (1 << 63);
            let exp = 1 + rng.below(2046); // biased exponent in 1..=2046
            let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
            ::core::primitive::f64::from_bits(sign | (exp << 52) | mantissa)
        }
    }
}
