//! Minimal stand-in for the subset of the [rand] crate this workspace
//! uses: `SmallRng::seed_from_u64` plus `Rng::gen_range` over integer and
//! float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit platforms — so quality
//! is comparable; streams are NOT bit-compatible with the real crate, but
//! the workspace only relies on determinism for a fixed seed, which this
//! provides.
//!
//! [rand]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// Core RNG trait (subset: `gen_range`, `gen`, `next_u64`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a range, as in `rand::Rng::gen_range`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding trait (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic for a fixed seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.gen_f64()
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u32_range_is_exercised() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0u32..=35);
            lo |= v < 3;
            hi |= v > 32;
        }
        assert!(lo && hi, "uniform sampler must reach both ends");
    }
}
