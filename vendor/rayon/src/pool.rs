//! The execution engine: a persistent `std::thread` pool that deals
//! fixed-boundary tasks to whichever thread is free.
//!
//! A parallel operation is published as an [`Op`]: a task count plus a
//! shared closure. Threads (workers *and* the calling thread, which
//! always participates) claim task indices through an atomic cursor
//! ("chunk dealing" — the dynamic self-scheduling analogue of
//! work-stealing for pre-split iterations), so load imbalance between
//! tasks is absorbed without any thread ever idling while work remains.
//!
//! Determinism contract: task *boundaries* are computed from the item
//! count and the `with_min_len` hint only — never from the thread count
//! — and per-task results are combined in task order on the calling
//! thread. Non-associative combinations (floating-point sums) therefore
//! produce bit-identical results at any thread count.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One in-flight parallel operation.
struct Op {
    /// The task body. The `'static` lifetime is a lie told to the
    /// borrow checker: [`PoolRef::run`] does not return until every
    /// task has completed, and exhausted ops are never re-entered, so
    /// the reference never dangles while dereferenced.
    run: &'static (dyn Fn(usize) + Sync),
    n_tasks: usize,
    /// Next unclaimed task index (may overshoot `n_tasks`).
    next: AtomicUsize,
    /// Completed-task count; the caller blocks until it reaches
    /// `n_tasks`.
    completed: Mutex<usize>,
    done: Condvar,
    /// First panic payload from any task, re-raised on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Op {
    /// Claim and run tasks until the cursor is exhausted. Never
    /// unwinds: task panics are captured for the caller to re-raise.
    fn work(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.n_tasks {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.run)(t))) {
                let mut p = self.panic.lock().unwrap();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
            let mut c = self.completed.lock().unwrap();
            *c += 1;
            if *c == self.n_tasks {
                self.done.notify_all();
            }
        }
    }
}

/// State shared between a pool's workers and every handle to it.
struct Shared {
    /// Ops with unclaimed tasks (almost always zero or one deep; nested
    /// parallelism can stack more).
    queue: Mutex<Vec<Arc<Op>>>,
    /// Signalled when an op is published or shutdown is requested.
    available: Condvar,
    shutdown: AtomicBool,
}

/// A cheap handle to a pool: thread count plus the shared queue.
#[derive(Clone)]
pub(crate) struct PoolRef {
    pub(crate) threads: usize,
    shared: Arc<Shared>,
}

impl PoolRef {
    /// Execute `f(0..n_tasks)` across the pool, returning when every
    /// task has finished. Panics from tasks are propagated.
    pub(crate) fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        // SAFETY: `run` waits for all tasks to complete before
        // returning (see the completion loop below), and removes the op
        // from the queue so no thread re-enters it; the closure is
        // therefore never dereferenced after it goes out of scope.
        let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let op = Arc::new(Op {
            run,
            n_tasks,
            next: AtomicUsize::new(0),
            completed: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        self.shared.queue.lock().unwrap().push(op.clone());
        self.shared.available.notify_all();
        // The caller deals itself tasks like any worker: progress is
        // guaranteed even if every worker is busy elsewhere.
        op.work();
        let mut c = op.completed.lock().unwrap();
        while *c < op.n_tasks {
            c = op.done.wait(c).unwrap();
        }
        drop(c);
        self.shared
            .queue
            .lock()
            .unwrap()
            .retain(|o| !Arc::ptr_eq(o, &op));
        let payload = op.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(pool: PoolRef) {
    CURRENT.with(|c| c.borrow_mut().push(pool.clone()));
    loop {
        let op = {
            let mut q = pool.shared.queue.lock().unwrap();
            loop {
                if pool.shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(op) = q
                    .iter()
                    .find(|o| o.next.load(Ordering::Relaxed) < o.n_tasks)
                {
                    break op.clone();
                }
                q = pool.shared.available.wait(q).unwrap();
            }
        };
        op.work();
    }
}

/// Spawn a pool with `threads` total threads (the calling thread counts
/// as one, so `threads - 1` workers are created).
fn build_pool(threads: usize, name: &str) -> (PoolRef, Vec<std::thread::JoinHandle<()>>) {
    let pool = PoolRef {
        threads,
        shared: Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }),
    };
    let handles = (0..threads.saturating_sub(1))
        .map(|i| {
            let p = pool.clone();
            std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || worker_loop(p))
                .expect("failed to spawn pool worker")
        })
        .collect();
    (pool, handles)
}

/// Thread count of the global pool: `FRSZ2_NUM_THREADS`, then
/// `RAYON_NUM_THREADS`, then the machine's available parallelism.
fn default_threads() -> usize {
    for var in ["FRSZ2_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var).ok().and_then(|v| v.parse().ok()) {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn global() -> &'static PoolRef {
    static GLOBAL: OnceLock<PoolRef> = OnceLock::new();
    GLOBAL.get_or_init(|| build_pool(default_threads(), "rayon-global").0)
}

thread_local! {
    /// Stack of installed pools; the top one services parallel ops
    /// issued from this thread. Workers seed it with their own pool so
    /// nested parallelism stays inside one pool.
    static CURRENT: RefCell<Vec<PoolRef>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_pool() -> PoolRef {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| global().clone())
}

/// Number of threads (workers + caller) serving parallel operations
/// issued from the current thread.
pub fn current_num_threads() -> usize {
    current_pool().threads
}

/// Builder for an explicitly-sized [`ThreadPool`] (mirrors rayon's).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build`]. Construction cannot
/// currently fail, but the type mirrors rayon's fallible signature so
/// call sites stay swap-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Total threads in the pool; `0` (the default) means the global
    /// default (env-var override, then the core count).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        let (pool, handles) = build_pool(threads, "rayon-pool");
        Ok(ThreadPool { pool, handles })
    }
}

/// An explicitly-built pool. [`ThreadPool::install`] routes parallel
/// operations issued from the closure (on this thread) to this pool.
pub struct ThreadPool {
    pool: PoolRef,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `op` with this pool installed as the current pool. Unlike
    /// real rayon, `op` executes on the calling thread (which
    /// participates in the pool's work); semantics of the parallel
    /// operations inside are identical.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        CURRENT.with(|c| c.borrow_mut().push(self.pool.clone()));
        let _guard = PopGuard;
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.pool.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.pool.shared.shutdown.store(true, Ordering::Relaxed);
        self.pool.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    if pool.threads == 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra = Mutex::new(None);
    let rb = Mutex::new(None);
    pool.run(2, &|t| {
        if t == 0 {
            let f = fa.lock().unwrap().take().unwrap();
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = fb.lock().unwrap().take().unwrap();
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().unwrap(),
        rb.into_inner().unwrap().unwrap(),
    )
}

type ScopeJob<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// Scope for spawning borrowed tasks; see [`scope`].
pub struct Scope<'scope> {
    jobs: Mutex<Vec<ScopeJob<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queue `f` to run before `scope` returns. Spawned tasks may spawn
    /// further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.jobs.lock().unwrap().push(Box::new(f));
    }
}

/// Create a scope in which tasks borrowing the caller's stack can be
/// spawned; all spawned tasks complete before `scope` returns.
///
/// Scheduling note: tasks spawned while `op` runs start only after `op`
/// returns (batches of spawned tasks then execute in parallel). Rayon
/// makes no ordering guarantee between `op` and its spawns, so this is
/// a legal — just less eager — schedule.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let result = op(&s);
    loop {
        let batch = std::mem::take(&mut *s.jobs.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        let pool = current_pool();
        if pool.threads == 1 || batch.len() == 1 {
            for job in batch {
                job(&s);
            }
        } else {
            let slots: Vec<Mutex<Option<ScopeJob<'_>>>> =
                batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
            pool.run(slots.len(), &|t| {
                let job = slots[t].lock().unwrap().take().unwrap();
                job(&s);
            });
        }
    }
    result
}

/// Execute `n_tasks` closures and return their results in task order.
/// The backbone of every parallel-iterator operation: task boundaries
/// are chosen by the caller (thread-count independent), execution order
/// is arbitrary, combination order is fixed.
pub(crate) fn run_ordered<R, F>(n_tasks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let pool = current_pool();
    if n_tasks == 1 || pool.threads == 1 {
        return (0..n_tasks).map(task).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    pool.run(n_tasks, &|t| {
        let r = task(t);
        *slots[t].lock().unwrap() = Some(r);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("pool task did not complete"))
        .collect()
}
