//! Parallel iterators over splittable sources.
//!
//! Every parallel iterator is a [`TaskSource`]: a fixed number of items
//! that can be produced for any contiguous sub-range independently.
//! Adaptors (`map`, `enumerate`, `zip`, `filter`) wrap a source and
//! forward range requests; terminal operations cut the item range into
//! tasks (boundaries depend only on the item count and the
//! `with_min_len` hint — never the thread count), execute the tasks on
//! the pool, and combine per-task results in task order. See
//! `pool.rs` for the determinism contract.

use crate::pool::run_ordered;
use std::marker::PhantomData;

/// Cap on tasks per operation: enough for load balance on any
/// plausible thread count, few enough that per-task overhead (one
/// atomic claim + one slot write) stays negligible. A constant — task
/// boundaries must not depend on the thread count.
const MAX_TASKS: usize = 256;

/// A source of `items()` independent items, any contiguous range of
/// which can be produced on any thread.
///
/// # Safety
///
/// Implementations may hand out `&mut` borrows derived from a shared
/// `&self` (e.g. disjoint sub-slices of one `&mut [T]`). The executor
/// guarantees that concurrent `task` calls receive **disjoint** item
/// ranges; implementations in turn must ensure that disjoint item
/// ranges never alias.
pub unsafe trait TaskSource: Sync {
    type Item: Send;
    type TaskIter<'a>: Iterator<Item = Self::Item>
    where
        Self: 'a;

    /// Total number of items.
    fn items(&self) -> usize;

    /// Produce items `start .. start + len` (clamped to `items()`).
    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_>;
}

/// Fixed task layout: `(items_per_task, n_tasks)` as a function of the
/// item count and minimum-length hint only.
fn task_layout(items: usize, min_items: usize) -> (usize, usize) {
    let per = items.div_ceil(MAX_TASKS).max(min_items).max(1);
    (per, items.div_ceil(per))
}

/// A parallel iterator: a [`TaskSource`] plus tuning hints.
pub struct Par<S> {
    src: S,
    min_task_items: usize,
}

impl<S: TaskSource> Par<S> {
    pub(crate) fn new(src: S) -> Self {
        Par {
            src,
            min_task_items: 1,
        }
    }

    /// Lower bound on items per task (rayon's tuning hint). Larger
    /// values amortize per-task overhead when single items are cheap.
    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_task_items = self.min_task_items.max(len.max(1));
        self
    }

    pub fn map<O, F>(self, f: F) -> Par<MapSrc<S, F>>
    where
        O: Send,
        F: Fn(S::Item) -> O + Sync,
    {
        Par {
            src: MapSrc { src: self.src, f },
            min_task_items: self.min_task_items,
        }
    }

    pub fn enumerate(self) -> Par<EnumerateSrc<S>> {
        Par {
            src: EnumerateSrc { src: self.src },
            min_task_items: self.min_task_items,
        }
    }

    pub fn zip<T: TaskSource>(self, other: Par<T>) -> Par<ZipSrc<S, T>> {
        Par {
            src: ZipSrc {
                a: self.src,
                b: other.src,
            },
            min_task_items: self.min_task_items.max(other.min_task_items),
        }
    }

    pub fn filter<F>(self, f: F) -> Par<FilterSrc<S, F>>
    where
        F: Fn(&S::Item) -> bool + Sync,
    {
        Par {
            src: FilterSrc { src: self.src, f },
            min_task_items: self.min_task_items,
        }
    }

    /// Run `consumer` once per task over that task's items, returning
    /// per-task results in task order.
    fn drive<R, C>(&self, consumer: C) -> Vec<R>
    where
        R: Send,
        C: for<'a> Fn(S::TaskIter<'a>) -> R + Sync,
    {
        let items = self.src.items();
        let (per, n_tasks) = task_layout(items, self.min_task_items);
        let src = &self.src;
        run_ordered(n_tasks, move |t| {
            let start = t * per;
            consumer(src.task(start, per.min(items - start)))
        })
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        self.drive(|iter| iter.for_each(&f));
    }

    pub fn collect<C: FromIterator<S::Item>>(self) -> C {
        self.drive(|iter| iter.collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Rayon-style reduce: `identity` produces the unit of `op`, which
    /// must be associative for the result to equal a sequential fold
    /// (it is *deterministic* regardless: task boundaries are fixed and
    /// partials combine in task order).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        self.drive(|iter| iter.fold(identity(), &op))
            .into_iter()
            .fold(identity(), op)
    }

    pub fn sum<T>(self) -> T
    where
        T: std::iter::Sum<S::Item> + std::iter::Sum<T> + Send,
    {
        self.drive(|iter| iter.sum::<T>()).into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.drive(|iter| iter.count()).into_iter().sum()
    }
}

// ---------------------------------------------------------------------
// Base sources.
// ---------------------------------------------------------------------

/// `par_chunks`: items are `&[T]` windows of a shared slice.
pub struct ChunksSrc<'d, T> {
    data: &'d [T],
    chunk: usize,
}

// SAFETY: items are shared borrows; disjointness is irrelevant.
unsafe impl<'d, T: Sync> TaskSource for ChunksSrc<'d, T> {
    type Item = &'d [T];
    type TaskIter<'a>
        = std::slice::Chunks<'d, T>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.data.len().div_ceil(self.chunk)
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        let lo = (start * self.chunk).min(self.data.len());
        let hi = (start.saturating_add(len) * self.chunk).min(self.data.len());
        self.data[lo..hi].chunks(self.chunk)
    }
}

/// `par_chunks_mut`: items are `&mut [T]` windows of one exclusive
/// slice, handed out through a shared `&self`.
pub struct ChunksMutSrc<'d, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'d mut [T]>,
}

// SAFETY: the source only dereferences `ptr` inside `task`, which
// produces disjoint sub-slices for the disjoint ranges the executor
// requests; `T: Send` makes moving those `&mut` borrows across threads
// sound.
unsafe impl<T: Send> Sync for ChunksMutSrc<'_, T> {}

// SAFETY: `task` carves non-overlapping `[lo, hi)` element windows out
// of the original slice for disjoint item ranges, so no two live
// `&mut [T]` alias.
unsafe impl<'d, T: Send> TaskSource for ChunksMutSrc<'d, T> {
    type Item = &'d mut [T];
    type TaskIter<'a>
        = std::slice::ChunksMut<'d, T>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        let lo = (start * self.chunk).min(self.len);
        let hi = (start.saturating_add(len) * self.chunk).min(self.len);
        // SAFETY: `[lo, hi)` lies within the original slice, and the
        // executor never requests overlapping item ranges concurrently.
        let sub = unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) };
        sub.chunks_mut(self.chunk)
    }
}

/// `par_iter`: items are `&T`.
pub struct IterSrc<'d, T> {
    data: &'d [T],
}

// SAFETY: shared borrows only.
unsafe impl<'d, T: Sync> TaskSource for IterSrc<'d, T> {
    type Item = &'d T;
    type TaskIter<'a>
        = std::slice::Iter<'d, T>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.data.len()
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        let lo = start.min(self.data.len());
        let hi = start.saturating_add(len).min(self.data.len());
        self.data[lo..hi].iter()
    }
}

/// `par_iter_mut`: items are `&mut T` of one exclusive slice.
pub struct IterMutSrc<'d, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'d mut [T]>,
}

// SAFETY: as for `ChunksMutSrc`.
unsafe impl<T: Send> Sync for IterMutSrc<'_, T> {}

// SAFETY: disjoint item ranges map to disjoint element windows.
unsafe impl<'d, T: Send> TaskSource for IterMutSrc<'d, T> {
    type Item = &'d mut T;
    type TaskIter<'a>
        = std::slice::IterMut<'d, T>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.len
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        let lo = start.min(self.len);
        let hi = start.saturating_add(len).min(self.len);
        // SAFETY: in-bounds, and ranges from the executor are disjoint.
        let sub = unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) };
        sub.iter_mut()
    }
}

/// `(a..b).into_par_iter()`.
pub struct RangeSrc {
    start: usize,
    len: usize,
}

// SAFETY: items are owned values.
unsafe impl TaskSource for RangeSrc {
    type Item = usize;
    type TaskIter<'a> = std::ops::Range<usize>;

    fn items(&self) -> usize {
        self.len
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        let lo = start.min(self.len);
        let hi = start.saturating_add(len).min(self.len);
        (self.start + lo)..(self.start + hi)
    }
}

// ---------------------------------------------------------------------
// Adaptors.
// ---------------------------------------------------------------------

pub struct MapSrc<S, F> {
    src: S,
    f: F,
}

// SAFETY: forwards ranges unchanged to the inner source.
unsafe impl<S, O, F> TaskSource for MapSrc<S, F>
where
    S: TaskSource,
    O: Send,
    F: Fn(S::Item) -> O + Sync,
{
    type Item = O;
    type TaskIter<'a>
        = std::iter::Map<S::TaskIter<'a>, &'a F>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.src.items()
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        self.src.task(start, len).map(&self.f)
    }
}

pub struct EnumerateSrc<S> {
    src: S,
}

pub struct EnumTaskIter<I> {
    inner: I,
    idx: usize,
}

impl<I: Iterator> Iterator for EnumTaskIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.idx;
        self.idx += 1;
        Some((i, item))
    }
}

// SAFETY: forwards ranges unchanged; indices are global item positions.
unsafe impl<S: TaskSource> TaskSource for EnumerateSrc<S> {
    type Item = (usize, S::Item);
    type TaskIter<'a>
        = EnumTaskIter<S::TaskIter<'a>>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.src.items()
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        EnumTaskIter {
            inner: self.src.task(start, len),
            idx: start,
        }
    }
}

pub struct ZipSrc<A, B> {
    a: A,
    b: B,
}

// SAFETY: forwards the same range to both sources.
unsafe impl<A: TaskSource, B: TaskSource> TaskSource for ZipSrc<A, B> {
    type Item = (A::Item, B::Item);
    type TaskIter<'a>
        = std::iter::Zip<A::TaskIter<'a>, B::TaskIter<'a>>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.a.items().min(self.b.items())
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        let len = len.min(self.items().saturating_sub(start));
        self.a.task(start, len).zip(self.b.task(start, len))
    }
}

pub struct FilterSrc<S, F> {
    src: S,
    f: F,
}

// SAFETY: forwards ranges unchanged (tasks simply yield fewer items).
unsafe impl<S, F> TaskSource for FilterSrc<S, F>
where
    S: TaskSource,
    F: Fn(&S::Item) -> bool + Sync,
{
    type Item = S::Item;
    type TaskIter<'a>
        = std::iter::Filter<S::TaskIter<'a>, &'a F>
    where
        Self: 'a;

    fn items(&self) -> usize {
        self.src.items()
    }

    fn task(&self, start: usize, len: usize) -> Self::TaskIter<'_> {
        self.src.task(start, len).filter(&self.f)
    }
}

// ---------------------------------------------------------------------
// Entry-point traits (the `prelude`).
// ---------------------------------------------------------------------

/// `into_par_iter()` for owned sources (ranges).
pub trait IntoParallelIterator {
    type Item: Send;
    type Source: TaskSource<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Source>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Source = RangeSrc;

    fn into_par_iter(self) -> Par<RangeSrc> {
        Par::new(RangeSrc {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

/// `par_iter()` by shared reference.
pub trait IntoParallelRefIterator<'d> {
    type Item: Send;
    type Source: TaskSource<Item = Self::Item>;
    fn par_iter(&'d self) -> Par<Self::Source>;
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
    type Item = &'d T;
    type Source = IterSrc<'d, T>;

    fn par_iter(&'d self) -> Par<IterSrc<'d, T>> {
        Par::new(IterSrc { data: self })
    }
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
    type Item = &'d T;
    type Source = IterSrc<'d, T>;

    fn par_iter(&'d self) -> Par<IterSrc<'d, T>> {
        Par::new(IterSrc { data: self })
    }
}

/// `par_iter_mut()` by exclusive reference.
pub trait IntoParallelRefMutIterator<'d> {
    type Item: Send;
    type Source: TaskSource<Item = Self::Item>;
    fn par_iter_mut(&'d mut self) -> Par<Self::Source>;
}

impl<'d, T: Send + 'd> IntoParallelRefMutIterator<'d> for [T] {
    type Item = &'d mut T;
    type Source = IterMutSrc<'d, T>;

    fn par_iter_mut(&'d mut self) -> Par<IterMutSrc<'d, T>> {
        Par::new(IterMutSrc {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }
}

impl<'d, T: Send + 'd> IntoParallelRefMutIterator<'d> for Vec<T> {
    type Item = &'d mut T;
    type Source = IterMutSrc<'d, T>;

    fn par_iter_mut(&'d mut self) -> Par<IterMutSrc<'d, T>> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksSrc<'_, T>>;
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutSrc<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksSrc<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Par::new(ChunksSrc {
            data: self,
            chunk: chunk_size,
        })
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutSrc<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        Par::new(ChunksMutSrc {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        })
    }
}
