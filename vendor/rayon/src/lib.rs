//! Multi-threaded drop-in replacement for the subset of [rayon] this
//! workspace uses.
//!
//! The build environment has no network access, so the real rayon
//! cannot be fetched from crates.io. Earlier revisions of this vendored
//! crate executed everything sequentially; this revision is a real
//! `std::thread` pool:
//!
//! * **Persistent workers.** A global pool is spawned on first use with
//!   one thread per core (override with `FRSZ2_NUM_THREADS` or
//!   `RAYON_NUM_THREADS`); explicitly-sized pools are available through
//!   [`ThreadPoolBuilder`] / [`ThreadPool::install`], matching rayon's
//!   API.
//! * **Chunk dealing.** Each parallel operation is cut into tasks that
//!   all threads (including the caller) claim through an atomic cursor,
//!   so irregular task costs are absorbed without idle threads — the
//!   self-scheduling analogue of work stealing for pre-split
//!   iterations.
//! * **Determinism.** Task boundaries are a function of the item count
//!   and the `with_min_len` hint only — never the thread count — and
//!   per-task results are combined in task order on the calling thread.
//!   Together with the workspace's fixed-chunk kernels this makes every
//!   result (including non-associative floating-point reductions)
//!   bit-identical at any thread count.
//!
//! Swapping the real rayon back in requires only a `Cargo.toml` change;
//! no source edits.
//!
//! [rayon]: https://crates.io/crates/rayon

mod iter;
mod pool;

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par, ParallelSlice,
    ParallelSliceMut, TaskSource,
};
pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn chunked_map_collect_matches_serial() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let serial: Vec<f64> = x.chunks(7).map(|c| c.iter().sum()).collect();
        for threads in [1, 4] {
            let partials: Vec<f64> =
                pool(threads).install(|| x.par_chunks(7).map(|c| c.iter().sum()).collect());
            assert_eq!(partials, serial, "{threads} threads");
        }
    }

    #[test]
    fn reduce_uses_identity() {
        let s = (0..10usize)
            .into_par_iter()
            .map(|i| i * 2)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 90);
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut y = vec![0usize; 10];
        y.par_chunks_mut(3).enumerate().for_each(|(b, c)| {
            for v in c {
                *v = b;
            }
        });
        assert_eq!(y, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn chunks_mut_writes_are_complete_and_disjoint_on_many_threads() {
        let n = 100_000;
        let mut y = vec![0u32; n];
        pool(8).install(|| {
            y.par_chunks_mut(64).enumerate().for_each(|(b, c)| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = (b * 64 + i) as u32;
                }
            });
        });
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, i as u32, "element {i}");
        }
    }

    #[test]
    fn float_reduce_is_bit_identical_across_thread_counts() {
        // Non-associative op: only fixed task boundaries make this pass.
        let x: Vec<f64> = (0..50_000).map(|i| ((i as f64) * 0.37).sin()).collect();
        let run = |threads: usize| -> f64 {
            pool(threads).install(|| x.par_iter().map(|v| v * 1.0000001).sum::<f64>())
        };
        let baseline = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(
                run(threads).to_bits(),
                baseline.to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn install_overrides_thread_count() {
        let p = pool(4);
        assert_eq!(p.current_num_threads(), 4);
        let (outer, inner) = p.install(|| {
            let outer = current_num_threads();
            let inner = pool(2).install(current_num_threads);
            (outer, inner)
        });
        assert_eq!(outer, 4);
        assert_eq!(inner, 2);
    }

    #[test]
    fn zip_filter_count_match_serial() {
        let a: Vec<u64> = (0..10_000).collect();
        let b: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        let par: Vec<u64> = pool(4).install(|| {
            a.par_iter()
                .zip(b.par_iter())
                .map(|(x, y)| x + y)
                .filter(|v| v % 7 == 0)
                .collect()
        });
        let ser: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x + y)
            .filter(|v| v % 7 == 0)
            .collect();
        assert_eq!(par, ser);
        let c = pool(3).install(|| a.par_iter().filter(|v| **v % 2 == 0).count());
        assert_eq!(c, 5000);
    }

    #[test]
    fn with_min_len_groups_without_changing_results() {
        let x: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let plain: f64 = pool(4).install(|| x.par_iter().sum());
        let grouped: f64 = pool(4).install(|| x.par_iter().with_min_len(1000).sum());
        // Different task boundaries may change float association, but
        // both must match their own 1-thread runs; for this integral
        // data both equal the exact sum anyway.
        assert_eq!(plain, grouped);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let p = pool(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("boom {i}");
                    }
                });
            })
        }));
        assert!(r.is_err(), "panic must cross the pool boundary");
        // The pool must still execute work afterwards.
        let s: usize = p.install(|| (0..100usize).into_par_iter().sum());
        assert_eq!(s, 4950);
    }

    #[test]
    fn join_returns_both_and_nests() {
        let p = pool(4);
        let (a, (b, c)) = p.install(|| join(|| 1 + 1, || join(|| "x", || vec![9u8; 3])));
        assert_eq!(a, 2);
        assert_eq!(b, "x");
        assert_eq!(c, vec![9u8; 3]);
    }

    #[test]
    fn scope_runs_all_spawns_including_nested() {
        let hits = AtomicUsize::new(0);
        pool(4).install(|| {
            scope(|s| {
                for _ in 0..10 {
                    s.spawn(|s| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn nested_parallel_ops_complete() {
        let p = pool(4);
        let total: usize = p.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| (0..100usize).into_par_iter().map(|j| i + j).sum::<usize>())
                .sum()
        });
        let expect: usize = (0..8).map(|i| (0..100).map(|j| i + j).sum::<usize>()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<f64> = Vec::new();
        let s: f64 = empty.par_iter().sum();
        assert_eq!(s, 0.0);
        let v: Vec<f64> = empty.par_chunks(8).map(|c| c.iter().sum()).collect();
        assert!(v.is_empty());
        let r = (0..0usize).into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(r, 7, "empty reduce yields the identity");
    }

    #[test]
    fn env_var_overrides_default_thread_count() {
        // `num_threads(0)` resolves the default at build time, which
        // reads the env vars — same resolution path as the global pool.
        std::env::set_var("FRSZ2_NUM_THREADS", "3");
        let p = ThreadPoolBuilder::new().build().unwrap();
        std::env::remove_var("FRSZ2_NUM_THREADS");
        assert_eq!(p.current_num_threads(), 3);
    }

    #[test]
    fn builder_zero_means_default_and_pool_reports_size() {
        let p = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(p.current_num_threads() >= 1);
        let p6 = pool(6);
        assert_eq!(p6.install(current_num_threads), 6);
    }
}
