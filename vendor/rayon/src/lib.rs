//! Sequential drop-in replacement for the subset of [rayon] this
//! workspace uses.
//!
//! The build environment has no network access, so the real rayon cannot
//! be fetched from crates.io. This stub keeps the call sites source- and
//! semantics-compatible: every "parallel" iterator is a thin wrapper over
//! the corresponding sequential `std` iterator, executed in order on the
//! calling thread. Because the workspace's kernels are written to be
//! *deterministic under any thread count* (fixed chunking, serial
//! reduction of partials), sequential execution produces bit-identical
//! results to a true parallel run — only wall-clock scaling is lost.
//!
//! Swapping the real rayon back in requires only a `Cargo.toml` change;
//! no source edits.
//!
//! [rayon]: https://crates.io/crates/rayon

/// Wrapper marking an iterator as "parallel". All adaptors delegate to
/// the underlying sequential iterator; `reduce` follows rayon's
/// `(identity, op)` signature rather than `std`'s.
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    #[inline]
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    #[inline]
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    #[inline]
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    #[inline]
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    #[inline]
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: `identity` produces the unit of `op`.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    #[inline]
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    #[inline]
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Rayon tuning hint; a no-op sequentially.
    #[inline]
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    #[inline]
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter()` / `par_iter_mut()` by reference.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<'a, C: 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_chunks` / `par_chunks_mut` on slices.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of "worker threads": always 1 in the sequential stub.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_map_collect_matches_serial() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let partials: Vec<f64> = x.par_chunks(7).map(|c| c.iter().sum()).collect();
        let total: f64 = partials.iter().sum();
        assert_eq!(total, x.iter().sum::<f64>());
    }

    #[test]
    fn reduce_uses_identity() {
        let s = (0..10usize)
            .into_par_iter()
            .map(|i| i * 2)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 90);
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut y = vec![0usize; 10];
        y.par_chunks_mut(3).enumerate().for_each(|(b, c)| {
            for v in c {
                *v = b;
            }
        });
        assert_eq!(y, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
