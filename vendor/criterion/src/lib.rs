//! Lightweight timing harness with the [criterion] API surface this
//! workspace's benches use.
//!
//! The build environment cannot reach crates.io, so this stub replaces
//! the real criterion. It keeps the bench sources unchanged and
//! measures honestly — median of timed samples after a warm-up — but
//! drops criterion's statistics engine, HTML reports, and CLI. Output
//! is one line per benchmark: `name  time/iter  [throughput]`.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation used to derive rates from iteration time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `samples` timed calls; the
    /// median per-call time is recorded for the group's report line.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.effective_samples(),
            median: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.id, b.median);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.effective_samples(),
            median: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.id, b.median);
        self
    }

    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        self.sample_size.min(self.criterion.max_samples)
    }

    fn report(&self, id: &str, per_iter: Duration) {
        if per_iter.is_zero() {
            // The bench closure never called `Bencher::iter`.
            println!("{}/{:<40} (no measurement)", self.name, id);
            return;
        }
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                let gib = n as f64 / (1u64 << 30) as f64;
                format!("  {:>10.3} GiB/s", gib / per_iter.as_secs_f64())
            }
            Some(Throughput::Elements(n)) => {
                let ge = n as f64 / 1e9;
                format!("  {:>10.3} Gelem/s", ge / per_iter.as_secs_f64())
            }
            None => String::new(),
        };
        println!("{}/{:<40} {:>12.3?}/iter{}", self.name, id, per_iter, rate);
    }
}

/// Top-level driver (subset: benchmark groups only).
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep stub runs quick: cap samples regardless of group settings.
        Criterion { max_samples: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }
}

/// Bundle benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group; bench targets set `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1 << 20));
        g.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &p| {
            b.iter(|| p * 2);
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("compress", 21).id, "compress/21");
        assert_eq!(BenchmarkId::from_parameter("float64").id, "float64");
    }
}
