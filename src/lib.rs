//! Umbrella crate for the FRSZ2 / CB-GMRES reproduction workspace.
//!
//! Re-exports the public surface of every workspace crate so the examples
//! and integration tests can reach the whole system through one dependency.
//!
//! The individual crates are:
//! - [`frsz2`] — the FRSZ2 fixed-rate block-floating-point codec (the
//!   paper's contribution).
//! - [`numfmt`] — software `binary16`/`bfloat16` plus the Ginkgo-style
//!   accessor abstraction decoupling storage from arithmetic format.
//! - [`spla`] — sparse linear algebra: CSR/COO, parallel SpMV, the
//!   synthetic SuiteSparse analogue suite, dense vector kernels.
//! - [`lossy`] — SZ-, SZ3- and ZFP-style lossy compressors used as
//!   comparison baselines (Table II of the paper).
//! - [`gpusim`] — warp-level GPU execution simulator + H100 roofline cost
//!   model standing in for the paper's CUDA kernels.
//! - [`krylov`] — restarted GMRES / CB-GMRES with pluggable Krylov basis
//!   storage.
//! - [`solver_service`] — long-lived concurrent solver front end with
//!   operator caching, admission control and per-cycle telemetry.
//!
//! See `ARCHITECTURE.md` at the repository root for how the crates fit
//! together.

pub use frsz2;
pub use gpusim;
pub use krylov;
pub use lossy;
pub use numfmt;
pub use solver_service;
pub use spla;
