//! Precision-cast "compressors": the original CB-GMRES storage formats
//! expressed through the [`Compressor`] interface, so the shoot-out
//! binaries can compare every technique uniformly.

use crate::Compressor;
use numfmt::F16;

/// Cast to IEEE binary32 (the paper's `float32` storage).
#[derive(Clone, Copy, Debug, Default)]
pub struct CastF32;

impl Compressor for CastF32 {
    fn name(&self) -> String {
        "cast_float32".into()
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        data.iter()
            .flat_map(|&v| (v as f32).to_le_bytes())
            .collect()
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap()) as f64)
            .collect()
    }
}

/// Cast to IEEE binary16 (the paper's `float16` storage).
#[derive(Clone, Copy, Debug, Default)]
pub struct CastF16;

impl Compressor for CastF16 {
    fn name(&self) -> String {
        "cast_float16".into()
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        data.iter()
            .flat_map(|&v| F16::from_f64(v).to_bits().to_le_bytes())
            .collect()
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                F16::from_bits(u16::from_le_bytes(
                    bytes[i * 2..i * 2 + 2].try_into().unwrap(),
                ))
                .to_f64()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_cast_rate_and_error() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let c = CastF32;
        assert_eq!(c.bits_per_value(&data), 32.0);
        let out = c.decompress(&c.compress(&data), 100);
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(*b, *a as f32 as f64);
        }
    }

    #[test]
    fn f16_cast_rate_and_error() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let c = CastF16;
        assert_eq!(c.bits_per_value(&data), 16.0);
        let out = c.decompress(&c.compress(&data), 100);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= a.abs() * f64::powi(2.0, -11) + 1e-8);
        }
    }
}
