//! ZFP-style fixed-rate / fixed-accuracy block compressor (Lindstrom \[6\]).
//!
//! 1-D variant of the zfp pipeline on blocks of 4 values:
//!
//! 1. block-floating-point conversion: scale all 4 values by the block's
//!    maximum exponent into 62-bit integers,
//! 2. the zfp lifting transform (a near-orthogonal integer transform —
//!    the decorrelation stage §III-A predicts to be *counterproductive*
//!    on uncorrelated Krylov data),
//! 3. negabinary mapping so magnitude ordering survives sign mixing,
//! 4. embedded (group-tested) bit-plane coding from the most significant
//!    plane down, truncated by either a bit budget (fixed rate, the
//!    `zfp_fr_16`/`zfp_fr_32` rows of Table II) or a tolerance-derived
//!    plane cutoff (fixed accuracy, `zfp_06`/`zfp_10`).
//!
//! Fixed-rate streams are *exactly* `4·rate` bits per block, which is
//! what lets the paper compare `zfp_fr_32` against `float32` at equal
//! memory footprint.

use crate::bitstream::{BitReader, BitWriter};
use crate::Compressor;

const BLOCK: usize = 4;
/// Block-float integers occupy 60 bits (|i| < 2^60); the lifting
/// transform can grow coefficients by up to 2x and negabinary needs one
/// more bit, so planes run from 63 down.
const TOP_PLANE: i32 = 63;
const NB_MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Truncation policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ZfpMode {
    /// Exactly `rate` bits per value (`4·rate` per block, header included).
    FixedRate(u32),
    /// Absolute error tolerance.
    FixedAccuracy(f64),
}

/// The compressor.
#[derive(Clone, Copy, Debug)]
pub struct ZfpCompressor {
    mode: ZfpMode,
}

impl ZfpCompressor {
    /// # Panics
    /// On a zero rate, a rate above 64 bits/value, or a non-positive
    /// tolerance.
    pub fn new(mode: ZfpMode) -> Self {
        match mode {
            ZfpMode::FixedRate(r) => {
                assert!((4..=64).contains(&r), "rate must be in 4..=64 bits/value")
            }
            ZfpMode::FixedAccuracy(t) => {
                assert!(t > 0.0 && t.is_finite(), "invalid tolerance {t}")
            }
        }
        ZfpCompressor { mode }
    }

    pub fn mode(&self) -> ZfpMode {
        self.mode
    }
}

/// zfp's forward lifting transform (1-D, 4 values).
#[inline]
fn fwd_lift(p: &mut [i64; 4]) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[1], p[2], p[3]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    *p = [x, y, z, w];
}

/// zfp's inverse lifting transform.
#[inline]
fn inv_lift(p: &mut [i64; 4]) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[1], p[2], p[3]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    *p = [x, y, z, w];
}

/// Signed integer -> negabinary.
#[inline]
fn to_negabinary(i: i64) -> u64 {
    ((i as u64).wrapping_add(NB_MASK)) ^ NB_MASK
}

/// Negabinary -> signed integer.
#[inline]
fn from_negabinary(u: u64) -> i64 {
    ((u ^ NB_MASK).wrapping_sub(NB_MASK)) as i64
}

/// Unbiased exponent of the largest magnitude in the block (0 for an
/// all-zero block, flagged separately).
fn block_exponent(vals: &[f64]) -> i32 {
    let mx = vals.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if mx == 0.0 {
        return i32::MIN;
    }
    ((mx.to_bits() >> 52) & 0x7FF) as i32 - 1023
}

/// Exact `2^e` covering the full double range (subnormals included).
fn exp2i(e: i32) -> f64 {
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

/// Lowest encoded plane for a tolerance, given the block exponent:
/// coefficient ULP at plane `p` is `2^(e − 59 + p)`; keep a 3-plane
/// margin for transform gain and truncation accumulation.
fn min_plane(tolerance: f64, e: i32) -> i32 {
    if e == i32::MIN {
        return TOP_PLANE + 1; // all-zero block: nothing to encode
    }
    let tol_exp = tolerance.log2().floor() as i32;
    (tol_exp - (e - 59) - 3).clamp(0, TOP_PLANE + 1)
}

/// Encode one block. In fixed-rate mode writes exactly `budget` bits.
fn encode_block(vals: &[f64; 4], mode: ZfpMode, w: &mut BitWriter) {
    let e = block_exponent(vals);
    let (budget, pmin): (usize, i32) = match mode {
        ZfpMode::FixedRate(r) => ((r as usize) * BLOCK, 0),
        ZfpMode::FixedAccuracy(t) => (usize::MAX, min_plane(t, e)),
    };
    let mut bits_used = 0usize;

    // Header: zero-block flag (1) + 12-bit biased exponent when nonzero.
    if e == i32::MIN {
        w.write_bit(false);
        bits_used += 1;
        pad(w, budget.saturating_sub(bits_used), mode);
        return;
    }
    w.write_bit(true);
    w.write_bits((e + 1023) as u64, 12);
    bits_used += 13;

    // Block-float conversion: x / 2^e ∈ (-2, 2) scaled to 60 bits.
    let scale = exp2i(59 - e);
    let mut ints = [0i64; 4];
    for (i, &v) in vals.iter().enumerate() {
        ints[i] = (v * scale).round() as i64;
    }
    fwd_lift(&mut ints);
    let neg: Vec<u64> = ints.iter().map(|&i| to_negabinary(i)).collect();

    // Embedded coding: group-tested bit planes from the top.
    let mut m = 0usize; // values already known significant
    'planes: for p in (pmin..=TOP_PLANE).rev() {
        for &nb in neg.iter().take(m) {
            if bits_used >= budget {
                break 'planes;
            }
            w.write_bit((nb >> p) & 1 == 1);
            bits_used += 1;
        }
        while m < BLOCK {
            if bits_used >= budget {
                break 'planes;
            }
            // Group test: any not-yet-significant value with this bit set?
            let any = neg[m..].iter().any(|&nb| (nb >> p) & 1 == 1);
            w.write_bit(any);
            bits_used += 1;
            if !any {
                break;
            }
            // Emit bits until the first newly-significant value appears.
            while m < BLOCK {
                if bits_used >= budget {
                    break 'planes;
                }
                let bit = (neg[m] >> p) & 1 == 1;
                w.write_bit(bit);
                bits_used += 1;
                m += 1;
                if bit {
                    break;
                }
            }
        }
    }
    pad(w, budget.saturating_sub(bits_used), mode);
}

/// Fixed-rate blocks are padded to their exact budget.
fn pad(w: &mut BitWriter, missing: usize, mode: ZfpMode) {
    if let ZfpMode::FixedRate(_) = mode {
        for _ in 0..missing {
            w.write_bit(false);
        }
    }
}

/// Decode one block (mirrors `encode_block` decision for decision).
fn decode_block(mode: ZfpMode, r: &mut BitReader) -> [f64; 4] {
    let start = r.bit_pos();
    let budget = match mode {
        ZfpMode::FixedRate(rate) => (rate as usize) * BLOCK,
        ZfpMode::FixedAccuracy(_) => usize::MAX,
    };
    let mut bits_used = 1usize;
    let nonzero = r.read_bit();
    if !nonzero {
        skip_to(r, start, budget, mode);
        return [0.0; 4];
    }
    let e = r.read_bits(12) as i32 - 1023;
    bits_used += 12;
    let pmin = match mode {
        ZfpMode::FixedRate(_) => 0,
        ZfpMode::FixedAccuracy(t) => min_plane(t, e),
    };

    let mut neg = [0u64; 4];
    let mut m = 0usize;
    'planes: for p in (pmin..=TOP_PLANE).rev() {
        for nb in neg.iter_mut().take(m) {
            if bits_used >= budget {
                break 'planes;
            }
            if r.read_bit() {
                *nb |= 1 << p;
            }
            bits_used += 1;
        }
        while m < BLOCK {
            if bits_used >= budget {
                break 'planes;
            }
            let any = r.read_bit();
            bits_used += 1;
            if !any {
                break;
            }
            while m < BLOCK {
                if bits_used >= budget {
                    break 'planes;
                }
                let bit = r.read_bit();
                bits_used += 1;
                if bit {
                    neg[m] |= 1 << p;
                    m += 1;
                    break;
                }
                m += 1;
            }
        }
    }
    skip_to(r, start, budget, mode);

    let mut ints = [0i64; 4];
    for (i, &nb) in neg.iter().enumerate() {
        ints[i] = from_negabinary(nb);
    }
    inv_lift(&mut ints);
    let inv_scale = exp2i(e - 59);
    let mut out = [0.0; 4];
    for (o, &i) in out.iter_mut().zip(&ints) {
        *o = i as f64 * inv_scale;
    }
    out
}

/// Advance the reader to the end of a fixed-rate block.
fn skip_to(r: &mut BitReader, start: usize, budget: usize, mode: ZfpMode) {
    if let ZfpMode::FixedRate(_) = mode {
        let end = start + budget;
        while r.bit_pos() < end {
            r.read_bit();
        }
    }
}

impl Compressor for ZfpCompressor {
    fn name(&self) -> String {
        match self.mode {
            ZfpMode::FixedRate(r) => format!("zfp_fr_{r}"),
            ZfpMode::FixedAccuracy(t) => format!("zfp_abs_{t:e}"),
        }
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for chunk in data.chunks(BLOCK) {
            let mut block = [0.0; 4];
            block[..chunk.len()].copy_from_slice(chunk);
            encode_block(&block, self.mode, &mut w);
        }
        w.into_bytes()
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        let mut r = BitReader::new(bytes);
        let mut out = Vec::with_capacity(n + BLOCK);
        while out.len() < n {
            out.extend_from_slice(&decode_block(self.mode, &mut r));
        }
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_roundtrip_within_one_lsb() {
        // The zfp transform pair is exact except for one floor division
        // in the lowest bit of x.
        let cases = [
            [0i64, 0, 0, 0],
            [1 << 40, -(1 << 39), 12345, -987654321],
            [(1 << 60) - 1, -(1 << 60), 7, -7],
        ];
        for c in cases {
            let mut p = c;
            fwd_lift(&mut p);
            inv_lift(&mut p);
            for i in 0..4 {
                assert!(
                    (p[i] - c[i]).abs() <= 2,
                    "lift roundtrip off by {} at {i} for {c:?}",
                    p[i] - c[i]
                );
            }
        }
    }

    #[test]
    fn negabinary_bijective() {
        for i in [-5i64, -1, 0, 1, 7, 1 << 45, -(1 << 45), i64::MAX / 4] {
            assert_eq!(from_negabinary(to_negabinary(i)), i);
        }
    }

    #[test]
    fn fixed_rate_size_is_exact() {
        for rate in [8u32, 16, 32, 64] {
            let c = ZfpCompressor::new(ZfpMode::FixedRate(rate));
            for n in [4usize, 16, 100, 1001] {
                let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin()).collect();
                let bytes = c.compress(&data);
                let blocks = n.div_ceil(4);
                assert_eq!(
                    bytes.len() * 8,
                    (blocks * 4 * rate as usize).div_ceil(8) * 8,
                    "rate {rate}, n {n}"
                );
            }
        }
    }

    #[test]
    fn fixed_accuracy_bound_holds() {
        let data: Vec<f64> = (0..4096)
            .map(|i| ((i * 2654435761u64 as usize) % 999983) as f64 / 499991.5 - 1.0)
            .collect();
        for tol in [1.4e-6, 4.0e-10, 1e-3] {
            let c = ZfpCompressor::new(ZfpMode::FixedAccuracy(tol));
            let out = c.decompress(&c.compress(&data), data.len());
            for (i, (a, b)) in data.iter().zip(&out).enumerate() {
                assert!(
                    (a - b).abs() <= tol,
                    "tol={tol} i={i}: |{a} - {b}| = {}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn fixed_rate_64_nearly_lossless() {
        let data: Vec<f64> = (0..256).map(|i| (i as f64 * 0.37).sin()).collect();
        let c = ZfpCompressor::new(ZfpMode::FixedRate(64));
        let out = c.decompress(&c.compress(&data), data.len());
        for (a, b) in data.iter().zip(&out) {
            // 64 bits/value leaves ~50+ significant bits after headers.
            assert!((a - b).abs() <= a.abs().max(1e-30) * 1e-12);
        }
    }

    #[test]
    fn higher_rate_is_more_accurate() {
        let data: Vec<f64> = (0..1024).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let err = |rate| {
            let c = ZfpCompressor::new(ZfpMode::FixedRate(rate));
            let out = c.decompress(&c.compress(&data), data.len());
            data.iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let (e8, e16, e32) = (err(8), err(16), err(32));
        assert!(e32 < e16, "rate 32 ({e32}) must beat rate 16 ({e16})");
        assert!(e16 < e8, "rate 16 ({e16}) must beat rate 8 ({e8})");
    }

    #[test]
    fn zero_blocks_are_cheap_in_accuracy_mode() {
        let mut data = vec![0.0; 4000];
        data[0] = 1.0; // one nonzero block
        let c = ZfpCompressor::new(ZfpMode::FixedAccuracy(1e-9));
        let bytes = c.compress(&data);
        // 999 zero blocks cost 1 bit each.
        assert!(
            bytes.len() < 200,
            "zero blocks should be ~1 bit, got {} bytes",
            bytes.len()
        );
        let out = c.decompress(&bytes, data.len());
        assert!((out[0] - 1.0).abs() <= 1e-9);
        assert!(out[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn partial_trailing_block() {
        let data = vec![0.5, -0.25, 0.125];
        let c = ZfpCompressor::new(ZfpMode::FixedAccuracy(1e-12));
        let out = c.decompress(&c.compress(&data), 3);
        assert_eq!(out.len(), 3);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= 1e-12);
        }
    }
}
