//! Error-bounded linear quantization (the SZ-family quantization stage).
//!
//! A prediction residual `x − pred` is mapped to an integer code on a
//! `2·eps` lattice so the reconstruction error never exceeds `eps`.
//! Residuals outside the code window are "unpredictable" and stored
//! verbatim — SZ's escape mechanism, which is exactly the space-overhead
//! failure mode §III-A footnote 2 warns about on uncorrelated data.

/// Half-width of the symmetric code window. Codes live in
/// `[-WINDOW, WINDOW]`; symbol 0 is reserved for "unpredictable".
pub const WINDOW: i64 = (1 << 24) - 1;

/// Quantize `x` against `pred` with bound `eps`. Returns the code, or
/// `None` if out of window (store raw).
#[inline]
pub fn quantize(x: f64, pred: f64, eps: f64) -> Option<i64> {
    debug_assert!(eps > 0.0);
    let code = ((x - pred) / (2.0 * eps)).round();
    if !code.is_finite() || code.abs() > WINDOW as f64 {
        return None;
    }
    let code = code as i64;
    // Guard against rounding pathologies: verify the bound actually holds.
    if (reconstruct(pred, code, eps) - x).abs() <= eps {
        Some(code)
    } else {
        None
    }
}

/// Inverse of [`quantize`].
#[inline]
pub fn reconstruct(pred: f64, code: i64, eps: f64) -> f64 {
    pred + 2.0 * eps * code.wrapping_mul(1) as f64
}

/// Map a signed code to the unsigned Huffman symbol space:
/// 0 is reserved, code c -> zigzag(c) + 1.
#[inline]
pub fn code_to_symbol(code: i64) -> u32 {
    let zz = ((code << 1) ^ (code >> 63)) as u64; // zigzag
    (zz + 1) as u32
}

/// Inverse of [`code_to_symbol`] (symbol must be >= 1).
#[inline]
pub fn symbol_to_code(sym: u32) -> i64 {
    let zz = (sym - 1) as u64;
    ((zz >> 1) as i64) ^ -((zz & 1) as i64)
}

/// Reserved symbol marking an unpredictable (raw-stored) value.
pub const UNPREDICTABLE: u32 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_respects_bound() {
        let eps = 1e-3;
        for i in 0..1000 {
            let x = (i as f64 * 0.137).sin();
            let pred = (i as f64 * 0.131).sin();
            if let Some(c) = quantize(x, pred, eps) {
                let rec = reconstruct(pred, c, eps);
                assert!((rec - x).abs() <= eps, "x={x} pred={pred}");
            }
        }
    }

    #[test]
    fn exact_prediction_gives_code_zero() {
        assert_eq!(quantize(1.5, 1.5, 1e-6), Some(0));
        assert_eq!(reconstruct(1.5, 0, 1e-6), 1.5);
    }

    #[test]
    fn out_of_window_returns_none() {
        assert_eq!(quantize(1e12, 0.0, 1e-9), None);
        assert_eq!(quantize(f64::MAX, -f64::MAX, 1.0), None);
    }

    #[test]
    fn zigzag_symbol_mapping_bijective() {
        for c in [-100i64, -3, -1, 0, 1, 2, 77, WINDOW, -WINDOW] {
            let s = code_to_symbol(c);
            assert_ne!(s, UNPREDICTABLE);
            assert_eq!(symbol_to_code(s), c, "code {c}");
        }
        // Small codes get small symbols (good for Huffman).
        assert_eq!(code_to_symbol(0), 1);
        assert_eq!(code_to_symbol(-1), 2);
        assert_eq!(code_to_symbol(1), 3);
    }
}
