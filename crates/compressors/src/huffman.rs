//! Canonical Huffman coding for quantization-code streams.
//!
//! SZ and SZ3 owe most of their compression ratio to entropy-coding the
//! quantization codes; using a real Huffman stage (rather than a size
//! estimate) makes the bits-per-value numbers in Figs. 5/6 honest.

use crate::bitstream::{BitReader, BitWriter};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Maximum canonical code length we accept (f64 streams of < 2^40
/// symbols cannot exceed this with the heap construction below).
const MAX_LEN: u32 = 56;

/// Compute canonical code lengths from symbol frequencies.
fn code_lengths(freqs: &HashMap<u32, u64>) -> HashMap<u32, u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut symbols: Vec<(u32, u64)> = freqs.iter().map(|(&s, &f)| (s, f)).collect();
    symbols.sort_unstable();
    if symbols.is_empty() {
        return HashMap::new();
    }
    if symbols.len() == 1 {
        return HashMap::from([(symbols[0].0, 1)]);
    }

    // Internal tree: children[id] for internal nodes, leaves first.
    let n = symbols.len();
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Node> = symbols
        .iter()
        .enumerate()
        .map(|(id, &(_, f))| Node { weight: f, id })
        .collect();
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }

    symbols
        .iter()
        .enumerate()
        .map(|(mut id, &(s, _))| {
            let mut len = 0u32;
            while parent[id] != usize::MAX {
                id = parent[id];
                len += 1;
            }
            (s, len.min(MAX_LEN))
        })
        .collect()
}

/// Assign canonical codes (shorter lengths first, ties by symbol value).
fn canonical_codes(lengths: &HashMap<u32, u32>) -> Vec<(u32, u32, u64)> {
    // (symbol, length, code), sorted by (length, symbol).
    let mut order: Vec<(u32, u32)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
    order.sort_unstable_by_key(|&(s, l)| (l, s));
    let mut codes = Vec::with_capacity(order.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for (s, l) in order {
        code <<= l - prev_len;
        codes.push((s, l, code));
        code += 1;
        prev_len = l;
    }
    codes
}

/// Encode `symbols` into `w`: a self-describing table followed by codes.
pub fn encode(symbols: &[u32], w: &mut BitWriter) {
    let mut freqs = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0u64) += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    // Table: distinct-symbol count, then (symbol:32, length:6) pairs.
    w.write_bits(codes.len() as u64, 32);
    for &(s, l, _) in &codes {
        w.write_bits(s as u64, 32);
        w.write_bits(l as u64, 6);
    }
    // Payload: symbol count then the codes (canonical codes are written
    // MSB-first so prefix decoding works on the LSB-first stream).
    w.write_bits(symbols.len() as u64, 40);
    let table: HashMap<u32, (u32, u64)> = codes.iter().map(|&(s, l, c)| (s, (l, c))).collect();
    for &s in symbols {
        let (l, c) = table[&s];
        for b in (0..l).rev() {
            w.write_bit((c >> b) & 1 == 1);
        }
    }
}

/// Decode a stream produced by [`encode`].
pub fn decode(r: &mut BitReader) -> Vec<u32> {
    let distinct = r.read_bits(32) as usize;
    let mut lengths = HashMap::with_capacity(distinct);
    for _ in 0..distinct {
        let s = r.read_bits(32) as u32;
        let l = r.read_bits(6) as u32;
        lengths.insert(s, l);
    }
    let codes = canonical_codes(&lengths);
    // first_code[len], first_index[len] for canonical decoding.
    let max_len = codes.iter().map(|&(_, l, _)| l).max().unwrap_or(0);
    let mut first_code = vec![u64::MAX; (max_len + 2) as usize];
    let mut first_idx = vec![0usize; (max_len + 2) as usize];
    for (i, &(_, l, c)) in codes.iter().enumerate() {
        if first_code[l as usize] == u64::MAX {
            first_code[l as usize] = c;
            first_idx[l as usize] = i;
        }
    }
    // count per length for range checks
    let mut count = vec![0usize; (max_len + 2) as usize];
    for &(_, l, _) in &codes {
        count[l as usize] += 1;
    }

    let n = r.read_bits(40) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            code = (code << 1) | r.read_bit() as u64;
            len += 1;
            debug_assert!(len <= max_len, "corrupt Huffman stream");
            let fc = first_code[len as usize];
            if fc != u64::MAX && code >= fc && code < fc + count[len as usize] as u64 {
                let idx = first_idx[len as usize] + (code - fc) as usize;
                out.push(codes[idx].0);
                break;
            }
            if len >= max_len {
                // Corrupt stream in release builds: bail out with what we
                // have rather than spinning forever.
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) -> Vec<u32> {
        let mut w = BitWriter::new();
        encode(symbols, &mut w);
        let bytes = w.into_bytes();
        decode(&mut BitReader::new(&bytes))
    }

    #[test]
    fn roundtrip_simple() {
        let data = vec![1, 2, 2, 3, 3, 3, 3, 1, 2, 3];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_single_symbol() {
        let data = vec![42; 1000];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(roundtrip(&[]), Vec::<u32>::new());
    }

    #[test]
    fn roundtrip_many_distinct() {
        let data: Vec<u32> = (0..5000).map(|i| (i * i) % 257).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 95% zeros: entropy ~0.3 bits/symbol; Huffman gets ~1 bit.
        let data: Vec<u32> = (0..20_000)
            .map(|i| if i % 20 == 0 { i as u32 % 7 + 1 } else { 0 })
            .collect();
        let mut w = BitWriter::new();
        encode(&data, &mut w);
        let bits = w.bit_len();
        let bpv = bits as f64 / data.len() as f64;
        assert!(
            bpv < 2.0,
            "expected < 2 bits/symbol on skewed data, got {bpv}"
        );
        // And it still round-trips.
        let bytes = w.into_bytes();
        assert_eq!(decode(&mut BitReader::new(&bytes)), data);
    }

    #[test]
    fn uniform_distribution_near_log2() {
        let data: Vec<u32> = (0..4096).map(|i| i as u32 % 16).collect();
        let mut w = BitWriter::new();
        encode(&data, &mut w);
        let bpv = w.bit_len() as f64 / data.len() as f64;
        // 16 equiprobable symbols need 4 bits each (+ table overhead).
        assert!(bpv < 4.3, "got {bpv}");
        assert!(bpv >= 4.0);
    }

    #[test]
    fn deterministic_encoding() {
        let data: Vec<u32> = (0..1000).map(|i| (i * 7) as u32 % 31).collect();
        let mut w1 = BitWriter::new();
        let mut w2 = BitWriter::new();
        encode(&data, &mut w1);
        encode(&data, &mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }
}
