//! LSB-first bit stream over a byte buffer.
//!
//! Shared encoding substrate for the Huffman stage and the ZFP-style
//! bit-plane coder.

/// Append-only bit writer.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits used in the last byte (0 = byte boundary).
    used: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Write the low `n` bits of `v` (`n <= 64`).
    pub fn write_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        debug_assert!(n == 64 || v < (1u64 << n), "value wider than field");
        let mut v = v;
        let mut remaining = n;
        while remaining > 0 {
            if self.used == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(remaining);
            let byte = self.buf.last_mut().unwrap();
            *byte |= ((v & ((1u64 << take) - 1)) as u8) << self.used;
            v >>= take;
            self.used = (self.used + take) % 8;
            remaining -= take;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8
            - if self.used == 0 {
                0
            } else {
                (8 - self.used) as usize
            }
    }

    /// Finish and return the byte buffer (trailing bits zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential bit reader.
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read `n` bits (`n <= 64`). Reading past the end yields zeros
    /// (streams are zero-padded by the writer).
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte = self.buf.get(self.pos / 8).copied().unwrap_or(0);
            let off = (self.pos % 8) as u32;
            let avail = 8 - off;
            let take = avail.min(n - got);
            let bits = ((byte >> off) as u64) & ((1u64 << take) - 1);
            out |= bits << got;
            got += take;
            self.pos += take as usize;
        }
        out
    }

    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.read_bits(1) != 0
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bit(false);
        w.write_bit(true);
        w.write_bits(0xDEAD_BEEF_CAFE_0123, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(16), 0xFFFF);
        assert!(!r.read_bit());
        assert!(r.read_bit());
        assert_eq!(r.read_bits(64), 0xDEAD_BEEF_CAFE_0123);
    }

    #[test]
    fn bit_len_tracks_exactly() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(3, 2);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn reading_past_end_returns_zeros() {
        let bytes = vec![0xFF];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(16), 0);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }
}
