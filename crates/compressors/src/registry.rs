//! Table II: the compressor configurations evaluated in the paper.
//!
//! | name          | error-bound type | bound     |
//! |---------------|------------------|-----------|
//! | sz3_06        | absolute         | 1e-06     |
//! | sz3_07        | absolute         | 1e-07     |
//! | sz3_08        | absolute         | 1e-08     |
//! | zfp_06        | absolute         | 1.4e-06   |
//! | zfp_10        | absolute         | 4.0e-10   |
//! | sz_pwrel_04   | relative         | 1e-04     |
//! | sz3_pwrel_04  | relative         | 1e-04     |
//! | zfp_fr_16     | fixed rate       | 16 bits   |
//! | zfp_fr_32     | fixed rate       | 32 bits   |
//!
//! `sz_06/07/08` (absolute-bound SZ, referenced in the Fig. 5 text) are
//! also registered.

use crate::pwrel::{PwrelCompressor, PwrelFamily};
use crate::sz::SzCompressor;
use crate::sz3::Sz3Compressor;
use crate::zfp::{ZfpCompressor, ZfpMode};
use crate::Compressor;
use std::sync::Arc;

/// One Table II row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigInfo {
    pub name: &'static str,
    pub bound_type: &'static str,
    pub bound: &'static str,
}

/// Table II of the paper, verbatim.
pub const TABLE_TWO: [ConfigInfo; 9] = [
    ConfigInfo {
        name: "sz3_06",
        bound_type: "absolute",
        bound: "1e-06",
    },
    ConfigInfo {
        name: "sz3_07",
        bound_type: "absolute",
        bound: "1e-07",
    },
    ConfigInfo {
        name: "sz3_08",
        bound_type: "absolute",
        bound: "1e-08",
    },
    ConfigInfo {
        name: "zfp_06",
        bound_type: "absolute",
        bound: "1.4e-06",
    },
    ConfigInfo {
        name: "zfp_10",
        bound_type: "absolute",
        bound: "4.0e-10",
    },
    ConfigInfo {
        name: "sz_pwrel_04",
        bound_type: "relative",
        bound: "1e-04",
    },
    ConfigInfo {
        name: "sz3_pwrel_04",
        bound_type: "relative",
        bound: "1e-04",
    },
    ConfigInfo {
        name: "zfp_fr_16",
        bound_type: "fixed rate",
        bound: "16 bits",
    },
    ConfigInfo {
        name: "zfp_fr_32",
        bound_type: "fixed rate",
        bound: "32 bits",
    },
];

/// Instantiate a codec by its Table II name (plus the `sz_0X` absolute
/// variants mentioned in the Fig. 5 discussion). Returns `None` for
/// unknown names.
pub fn by_name(name: &str) -> Option<Arc<dyn Compressor>> {
    Some(match name {
        "sz_06" => Arc::new(SzCompressor::new(1e-6)),
        "sz_07" => Arc::new(SzCompressor::new(1e-7)),
        "sz_08" => Arc::new(SzCompressor::new(1e-8)),
        "sz3_06" => Arc::new(Sz3Compressor::new(1e-6)),
        "sz3_07" => Arc::new(Sz3Compressor::new(1e-7)),
        "sz3_08" => Arc::new(Sz3Compressor::new(1e-8)),
        "zfp_06" => Arc::new(ZfpCompressor::new(ZfpMode::FixedAccuracy(1.4e-6))),
        "zfp_10" => Arc::new(ZfpCompressor::new(ZfpMode::FixedAccuracy(4.0e-10))),
        "sz_pwrel_04" => Arc::new(PwrelCompressor::new(PwrelFamily::Sz, 1e-4)),
        "sz3_pwrel_04" => Arc::new(PwrelCompressor::new(PwrelFamily::Sz3, 1e-4)),
        "zfp_fr_16" => Arc::new(ZfpCompressor::new(ZfpMode::FixedRate(16))),
        "zfp_fr_32" => Arc::new(ZfpCompressor::new(ZfpMode::FixedRate(32))),
        _ => return None,
    })
}

/// All registered names (Table II order first).
pub fn names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = TABLE_TWO.iter().map(|c| c.name).collect();
    v.extend(["sz_06", "sz_07", "sz_08"]);
    v
}

/// Worst-case absolute error a codec may introduce into a unit-scale
/// value (`|x| ≤ 1`, the Krylov-basis regime: columns are unit-norm).
///
/// This is the storage-accuracy floor the adaptive-precision solver
/// uses to order codecs against the FRSZ2/cast escalation ladder:
/// absolute-bound codecs report their bound verbatim, pointwise-relative
/// codecs their bound (which at `|x| = 1` is the absolute error), and
/// fixed-rate ZFP the precision its kept bit planes achieve in *this*
/// implementation (~10 effective significand bits at 16 bits/value,
/// ~26 at 32), pinned to measured round-trip error by
/// `accuracy_floor_is_an_actual_bound_on_unit_scale_roundtrips`.
/// Returns `None` for unknown names.
pub fn accuracy_floor(name: &str) -> Option<f64> {
    Some(match name {
        "sz_06" | "sz3_06" => 1e-6,
        "sz_07" | "sz3_07" => 1e-7,
        "sz_08" | "sz3_08" => 1e-8,
        "zfp_06" => 1.4e-6,
        "zfp_10" => 4.0e-10,
        "sz_pwrel_04" | "sz3_pwrel_04" => 1e-4,
        "zfp_fr_16" => f64::powi(2.0, -10),
        "zfp_fr_32" => f64::powi(2.0, -26),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_instantiates_and_roundtrips() {
        let data: Vec<f64> = (0..256).map(|i| (i as f64 * 0.43).sin() * 0.1).collect();
        for name in names() {
            let c = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            let out = c.decompress(&c.compress(&data), data.len());
            assert_eq!(out.len(), data.len(), "{name}");
            // Table II bounds on these O(0.1) values: absolute configs
            // are <= 1.4e-6, pwrel 1e-4 of 0.1 is 1e-5; zfp_fr_16 keeps
            // only ~11 planes below the block exponent (float16-like),
            // zfp_fr_32 ~27 planes.
            let tol = match name {
                "zfp_fr_16" => 1e-3,
                "zfp_fr_32" => 1e-7,
                _ => 2e-5,
            };
            for (a, b) in data.iter().zip(&out) {
                assert!((a - b).abs() <= tol, "{name}: |{a} - {b}|");
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("definitely_not_a_codec").is_none());
        assert!(accuracy_floor("definitely_not_a_codec").is_none());
    }

    #[test]
    fn every_registered_name_has_a_positive_accuracy_floor() {
        for name in names() {
            let floor =
                accuracy_floor(name).unwrap_or_else(|| panic!("{name} missing an accuracy floor"));
            assert!(floor > 0.0 && floor < 1.0, "{name}: floor {floor}");
        }
    }

    #[test]
    fn accuracy_floor_is_an_actual_bound_on_unit_scale_roundtrips() {
        // The floor table is maintained by hand next to `by_name`; this
        // pins it to reality so a codec whose bound changes (or a
        // copy-pasted floor row) fails here instead of silently
        // reordering the adaptive escalation ladder. Unit-scale data is
        // the Krylov regime the floor is defined for.
        let data: Vec<f64> = (0..2048)
            .map(|i| ((i as f64 * 0.37).sin() * 0.9) + 0.05 * (i as f64 * 7.13).cos())
            .collect();
        for name in names() {
            let floor = accuracy_floor(name).unwrap();
            let c = by_name(name).unwrap();
            let out = c.decompress(&c.compress(&data), data.len());
            let max_err = data
                .iter()
                .zip(&out)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_err <= floor,
                "{name}: observed error {max_err:e} exceeds advertised floor {floor:e}"
            );
            // And the floor is not wildly pessimistic either — within
            // five orders of the observed worst case.
            assert!(
                floor <= max_err.max(f64::MIN_POSITIVE) * 1e5,
                "{name}: floor {floor:e} is detached from observed error {max_err:e}"
            );
        }
    }

    #[test]
    fn table_two_has_nine_rows() {
        assert_eq!(TABLE_TWO.len(), 9);
        assert_eq!(TABLE_TWO[8].name, "zfp_fr_32");
    }
}
