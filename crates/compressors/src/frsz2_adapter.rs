//! FRSZ2 exposed through the [`Compressor`] interface.
//!
//! Inside the solver FRSZ2 runs natively through the accessor
//! ([`frsz2::Frsz2Store`]); this adapter exists for the compressor
//! shoot-out comparisons, where every codec is exercised through the
//! same compress-to-bytes API.

use crate::Compressor;
use frsz2::{Frsz2Config, Frsz2Vector};

/// FRSZ2 as a byte-stream codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Frsz2Compressor {
    cfg: Frsz2Config,
}

impl Frsz2Compressor {
    pub fn new(cfg: Frsz2Config) -> Self {
        Frsz2Compressor { cfg }
    }

    pub fn config(&self) -> Frsz2Config {
        self.cfg
    }
}

impl Compressor for Frsz2Compressor {
    fn name(&self) -> String {
        self.cfg.name()
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let v = Frsz2Vector::compress(self.cfg, data);
        // Layout: exponent words, then code words (both little-endian).
        let mut bytes = Vec::with_capacity(v.storage_bytes());
        for &e in v.exponents() {
            bytes.extend_from_slice(&e.to_le_bytes());
        }
        for &w in v.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        let blocks = self.cfg.blocks_for(n);
        let words_len = self.cfg.words_for_len(n);
        let mut exps = Vec::with_capacity(blocks);
        let mut words = Vec::with_capacity(words_len);
        for i in 0..blocks {
            exps.push(u32::from_le_bytes(
                bytes[i * 4..i * 4 + 4].try_into().unwrap(),
            ));
        }
        let base = blocks * 4;
        for i in 0..words_len {
            words.push(u32::from_le_bytes(
                bytes[base + i * 4..base + i * 4 + 4].try_into().unwrap(),
            ));
        }
        let mut out = vec![0.0; n];
        frsz2::codec::decompress_range(self.cfg, &words, &exps, n, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_matches_native_codec() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.59).sin()).collect();
        let cfg = Frsz2Config::new(32, 32);
        let adapter = Frsz2Compressor::new(cfg);
        let via_bytes = adapter.decompress(&adapter.compress(&data), data.len());
        let native = Frsz2Vector::compress(cfg, &data).decompress();
        for (a, b) in via_bytes.iter().zip(&native) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reports_eq3_rate() {
        let data = vec![0.5; 3200];
        let adapter = Frsz2Compressor::new(Frsz2Config::new(32, 32));
        // 33 bits/value (Eq. 3).
        assert!((adapter.bits_per_value(&data) - 33.0).abs() < 1e-12);
        let a21 = Frsz2Compressor::new(Frsz2Config::new(32, 21));
        assert!((a21.bits_per_value(&data) - 22.0).abs() < 1e-12);
    }
}
