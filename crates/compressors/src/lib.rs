//! Lossy floating-point compressors used as comparison baselines.
//!
//! The paper evaluates FRSZ2 against the three leading scientific-data
//! compressor families through LibPressio (§V-D): SZ (prediction +
//! error-bounded quantization), SZ3 (interpolation prediction) and ZFP
//! (block transform + embedded coding). This crate reimplements each
//! family from scratch in Rust — not bit-compatible with the C
//! libraries, but algorithmically faithful where it matters for the
//! experiments: the *error structure* each decorrelation strategy
//! imprints on uncorrelated Krylov data, the supported error-bound modes
//! (absolute, pointwise-relative, fixed-rate), and realistic compressed
//! sizes (entropy-coded with a real Huffman stage).
//!
//! The paper uses the codecs in round-trip mode only ("compressing and
//! immediately decompressing the Krylov vectors", §V-D);
//! [`RoundTripStore`] reproduces that wiring as a
//! [`numfmt::ColumnStorage`] so the CB-GMRES solver can run over any of
//! them unchanged.

pub mod bitstream;
pub mod cast;
pub mod frsz2_adapter;
pub mod huffman;
pub mod pwrel;
pub mod quantizer;
pub mod registry;
pub mod roundtrip;
pub mod sz;
pub mod sz3;
pub mod zfp;

pub use roundtrip::RoundTripStore;

/// A lossy compressor for `f64` streams.
///
/// `decompress(compress(x), x.len())` must return a slice of the same
/// length whose error respects the codec's configured bound.
pub trait Compressor: Send + Sync {
    /// Configuration-bearing display name (e.g. `sz3_abs_1e-8`).
    fn name(&self) -> String;

    /// Compress to a self-contained byte stream.
    fn compress(&self, data: &[f64]) -> Vec<u8>;

    /// Reconstruct `n` values from a stream produced by [`Self::compress`].
    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64>;

    /// LibPressio-style round trip: compress, immediately decompress
    /// into `out`, and report the compressed size in bits.
    fn roundtrip(&self, data: &[f64], out: &mut [f64]) -> usize {
        let bytes = self.compress(data);
        let dec = self.decompress(&bytes, data.len());
        out.copy_from_slice(&dec);
        bytes.len() * 8
    }

    /// Achieved bits per value on `data` (measures one compression).
    fn bits_per_value(&self, data: &[f64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        self.compress(data).len() as f64 * 8.0 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity64;
    impl Compressor for Identity64 {
        fn name(&self) -> String {
            "identity".into()
        }
        fn compress(&self, data: &[f64]) -> Vec<u8> {
            data.iter().flat_map(|v| v.to_le_bytes()).collect()
        }
        fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
            (0..n)
                .map(|i| f64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()))
                .collect()
        }
    }

    #[test]
    fn default_roundtrip_reports_bits() {
        let data = [1.0, -2.5, 3.25];
        let mut out = [0.0; 3];
        let bits = Identity64.roundtrip(&data, &mut out);
        assert_eq!(out, data);
        assert_eq!(bits, 3 * 64);
        assert_eq!(Identity64.bits_per_value(&data), 64.0);
    }
}
