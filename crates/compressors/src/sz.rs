//! SZ-style compressor: Lorenzo (previous-value) prediction, error-
//! bounded quantization, Huffman encoding, raw escape for unpredictable
//! values.
//!
//! This is the SZ 1.x/2.x pipeline of Di & Cappello \[4\] restricted to
//! the 1-D Lorenzo predictor (the only one applicable to a vector
//! stream). On smooth data the residuals cluster near zero and Huffman
//! crushes them; on uncorrelated Krylov data (§III-A) the predictor
//! misses, residuals span the whole value range, and the scheme pays
//! for its escape mechanism — reproducing the behaviour the paper
//! describes as "ineffective at best or counterproductive at worst".

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman;
use crate::quantizer::{code_to_symbol, quantize, reconstruct, symbol_to_code, UNPREDICTABLE};
use crate::Compressor;

/// SZ with an absolute point-wise error bound.
#[derive(Clone, Copy, Debug)]
pub struct SzCompressor {
    eps: f64,
}

impl SzCompressor {
    /// # Panics
    /// If `eps` is not strictly positive and finite.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "invalid error bound {eps}");
        SzCompressor { eps }
    }

    pub fn error_bound(&self) -> f64 {
        self.eps
    }
}

impl Compressor for SzCompressor {
    fn name(&self) -> String {
        format!("sz_abs_{:e}", self.eps)
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut symbols = Vec::with_capacity(data.len());
        let mut raw = Vec::new();
        let mut pred = 0.0; // reconstruction-side predictor state
        for &x in data {
            match quantize(x, pred, self.eps) {
                Some(code) => {
                    symbols.push(code_to_symbol(code));
                    pred = reconstruct(pred, code, self.eps);
                }
                None => {
                    symbols.push(UNPREDICTABLE);
                    raw.push(x);
                    pred = x; // decoder sees the exact raw value
                }
            }
        }
        let mut w = BitWriter::new();
        w.write_bits(self.eps.to_bits(), 64);
        huffman::encode(&symbols, &mut w);
        w.write_bits(raw.len() as u64, 40);
        for v in raw {
            w.write_bits(v.to_bits(), 64);
        }
        w.into_bytes()
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        let mut r = BitReader::new(bytes);
        let eps = f64::from_bits(r.read_bits(64));
        let symbols = huffman::decode(&mut r);
        assert_eq!(symbols.len(), n, "stream length mismatch");
        let raw_count = r.read_bits(40) as usize;
        let raw: Vec<f64> = (0..raw_count)
            .map(|_| f64::from_bits(r.read_bits(64)))
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut pred = 0.0;
        let mut next_raw = 0;
        for s in symbols {
            let v = if s == UNPREDICTABLE {
                let v = raw[next_raw];
                next_raw += 1;
                v
            } else {
                reconstruct(pred, symbol_to_code(s), eps)
            };
            out.push(v);
            pred = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(data: &[f64], eps: f64) -> f64 {
        let c = SzCompressor::new(eps);
        let bytes = c.compress(data);
        let out = c.decompress(&bytes, data.len());
        let mut max_err = 0.0f64;
        for (a, b) in data.iter().zip(&out) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err <= eps, "error {max_err} > bound {eps}");
        bytes.len() as f64 * 8.0 / data.len() as f64
    }

    #[test]
    fn smooth_data_compresses_well() {
        // Slowly varying signal: Lorenzo prediction nails it.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64 * 1e-3).sin()).collect();
        let bpv = check_bound(&data, 1e-6);
        assert!(
            bpv < 16.0,
            "smooth data should compress below 16 bits/value, got {bpv}"
        );
    }

    #[test]
    fn uncorrelated_data_compresses_poorly() {
        // Krylov-like: white values in [-1, 1] from a split-mix hash (a
        // plain multiplicative congruence would be piecewise linear and
        // Lorenzo-predictable). With a tight bound the residual entropy
        // is near log2(2/2eps): well above 15 bits.
        let data: Vec<f64> = (0..10_000u64)
            .map(|i| {
                let mut h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 30;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h ^= h >> 27;
                (h >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
            })
            .collect();
        let bpv = check_bound(&data, 1e-6);
        assert!(
            bpv > 15.0,
            "uncorrelated data cannot compress well at 1e-6, got {bpv}"
        );
    }

    #[test]
    fn wide_range_values_escape_to_raw() {
        // Values jumping across many orders of magnitude blow the code
        // window: the escape path must keep them bit-exact.
        let data = vec![1e-300, 1e300, -1e300, 0.0, 1.0, -1e-300];
        let c = SzCompressor::new(1e-9);
        let out = c.decompress(&c.compress(&data), data.len());
        for (a, b) in data.iter().zip(&out) {
            if a.abs() > 1e9 {
                assert_eq!(a, b, "escaped values are exact");
            } else {
                assert!((a - b).abs() <= 1e-9);
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let c = SzCompressor::new(1e-4);
        assert_eq!(c.decompress(&c.compress(&[]), 0), Vec::<f64>::new());
        let one = c.decompress(&c.compress(&[0.123]), 1);
        assert!((one[0] - 0.123).abs() <= 1e-4);
    }

    #[test]
    fn tighter_bound_means_more_bits() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.7).sin()).collect();
        let loose = SzCompressor::new(1e-3).bits_per_value(&data);
        let tight = SzCompressor::new(1e-9).bits_per_value(&data);
        assert!(tight > loose, "tight {tight} should exceed loose {loose}");
    }
}
