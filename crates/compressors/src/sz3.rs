//! SZ3-style compressor: multi-level interpolation prediction \[3\].
//!
//! SZ3 replaces SZ's Lorenzo predictor with hierarchical interpolation:
//! the stream is traversed level by level (stride halving each level),
//! each midpoint predicted by linear interpolation of its already-
//! decoded neighbours at the current stride. Residuals go through the
//! same error-bounded quantizer + Huffman stage as SZ.
//!
//! On Krylov data the interpolant is as uninformative as the Lorenzo
//! predictor — Fig. 5 of the paper shows sz3 needing ~46 bits/value at
//! `1e-8` while converging slower than plain float32; this
//! implementation reproduces that regime.

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman;
use crate::quantizer::{code_to_symbol, quantize, reconstruct, symbol_to_code, UNPREDICTABLE};
use crate::Compressor;

/// SZ3 with an absolute point-wise error bound.
#[derive(Clone, Copy, Debug)]
pub struct Sz3Compressor {
    eps: f64,
}

impl Sz3Compressor {
    /// # Panics
    /// If `eps` is not strictly positive and finite.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "invalid error bound {eps}");
        Sz3Compressor { eps }
    }

    pub fn error_bound(&self) -> f64 {
        self.eps
    }
}

/// Traversal order: index 0 is the anchor (stored raw); every other
/// index `i` is visited at stride `s` = the largest power of two
/// dividing it... precisely, at level stride `s`, the indices
/// `s, 3s, 5s, ...` are predicted from neighbours `i − s` and `i + s`.
/// Returns `(index, left, right_opt)` triples in decode order.
fn traversal(n: usize) -> Vec<(usize, usize, Option<usize>)> {
    let mut order = Vec::with_capacity(n.saturating_sub(1));
    if n <= 1 {
        return order;
    }
    let mut s = usize::next_power_of_two(n) / 2;
    while s >= 1 {
        let mut i = s;
        while i < n {
            let right = i + s;
            order.push((i, i - s, if right < n { Some(right) } else { None }));
            i += 2 * s;
        }
        s /= 2;
    }
    order
}

impl Compressor for Sz3Compressor {
    fn name(&self) -> String {
        format!("sz3_abs_{:e}", self.eps)
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let n = data.len();
        let mut w = BitWriter::new();
        w.write_bits(self.eps.to_bits(), 64);
        if n == 0 {
            huffman::encode(&[], &mut w);
            w.write_bits(0, 40);
            return w.into_bytes();
        }
        // Anchor value, stored exactly.
        w.write_bits(data[0].to_bits(), 64);

        // Reconstruction-side state: decoded values filled in traversal
        // order so predictions match the decoder bit for bit.
        let mut dec = vec![0.0f64; n];
        dec[0] = data[0];
        let mut symbols = Vec::with_capacity(n - 1);
        let mut raw = Vec::new();
        for (i, l, r) in traversal(n) {
            let pred = match r {
                // Right neighbour at this stride was decoded on a
                // *previous* (coarser) level, so it is available.
                Some(ri) => 0.5 * (dec[l] + dec[ri]),
                None => dec[l],
            };
            match quantize(data[i], pred, self.eps) {
                Some(code) => {
                    symbols.push(code_to_symbol(code));
                    dec[i] = reconstruct(pred, code, self.eps);
                }
                None => {
                    symbols.push(UNPREDICTABLE);
                    raw.push(data[i]);
                    dec[i] = data[i];
                }
            }
        }
        huffman::encode(&symbols, &mut w);
        w.write_bits(raw.len() as u64, 40);
        for v in raw {
            w.write_bits(v.to_bits(), 64);
        }
        w.into_bytes()
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        let mut r = BitReader::new(bytes);
        let eps = f64::from_bits(r.read_bits(64));
        if n == 0 {
            return Vec::new();
        }
        let anchor = f64::from_bits(r.read_bits(64));
        let symbols = huffman::decode(&mut r);
        assert_eq!(symbols.len(), n - 1, "stream length mismatch");
        let raw_count = r.read_bits(40) as usize;
        let raw: Vec<f64> = (0..raw_count)
            .map(|_| f64::from_bits(r.read_bits(64)))
            .collect();

        let mut dec = vec![0.0f64; n];
        dec[0] = anchor;
        let mut next_raw = 0;
        for ((i, l, rt), &s) in traversal(n).into_iter().zip(&symbols) {
            let pred = match rt {
                Some(ri) => 0.5 * (dec[l] + dec[ri]),
                None => dec[l],
            };
            dec[i] = if s == UNPREDICTABLE {
                let v = raw[next_raw];
                next_raw += 1;
                v
            } else {
                reconstruct(pred, symbol_to_code(s), eps)
            };
        }
        dec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_visits_each_nonzero_index_once() {
        for n in [1usize, 2, 3, 7, 8, 9, 100, 127, 128, 129] {
            let order = traversal(n);
            let mut seen = vec![false; n];
            seen[0] = true;
            for (i, l, r) in order {
                assert!(!seen[i], "index {i} visited twice (n={n})");
                assert!(seen[l], "left neighbour {l} of {i} not yet decoded (n={n})");
                if let Some(ri) = r {
                    assert!(
                        seen[ri],
                        "right neighbour {ri} of {i} not yet decoded (n={n})"
                    );
                }
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s), "not all indices covered (n={n})");
        }
    }

    #[test]
    fn bound_holds_for_all_shapes() {
        for n in [1usize, 2, 5, 64, 100, 1000] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();
            let c = Sz3Compressor::new(1e-7);
            let out = c.decompress(&c.compress(&data), n);
            for (i, (a, b)) in data.iter().zip(&out).enumerate() {
                assert!((a - b).abs() <= 1e-7, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn smooth_data_beats_sz_lorenzo() {
        // Quadratic signal: interpolation predicts exactly, Lorenzo lags.
        let data: Vec<f64> = (0..20_000)
            .map(|i| {
                let t = i as f64 / 20_000.0;
                t * t
            })
            .collect();
        let sz3 = Sz3Compressor::new(1e-9).bits_per_value(&data);
        let sz = crate::sz::SzCompressor::new(1e-9).bits_per_value(&data);
        assert!(
            sz3 < sz,
            "interpolation ({sz3}) should beat Lorenzo ({sz}) on smooth data"
        );
        assert!(sz3 < 8.0, "quadratic data should compress hard, got {sz3}");
    }

    #[test]
    fn krylov_like_data_needs_many_bits() {
        // Normalized uncorrelated vector at a tight bound: ~dozens of
        // bits/value (the Fig. 5 sz3_08 regime, 46 bits/value). Data from
        // a split-mix hash so interpolation genuinely has nothing to use.
        let data: Vec<f64> = (0..10_000u64)
            .map(|i| {
                let mut h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 30;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h ^= h >> 27;
                ((h >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0) * 1e-2
            })
            .collect();
        let bpv = Sz3Compressor::new(1e-8).bits_per_value(&data);
        assert!(bpv > 15.0, "expected poor compression, got {bpv}");
    }
}
