//! Point-wise relative error bounds via the logarithmic transform
//! (Liang et al. \[12\], the mechanism behind SZ's `pwrel` mode).
//!
//! A relative bound `|x − x̂| ≤ ε·|x|` becomes an *absolute* bound in
//! log space: compress `ln|x|` with bound `ln(1 + ε)` and re-exponentiate.
//! Signs and exact zeros are carried in side bitmaps. Figure 6 of the
//! paper shows this preserving value magnitudes much better than
//! absolute bounds on Krylov data — "more similar to our FRSZ2 approach".

use crate::bitstream::{BitReader, BitWriter};
use crate::sz::SzCompressor;
use crate::sz3::Sz3Compressor;
use crate::Compressor;

/// Which absolute-bound codec compresses the log stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PwrelFamily {
    Sz,
    Sz3,
}

/// Point-wise-relative wrapper codec.
#[derive(Clone, Copy, Debug)]
pub struct PwrelCompressor {
    family: PwrelFamily,
    rel: f64,
}

impl PwrelCompressor {
    /// # Panics
    /// If `rel` is not in `(0, 1)`.
    pub fn new(family: PwrelFamily, rel: f64) -> Self {
        assert!(rel > 0.0 && rel < 1.0, "relative bound must be in (0,1)");
        PwrelCompressor { family, rel }
    }

    fn log_bound(&self) -> f64 {
        // |ln x̂ - ln x| <= ln(1+ε) guarantees x̂/x ∈ [1/(1+ε), 1+ε].
        self.rel.ln_1p()
    }

    fn inner_compress(&self, logs: &[f64]) -> Vec<u8> {
        match self.family {
            PwrelFamily::Sz => SzCompressor::new(self.log_bound()).compress(logs),
            PwrelFamily::Sz3 => Sz3Compressor::new(self.log_bound()).compress(logs),
        }
    }

    fn inner_decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        match self.family {
            PwrelFamily::Sz => SzCompressor::new(self.log_bound()).decompress(bytes, n),
            PwrelFamily::Sz3 => Sz3Compressor::new(self.log_bound()).decompress(bytes, n),
        }
    }
}

impl Compressor for PwrelCompressor {
    fn name(&self) -> String {
        let f = match self.family {
            PwrelFamily::Sz => "sz",
            PwrelFamily::Sz3 => "sz3",
        };
        format!("{f}_pwrel_{:e}", self.rel)
    }

    fn compress(&self, data: &[f64]) -> Vec<u8> {
        let mut w = BitWriter::new();
        // Bitmaps: sign and zero flags, one bit per value.
        for &x in data {
            w.write_bit(x.is_sign_negative());
        }
        for &x in data {
            w.write_bit(x == 0.0);
        }
        let logs: Vec<f64> = data
            .iter()
            .filter(|&&x| x != 0.0)
            .map(|&x| x.abs().ln())
            .collect();
        let inner = self.inner_compress(&logs);
        w.write_bits(logs.len() as u64, 40);
        w.write_bits(inner.len() as u64, 40);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&inner);
        bytes
    }

    fn decompress(&self, bytes: &[u8], n: usize) -> Vec<f64> {
        let mut r = BitReader::new(bytes);
        let signs: Vec<bool> = (0..n).map(|_| r.read_bit()).collect();
        let zeros: Vec<bool> = (0..n).map(|_| r.read_bit()).collect();
        let log_count = r.read_bits(40) as usize;
        let inner_len = r.read_bits(40) as usize;
        let header_bytes = r.bit_pos().div_ceil(8);
        let inner = &bytes[header_bytes..header_bytes + inner_len];
        let logs = self.inner_decompress(inner, log_count);
        let mut li = 0;
        (0..n)
            .map(|i| {
                if zeros[i] {
                    if signs[i] {
                        -0.0
                    } else {
                        0.0
                    }
                } else {
                    let mag = logs[li].exp();
                    li += 1;
                    if signs[i] {
                        -mag
                    } else {
                        mag
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_relative_bound(family: PwrelFamily, rel: f64) {
        let c = PwrelCompressor::new(family, rel);
        // Values across many magnitudes, plus zeros and negatives.
        let data: Vec<f64> = (0..5000)
            .map(|i| {
                if i % 97 == 0 {
                    0.0
                } else {
                    let mag = f64::powi(10.0, (i % 31) - 15);
                    let v = ((i as f64 * 0.73).sin() + 1.5) * mag;
                    if i % 2 == 0 {
                        v
                    } else {
                        -v
                    }
                }
            })
            .collect();
        let out = c.decompress(&c.compress(&data), data.len());
        for (i, (a, b)) in data.iter().zip(&out).enumerate() {
            if *a == 0.0 {
                assert_eq!(*b, 0.0, "i={i}: zero must survive");
            } else {
                let relerr = ((a - b) / a).abs();
                // ln(1+ε) bound in log space gives (1+ε) multiplicative
                // error; allow tiny slack for the exp/ln round trip.
                assert!(
                    relerr <= rel * (1.0 + 1e-9) + 1e-15,
                    "i={i}: rel err {relerr} > {rel}"
                );
                assert_eq!(a.is_sign_negative(), b.is_sign_negative(), "i={i}: sign");
            }
        }
    }

    #[test]
    fn sz_pwrel_bound_holds() {
        check_relative_bound(PwrelFamily::Sz, 1e-4);
    }

    #[test]
    fn sz3_pwrel_bound_holds() {
        check_relative_bound(PwrelFamily::Sz3, 1e-4);
    }

    #[test]
    fn magnitudes_preserved_across_200_binades() {
        // The property Fig. 6 credits: tiny values keep their relative
        // accuracy instead of being flushed like absolute bounds do.
        let data = vec![1e-100, 1e100, -1e-80, 2.5e-60];
        let c = PwrelCompressor::new(PwrelFamily::Sz, 1e-4);
        let out = c.decompress(&c.compress(&data), 4);
        for (a, b) in data.iter().zip(&out) {
            assert!(((a - b) / a).abs() <= 1.1e-4, "{a} -> {b}");
        }
    }

    #[test]
    fn all_zero_stream() {
        let data = vec![0.0; 100];
        let c = PwrelCompressor::new(PwrelFamily::Sz3, 1e-3);
        let out = c.decompress(&c.compress(&data), 100);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn names_match_table_two_convention() {
        assert_eq!(
            PwrelCompressor::new(PwrelFamily::Sz, 1e-4).name(),
            "sz_pwrel_1e-4"
        );
    }
}
