//! Compress-then-decompress Krylov basis storage (the LibPressio wiring).
//!
//! §V-D: "we decided to simulate the effect of other compression schemes
//! on the CB-GMRES convergence ... by compressing and immediately
//! decompressing the Krylov vectors". [`RoundTripStore`] does exactly
//! that: every column write runs the configured codec's round trip, the
//! lossy result is kept in plain f64, and reads are full-speed. The
//! solver therefore sees the codec's *information loss* without its
//! runtime — which is also why Figs. 5/6 are convergence (not runtime)
//! comparisons.

use crate::Compressor;
use numfmt::{ColumnStorage, DenseStore};
use std::sync::Arc;

/// [`ColumnStorage`] that filters every written column through a lossy
/// codec round trip.
pub struct RoundTripStore {
    inner: DenseStore<f64>,
    codec: Arc<dyn Compressor>,
    bits_written: u64,
    values_written: u64,
}

impl RoundTripStore {
    pub fn new(codec: Arc<dyn Compressor>, rows: usize, cols: usize) -> Self {
        RoundTripStore {
            inner: DenseStore::with_shape(rows, cols),
            codec,
            bits_written: 0,
            values_written: 0,
        }
    }

    /// Average achieved compression rate over all column writes so far.
    ///
    /// Before the first column write nothing has been compressed, so the
    /// average is defined as 0.0 — never the `0/0 = NaN` the naive
    /// quotient would produce (callers such as `column_bytes` and the
    /// solver's byte counters must stay finite from the first query).
    pub fn average_bits_per_value(&self) -> f64 {
        if self.values_written == 0 {
            0.0
        } else {
            self.bits_written as f64 / self.values_written as f64
        }
    }

    pub fn codec_name(&self) -> String {
        self.codec.name()
    }
}

impl ColumnStorage for RoundTripStore {
    /// Not constructible without a codec — use [`RoundTripStore::new`].
    fn with_shape(_rows: usize, _cols: usize) -> Self {
        panic!("RoundTripStore needs a codec: construct with RoundTripStore::new")
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn write_column(&mut self, j: usize, data: &[f64]) {
        let mut lossy = vec![0.0; data.len()];
        let bits = self.codec.roundtrip(data, &mut lossy);
        self.bits_written += bits as u64;
        self.values_written += data.len() as u64;
        self.inner.write_column(j, &lossy);
    }

    #[inline]
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]) {
        self.inner.read_chunk(j, row_start, out);
    }

    #[inline]
    fn load(&self, i: usize, j: usize) -> f64 {
        self.inner.load(i, j)
    }

    #[inline]
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        self.inner.dot_chunk(j, row_start, w)
    }

    #[inline]
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        self.inner.axpy_chunk(j, row_start, alpha, w)
    }

    /// Multi-column sweeps run on the inner dense store (columns are
    /// plain f64 after the write-time round trip), so round-trip bases
    /// get the fused one-pass orthogonalization kernels for free.
    #[inline]
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        self.inner.dots_chunk(k, row_start, w, out)
    }

    #[inline]
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        self.inner.gemv_chunk(k, row_start, alphas, w)
    }

    /// Reports the *achieved* compressed size (what the paper would count
    /// as memory traffic had the codec been integrated for real).
    fn column_bytes(&self) -> usize {
        (self.average_bits_per_value() * self.rows() as f64 / 8.0).ceil() as usize
    }

    fn format_name(&self) -> String {
        self.codec.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sz3::Sz3Compressor;
    use crate::zfp::{ZfpCompressor, ZfpMode};

    #[test]
    fn columns_are_lossy_but_bounded() {
        let codec = Arc::new(Sz3Compressor::new(1e-6));
        let mut st = RoundTripStore::new(codec, 500, 2);
        let v: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
        st.write_column(0, &v);
        let mut out = vec![0.0; 500];
        st.read_column(0, &mut out);
        let mut max_err = 0.0f64;
        for (a, b) in v.iter().zip(&out) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(
            max_err > 0.0,
            "the round trip must actually lose information"
        );
        assert!(max_err <= 1e-6, "but stay inside the codec bound");
    }

    #[test]
    fn tracks_achieved_bits() {
        let codec = Arc::new(ZfpCompressor::new(ZfpMode::FixedRate(16)));
        let mut st = RoundTripStore::new(codec, 400, 3);
        let v: Vec<f64> = (0..400).map(|i| (i as f64 * 0.11).cos()).collect();
        st.write_column(0, &v);
        st.write_column(1, &v);
        let bpv = st.average_bits_per_value();
        assert!((bpv - 16.0).abs() < 0.5, "fixed-rate 16 reported as {bpv}");
        assert_eq!(st.format_name(), "zfp_fr_16");
        assert_eq!(st.column_bytes(), (bpv * 400.0 / 8.0).ceil() as usize);
    }

    #[test]
    #[should_panic(expected = "needs a codec")]
    fn with_shape_is_rejected() {
        let _ = RoundTripStore::with_shape(4, 4);
    }

    #[test]
    fn rate_before_any_write_is_zero_not_nan() {
        let codec = Arc::new(Sz3Compressor::new(1e-6));
        let st = RoundTripStore::new(codec, 128, 2);
        assert_eq!(st.average_bits_per_value(), 0.0);
        assert!(!st.average_bits_per_value().is_nan());
        assert_eq!(st.column_bytes(), 0);
        assert_eq!(st.bits_per_value(), 0.0);
        // The zero-row corner must be finite too (0/0 guards).
        let empty = RoundTripStore::new(Arc::new(Sz3Compressor::new(1e-6)), 0, 1);
        assert_eq!(empty.average_bits_per_value(), 0.0);
        assert!(!empty.bits_per_value().is_nan());
    }
}
