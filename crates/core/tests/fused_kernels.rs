//! Fused-kernel contract tests: every fused store kernel
//! (`dot_chunk`, `axpy_chunk`, `dots_chunk`, `gemv_chunk`) must be
//! **bit-identical** to decompress-then-naive-BLAS for every bit
//! length, chunk alignment, and tail shape — and must not allocate.
//!
//! The solver's reproducibility guarantees (same residual history for
//! any thread count, any sparse format, and now any kernel fusion
//! level) reduce to exactly this property: fusion changes how codes
//! are extracted, never what is computed.

use frsz2::{Frsz2Config, Frsz2Store};
use numfmt::ColumnStorage;
/// The paper's evaluated lengths plus word-aligned and wide extremes;
/// 4 and 64 exercise the shortest and the three-word-straddling paths.
const BIT_LENGTHS: [u32; 6] = [4, 8, 16, 21, 32, 64];

/// Wide-dynamic-range data: exponents spread across ~20 binades so
/// subnormal-grade codes (large `emax − e`) appear in most blocks.
fn wave(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = ((i + 31 * seed) as f64 * 0.37).sin();
            x * f64::powi(2.0, ((i * 7 + seed) % 40) as i32 - 20)
        })
        .collect()
}

fn store_with(l: u32, rows: usize, cols: usize) -> Frsz2Store {
    let mut st = Frsz2Store::with_config(Frsz2Config::new(32, l), rows, cols);
    for j in 0..cols {
        st.write_column(j, &wave(rows, j));
    }
    st
}

/// Every (row_start, len) pair the solver can produce: block-aligned
/// starts, full and ragged tails (rows = 203 ends in a 11-value block).
fn chunk_shapes(rows: usize) -> Vec<(usize, usize)> {
    let mut shapes = vec![(0, rows), (0, 32), (32, 64), (96, rows - 96), (160, 43)];
    shapes.retain(|&(s, len)| s + len <= rows);
    shapes
}

#[test]
fn fused_dot_bit_equals_decompress_then_blas() {
    let rows = 203;
    for l in BIT_LENGTHS {
        let st = store_with(l, rows, 3);
        for j in 0..3 {
            for (start, len) in chunk_shapes(rows) {
                let w = wave(len, 100 + j);
                let fused = st.dot_chunk(j, start, &w);
                let mut tile = vec![0.0; len];
                st.read_chunk(j, start, &mut tile);
                let mut naive = 0.0;
                for (a, b) in tile.iter().zip(&w) {
                    naive += a * b;
                }
                assert_eq!(
                    fused.to_bits(),
                    naive.to_bits(),
                    "l={l} col={j} start={start} len={len}: fused {fused:e} vs naive {naive:e}"
                );
            }
        }
    }
}

#[test]
fn fused_axpy_bit_equals_decompress_then_blas() {
    let rows = 203;
    for l in BIT_LENGTHS {
        let st = store_with(l, rows, 3);
        for j in 0..3 {
            for (start, len) in chunk_shapes(rows) {
                for alpha in [1.75, -0.3, 0.0] {
                    let w0 = wave(len, 7 + j);
                    let mut fused = w0.clone();
                    st.axpy_chunk(j, start, alpha, &mut fused);
                    let mut tile = vec![0.0; len];
                    st.read_chunk(j, start, &mut tile);
                    let mut naive = w0;
                    for (b, a) in naive.iter_mut().zip(&tile) {
                        *b += alpha * a;
                    }
                    for i in 0..len {
                        assert_eq!(
                            fused[i].to_bits(),
                            naive[i].to_bits(),
                            "l={l} col={j} start={start} len={len} alpha={alpha} row {i}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn multi_column_dots_bit_equal_per_column_kernels() {
    let rows = 203;
    let k = 5;
    for l in BIT_LENGTHS {
        let st = store_with(l, rows, k);
        for (start, len) in chunk_shapes(rows) {
            let w = wave(len, 55);
            let mut fused = vec![0.0; k];
            st.dots_chunk(k, start, &w, &mut fused);
            for (j, &f) in fused.iter().enumerate() {
                let single = st.dot_chunk(j, start, &w);
                assert_eq!(
                    f.to_bits(),
                    single.to_bits(),
                    "l={l} col={j} start={start} len={len}"
                );
            }
        }
    }
}

#[test]
fn multi_column_gemv_bit_equal_sequential_axpys() {
    let rows = 203;
    let k = 5;
    // A zero coefficient in the middle checks the skip semantics (a
    // `+ 0.0` fold-in would flip the sign of a stored -0.0).
    let alphas = [0.5, -1.25, 0.0, 2.0, -0.125];
    for l in BIT_LENGTHS {
        let st = store_with(l, rows, k);
        for (start, len) in chunk_shapes(rows) {
            let w0 = wave(len, 99);
            let mut fused = w0.clone();
            st.gemv_chunk(k, start, &alphas, &mut fused);
            let mut seq = w0;
            for (j, &a) in alphas.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                st.axpy_chunk(j, start, a, &mut seq);
            }
            for i in 0..len {
                assert_eq!(
                    fused[i].to_bits(),
                    seq[i].to_bits(),
                    "l={l} start={start} len={len} row {i}"
                );
            }
        }
    }
}

#[test]
fn gemv_skip_preserves_negative_zero() {
    // w holds -0.0; a gemv over columns with all-zero coefficients
    // must leave the bits untouched ((-0.0) + 0.0 would yield +0.0).
    let st = store_with(21, 64, 2);
    let mut w = vec![-0.0f64; 64];
    st.gemv_chunk(2, 0, &[0.0, 0.0], &mut w);
    for (i, v) in w.iter().enumerate() {
        assert_eq!(v.to_bits(), (-0.0f64).to_bits(), "row {i}");
    }
}
