//! Property tests for the FRSZ2 codec.
//!
//! The central invariants:
//! 1. the optimized block codec and the scalar reference codec agree
//!    bit-for-bit for every (BS, l) combination,
//! 2. the decompression error never reaches one ULP of the truncated
//!    fraction at block scale,
//! 3. chunked, whole-vector and random-access decompression agree,
//! 4. truncation never increases a value's magnitude and never changes
//!    its sign.

use frsz2::{reference, Frsz2Config, Frsz2Vector, Rounding};
use proptest::prelude::*;

/// Generates finite f64 values with a wide but controlled exponent range,
/// including zeros, subnormal-scaled and mixed-magnitude data.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0f64..1.0,                           // Krylov-like
        2 => (-1.0f64..1.0).prop_map(|x| x * 1e-30), // deep small values
        2 => (-1.0f64..1.0).prop_map(|x| x * 1e+30), // large values
        1 => Just(0.0),
        1 => Just(-0.0),
        1 => (1u64..(1 << 52)).prop_map(f64::from_bits), // positive subnormals
    ]
}

/// `2^e` across the whole f64 range, subnormals included (the codec's
/// `exp2i` is private, so the tests carry their own copy of the
/// bit-level construction).
fn exp2_wide(e: i32) -> f64 {
    if e >= 1024 {
        f64::INFINITY
    } else if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

fn config_strategy() -> impl Strategy<Value = Frsz2Config> {
    (
        prop_oneof![Just(1u32), Just(4), Just(8), Just(16), Just(32), Just(64)],
        2u32..=64,
    )
        .prop_map(|(bs, l)| Frsz2Config::new(bs, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Optimized codec output is bit-identical to the reference codec.
    #[test]
    fn optimized_matches_reference(
        cfg in config_strategy(),
        data in prop::collection::vec(value_strategy(), 0..200),
    ) {
        let v = Frsz2Vector::compress(cfg, &data);
        let out = v.decompress();
        let bs = cfg.block_size();
        for (b, chunk) in data.chunks(bs).enumerate() {
            let (emax, codes) = reference::compress_block(chunk, cfg.bits(), true);
            prop_assert_eq!(v.exponents()[b], emax, "block {} emax", b);
            let expect = reference::decompress_block(emax, &codes, cfg.bits());
            for (i, &x) in expect.iter().enumerate() {
                prop_assert_eq!(
                    out[b * bs + i].to_bits(),
                    x.to_bits(),
                    "value {} (l={}, bs={})", b * bs + i, cfg.bits(), bs
                );
            }
        }
    }

    /// |x - decode(encode(x))| < 2^(emax-1023-(l-2)) for every element.
    #[test]
    fn error_bound_holds(
        cfg in config_strategy(),
        data in prop::collection::vec(value_strategy(), 1..200),
    ) {
        let v = Frsz2Vector::compress(cfg, &data);
        let out = v.decompress();
        for i in 0..data.len() {
            let err = (data[i] - out[i]).abs();
            let bound = v.block_error_bound(i);
            prop_assert!(
                err < bound || (err == 0.0 && bound == 0.0),
                "i={}: err {} >= bound {} (l={}, bs={})",
                i, err, bound, cfg.bits(), cfg.block_size()
            );
        }
    }

    /// Truncation moves every value toward zero and preserves its sign bit.
    #[test]
    fn truncation_shrinks_magnitude(
        cfg in config_strategy(),
        data in prop::collection::vec(value_strategy(), 1..120),
    ) {
        let v = Frsz2Vector::compress(cfg, &data);
        let out = v.decompress();
        for i in 0..data.len() {
            prop_assert!(out[i].abs() <= data[i].abs(), "i={} grew", i);
            prop_assert_eq!(
                out[i].is_sign_negative(), data[i].is_sign_negative(),
                "i={} sign flipped", i
            );
        }
    }

    /// Random access, chunked reads and whole-vector decompression agree.
    #[test]
    fn access_paths_agree(
        cfg in config_strategy(),
        data in prop::collection::vec(value_strategy(), 1..300),
        cut in 0usize..300,
    ) {
        let v = Frsz2Vector::compress(cfg, &data);
        let full = v.decompress();
        // Random access.
        for (i, f) in full.iter().enumerate() {
            prop_assert_eq!(v.get(i).to_bits(), f.to_bits(), "get({})", i);
        }
        // Block-aligned two-piece chunked read.
        let bs = cfg.block_size();
        let cut = (cut % (data.len().div_ceil(bs) + 1)) * bs;
        let cut = cut.min(data.len());
        let mut pieced = vec![0.0; data.len()];
        v.decompress_range(0, &mut pieced[..cut]);
        v.decompress_range(cut, &mut pieced[cut..]);
        for i in 0..data.len() {
            prop_assert_eq!(pieced[i].to_bits(), full[i].to_bits(), "chunk at {}", i);
        }
    }

    /// Values that fit exactly (significand no wider than the retained
    /// field) survive the round trip bit-for-bit.
    #[test]
    fn dyadic_values_roundtrip_exactly(
        bs in prop_oneof![Just(4u32), Just(32)],
        l in 12u32..=64,
        nums in prop::collection::vec((-128i64..=128, -3i32..=3), 1..100),
    ) {
        // value = num * 2^scale has at most 8 significand bits; with
        // exponent spread <= 8+3-(-3) well inside l-2 for l >= 12... keep
        // the spread small so nothing flushes.
        let data: Vec<f64> = nums
            .iter()
            .map(|&(n, s)| n as f64 * f64::powi(2.0, s))
            .collect();
        let cfg = Frsz2Config::new(bs, l);
        let v = Frsz2Vector::compress(cfg, &data);
        let out = v.decompress();
        for i in 0..data.len() {
            // 8 significand bits + spread <= 13 fits in l-2 >= 10... only
            // guaranteed for l >= 23; check exactness there.
            if l >= 23 {
                prop_assert_eq!(out[i].to_bits(), data[i].to_bits(), "i={}", i);
            }
        }
    }

    /// The reference codec and the optimized codec agree bit-for-bit for
    /// every bit length the paper discusses — the word-aligned fast
    /// paths (l ∈ {8, 16, 32, 64}) and the bit-packed non-word-aligned
    /// path (l ∈ {4, 21}, covering the paper's `frsz2_21`) — across
    /// block sizes, partial trailing blocks included.
    #[test]
    fn paper_bit_lengths_match_reference(
        l in prop_oneof![Just(4u32), Just(8), Just(16), Just(21), Just(32), Just(64)],
        bs in prop_oneof![Just(1u32), Just(4), Just(8), Just(16), Just(32), Just(64)],
        data in prop::collection::vec(value_strategy(), 1..200),
    ) {
        let cfg = Frsz2Config::new(bs, l);
        let v = Frsz2Vector::compress(cfg, &data);
        let out = v.decompress();
        for (b, chunk) in data.chunks(bs as usize).enumerate() {
            let (emax, codes) = reference::compress_block(chunk, l, true);
            prop_assert_eq!(v.exponents()[b], emax, "l={} bs={} block {} emax", l, bs, b);
            let expect = reference::decompress_block(emax, &codes, l);
            for (i, &x) in expect.iter().enumerate() {
                let idx = b * bs as usize + i;
                prop_assert_eq!(
                    out[idx].to_bits(), x.to_bits(),
                    "l={} bs={} value {}", l, bs, idx
                );
                // Random access must take the same path-specific decode.
                prop_assert_eq!(
                    v.get(idx).to_bits(), x.to_bits(),
                    "l={} bs={} get({})", l, bs, idx
                );
            }
        }
    }

    /// The paper's worst-case absolute error bound, written out
    /// explicitly: `|x − decode(encode(x))| < 2^(emax − 1023 − (l − 2))`
    /// with `emax` recomputed from the raw block, and
    /// `Frsz2Config::storage_bytes` equal to Eq. 3 written out term by
    /// term: `⌈n/BS⌉ · ⌈BS·l/32⌉ · 4 + ⌈n/BS⌉ · 4`.
    #[test]
    fn explicit_error_bound_and_eq3(
        cfg in config_strategy(),
        data in prop::collection::vec(value_strategy(), 1..200),
    ) {
        let (bs, l) = (cfg.block_size(), cfg.bits());
        let v = Frsz2Vector::compress(cfg, &data);
        let out = v.decompress();
        for (b, chunk) in data.chunks(bs).enumerate() {
            let emax = reference::block_emax(chunk) as i32;
            let bound = exp2_wide(emax - 1023 - (l as i32 - 2));
            for (i, &x) in chunk.iter().enumerate() {
                let err = (x - out[b * bs + i]).abs();
                prop_assert!(
                    err < bound || (err == 0.0 && bound == 0.0),
                    "l={} bs={} value {}: err {:e} >= bound {:e}",
                    l, bs, b * bs + i, err, bound
                );
            }
        }
        let n = data.len();
        let blocks = n.div_ceil(bs);
        let eq3 = blocks * (bs * l as usize).div_ceil(32) * 4 + blocks * 4;
        prop_assert_eq!(cfg.storage_bytes(n), eq3);
        prop_assert_eq!(v.storage_bytes(), eq3);
    }

    /// Compressed size matches Eq. 3 for arbitrary lengths.
    #[test]
    fn storage_size_matches_eq3(
        cfg in config_strategy(),
        n in 0usize..5000,
    ) {
        let data = vec![0.25f64; n];
        let v = Frsz2Vector::compress(cfg, &data);
        let bs = cfg.block_size();
        let blocks = n.div_ceil(bs);
        let expected = blocks * ((bs * cfg.bits() as usize).div_ceil(32)) * 4 + blocks * 4;
        prop_assert_eq!(v.storage_bytes(), expected);
    }

    /// Nearest rounding is never less accurate than truncation, per value
    /// measured against the whole block (both use the same emax).
    #[test]
    fn nearest_no_worse_than_truncate(
        l in 3u32..=64,
        data in prop::collection::vec(-1.0f64..1.0, 1..100),
    ) {
        let t = Frsz2Vector::compress(Frsz2Config::new(32, l), &data);
        let n = Frsz2Vector::compress(
            Frsz2Config::new(32, l).with_rounding(Rounding::Nearest),
            &data,
        );
        let terr: f64 = t.decompress().iter().zip(&data).map(|(y, x)| (x - y).abs()).sum();
        let nerr: f64 = n.decompress().iter().zip(&data).map(|(y, x)| (x - y).abs()).sum();
        prop_assert!(nerr <= terr + 1e-300, "nearest {} > truncate {}", nerr, terr);
    }
}
