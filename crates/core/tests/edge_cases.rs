//! Edge-case tests for the validating `try_compress` entry point and
//! the codec's behaviour on degenerate inputs: non-finite rejection,
//! empty input, lengths not divisible by the block size, and
//! denormal-heavy blocks.

use frsz2::codec::Frsz2Error;
use frsz2::{reference, Frsz2Config, Frsz2Vector};

#[test]
fn try_compress_rejects_nan_at_first_offending_index() {
    let cfg = Frsz2Config::new(32, 21);
    let mut data = vec![0.5; 100];
    data[63] = f64::NAN;
    assert_eq!(
        Frsz2Vector::try_compress(cfg, &data).unwrap_err(),
        Frsz2Error::NonFinite(63)
    );
    // Several offenders: the first wins.
    data[7] = f64::NAN;
    assert_eq!(
        Frsz2Vector::try_compress(cfg, &data).unwrap_err(),
        Frsz2Error::NonFinite(7)
    );
}

#[test]
fn try_compress_rejects_both_infinities() {
    let cfg = Frsz2Config::default();
    assert_eq!(
        Frsz2Vector::try_compress(cfg, &[0.0, f64::INFINITY]).unwrap_err(),
        Frsz2Error::NonFinite(1)
    );
    assert_eq!(
        Frsz2Vector::try_compress(cfg, &[f64::NEG_INFINITY, 0.0]).unwrap_err(),
        Frsz2Error::NonFinite(0)
    );
    // The error is reportable.
    let msg = Frsz2Vector::try_compress(cfg, &[f64::NAN])
        .unwrap_err()
        .to_string();
    assert!(msg.contains("index 0"), "unhelpful message: {msg}");
}

#[test]
fn try_compress_accepts_extreme_finite_values() {
    let cfg = Frsz2Config::new(32, 32);
    let data = [
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::from_bits(1), // smallest positive subnormal
        0.0,
        -0.0,
    ];
    let v = Frsz2Vector::try_compress(cfg, &data).expect("finite extremes are valid input");
    assert_eq!(v.len(), data.len());
    let out = v.decompress();
    for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
        assert!(
            (a - b).abs() <= v.block_error_bound(i),
            "value {i}: {a} -> {b}"
        );
    }
}

#[test]
fn empty_input_roundtrips_through_every_entry_point() {
    for l in [4u32, 16, 21, 32, 64] {
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::try_compress(cfg, &[]).expect("empty input is valid");
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.storage_bytes(), 0);
        assert_eq!(v.decompress(), Vec::<f64>::new());
        assert!(v.exponents().is_empty());
        assert!(v.words().is_empty());
        let mut out: [f64; 0] = [];
        v.decompress_into(&mut out); // must not panic on zero-length out
    }
}

#[test]
fn lengths_not_divisible_by_block_size() {
    // One value short of a block, one value past a block, a single
    // value, and a prime length — for an aligned and an unaligned l.
    for l in [32u32, 21] {
        for n in [1usize, 31, 33, 97] {
            let cfg = Frsz2Config::new(32, l);
            let data: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() * 3.0).collect();
            let v = Frsz2Vector::try_compress(cfg, &data).unwrap();
            assert_eq!(v.exponents().len(), n.div_ceil(32), "l={l} n={n} blocks");
            // Trailing partial block agrees with the reference codec.
            let out = v.decompress();
            assert_eq!(out.len(), n);
            for (b, chunk) in data.chunks(32).enumerate() {
                let (emax, codes) = reference::compress_block(chunk, l, true);
                let expect = reference::decompress_block(emax, &codes, l);
                for (i, &x) in expect.iter().enumerate() {
                    assert_eq!(
                        out[b * 32 + i].to_bits(),
                        x.to_bits(),
                        "l={l} n={n} value {}",
                        b * 32 + i
                    );
                }
            }
        }
    }
}

#[test]
fn worst_case_error_bound_is_zero_for_zero_blocks() {
    // An all-zero block stores emax = 1 and all-zero codes; every code
    // decodes to exactly ±0, so the a-priori bound must be 0 — not the
    // spurious 2^(-1021-l) that effective_exponent(0) = 1 would give.
    for l in [4u32, 16, 21, 32, 64] {
        let cfg = Frsz2Config::new(32, l);
        assert_eq!(cfg.worst_case_abs_error(0.0), 0.0, "l={l}");
        assert_eq!(cfg.worst_case_abs_error(-0.0), 0.0, "l={l} negative zero");
        // And the codec agrees: zeros round-trip exactly.
        let zeros = vec![0.0f64; 64];
        let v = Frsz2Vector::try_compress(cfg, &zeros).unwrap();
        for (i, &d) in v.decompress().iter().enumerate() {
            assert_eq!(d.to_bits(), 0.0f64.to_bits(), "l={l} value {i}");
        }
    }
}

#[test]
fn worst_case_error_bound_handles_subnormal_block_max() {
    // Subnormal block_max: effective exponent floors at 1, the bound is
    // 2^(-1022-(l-2)) — finite, non-negative, and it must actually hold
    // for a compressed all-subnormal block.
    let subnormals: Vec<f64> = (1..=32u64)
        .map(|i| f64::from_bits(i * 0x0000_0E38_E38E_38E3))
        .collect();
    let block_max = subnormals
        .iter()
        .fold(0.0f64, |m, &v| if v.abs() > m.abs() { v } else { m });
    assert!(block_max != 0.0 && block_max.abs() < f64::MIN_POSITIVE);
    for l in [4u32, 16, 21, 32] {
        let cfg = Frsz2Config::new(32, l);
        let bound = cfg.worst_case_abs_error(block_max);
        assert!(bound.is_finite() && bound > 0.0, "l={l} bound {bound}");
        let v = Frsz2Vector::try_compress(cfg, &subnormals).unwrap();
        let out = v.decompress();
        for (i, (&a, &b)) in subnormals.iter().zip(&out).enumerate() {
            assert!(
                (a - b).abs() <= bound,
                "l={l} value {i}: err {} beyond a-priori bound {bound}",
                (a - b).abs()
            );
        }
    }
    // l > 54 retains every subnormal bit: the bound underflows to an
    // exact 0 and the round trip is indeed exact.
    let cfg64 = Frsz2Config::new(32, 64);
    assert_eq!(cfg64.worst_case_abs_error(block_max), 0.0);
    let v = Frsz2Vector::try_compress(cfg64, &subnormals).unwrap();
    for (i, (&a, &b)) in subnormals.iter().zip(&v.decompress()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "l=64 value {i} must be exact");
    }
}

#[test]
fn worst_case_error_bound_normal_values_unchanged() {
    // Regression guard for the zero-block clamp: normal inputs keep the
    // paper's 2^(emax-1023-(l-2)) bound.
    let cfg = Frsz2Config::new(32, 32);
    // block_max = 1.0 -> emax = 1023 -> bound 2^-30.
    assert_eq!(cfg.worst_case_abs_error(1.0), f64::powi(2.0, -30));
    assert_eq!(cfg.worst_case_abs_error(-1.5), f64::powi(2.0, -30));
    let cfg21 = Frsz2Config::new(32, 21);
    assert_eq!(cfg21.worst_case_abs_error(1.0), f64::powi(2.0, -19));
}

#[test]
fn denormal_heavy_blocks() {
    // A block made entirely of subnormals: emax is the floor value 1 and
    // nothing may panic, overflow a shift, or produce a non-finite
    // output.
    let subnormals: Vec<f64> = (1..=64u64)
        .map(|i| f64::from_bits(i * 0x0000_0FFF_FFFF_FFFF / 64))
        .collect();
    for l in [4u32, 16, 21, 32, 64] {
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::try_compress(cfg, &subnormals).unwrap();
        assert!(
            v.exponents().iter().all(|&e| e == 1),
            "l={l}: emax must floor at 1"
        );
        let out = v.decompress();
        for (i, (&a, &b)) in subnormals.iter().zip(&out).enumerate() {
            assert!(b.is_finite(), "l={l} value {i} not finite");
            assert!(b.abs() <= a.abs(), "l={l} value {i} grew");
            assert!(
                (a - b).abs() <= v.block_error_bound(i),
                "l={l} value {i}: err beyond block bound"
            );
        }
        // l = 64 keeps the full significand of an emax=1 block: exact.
        if l == 64 {
            for (i, (&a, &b)) in subnormals.iter().zip(&out).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "l=64 value {i} must be exact");
            }
        }
    }
}

#[test]
fn mixed_denormal_and_normal_block_flushes_denormals() {
    // A large normal value in the same block pushes emax far above the
    // subnormal range, so with l = 32 every subnormal flushes to ±0 while
    // the normal value survives within its bound.
    let mut data = vec![f64::from_bits(12345); 32];
    data[0] = 1.0e10;
    data[31] = -f64::from_bits(99);
    let cfg = Frsz2Config::new(32, 32);
    let v = Frsz2Vector::try_compress(cfg, &data).unwrap();
    let out = v.decompress();
    assert!((data[0] - out[0]).abs() <= v.block_error_bound(0));
    for (i, &b) in out.iter().enumerate().skip(1) {
        assert_eq!(b.abs(), 0.0, "value {i} should flush to zero");
    }
    // Signs survive the flush (sign bit is stored separately).
    assert!(out[31].is_sign_negative(), "flushed value keeps its sign");
}
