//! Zero-allocation guard for the fused store kernels (its own test
//! binary: the counting allocator is process-global, so no other test
//! may run concurrently in the same process).
//!
//! Satellite of the tile-allocation bugfix: the old unaligned-`l`
//! `dot_chunk`/`axpy_chunk` arms allocated a decode tile on **every**
//! call — one heap round trip per column per chunk per
//! orthogonalization pass. The word-granular kernels decode straight
//! off the packed words; this guard pins that property for every bit
//! length.

use frsz2::{Frsz2Config, Frsz2Store};
use numfmt::ColumnStorage;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn wave(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = ((i + 31 * seed) as f64 * 0.37).sin();
            x * f64::powi(2.0, ((i * 7 + seed) % 40) as i32 - 20)
        })
        .collect()
}

/// After construction, NO fused kernel path may touch the heap — for
/// any bit length, aligned or not, full or ragged tail chunks.
#[test]
fn fused_kernels_never_allocate() {
    let rows = 1024 + 32; // several blocks plus a ragged boundary
    let k = 4;
    for l in [4u32, 8, 16, 21, 32, 64] {
        let mut st = Frsz2Store::with_config(Frsz2Config::new(32, l), rows, k);
        for j in 0..k {
            st.write_column(j, &wave(rows, j));
        }
        let w = wave(rows, 3);
        let mut wv = w.clone();
        let mut out = vec![0.0; k];
        let alphas = [0.5, 0.0, -2.0, 0.25];
        // Warmup, then measure.
        let _ = st.dot_chunk(0, 0, &w);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let mut sink = 0.0;
        for _ in 0..10 {
            sink += st.dot_chunk(1, 32, &w[..rows - 32]);
            st.axpy_chunk(2, 0, -0.75, &mut wv);
            st.dots_chunk(k, 0, &w, &mut out);
            st.gemv_chunk(k, 0, &alphas, &mut wv);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "l={l}: fused kernels allocated {} times",
            after - before
        );
        assert!(sink.is_finite());

        // Compression is also tile-free: `write_column` performs no
        // heap allocation either (the rolling-register pack stages in
        // a fixed stack buffer). Same test body — a second #[test]
        // would race this one for the process-global counter.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..10 {
            st.write_column(0, &w);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(after - before, 0, "l={l}: write_column allocated");
    }
}
