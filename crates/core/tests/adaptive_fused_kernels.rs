//! Fused-kernel contract tests for the per-block adaptive store:
//! every fused kernel (`dot_chunk`, `axpy_chunk`, `dots_chunk`,
//! `gemv_chunk`) must be **bit-identical** to decompress-then-naive-BLAS
//! for every exponent spread (and hence every per-block bit-length
//! mix), chunk alignment, and tail shape — the same contract
//! `fused_kernels.rs` pins for the uniform store, now with the bit
//! length varying block by block inside one column.
//!
//! A proptest ties the whole write path back to the normative scalar
//! reference codec: whatever length the selector picks for a block,
//! the stored codes must decode exactly as `reference::compress_block`
//! at that length would.

use frsz2::adaptive_store::{DEFAULT_GUARD_BITS, PALETTE};
use frsz2::{reference, Frsz2AdaptiveStore};
use numfmt::ColumnStorage;
use proptest::prelude::*;

/// Exponent spreads that walk the whole palette: 1–10 binades keep
/// blocks at `l = 16`, ~15 forces 21, ~24 forces 32 (and mixes, since
/// the modulo phase shifts per block).
const SPREADS: [u32; 6] = [1, 4, 10, 15, 20, 24];

/// Data whose exponents cycle through `spread + 1` binades, with zeros
/// sprinkled in so the selector's nonzero-only spread scan is on the
/// hook too. Different seeds decorrelate columns and weight vectors.
fn spread_wave(n: usize, spread: u32, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if (i + seed).is_multiple_of(13) {
                return 0.0;
            }
            let x = ((i + 31 * seed) as f64 * 0.37).sin() + 1.1;
            x * f64::powi(2.0, -(((i * 7 + seed) % (spread as usize + 1)) as i32))
        })
        .collect()
}

fn store_with(spread: u32, rows: usize, cols: usize) -> Frsz2AdaptiveStore {
    let mut st = Frsz2AdaptiveStore::with_shape(rows, cols);
    for j in 0..cols {
        st.write_column(j, &spread_wave(rows, spread, j));
    }
    st
}

/// Every (row_start, len) pair the solver can produce: block-aligned
/// starts, full and ragged tails (rows = 203 ends in a 11-value block).
fn chunk_shapes(rows: usize) -> Vec<(usize, usize)> {
    let mut shapes = vec![(0, rows), (0, 32), (32, 64), (96, rows - 96), (160, 43)];
    shapes.retain(|&(s, len)| s + len <= rows);
    shapes
}

#[test]
fn fused_dot_bit_equals_decompress_then_blas() {
    let rows = 203;
    for spread in SPREADS {
        let st = store_with(spread, rows, 3);
        for j in 0..3 {
            for (start, len) in chunk_shapes(rows) {
                let w = spread_wave(len, 6, 100 + j);
                let fused = st.dot_chunk(j, start, &w);
                let mut tile = vec![0.0; len];
                st.read_chunk(j, start, &mut tile);
                let mut naive = 0.0;
                for (a, b) in tile.iter().zip(&w) {
                    naive += a * b;
                }
                assert_eq!(
                    fused.to_bits(),
                    naive.to_bits(),
                    "spread={spread} col={j} start={start} len={len}: \
                     fused {fused:e} vs naive {naive:e}"
                );
            }
        }
    }
}

#[test]
fn fused_axpy_bit_equals_decompress_then_blas() {
    let rows = 203;
    for spread in SPREADS {
        let st = store_with(spread, rows, 3);
        for j in 0..3 {
            for (start, len) in chunk_shapes(rows) {
                for alpha in [1.75, -0.3, 0.0] {
                    let w0 = spread_wave(len, 6, 7 + j);
                    let mut fused = w0.clone();
                    st.axpy_chunk(j, start, alpha, &mut fused);
                    let mut tile = vec![0.0; len];
                    st.read_chunk(j, start, &mut tile);
                    let mut naive = w0;
                    for (b, a) in naive.iter_mut().zip(&tile) {
                        *b += alpha * a;
                    }
                    for i in 0..len {
                        assert_eq!(
                            fused[i].to_bits(),
                            naive[i].to_bits(),
                            "spread={spread} col={j} start={start} len={len} \
                             alpha={alpha} row {i}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn multi_column_dots_bit_equal_per_column_kernels() {
    let rows = 203;
    let k = 5;
    for spread in SPREADS {
        let st = store_with(spread, rows, k);
        for (start, len) in chunk_shapes(rows) {
            let w = spread_wave(len, 6, 55);
            let mut fused = vec![0.0; k];
            st.dots_chunk(k, start, &w, &mut fused);
            for (j, &f) in fused.iter().enumerate() {
                let single = st.dot_chunk(j, start, &w);
                assert_eq!(
                    f.to_bits(),
                    single.to_bits(),
                    "spread={spread} col={j} start={start} len={len}"
                );
            }
        }
    }
}

#[test]
fn multi_column_gemv_bit_equal_sequential_axpys() {
    let rows = 203;
    let k = 5;
    // A zero coefficient in the middle checks the skip semantics (a
    // `+ 0.0` fold-in would flip the sign of a stored -0.0).
    let alphas = [0.5, -1.25, 0.0, 2.0, -0.125];
    for spread in SPREADS {
        let st = store_with(spread, rows, k);
        for (start, len) in chunk_shapes(rows) {
            let w0 = spread_wave(len, 6, 99);
            let mut fused = w0.clone();
            st.gemv_chunk(k, start, &alphas, &mut fused);
            let mut seq = w0;
            for (j, &a) in alphas.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                st.axpy_chunk(j, start, a, &mut seq);
            }
            for i in 0..len {
                assert_eq!(
                    fused[i].to_bits(),
                    seq[i].to_bits(),
                    "spread={spread} start={start} len={len} row {i}"
                );
            }
        }
    }
}

#[test]
fn gemv_skip_preserves_negative_zero() {
    // w holds -0.0; a gemv over columns with all-zero coefficients
    // must leave the bits untouched ((-0.0) + 0.0 would yield +0.0).
    let st = store_with(15, 64, 2);
    let mut w = vec![-0.0f64; 64];
    st.gemv_chunk(2, 0, &[0.0, 0.0], &mut w);
    for (i, v) in w.iter().enumerate() {
        assert_eq!(v.to_bits(), (-0.0f64).to_bits(), "row {i}");
    }
}

/// A column mixing all four palette lengths reports a rate strictly
/// between all-16 and all-64, and its used-word accounting is exact:
/// the sum of `block_words(l_b)` over the chosen lengths.
#[test]
fn mixed_length_column_rate_is_exact() {
    let rows = 203;
    let st = store_with(24, rows, 1);
    let ls = st.column_bit_lengths(0);
    assert!(ls.iter().any(|&l| l as u32 != ls[0] as u32), "lengths vary");
    let words: usize = ls.iter().map(|&l| l as usize).sum();
    let blocks = rows.div_ceil(32);
    let expect = (words * 32 + blocks * 40) as f64 / rows as f64;
    assert!((st.bits_per_value() - expect).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round trip against the normative reference codec: whatever `l`
    /// the selector picked for a block, the packed words must decode
    /// exactly as `reference::compress_block` at that `l` — across
    /// spreads 1–24, column lengths with ragged tails, and both
    /// chunked and random access.
    #[test]
    fn roundtrip_matches_reference_at_chosen_lengths(
        spread in 1u32..=24,
        rows in 1usize..300,
        seed in 0usize..32,
    ) {
        let v = spread_wave(rows, spread, seed);
        let mut st = Frsz2AdaptiveStore::with_shape(rows, 1);
        st.write_column(0, &v);
        let mut out = vec![0.0; rows];
        st.read_column(0, &mut out);
        for (b, chunk) in v.chunks(32).enumerate() {
            let l = st.column_bit_lengths(0)[b] as u32;
            prop_assert!(PALETTE.contains(&l));
            let (emax, codes) = reference::compress_block(chunk, l, true);
            prop_assert_eq!(st.column_exponents(0)[b], emax, "block {} emax", b);
            let expect = reference::decompress_block(emax, &codes, l);
            for (i, e) in expect.iter().enumerate() {
                let idx = b * 32 + i;
                prop_assert_eq!(
                    out[idx].to_bits(), e.to_bits(),
                    "block {} row {} (l = {})", b, i, l
                );
                prop_assert_eq!(
                    st.load(idx, 0).to_bits(), e.to_bits(),
                    "load({}) (l = {})", idx, l
                );
            }
        }
    }

    /// The selector keeps its guarantee for arbitrary spreads: every
    /// nonzero value retains `guard` significand bits unless the block
    /// needed more than the widest palette length could give (spread
    /// > 62 cannot happen here).
    #[test]
    fn guard_bits_hold_for_random_spreads(
        spread in 1u32..=24,
        rows in 1usize..300,
        seed in 0usize..32,
    ) {
        let v = spread_wave(rows, spread, seed);
        let mut st = Frsz2AdaptiveStore::with_shape(rows, 1);
        st.write_column(0, &v);
        let mut out = vec![0.0; rows];
        st.read_column(0, &mut out);
        for (i, (&x, &y)) in v.iter().zip(&out).enumerate() {
            if x == 0.0 {
                prop_assert_eq!(y, 0.0, "row {}", i);
                continue;
            }
            let rel = (x - y).abs() / x.abs();
            prop_assert!(
                rel <= f64::powi(2.0, -(DEFAULT_GUARD_BITS as i32)),
                "row {}: rel err {:e}", i, rel
            );
        }
    }
}
