//! Compression-error analysis helpers.
//!
//! Used by the quality experiments (Figs. 5–9) to relate the observed
//! GMRES convergence behaviour to the information the codec destroyed.

use crate::codec::Frsz2Config;
use crate::reference::effective_exponent;

/// Summary statistics of a lossy round trip.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// max_i |x_i - y_i|
    pub max_abs: f64,
    /// mean_i |x_i - y_i|
    pub mean_abs: f64,
    /// max_i |x_i - y_i| / |x_i| over entries with x_i != 0
    pub max_rel: f64,
    /// Number of nonzero inputs reconstructed as exactly zero
    /// (the "flushed" values of the Fig. 9b stagnation mechanism).
    pub flushed_to_zero: usize,
    /// Number of entries compared.
    pub count: usize,
}

/// Compare an original slice against its lossy reconstruction.
pub fn error_stats(original: &[f64], decoded: &[f64]) -> ErrorStats {
    assert_eq!(original.len(), decoded.len());
    let mut s = ErrorStats {
        count: original.len(),
        ..ErrorStats::default()
    };
    if original.is_empty() {
        return s;
    }
    let mut sum = 0.0;
    for (&x, &y) in original.iter().zip(decoded) {
        let err = (x - y).abs();
        sum += err;
        if err > s.max_abs {
            s.max_abs = err;
        }
        if x != 0.0 {
            let rel = err / x.abs();
            if rel > s.max_rel {
                s.max_rel = rel;
            }
            if y == 0.0 {
                s.flushed_to_zero += 1;
            }
        }
    }
    s.mean_abs = sum / original.len() as f64;
    s
}

/// Worst-case absolute error of FRSZ2 for a block whose values are
/// `block`, straight from the format definition (one ULP of the
/// truncated fraction at block scale).
pub fn block_error_bound(cfg: Frsz2Config, block: &[f64]) -> f64 {
    let emax = block
        .iter()
        .map(|&v| effective_exponent(v))
        .max()
        .unwrap_or(1) as i32;
    let e = emax - 1023 - (cfg.bits() as i32 - 2);
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

/// Exponent spread (max − min effective exponent) of a block: values whose
/// distance from the block maximum exceeds `l − 2` are flushed to zero, so
/// this is the per-block predictor of FRSZ2 information loss used by the
/// PR02R analysis (§VI-A, Fig. 10).
pub fn block_exponent_spread(block: &[f64]) -> u32 {
    let nonzero: Vec<u32> = block
        .iter()
        .filter(|&&v| v != 0.0)
        .map(|&v| effective_exponent(v))
        .collect();
    if nonzero.is_empty() {
        return 0;
    }
    let max = *nonzero.iter().max().unwrap();
    let min = *nonzero.iter().min().unwrap();
    max - min
}

/// Fraction of nonzero values in `data` that FRSZ2 with `cfg` would flush
/// to zero (their exponent sits more than `l − 2` below their block max).
pub fn predicted_flush_fraction(cfg: Frsz2Config, data: &[f64]) -> f64 {
    let bs = cfg.block_size();
    let window = cfg.bits() - 2;
    let mut nonzero = 0usize;
    let mut flushed = 0usize;
    for block in data.chunks(bs) {
        let emax = block
            .iter()
            .map(|&v| effective_exponent(v))
            .max()
            .unwrap_or(1);
        for &v in block {
            if v != 0.0 {
                nonzero += 1;
                if emax - effective_exponent(v) > window {
                    flushed += 1;
                }
            }
        }
    }
    if nonzero == 0 {
        0.0
    } else {
        flushed as f64 / nonzero as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Frsz2Vector;

    #[test]
    fn stats_on_identical_data_are_zero() {
        let x = [1.0, -2.0, 0.5];
        let s = error_stats(&x, &x);
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.mean_abs, 0.0);
        assert_eq!(s.max_rel, 0.0);
        assert_eq!(s.flushed_to_zero, 0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn stats_detect_flushes() {
        let x = [1.0, 1e-20, -3.0];
        let y = [1.0, 0.0, -3.5];
        let s = error_stats(&x, &y);
        assert_eq!(s.flushed_to_zero, 1);
        assert_eq!(s.max_abs, 0.5);
        assert_eq!(s.max_rel, 1.0); // the flushed value lost 100 %
    }

    #[test]
    fn measured_error_respects_block_bound() {
        let cfg = Frsz2Config::new(32, 16);
        let data: Vec<f64> = (0..96).map(|i| ((i as f64) * 0.531).sin()).collect();
        let v = Frsz2Vector::compress(cfg, &data);
        let dec = v.decompress();
        for (b, chunk) in data.chunks(32).enumerate() {
            let bound = block_error_bound(cfg, chunk);
            let stats = error_stats(chunk, &dec[b * 32..(b * 32 + chunk.len()).min(96)]);
            assert!(
                stats.max_abs < bound,
                "block {b}: {} >= {bound}",
                stats.max_abs
            );
        }
    }

    #[test]
    fn spread_and_flush_prediction() {
        assert_eq!(block_exponent_spread(&[1.0, 2.0, 4.0]), 2);
        assert_eq!(block_exponent_spread(&[0.0, 0.0]), 0);
        assert_eq!(block_exponent_spread(&[]), 0);

        // One value 2^-40 below the block max: flushed for l=32 (window 30)
        // but kept for l=64 (window 62).
        let mut data = vec![1.0; 32];
        data[7] = f64::powi(2.0, -40);
        assert!(predicted_flush_fraction(Frsz2Config::new(32, 32), &data) > 0.0);
        assert_eq!(
            predicted_flush_fraction(Frsz2Config::new(32, 64), &data),
            0.0
        );

        // The prediction matches what the codec actually does.
        let v = Frsz2Vector::compress(Frsz2Config::new(32, 32), &data);
        assert_eq!(v.get(7), 0.0);
    }
}
