//! Scalar reference implementation of the FRSZ2 format.
//!
//! This module is the *normative* definition: one value at a time, written
//! to match the six compression steps and four decompression steps of
//! §IV-A/§IV-B of the paper literally. The optimized block codec in
//! [`crate::codec`] is property-tested against it bit-for-bit.

use crate::{mask64, shift_signed};

/// Biased effective exponent of an all-zero (or empty) block:
/// [`effective_exponent`]`(0.0)`. Stores that pre-fill their per-block
/// exponent arrays must use this so a never-written column is
/// indistinguishable from a compressed all-zero column.
pub const ZERO_BLOCK_EXPONENT: u32 = 1;

/// Biased IEEE-754 exponent used for block alignment.
///
/// Normal values use their exponent field; subnormals and zeros behave as
/// biased exponent 1 with *no* implicit leading bit (a subnormal is
/// `0.m · 2^-1022`, which is the `e = 1` scale), so one shared shift rule
/// covers every finite input.
#[inline]
pub fn effective_exponent(v: f64) -> u32 {
    let e = ((v.to_bits() >> 52) & 0x7FF) as u32;
    e.max(1)
}

/// The 53-bit significand with the explicit leading 1 for normal values
/// (step 2 of the compression algorithm); subnormals keep their raw
/// mantissa (their leading bit is genuinely 0).
#[inline]
pub fn explicit_significand(v: f64) -> u64 {
    let bits = v.to_bits();
    let e = (bits >> 52) & 0x7FF;
    let m = bits & mask64(52);
    if e == 0 {
        m
    } else {
        (1u64 << 52) | m
    }
}

/// Maximum effective exponent of a block (step 1). An empty block reports
/// 1, the exponent of zero.
pub fn block_emax(values: &[f64]) -> u32 {
    values
        .iter()
        .map(|&v| effective_exponent(v))
        .max()
        .unwrap_or(ZERO_BLOCK_EXPONENT)
}

/// Compress one finite value against a block exponent `emax` into an
/// `l`-bit code (steps 2–5). `truncate = false` selects round-to-nearest
/// (half away from zero, saturating) — an extension; the paper truncates.
///
/// Returned code layout (LSB-justified): bit `l−1` = sign, bits
/// `l−2 … 0` = normalized significand with the integer part at bit `l−2`.
pub fn compress_value(v: f64, emax: u32, l: u32, truncate: bool) -> u64 {
    debug_assert!(v.is_finite(), "FRSZ2 input must be finite, got {v}");
    debug_assert!((2..=64).contains(&l));
    let e = effective_exponent(v);
    debug_assert!(e <= emax, "emax {emax} smaller than value exponent {e}");
    let sign = (v.to_bits() >> 63) & 1;
    let sig = explicit_significand(v);

    // Step 3: prefix k = emax - e zeros; step 5: keep the top l-1 bits of
    // the 53-bit significand. Both are one signed shift by k + (54 - l).
    let k = (emax - e) as i32;
    let shift = k + 54 - l as i32;
    let mut field = shift_signed(sig, shift);
    if !truncate && shift > 0 && shift < 64 {
        let half = 1u64 << (shift - 1);
        if sig & mask64(shift as u32) >= half {
            field += 1;
            if field > mask64(l - 1) {
                // Rounding would need a second integer bit; saturate to the
                // largest representable magnitude (== the truncated value).
                field = mask64(l - 1);
            }
        }
    }
    debug_assert!(field <= mask64(l - 1));
    (sign << (l - 1)) | field
}

/// Decompress one `l`-bit code against its block exponent (steps 1–4 of
/// the decompression algorithm).
pub fn decompress_value(c: u64, emax: u32, l: u32) -> f64 {
    debug_assert!((2..=64).contains(&l));
    let sign = (c >> (l - 1)) & 1;
    let field = c & mask64(l - 1);
    if field == 0 {
        // All inserted zeros: the value is (signed) zero.
        return if sign == 1 { -0.0 } else { 0.0 };
    }
    // Step 2: count the inserted zeros. The field is l-1 bits wide with the
    // integer part at bit l-2; k is the distance of the leading 1 from it.
    let k = field.leading_zeros() - (64 - (l - 1));
    let e_new = emax as i32 - k as i32;
    if e_new >= 1 {
        // Normal result. Move the leading 1 to bit 52, then drop it.
        let sig = shift_signed(field, l as i32 - 2 - k as i32 - 52);
        let mantissa = sig & mask64(52);
        debug_assert!(e_new < 0x7FF, "exponent overflow from corrupt emax");
        f64::from_bits((sign << 63) | ((e_new as u64) << 52) | mantissa)
    } else {
        // The leading 1 sits below the normal range: reconstruct the
        // subnormal m · 2^-1074 (truncating bits that fall off).
        let m = shift_signed(field, l as i32 - 2 - 51 - emax as i32);
        f64::from_bits((sign << 63) | (m & mask64(52)))
    }
}

/// Compress a whole block: returns `(emax, codes)` (step 6 stores these).
pub fn compress_block(values: &[f64], l: u32, truncate: bool) -> (u32, Vec<u64>) {
    let emax = block_emax(values);
    let codes = values
        .iter()
        .map(|&v| compress_value(v, emax, l, truncate))
        .collect();
    (emax, codes)
}

/// Decompress a whole block.
pub fn decompress_block(emax: u32, codes: &[u64], l: u32) -> Vec<f64> {
    codes
        .iter()
        .map(|&c| decompress_value(c, emax, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_exponent_classes() {
        assert_eq!(effective_exponent(1.0), 1023);
        assert_eq!(effective_exponent(-2.0), 1024);
        assert_eq!(effective_exponent(0.0), 1);
        assert_eq!(effective_exponent(-0.0), 1);
        assert_eq!(effective_exponent(f64::MIN_POSITIVE), 1); // min normal, e=1
        assert_eq!(effective_exponent(f64::MIN_POSITIVE / 2.0), 1); // subnormal
    }

    /// The canonical zero-block exponent is the effective exponent of
    /// zero — what `block_emax` reports for empty and all-zero blocks.
    #[test]
    fn zero_block_exponent_is_canonical() {
        assert_eq!(ZERO_BLOCK_EXPONENT, effective_exponent(0.0));
        assert_eq!(block_emax(&[]), ZERO_BLOCK_EXPONENT);
        assert_eq!(block_emax(&[0.0, -0.0]), ZERO_BLOCK_EXPONENT);
    }

    /// The worked example of Figure 3: a two-value block where the second
    /// value's significand is prefixed with k zeros before truncation.
    #[test]
    fn fig3_walkthrough() {
        // v0 = 1.5 = (1.1)_2 · 2^0, v1 = -0.375 = (1.1)_2 · 2^-2.
        let block = [1.5, -0.375];
        let l = 8;
        let (emax, codes) = compress_block(&block, l, true);
        assert_eq!(emax, 1023); // 2^0 dominates the block
                                // c0: sign 0, field = 1.100000 -> 0b0_1100000
        assert_eq!(codes[0], 0b0110_0000);
        // c1: sign 1, field = 0.011000 (k = 2 inserted zeros) -> 0b1_0011000
        assert_eq!(codes[1], 0b1001_1000);
        // Both survive the round trip exactly: 8 bits suffice here.
        let out = decompress_block(emax, &codes, l);
        assert_eq!(out, block);
    }

    #[test]
    fn exact_roundtrip_when_bits_suffice() {
        // Values whose significands fit in l-1-k bits round-trip exactly.
        let block = [0.5, 0.25, -0.75, 1.0, -1.5, 0.0, 0.625, -0.0625];
        let (emax, codes) = compress_block(&block, 16, true);
        let out = decompress_block(emax, &codes, 16);
        assert_eq!(out, block);
    }

    #[test]
    fn signed_zero_preserved() {
        let (emax, codes) = compress_block(&[0.0, -0.0], 32, true);
        let out = decompress_block(emax, &codes, 32);
        assert_eq!(out[0].to_bits(), 0.0f64.to_bits());
        assert_eq!(out[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn truncation_error_is_bounded_one_block_ulp() {
        // Random-ish irrational values; error must stay below
        // 2^(emax-1023-(l-2)) for every l.
        let block: Vec<f64> = (0..32)
            .map(|i| ((i as f64 + 0.5) * 0.701).sin() * 0.9)
            .collect();
        for l in [8u32, 12, 16, 21, 32, 48, 64] {
            let (emax, codes) = compress_block(&block, l, true);
            let out = decompress_block(emax, &codes, l);
            let ulp = f64::powi(2.0, emax as i32 - 1023 - (l as i32 - 2));
            for (i, (&a, &b)) in block.iter().zip(&out).enumerate() {
                let err = (a - b).abs();
                assert!(err < ulp, "l={l} i={i}: |{a} - {b}| = {err} >= ulp {ulp}");
                // Truncation moves toward zero, never away.
                assert!(b.abs() <= a.abs(), "l={l} i={i}: magnitude grew");
            }
        }
    }

    #[test]
    fn nearest_mode_is_at_least_as_accurate() {
        let block: Vec<f64> = (0..32).map(|i| ((i as f64) * 1.37).cos()).collect();
        for l in [10u32, 21, 32] {
            let (emax, tc) = compress_block(&block, l, true);
            let (_, nc) = compress_block(&block, l, false);
            let t = decompress_block(emax, &tc, l);
            let n = decompress_block(emax, &nc, l);
            let terr: f64 = block.iter().zip(&t).map(|(a, b)| (a - b).abs()).sum();
            let nerr: f64 = block.iter().zip(&n).map(|(a, b)| (a - b).abs()).sum();
            assert!(
                nerr <= terr,
                "l={l}: nearest {nerr} worse than truncate {terr}"
            );
        }
    }

    #[test]
    fn wide_exponent_range_flushes_small_values() {
        // PR02R-style block: exponent spread beyond l-2 bits erases the
        // small value entirely (the Fig. 9b stagnation mechanism).
        let big = 1.0; // e = 1023
        let tiny = f64::powi(2.0, -40); // k = 40 > l-2 for l = 32
        let (emax, codes) = compress_block(&[big, tiny], 32, true);
        let out = decompress_block(emax, &codes, 32);
        assert_eq!(out[0], 1.0);
        assert_eq!(
            out[1], 0.0,
            "value below the block window must flush to zero"
        );
    }

    #[test]
    fn subnormal_inputs_reconstruct() {
        let sub = f64::MIN_POSITIVE / 4.0;
        let block = [sub, -sub, f64::MIN_POSITIVE, 0.0];
        let (emax, codes) = compress_block(&block, 64, true);
        assert_eq!(emax, 1);
        let out = decompress_block(emax, &codes, 64);
        // l = 64 leaves 63 bits: plenty for exact subnormal round-trip.
        assert_eq!(out, block);
    }

    #[test]
    fn l64_roundtrip_exact_when_spread_small() {
        // With l = 64 there are 62 fraction bits: any block with exponent
        // spread <= 10 round-trips exactly. Exponents here span 2^-2..2^6.
        let block = [1.0 / 3.0, 87.654321, 100.0, -51.123456789];
        let (emax, codes) = compress_block(&block, 64, true);
        let out = decompress_block(emax, &codes, 64);
        assert_eq!(out, block);
    }

    #[test]
    fn minimal_l2_encodes_sign_and_saturation() {
        // l = 2: one sign bit + one integer bit. Representable: 0, ±2^emax.
        let (emax, codes) = compress_block(&[1.0, -1.0, 0.25], 2, true);
        assert_eq!(emax, 1023);
        let out = decompress_block(emax, &codes, 2);
        assert_eq!(out, vec![1.0, -1.0, 0.0]);
    }
}
