//! FRSZ2 — fixed-rate block-floating-point compression for `f64`.
//!
//! Reproduction of the compressor from *"FRSZ2 for In-Register Block
//! Compression Inside GMRES on GPUs"* (Grützmacher, Underwood, Di,
//! Cappello, Anzt — SC 2024). FRSZ2 groups `BS` consecutive values into a
//! block, extracts the maximum IEEE-754 exponent `emax` of the block,
//! normalizes every significand to that exponent (prefixing `k = emax − e`
//! zero bits), and stores per value only the sign bit plus the top `l − 1`
//! bits of the normalized significand:
//!
//! ```text
//! value ≈ (−1)^s · (c_{l−2} . c_{l−3} … c_0)_2 · 2^(emax − 1023)      (Eq. 2)
//! ```
//!
//! The per-block exponent lives in a separate array (design choice (5) of
//! §IV-C), so the storage cost for `n` values is
//! `⌈n/BS⌉ · ⌈BS·l/32⌉ · 4 + ⌈n/BS⌉ · 4` bytes (Eq. 3).
//!
//! Two independent implementations live here:
//!
//! * [`mod@reference`] — a scalar, value-at-a-time codec written for clarity;
//!   it is the normative definition of the format.
//! * [`codec`] — the optimized block codec with dedicated fast paths for
//!   word-aligned bit lengths (`l ∈ {8, 16, 32, 64}`) and a bit-packed
//!   path for everything else (e.g. the paper's `l = 21`), mirroring
//!   optimization (3) of §IV-C.
//!
//! Property tests assert the two agree bit-for-bit, and that the
//! worst-case error bound `2^(emax−1023−(l−2))` (one ULP of the truncated
//! fraction at block scale) holds for every input.
//!
//! # Contract
//!
//! Inputs must be finite. NaN and ±∞ have no representation in the format
//! (Krylov vectors are finite by construction); compressing them is a
//! logic error caught by `debug_assert` and the validating
//! [`Frsz2Vector::try_compress`] entry point.
//!
//! # Quick start
//!
//! ```
//! use frsz2::{Frsz2Config, Frsz2Vector};
//!
//! let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() / 3.0).collect();
//! let cfg = Frsz2Config::new(32, 32); // BS = 32, l = 32  ("frsz2_32")
//! let compressed = Frsz2Vector::compress(cfg, &data);
//!
//! // Whole-vector decompression.
//! let restored = compressed.decompress();
//! // Random access (reads only the value's block exponent + its word).
//! let one = compressed.get(617);
//! assert_eq!(one, restored[617]);
//!
//! // Error is bounded by one ULP of the fraction at *block* scale.
//! for (i, (a, b)) in data.iter().zip(&restored).enumerate() {
//!     assert!((a - b).abs() <= compressed.block_error_bound(i));
//! }
//! ```

#![warn(missing_docs)]

pub mod adaptive_store;
pub mod bitpack;
pub mod codec;
pub mod error;
pub(crate) mod kernels;
pub mod reference;
pub mod store;

pub use adaptive_store::Frsz2AdaptiveStore;
pub use codec::{Frsz2Config, Frsz2Vector, Rounding};
pub use store::Frsz2Store;

/// Mask of the low `n` bits of a `u64` (`n <= 64`).
#[inline(always)]
pub(crate) fn mask64(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Shift `v` right by `s` when `s >= 0`, left by `-s` otherwise, with
/// out-of-range shifts saturating to zero. The codec composes exponent
/// alignment and field extraction into one signed shift.
#[inline(always)]
pub(crate) fn shift_signed(v: u64, s: i32) -> u64 {
    if s >= 64 {
        0
    } else if s >= 0 {
        v >> s
    } else if s <= -64 {
        0
    } else {
        v << (-s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask64_widths() {
        assert_eq!(mask64(0), 0);
        assert_eq!(mask64(1), 1);
        assert_eq!(mask64(31), 0x7FFF_FFFF);
        assert_eq!(mask64(63), u64::MAX >> 1);
        assert_eq!(mask64(64), u64::MAX);
    }

    #[test]
    fn shift_signed_both_directions() {
        assert_eq!(shift_signed(0xF0, 4), 0x0F);
        assert_eq!(shift_signed(0x0F, -4), 0xF0);
        assert_eq!(shift_signed(1, 64), 0);
        assert_eq!(shift_signed(1, 100), 0);
        assert_eq!(shift_signed(1, -64), 0);
        assert_eq!(shift_signed(u64::MAX, 0), u64::MAX);
    }
}
