//! Optimized FRSZ2 block codec.
//!
//! Same format as [`crate::reference`] (property-tested equal), organized
//! for throughput: per-block two-pass compression (exponent scan over the
//! raw `u64` bit patterns, then encode) and dedicated storage paths for
//! word-aligned bit lengths — optimization (3) of §IV-C ("separate
//! compression and decompression routines for `l = 2^x` and `l != 2^x`").
//! Index arithmetic in the hot loops uses 32-bit integers where possible
//! (optimization (4)). Unaligned lengths no longer pay a per-element
//! word-boundary branch: both directions stream through the rolling
//! `u64`-window kernels of the crate-private `kernels` module
//! (decompression gathers each code from a two-word window, compression
//! spills whole words from a staging register), monomorphized for the
//! paper's `l ∈ {16, 21, 32}`.

use crate::bitpack;
use crate::kernels;
use crate::{mask64, shift_signed};

const MASK52: u64 = (1u64 << 52) - 1;

/// Rounding applied when truncating the normalized significand to `l − 1`
/// bits. The paper's format truncates (step 5); `Nearest` is an extension
/// used by the rounding-ablation benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Drop the low bits (the paper's step 5).
    #[default]
    Truncate,
    /// Round half away from zero, saturating at the field maximum.
    Nearest,
}

/// Compression error returned by the validating entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frsz2Error {
    /// Input contained NaN or ±∞ at the given index.
    NonFinite(usize),
}

impl std::fmt::Display for Frsz2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frsz2Error::NonFinite(i) => {
                write!(f, "FRSZ2 input value at index {i} is not finite")
            }
        }
    }
}

impl std::error::Error for Frsz2Error {}

/// FRSZ2 format parameters: block size `BS` and bit length `l`.
///
/// The paper mandates `BS = 32` on NVIDIA GPUs (warp width, §IV-C) and
/// evaluates `l ∈ {16, 21, 32}`; this implementation accepts any
/// `BS >= 1` and `2 <= l <= 64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frsz2Config {
    block_size: u32,
    bits: u32,
    rounding: Rounding,
}

impl Default for Frsz2Config {
    /// `frsz2_32`: the configuration the paper recommends.
    fn default() -> Self {
        Frsz2Config::new(32, 32)
    }
}

impl Frsz2Config {
    /// Create a configuration with the paper's truncating rounding.
    ///
    /// # Panics
    /// If `block_size == 0` or `bits` is outside `2..=64`.
    pub fn new(block_size: u32, bits: u32) -> Self {
        assert!(block_size >= 1, "block size must be positive");
        assert!((2..=64).contains(&bits), "bit length must be in 2..=64");
        Frsz2Config {
            block_size,
            bits,
            rounding: Rounding::Truncate,
        }
    }

    /// The same configuration with a different rounding mode.
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// Values per block (`BS`).
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size as usize
    }

    /// Stored bits per value (`l`).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Rounding mode applied when truncating significands.
    #[inline]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// `u32` words holding the codes of one (full) block.
    #[inline]
    pub fn words_per_block(&self) -> usize {
        bitpack::words_for(self.block_size as usize, self.bits)
    }

    /// Number of blocks covering `n` values.
    #[inline]
    pub fn blocks_for(&self, n: usize) -> usize {
        n.div_ceil(self.block_size as usize)
    }

    /// Total `u32` code words for `n` values (trailing block padded).
    #[inline]
    pub fn words_for_len(&self, n: usize) -> usize {
        self.blocks_for(n) * self.words_per_block()
    }

    /// Storage bytes for `n` values: code words plus one `u32` exponent
    /// per block (Eq. 3 of the paper).
    pub fn storage_bytes(&self, n: usize) -> usize {
        (self.words_for_len(n) + self.blocks_for(n)) * 4
    }

    /// Average bits per value including the amortized block exponent.
    /// For `BS = 32`, `l = 32` this is the paper's 33 bits/value.
    pub fn bits_per_value(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.storage_bytes(n) as f64 * 8.0 / n as f64
    }

    /// Worst-case absolute error for a value in a block whose largest
    /// magnitude is `block_max`: one ULP of the truncated fraction at
    /// block scale, `2^(emax − 1023 − (l − 2))`.
    ///
    /// Edge cases: an all-zero block (`block_max == 0`) compresses
    /// exactly, so the bound is 0 — not the spurious `2^(-1021-l)` a
    /// naive read of the formula would give (zero's *effective*
    /// exponent is 1, but there is no fraction to truncate). A
    /// subnormal `block_max` also has effective exponent 1 and the
    /// formula stays valid: once `l > 54` every subnormal bit is
    /// retained and `exp2i` underflows the bound to exactly 0.
    pub fn worst_case_abs_error(&self, block_max: f64) -> f64 {
        if block_max == 0.0 {
            return 0.0;
        }
        let emax = crate::reference::effective_exponent(block_max) as i32;
        exp2i(emax - 1023 - (self.bits as i32 - 2))
    }

    /// Short name in the paper's nomenclature, e.g. `frsz2_32`.
    pub fn name(&self) -> String {
        format!("frsz2_{}", self.bits)
    }
}

/// `2^e` for possibly far-out-of-range `e`, without `powi` edge surprises.
#[inline]
fn exp2i(e: i32) -> f64 {
    if e >= 1024 {
        f64::INFINITY
    } else if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

/// Encode the raw bits of one finite `f64` against `emax` (shared by all
/// storage paths; same math as `reference::compress_value`).
#[inline(always)]
pub(crate) fn encode_bits(bits: u64, emax: u32, l: u32, nearest: bool) -> u64 {
    let e = ((bits >> 52) & 0x7FF) as u32;
    let sign = bits >> 63;
    let m = bits & MASK52;
    let (e_eff, sig) = if e == 0 {
        (1, m)
    } else {
        (e, m | (1u64 << 52))
    };
    let shift = (emax - e_eff) as i32 + 54 - l as i32;
    let mut field = shift_signed(sig, shift);
    if nearest && shift > 0 && shift < 64 {
        let half = 1u64 << (shift - 1);
        if sig & mask64(shift as u32) >= half {
            field += 1;
            if field > mask64(l - 1) {
                field = mask64(l - 1);
            }
        }
    }
    (sign << (l - 1)) | field
}

/// Decode one `l`-bit code against its block exponent (shared by all
/// storage paths; same math as `reference::decompress_value`).
#[inline(always)]
pub(crate) fn decode_code(c: u64, emax: u32, l: u32) -> f64 {
    let sign = (c >> (l - 1)) & 1;
    let field = c & mask64(l - 1);
    if field == 0 {
        return f64::from_bits(sign << 63);
    }
    // count_zero intrinsic of §IV-C: position of the first retained 1.
    let k = field.leading_zeros() - (64 - (l - 1));
    let e_new = emax as i32 - k as i32;
    if e_new >= 1 {
        let sig = shift_signed(field, l as i32 - 2 - k as i32 - 52);
        f64::from_bits((sign << 63) | ((e_new as u64) << 52) | (sig & MASK52))
    } else {
        let m = shift_signed(field, l as i32 - 2 - 51 - emax as i32);
        f64::from_bits((sign << 63) | (m & MASK52))
    }
}

/// Compress `input` into caller-provided storage.
///
/// `words.len() >= cfg.words_for_len(input.len())` and
/// `exps.len() >= cfg.blocks_for(input.len())`. Word regions of partial
/// trailing blocks are zero-filled so buffers are fully initialized.
pub fn compress_into(cfg: Frsz2Config, input: &[f64], words: &mut [u32], exps: &mut [u32]) {
    let bs = cfg.block_size as usize;
    let l = cfg.bits;
    let wpb = cfg.words_per_block();
    let nearest = cfg.rounding == Rounding::Nearest;
    debug_assert!(words.len() >= cfg.words_for_len(input.len()));
    debug_assert!(exps.len() >= cfg.blocks_for(input.len()));

    for (b, chunk) in input.chunks(bs).enumerate() {
        // Pass 1 (step 1): the block's maximum effective exponent. On the
        // GPU this is the warp-shuffle butterfly reduction; here it is a
        // plain scan over the raw exponent fields — the `e = 0 → 1`
        // effective-exponent fixup folds into the `max` with the
        // initial 1, so the loop body is two shifts and a max.
        let mut emax = crate::reference::ZERO_BLOCK_EXPONENT;
        for &v in chunk {
            debug_assert!(v.is_finite(), "FRSZ2 input must be finite");
            emax = emax.max(((v.to_bits() >> 52) & 0x7FF) as u32);
        }
        exps[b] = emax;

        // Pass 2 (steps 2-6): encode and store.
        let block_words = &mut words[b * wpb..(b + 1) * wpb];
        if chunk.len() < bs {
            block_words.fill(0);
        }
        match l {
            64 => {
                for (i, &v) in chunk.iter().enumerate() {
                    let c = encode_bits(v.to_bits(), emax, 64, nearest);
                    block_words[2 * i] = c as u32;
                    block_words[2 * i + 1] = (c >> 32) as u32;
                }
            }
            l if l <= 32 => {
                // Aligned or not, codes stream through the rolling-u64
                // staging register of `kernels`: a batch-encoded code
                // buffer feeds a spill loop that writes each packed
                // word exactly once (no read-modify-write, no
                // per-element word-boundary branching).
                kernels::pack_block(l, emax, nearest, chunk, block_words);
            }
            l => {
                kernels::pack_fields_wide(l, emax, nearest, chunk, block_words);
            }
        }
    }
}

/// Decompress values `row_start .. row_start + out.len()`.
///
/// `row_start` must be block-aligned; the range must lie within `len`.
pub fn decompress_range(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    len: usize,
    row_start: usize,
    out: &mut [f64],
) {
    if out.is_empty() {
        return;
    }
    let bs = cfg.block_size as usize;
    assert!(
        row_start.is_multiple_of(bs),
        "row_start must be block-aligned"
    );
    assert!(
        row_start + out.len() <= len,
        "range beyond compressed length"
    );
    kernels::decode_range(cfg, words, exps, row_start, out);
}

/// Random access to value `i` (§IV-B: only the block exponent is needed
/// in addition to the value's own code word(s)).
pub fn get(cfg: Frsz2Config, words: &[u32], exps: &[u32], i: usize) -> f64 {
    let bs = cfg.block_size as usize;
    let l = cfg.bits;
    let wpb = cfg.words_per_block();
    let b = i / bs;
    let j = i % bs;
    let emax = exps[b];
    let block_words = &words[b * wpb..(b + 1) * wpb];
    let c = match l {
        32 => block_words[j] as u64,
        16 => ((block_words[j / 2] >> (((j & 1) as u32) * 16)) & 0xFFFF) as u64,
        8 => ((block_words[j / 4] >> (((j & 3) as u32) * 8)) & 0xFF) as u64,
        64 => block_words[2 * j] as u64 | ((block_words[2 * j + 1] as u64) << 32),
        l => bitpack::read_bits(block_words, j * l as usize, l),
    };
    decode_code(c, emax, l)
}

/// An owned FRSZ2-compressed vector: code words plus the separate
/// per-block exponent array.
#[derive(Clone, Debug)]
pub struct Frsz2Vector {
    cfg: Frsz2Config,
    len: usize,
    words: Vec<u32>,
    exps: Vec<u32>,
}

impl Frsz2Vector {
    /// Compress `data`. Panics in debug builds on non-finite input; use
    /// [`Frsz2Vector::try_compress`] to validate.
    pub fn compress(cfg: Frsz2Config, data: &[f64]) -> Self {
        let mut words = vec![0u32; cfg.words_for_len(data.len())];
        let mut exps = vec![0u32; cfg.blocks_for(data.len())];
        compress_into(cfg, data, &mut words, &mut exps);
        Frsz2Vector {
            cfg,
            len: data.len(),
            words,
            exps,
        }
    }

    /// Validating compression: rejects NaN/±∞ inputs.
    pub fn try_compress(cfg: Frsz2Config, data: &[f64]) -> Result<Self, Frsz2Error> {
        if let Some(i) = data.iter().position(|v| !v.is_finite()) {
            return Err(Frsz2Error::NonFinite(i));
        }
        Ok(Self::compress(cfg, data))
    }

    /// Decompress the whole vector into a fresh allocation.
    pub fn decompress(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        self.decompress_into(&mut out);
        out
    }

    /// Decompress the whole vector into `out` (must match `len`).
    pub fn decompress_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len);
        decompress_range(self.cfg, &self.words, &self.exps, self.len, 0, out);
    }

    /// Decompress a block-aligned sub-range.
    pub fn decompress_range(&self, row_start: usize, out: &mut [f64]) {
        decompress_range(self.cfg, &self.words, &self.exps, self.len, row_start, out);
    }

    /// Random access to element `i`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len);
        get(self.cfg, &self.words, &self.exps, i)
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The format parameters this vector was compressed with.
    pub fn config(&self) -> Frsz2Config {
        self.cfg
    }

    /// Compressed size in bytes (Eq. 3).
    pub fn storage_bytes(&self) -> usize {
        (self.words.len() + self.exps.len()) * 4
    }

    /// Achieved bits per value including block exponents.
    pub fn bits_per_value(&self) -> f64 {
        self.cfg.bits_per_value(self.len)
    }

    /// Worst-case absolute error for the block containing element `i`,
    /// from that block's stored exponent.
    pub fn block_error_bound(&self, i: usize) -> f64 {
        let emax = self.exps[i / self.cfg.block_size as usize] as i32;
        exp2i(emax - 1023 - (self.cfg.bits as i32 - 2))
    }

    /// Stored per-block biased exponents.
    pub fn exponents(&self) -> &[u32] {
        &self.exps
    }

    /// Raw code words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn wave(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.61).sin() * 0.8).collect()
    }

    #[test]
    fn matches_reference_for_all_paths() {
        let data = wave(100); // 3 full blocks + partial block of 4
        for l in [8u32, 16, 21, 32, 64, 11, 48] {
            let cfg = Frsz2Config::new(32, l);
            let v = Frsz2Vector::compress(cfg, &data);
            for (b, chunk) in data.chunks(32).enumerate() {
                let (emax, codes) = reference::compress_block(chunk, l, true);
                assert_eq!(v.exponents()[b], emax, "l={l} block {b} emax");
                let expect = reference::decompress_block(emax, &codes, l);
                for (i, &x) in expect.iter().enumerate() {
                    let got = v.get(b * 32 + i);
                    assert_eq!(got.to_bits(), x.to_bits(), "l={l} value {}", b * 32 + i);
                }
            }
        }
    }

    #[test]
    fn range_and_full_decompression_agree() {
        let data = wave(256);
        let cfg = Frsz2Config::new(32, 21);
        let v = Frsz2Vector::compress(cfg, &data);
        let full = v.decompress();
        let mut range = vec![0.0; 64];
        v.decompress_range(96, &mut range);
        assert_eq!(&full[96..160], &range[..]);
        // Partial trailing reads work too.
        let mut tail = [0.0; 16];
        v.decompress_range(224, &mut tail[..]);
        assert_eq!(&full[224..240], &tail[..]);
    }

    #[test]
    fn storage_matches_eq3() {
        // Paper: BS=32, l=32 -> (32*32+32)/32 = 33 bits per value.
        let cfg = Frsz2Config::new(32, 32);
        assert_eq!(cfg.storage_bytes(32), 33 * 4);
        assert!((cfg.bits_per_value(3200) - 33.0).abs() < 1e-12);
        // l=21: 21 words of codes + 1 exponent word per 32 values.
        let cfg21 = Frsz2Config::new(32, 21);
        assert_eq!(cfg21.words_per_block(), 21);
        assert_eq!(cfg21.storage_bytes(32), 22 * 4);
        assert!((cfg21.bits_per_value(3200) - 22.0).abs() < 1e-12);
        // l=16 halves the code storage.
        assert_eq!(Frsz2Config::new(32, 16).storage_bytes(32), 17 * 4);
    }

    #[test]
    fn partial_trailing_block() {
        let data = wave(37);
        let cfg = Frsz2Config::new(32, 32);
        let v = Frsz2Vector::compress(cfg, &data);
        assert_eq!(v.exponents().len(), 2);
        let out = v.decompress();
        for (i, (&a, &b)) in data.iter().zip(&out).enumerate() {
            assert!((a - b).abs() <= v.block_error_bound(i), "value {i}");
        }
    }

    #[test]
    fn try_compress_rejects_non_finite() {
        let cfg = Frsz2Config::default();
        assert_eq!(
            Frsz2Vector::try_compress(cfg, &[1.0, f64::NAN]).unwrap_err(),
            Frsz2Error::NonFinite(1)
        );
        assert_eq!(
            Frsz2Vector::try_compress(cfg, &[f64::INFINITY]).unwrap_err(),
            Frsz2Error::NonFinite(0)
        );
        assert!(Frsz2Vector::try_compress(cfg, &[1.0, -2.0]).is_ok());
    }

    #[test]
    fn empty_input() {
        let v = Frsz2Vector::compress(Frsz2Config::default(), &[]);
        assert!(v.is_empty());
        assert_eq!(v.decompress(), Vec::<f64>::new());
        assert_eq!(v.storage_bytes(), 0);
    }

    #[test]
    fn error_bound_holds_per_block() {
        let data: Vec<f64> = (0..640)
            .map(|i| ((i as f64) * 0.713).sin() * f64::powi(10.0, (i % 7) - 3))
            .collect();
        for l in [16u32, 21, 32] {
            let v = Frsz2Vector::compress(Frsz2Config::new(32, l), &data);
            let out = v.decompress();
            for i in 0..data.len() {
                let err = (data[i] - out[i]).abs();
                assert!(
                    err < v.block_error_bound(i),
                    "l={l} i={i}: err {err} bound {}",
                    v.block_error_bound(i)
                );
            }
        }
    }

    #[test]
    fn different_block_sizes() {
        let data = wave(300);
        for bs in [1u32, 4, 8, 16, 32, 64, 128, 256] {
            let cfg = Frsz2Config::new(bs, 32);
            let v = Frsz2Vector::compress(cfg, &data);
            let out = v.decompress();
            for i in 0..data.len() {
                assert!(
                    (data[i] - out[i]).abs() <= v.block_error_bound(i),
                    "bs={bs} i={i}"
                );
            }
        }
    }

    #[test]
    fn smaller_blocks_never_less_accurate() {
        // Smaller blocks have tighter emax, so per-value error can only
        // shrink; checks the BS quality/throughput trade-off direction.
        let data: Vec<f64> = (0..256)
            .map(|i| ((i as f64) * 0.917).cos() * f64::powi(2.0, (i % 13) - 6))
            .collect();
        let err = |bs: u32| -> f64 {
            let v = Frsz2Vector::compress(Frsz2Config::new(bs, 32), &data);
            let out = v.decompress();
            data.iter().zip(&out).map(|(a, b)| (a - b).abs()).sum()
        };
        let (e8, e32, e128) = (err(8), err(32), err(128));
        assert!(e8 <= e32 + 1e-300, "BS=8 ({e8}) worse than BS=32 ({e32})");
        assert!(
            e32 <= e128 + 1e-300,
            "BS=32 ({e32}) worse than BS=128 ({e128})"
        );
    }

    #[test]
    fn exp2i_edges() {
        assert_eq!(exp2i(0), 1.0);
        assert_eq!(exp2i(-1022), f64::MIN_POSITIVE);
        assert_eq!(exp2i(-1074), f64::from_bits(1));
        assert_eq!(exp2i(-1075), 0.0);
        assert_eq!(exp2i(1023), f64::MAX / (2.0 - f64::EPSILON));
        assert_eq!(exp2i(1024), f64::INFINITY);
    }
}
