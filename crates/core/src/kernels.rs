//! Branch-free, word-granular fused FRSZ2 kernels.
//!
//! Every hot loop in this module walks a block's packed code words
//! through a **rolling `u64` window**: field `i` of an `l`-bit stream
//! (`l <= 32`) lives in at most two adjacent `u32` words, so
//!
//! ```text
//! code_i = ((w[p] | w[p+1] << 32) >> (i·l mod 32)) & mask(l)      p = ⌊i·l / 32⌋
//! ```
//!
//! extracts it with two loads, one shift and one mask — no per-element
//! branching on word boundaries and no intermediate decode tile, which
//! is what the paper's §IV-B means by decompression "in registers".
//! The one wrinkle is the block's final word: a field that lies
//! entirely inside it must not gather the (nonexistent) word after the
//! block, so each block loop is split at [`two_word_fields`] into a
//! two-word prefix and a single-word suffix — a split computed once
//! per block, never per element.
//!
//! The same window runs in reverse for compression:
//! [`pack_fields_le32`] accumulates codes into a `u64` staging register
//! and spills whole 32-bit words as they fill, so packed words are
//! written exactly once and never read back (no read-modify-write as
//! in [`crate::bitpack::write_bits`]). Codes are batch-encoded into a
//! stack buffer first (independent per value, so the branch-free
//! encoder vectorizes), and for a full 32-code batch of a
//! monomorphized length the spill loop fully unrolls with every flush
//! point a compile-time constant.
//!
//! All entry points are monomorphized over `const L: u32` with `L = 0`
//! meaning "runtime bit length": call sites dispatch the paper's
//! lengths (`16`, `21`, `32`) to dedicated instances via
//! [`dispatch_l!`] and fall back to one shared runtime-`l` instance
//! for everything else, so every `l` gets a fused kernel and only the
//! common ones pay compile time. For the word-aligned `L ∈ {16, 32}`
//! the window collapses at compile time to the direct single-load
//! form (`⌊i·l/32⌋` and `i·l mod 32` are constant-foldable), keeping
//! those instances as fast as hand-written aligned loops. Bit lengths
//! above 32 take the wide-field path ([`wide_code`]) — still fused,
//! still tile-free, just without the two-word window (a >32-bit field
//! can straddle three words).
//!
//! # Bit-identity contract
//!
//! These kernels change *how* codes are extracted, never *what* is
//! computed from them: extraction is exact (the same code bits reach
//! [`crate::codec::decode_code`]) and every accumulation visits
//! elements in row order with one accumulator per output, exactly like
//! the scalar reference loops they replace. Fused results are
//! therefore bit-identical to decompress-then-BLAS — property-tested
//! in `tests/fused_kernels.rs` and enforced at run time by the
//! `bench_json` fused-vs-reference fingerprint groups.

use crate::codec::{decode_code, encode_bits, Frsz2Config};
use crate::{bitpack, mask64};

const MASK52: u64 = (1u64 << 52) - 1;

/// Number of leading fields in a block whose two-word gather stays
/// inside the block's `wpb` words. Fields past this point start in the
/// final word and fit entirely within it.
#[inline(always)]
fn two_word_fields(count: usize, l: u32, wpb: usize) -> usize {
    if wpb < 2 {
        return 0;
    }
    // Field i loads words ⌊i·l/32⌋ and ⌊i·l/32⌋ + 1; the latter is in
    // bounds while i·l <= 32·(wpb − 1) − 1.
    count.min((32 * (wpb - 1) - 1) / l as usize + 1)
}

/// Two-word window gather: the 64-bit little-endian view of the stream
/// at `bitpos`, shifted so the field starts at bit 0 (caller masks).
#[inline(always)]
fn gather2(bw: &[u32], bitpos: usize) -> u64 {
    let p = bitpos >> 5;
    ((bw[p] as u64) | ((bw[p + 1] as u64) << 32)) >> (bitpos & 31)
}

/// Extract field `i` of a wide (`l > 32`) stream; may touch three
/// words, so it goes through the generic bit reader.
#[inline(always)]
fn wide_code(bw: &[u32], i: usize, l: u32) -> u64 {
    if l == 64 {
        // Word-aligned: two direct loads.
        bw[2 * i] as u64 | ((bw[2 * i + 1] as u64) << 32)
    } else {
        bitpack::read_bits(bw, i * l as usize, l)
    }
}

/// Dispatch a runtime bit length to the monomorphized instances for
/// the paper's `l ∈ {16, 21, 32}` or the shared runtime instance
/// (`L = 0`) otherwise.
macro_rules! dispatch_l {
    ($l:expr, $func:ident($($args:expr),* $(,)?)) => {
        match $l {
            16 => $func::<16>($($args),*),
            21 => $func::<21>($($args),*),
            32 => $func::<32>($($args),*),
            _ => $func::<0>($($args),*),
        }
    };
}

/// Resolve the compile-time/runtime bit-length split: `L = 0` means
/// "use the runtime value".
#[inline(always)]
fn resolve_l<const L: u32>(l_rt: u32) -> u32 {
    if L == 0 {
        l_rt
    } else {
        debug_assert_eq!(L, l_rt);
        L
    }
}

/// The decode loop core (`l <= 32`): feed `f(i, code_i)` the first
/// `count` fields of one block, in row order. The `L ∈ {16, 32}`
/// instances constant-fold to direct aligned loads; everything else
/// runs the two-word window with the per-block prefix/suffix split.
#[inline(always)]
fn for_each_code<const L: u32>(
    l_rt: u32,
    wpb: usize,
    bw: &[u32],
    count: usize,
    mut f: impl FnMut(usize, u64),
) {
    let l = resolve_l::<L>(l_rt);
    if L == 32 {
        // The window collapses to one direct load per field.
        for (i, &c) in bw[..count].iter().enumerate() {
            f(i, c as u64);
        }
    } else {
        let m = mask64(l);
        if L != 0 && count == 32 && bw.len() == L as usize {
            // Full paper block (BS = 32) of a monomorphized length:
            // trip counts and every bit offset are compile-time
            // constants, so the unrolled loop has no per-element index
            // arithmetic or bounds checks left.
            let nt = two_word_fields(32, L, L as usize);
            for i in 0..nt {
                f(i, gather2(bw, i * L as usize) & m);
            }
            let (last, base) = (bw[L as usize - 1] as u64, (L as usize - 1) * 32);
            for i in nt..32 {
                f(i, (last >> (i * L as usize - base)) & m);
            }
        } else {
            let nt = two_word_fields(count, l, wpb);
            for i in 0..nt {
                f(i, gather2(bw, i * l as usize) & m);
            }
            if nt < count {
                let (last, base) = (bw[wpb - 1] as u64, (wpb - 1) * 32);
                for i in nt..count {
                    f(i, (last >> (i * l as usize - base)) & m);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-block primitives (l <= 32 window path).
// ---------------------------------------------------------------------

/// Decode one block's leading `out.len()` values from its packed words.
#[inline(always)]
fn decode_block_le32<const L: u32>(l_rt: u32, wpb: usize, bw: &[u32], emax: u32, out: &mut [f64]) {
    let l = resolve_l::<L>(l_rt);
    for_each_code::<L>(l, wpb, bw, out.len(), |i, c| {
        out[i] = decode_code(c, emax, l);
    });
}

/// Fused decompress-and-dot over one block: `acc += Σ_i vᵢ · wᵢ`,
/// accumulating in row order (bit-compatible with decode-then-dot).
#[inline(always)]
fn dot_block_le32<const L: u32>(
    l_rt: u32,
    wpb: usize,
    bw: &[u32],
    emax: u32,
    w: &[f64],
    acc: &mut f64,
) {
    let l = resolve_l::<L>(l_rt);
    let mut a = *acc;
    for_each_code::<L>(l, wpb, bw, w.len(), |i, c| {
        a += decode_code(c, emax, l) * w[i];
    });
    *acc = a;
}

/// Fused decompress-and-axpy over one block: `wᵢ += alpha · vᵢ`.
#[inline(always)]
fn axpy_block_le32<const L: u32>(
    l_rt: u32,
    wpb: usize,
    bw: &[u32],
    emax: u32,
    alpha: f64,
    w: &mut [f64],
) {
    let l = resolve_l::<L>(l_rt);
    for_each_code::<L>(l, wpb, bw, w.len(), |i, c| {
        w[i] += alpha * decode_code(c, emax, l);
    });
}

/// Truncating encode for `l <= 54`: [`encode_bits`] with the
/// saturating shift reduced to `min(shift, 63)` — exact because the
/// 53-bit significand is exhausted by any shift ≥ 53, and `shift =
/// (emax − e_eff) + 54 − l` is non-negative for `l <= 54`. Branch-free.
#[inline(always)]
fn encode_trunc(bits: u64, emax: u32, l: u32) -> u64 {
    let e = ((bits >> 52) & 0x7FF) as u32;
    let sign = bits >> 63;
    let m = bits & MASK52;
    let e_eff = e | u32::from(e == 0);
    let sig = m | (u64::from(e != 0) << 52);
    let shift = ((emax - e_eff) as u64 + 54 - l as u64).min(63);
    (sign << (l - 1)) | (sig >> shift)
}

/// Pack one block's codes through the rolling `u64` staging register
/// (`l <= 32`): every covered word is written exactly once and never
/// read back. The spill is predicate-advanced rather than branched —
/// the fill pattern (`staged >= 32` roughly `l/32` of the time) would
/// otherwise mispredict for every unaligned `l`. Words past the last
/// code are left untouched (the caller zero-fills partial trailing
/// blocks first).
#[inline(always)]
fn pack_fields_le32<const L: u32>(
    l_rt: u32,
    emax: u32,
    nearest: bool,
    chunk: &[f64],
    bw: &mut [u32],
) {
    let l = resolve_l::<L>(l_rt);
    let mut acc: u64 = 0;
    let mut staged: u32 = 0;
    let mut wi = 0usize;
    // Stage in two steps: encode a batch of codes into a stack buffer
    // (independent per value — the compiler vectorizes the branch-free
    // encoder), then spill the batch through the rolling register
    // (serial, but only shift/or/store ops on the critical chain).
    let mut codes = [0u64; 32];
    for batch in chunk.chunks(32) {
        if nearest {
            // Rounding ablation path: rare, keeps the full encoder.
            for (c, &v) in codes.iter_mut().zip(batch) {
                *c = encode_bits(v.to_bits(), emax, l, true);
            }
        } else {
            for (c, &v) in codes.iter_mut().zip(batch) {
                *c = encode_trunc(v.to_bits(), emax, l);
            }
        }
        if L != 0 && batch.len() == 32 && wi + L as usize <= bw.len() {
            // Full 32-code batch of a monomorphized length: it spans
            // exactly `L` words starting word-aligned (32·L bits), so
            // the spill loop fully unrolls with every flush point a
            // compile-time constant.
            debug_assert_eq!(staged, 0);
            let out = &mut bw[wi..wi + L as usize];
            let mut wj = 0usize;
            for &c in &codes {
                acc |= c << staged;
                staged += L;
                if staged >= 32 {
                    out[wj] = acc as u32;
                    wj += 1;
                    acc >>= 32;
                    staged -= 32;
                }
            }
            wi += L as usize;
        } else {
            for &c in &codes[..batch.len()] {
                // staged <= 31 and l <= 32, so the shifted code always
                // fits.
                acc |= c << staged;
                staged += l;
                if staged >= 32 {
                    bw[wi] = acc as u32;
                    wi += 1;
                    acc >>= 32;
                    staged -= 32;
                }
            }
        }
    }
    if staged > 0 {
        bw[wi] = acc as u32;
    }
}

// ---------------------------------------------------------------------
// Chunk-level drivers (all bit lengths).
// ---------------------------------------------------------------------

/// Decompress `out.len()` values of a column starting at block-aligned
/// `row_start`, straight off the packed words — no tile buffer for any
/// bit length.
pub(crate) fn decode_range(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    row_start: usize,
    out: &mut [f64],
) {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    let first_block = row_start / bs;
    for (ob, chunk) in out.chunks_mut(bs).enumerate() {
        let b = first_block + ob;
        let emax = exps[b];
        let bw = &words[b * wpb..(b + 1) * wpb];
        if l <= 32 {
            dispatch_l!(l, decode_block_le32(l, wpb, bw, emax, chunk));
        } else {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = decode_code(wide_code(bw, i, l), emax, l);
            }
        }
    }
}

/// Fused dot product `Σ_i column[row_start + i] · w[i]` for any bit
/// length; one accumulator, row order, no intermediate buffer.
pub(crate) fn dot_chunk(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    row_start: usize,
    w: &[f64],
) -> f64 {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    debug_assert_eq!(row_start % bs, 0);
    let first_block = row_start / bs;
    let mut acc = 0.0;
    for (ob, wc) in w.chunks(bs).enumerate() {
        let b = first_block + ob;
        let emax = exps[b];
        let bw = &words[b * wpb..(b + 1) * wpb];
        if l <= 32 {
            dispatch_l!(l, dot_block_le32(l, wpb, bw, emax, wc, &mut acc));
        } else {
            for (i, &wv) in wc.iter().enumerate() {
                acc += decode_code(wide_code(bw, i, l), emax, l) * wv;
            }
        }
    }
    acc
}

/// Fused axpy `w[i] += alpha · column[row_start + i]` for any bit
/// length.
pub(crate) fn axpy_chunk(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    row_start: usize,
    alpha: f64,
    w: &mut [f64],
) {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    debug_assert_eq!(row_start % bs, 0);
    let first_block = row_start / bs;
    for (ob, wc) in w.chunks_mut(bs).enumerate() {
        let b = first_block + ob;
        let emax = exps[b];
        let bw = &words[b * wpb..(b + 1) * wpb];
        if l <= 32 {
            dispatch_l!(l, axpy_block_le32(l, wpb, bw, emax, alpha, wc));
        } else {
            for (i, wv) in wc.iter_mut().enumerate() {
                *wv += alpha * decode_code(wide_code(bw, i, l), emax, l);
            }
        }
    }
}

/// Multi-column fused dots: `out[j] += Σ_i V[row_start + i, j] · w[i]`
/// for `j < k`, sweeping all `k` columns per 32-value block so each
/// block of `w` is loaded once instead of `k` times. Each `out[j]`
/// accumulates its column in row order — bit-identical to `k`
/// independent [`dot_chunk`] calls. Columns live at strides
/// `col_words` / `col_blocks` in `words` / `exps`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dots_chunk(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    col_words: usize,
    col_blocks: usize,
    k: usize,
    row_start: usize,
    w: &[f64],
    out: &mut [f64],
) {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    debug_assert_eq!(row_start % bs, 0);
    let first_block = row_start / bs;
    out[..k].fill(0.0);
    for (ob, wc) in w.chunks(bs).enumerate() {
        let b = first_block + ob;
        for (j, acc) in out[..k].iter_mut().enumerate() {
            let emax = exps[j * col_blocks + b];
            let base = j * col_words + b * wpb;
            let bw = &words[base..base + wpb];
            if l <= 32 {
                dispatch_l!(l, dot_block_le32(l, wpb, bw, emax, wc, acc));
            } else {
                for (i, &wv) in wc.iter().enumerate() {
                    *acc += decode_code(wide_code(bw, i, l), emax, l) * wv;
                }
            }
        }
    }
}

/// Multi-column fused update: `w[i] += Σ_j alphas[j] · V[row_start + i, j]`,
/// sweeping all `k` columns per block so each block of `w` is loaded
/// and stored once instead of `k` times. Zero coefficients are skipped
/// entirely (never folded in as `+ 0.0`, which could flip a signed
/// zero), and per element the columns apply in `j` order — both
/// bit-compatible with `k` sequential [`axpy_chunk`] calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemv_chunk(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    col_words: usize,
    col_blocks: usize,
    k: usize,
    row_start: usize,
    alphas: &[f64],
    w: &mut [f64],
) {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    debug_assert_eq!(row_start % bs, 0);
    let first_block = row_start / bs;
    for (ob, wc) in w.chunks_mut(bs).enumerate() {
        let b = first_block + ob;
        for (j, &a) in alphas.iter().enumerate().take(k) {
            if a == 0.0 {
                continue;
            }
            let emax = exps[j * col_blocks + b];
            let base = j * col_words + b * wpb;
            let bw = &words[base..base + wpb];
            if l <= 32 {
                dispatch_l!(l, axpy_block_le32(l, wpb, bw, emax, a, wc));
            } else {
                for (i, wv) in wc.iter_mut().enumerate() {
                    *wv += a * decode_code(wide_code(bw, i, l), emax, l);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Multi-RHS drivers (block solves: one decode sweep, `nw` vectors).
// ---------------------------------------------------------------------

/// Rows per cache sub-window of the multi-RHS drivers, in blocks. The
/// accumulators (`dots`) or the interleaved vectors (`gemv`) of one
/// sub-window stay resident while all `k` columns stream past, so the
/// compressed basis is still decoded exactly once per sweep but the
/// `k × nw` running sums are reloaded only once per sub-window instead
/// of once per block. Pure access reordering — accumulation order per
/// `(column, vector)` is untouched, so bits don't depend on it.
const MANY_SUBWINDOW_BLOCKS: usize = 32;

/// Vectors per stack-accumulator tile of the multi-RHS drivers. Splits
/// very wide blocks into register-friendly strips; per-`(j, t)`
/// accumulation order is again unaffected.
const MANY_NW_TILE: usize = 64;

/// Fused decompress-and-dots over one block against `nw` interleaved
/// vectors: `accs[t] += Σ_i vᵢ · wrows[i·nw + t]` for `t <
/// accs.len()`, each accumulator in row order (bit-compatible with
/// decode-then-dot per vector). `wrows` starts at the block's first
/// row, already offset to the accumulator tile's first vector.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dot_many_block_le32<const L: u32>(
    l_rt: u32,
    wpb: usize,
    bw: &[u32],
    emax: u32,
    wrows: &[f64],
    nw: usize,
    count: usize,
    accs: &mut [f64],
) {
    let l = resolve_l::<L>(l_rt);
    let tl = accs.len();
    for_each_code::<L>(l, wpb, bw, count, |i, c| {
        let v = decode_code(c, emax, l);
        let row = &wrows[i * nw..i * nw + tl];
        for (a, &wv) in accs.iter_mut().zip(row) {
            *a += v * wv;
        }
    });
}

/// Fused decompress-and-axpy over one block into `nw` interleaved
/// vectors: `wrows[i·nw + t] += al[t] · vᵢ`, skipping `t` with
/// `al[t] == 0.0` (signed-zero preservation, matching
/// [`gemv_chunk`]'s contract per vector).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn axpy_many_block_le32<const L: u32>(
    l_rt: u32,
    wpb: usize,
    bw: &[u32],
    emax: u32,
    al: &[f64],
    wrows: &mut [f64],
    nw: usize,
    count: usize,
) {
    let l = resolve_l::<L>(l_rt);
    let tl = al.len();
    for_each_code::<L>(l, wpb, bw, count, |i, c| {
        let v = decode_code(c, emax, l);
        let row = &mut wrows[i * nw..i * nw + tl];
        for (wv, &a) in row.iter_mut().zip(al) {
            if a != 0.0 {
                *wv += a * v;
            }
        }
    });
}

/// Multi-column, multi-RHS fused dots:
/// `out[j·nw + t] = Σ_i V[row_start + i, j] · ws[i·nw + t]` — the
/// block-Arnoldi projection `H = VᵀW` over one row chunk, with `ws`
/// holding `nw` vectors interleaved row-major. Every stored block is
/// decoded once for all `nw` vectors and each `out[j·nw + t]`
/// accumulates in row order with one accumulator — bit-identical to
/// `nw` independent [`dots_chunk`] calls on deinterleaved vectors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dots_many_chunk(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    col_words: usize,
    col_blocks: usize,
    k: usize,
    row_start: usize,
    ws: &[f64],
    nw: usize,
    out: &mut [f64],
) {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    debug_assert_eq!(row_start % bs, 0);
    debug_assert_eq!(ws.len() % nw, 0);
    let len = ws.len() / nw;
    let first_block = row_start / bs;
    out[..k * nw].fill(0.0);
    let sw_rows = MANY_SUBWINDOW_BLOCKS * bs;
    for t0 in (0..nw).step_by(MANY_NW_TILE) {
        let tl = MANY_NW_TILE.min(nw - t0);
        let mut row0 = 0usize;
        while row0 < len {
            let sw_len = sw_rows.min(len - row0);
            let sb = first_block + row0 / bs;
            for j in 0..k {
                let mut accs = [0.0f64; MANY_NW_TILE];
                accs[..tl].copy_from_slice(&out[j * nw + t0..j * nw + t0 + tl]);
                let mut off = 0usize;
                while off < sw_len {
                    let count = bs.min(sw_len - off);
                    let b = sb + off / bs;
                    let emax = exps[j * col_blocks + b];
                    let base = j * col_words + b * wpb;
                    let bw = &words[base..base + wpb];
                    let wrows = &ws[(row0 + off) * nw + t0..];
                    if l <= 32 {
                        dispatch_l!(
                            l,
                            dot_many_block_le32(
                                l,
                                wpb,
                                bw,
                                emax,
                                wrows,
                                nw,
                                count,
                                &mut accs[..tl]
                            )
                        );
                    } else {
                        for i in 0..count {
                            let v = decode_code(wide_code(bw, i, l), emax, l);
                            for (a, &wv) in accs[..tl].iter_mut().zip(&wrows[i * nw..i * nw + tl]) {
                                *a += v * wv;
                            }
                        }
                    }
                    off += count;
                }
                out[j * nw + t0..j * nw + t0 + tl].copy_from_slice(&accs[..tl]);
            }
            row0 += sw_len;
        }
    }
}

/// Multi-column, multi-RHS fused update:
/// `ws[i·nw + t] += Σ_j alphas[j·nw + t] · V[row_start + i, j]` — the
/// block projection update `W ← W − VH` (callers pass `alphas = −H`).
/// Every stored block is decoded once for all `nw` vectors; per
/// element of each vector, columns apply one at a time in ascending
/// `j` and `(j, t)` pairs with a zero coefficient are skipped —
/// bit-identical to `nw` independent [`gemv_chunk`] calls on
/// deinterleaved vectors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemv_many_chunk(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    col_words: usize,
    col_blocks: usize,
    k: usize,
    row_start: usize,
    alphas: &[f64],
    nw: usize,
    ws: &mut [f64],
) {
    let bs = cfg.block_size();
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    debug_assert_eq!(row_start % bs, 0);
    debug_assert_eq!(ws.len() % nw, 0);
    let len = ws.len() / nw;
    let first_block = row_start / bs;
    let sw_rows = MANY_SUBWINDOW_BLOCKS * bs;
    for t0 in (0..nw).step_by(MANY_NW_TILE) {
        let tl = MANY_NW_TILE.min(nw - t0);
        let mut row0 = 0usize;
        while row0 < len {
            let sw_len = sw_rows.min(len - row0);
            let sb = first_block + row0 / bs;
            for j in 0..k {
                let al = &alphas[j * nw + t0..j * nw + t0 + tl];
                if al.iter().all(|&a| a == 0.0) {
                    continue;
                }
                let mut off = 0usize;
                while off < sw_len {
                    let count = bs.min(sw_len - off);
                    let b = sb + off / bs;
                    let emax = exps[j * col_blocks + b];
                    let base = j * col_words + b * wpb;
                    let bw = &words[base..base + wpb];
                    let wrows = &mut ws[(row0 + off) * nw + t0..];
                    if l <= 32 {
                        dispatch_l!(
                            l,
                            axpy_many_block_le32(l, wpb, bw, emax, al, wrows, nw, count)
                        );
                    } else {
                        for i in 0..count {
                            let v = decode_code(wide_code(bw, i, l), emax, l);
                            for (wv, &a) in wrows[i * nw..i * nw + tl].iter_mut().zip(al) {
                                if a != 0.0 {
                                    *wv += a * v;
                                }
                            }
                        }
                    }
                    off += count;
                }
            }
            row0 += sw_len;
        }
    }
}

// ---------------------------------------------------------------------
// Per-block entry points (variable-rate stores pick `l` per block).
// ---------------------------------------------------------------------

/// Decode one block's leading `out.len()` values for a per-block bit
/// length (`2 <= l <= 64`). `bw` must be exactly the block's
/// full-block word span (`words_per_block(l)`), zero-padded past the
/// last code for partial trailing blocks.
#[inline]
pub(crate) fn decode_block(l: u32, bw: &[u32], emax: u32, out: &mut [f64]) {
    if l <= 32 {
        dispatch_l!(l, decode_block_le32(l, bw.len(), bw, emax, out));
    } else {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = decode_code(wide_code(bw, i, l), emax, l);
        }
    }
}

/// Fused decompress-and-dot over one block at a per-block bit length:
/// `acc += Σ_i vᵢ · wᵢ`, row order (bit-compatible with
/// [`decode_block`] followed by a plain dot).
#[inline]
pub(crate) fn dot_block(l: u32, bw: &[u32], emax: u32, w: &[f64], acc: &mut f64) {
    if l <= 32 {
        dispatch_l!(l, dot_block_le32(l, bw.len(), bw, emax, w, acc));
    } else {
        for (i, &wv) in w.iter().enumerate() {
            *acc += decode_code(wide_code(bw, i, l), emax, l) * wv;
        }
    }
}

/// Fused decompress-and-axpy over one block at a per-block bit length:
/// `wᵢ += alpha · vᵢ`.
#[inline]
pub(crate) fn axpy_block(l: u32, bw: &[u32], emax: u32, alpha: f64, w: &mut [f64]) {
    if l <= 32 {
        dispatch_l!(l, axpy_block_le32(l, bw.len(), bw, emax, alpha, w));
    } else {
        for (i, wv) in w.iter_mut().enumerate() {
            *wv += alpha * decode_code(wide_code(bw, i, l), emax, l);
        }
    }
}

/// Fused decompress-and-dots over one block at a per-block bit length
/// against `nw` interleaved vectors: `accs[t] += Σ_i vᵢ ·
/// wrows[i·nw + t]`, each accumulator in row order (bit-compatible
/// with [`dot_block`] per deinterleaved vector). `wrows` starts at the
/// block's first row, pre-offset to the accumulator tile's vector 0.
#[inline]
pub(crate) fn dot_many_block(
    l: u32,
    bw: &[u32],
    emax: u32,
    wrows: &[f64],
    nw: usize,
    count: usize,
    accs: &mut [f64],
) {
    if l <= 32 {
        dispatch_l!(
            l,
            dot_many_block_le32(l, bw.len(), bw, emax, wrows, nw, count, accs)
        );
    } else {
        let tl = accs.len();
        for i in 0..count {
            let v = decode_code(wide_code(bw, i, l), emax, l);
            for (a, &wv) in accs.iter_mut().zip(&wrows[i * nw..i * nw + tl]) {
                *a += v * wv;
            }
        }
    }
}

/// Fused decompress-and-axpy over one block at a per-block bit length
/// into `nw` interleaved vectors: `wrows[i·nw + t] += al[t] · vᵢ`,
/// skipping zero coefficients (bit-compatible with [`axpy_block`] per
/// deinterleaved vector).
#[inline]
pub(crate) fn axpy_many_block(
    l: u32,
    bw: &[u32],
    emax: u32,
    al: &[f64],
    wrows: &mut [f64],
    nw: usize,
    count: usize,
) {
    if l <= 32 {
        dispatch_l!(
            l,
            axpy_many_block_le32(l, bw.len(), bw, emax, al, wrows, nw, count)
        );
    } else {
        let tl = al.len();
        for i in 0..count {
            let v = decode_code(wide_code(bw, i, l), emax, l);
            for (wv, &a) in wrows[i * nw..i * nw + tl].iter_mut().zip(al) {
                if a != 0.0 {
                    *wv += a * v;
                }
            }
        }
    }
}

/// Pack one block for any `l <= 32` through the `u64` staging
/// register, aligned lengths included (`l = 64` keeps its dedicated
/// store loop in `compress_into`; other `l > 32` take
/// [`pack_fields_wide`]).
#[inline]
pub(crate) fn pack_block(l: u32, emax: u32, nearest: bool, chunk: &[f64], bw: &mut [u32]) {
    debug_assert!(l <= 32);
    dispatch_l!(l, pack_fields_le32(l, emax, nearest, chunk, bw));
}

/// Pack one block of wide fields (`32 < l < 64`, not word-aligned)
/// through a `u128` staging register — same single-write-per-word
/// discipline as [`pack_block`], widened so a 63-bit code always fits
/// above the 31 staged bits.
pub(crate) fn pack_fields_wide(l: u32, emax: u32, nearest: bool, chunk: &[f64], bw: &mut [u32]) {
    debug_assert!(l > 32 && l < 64);
    let mut acc: u128 = 0;
    let mut staged: u32 = 0;
    let mut wi = 0usize;
    for &v in chunk {
        acc |= (encode_bits(v.to_bits(), emax, l, nearest) as u128) << staged;
        staged += l;
        while staged >= 32 {
            bw[wi] = acc as u32;
            wi += 1;
            acc >>= 32;
            staged -= 32;
        }
    }
    if staged > 0 {
        bw[wi] = acc as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The branch-free truncating encoder must agree with the general
    /// [`encode_bits`] for every operand class (normal, subnormal,
    /// zero, both signs, saturating shifts).
    #[test]
    fn encode_trunc_matches_encode_bits() {
        let values = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.7,
            1e-300,
            -1e300,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::from_bits(1),       // smallest subnormal
        ];
        for &v in &values {
            let bits = v.to_bits();
            let ve = crate::reference::effective_exponent(v);
            for emax in [ve, ve + 1, ve + 40, ve + 200, 2046] {
                for l in [2u32, 8, 16, 21, 32] {
                    assert_eq!(
                        encode_trunc(bits, emax, l),
                        encode_bits(bits, emax, l, false),
                        "v={v:e} emax={emax} l={l}"
                    );
                }
            }
        }
    }

    /// The predicate-advanced packer writes the same words as the
    /// generic bit writer for every `l <= 32`, full and partial blocks.
    #[test]
    fn pack_matches_write_bits() {
        let data: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.73).sin() * 3.0).collect();
        for l in [2u32, 4, 5, 8, 11, 16, 21, 31, 32] {
            for count in [1usize, 7, 31, 32] {
                let chunk = &data[..count];
                let emax = chunk
                    .iter()
                    .map(|v| crate::reference::effective_exponent(*v))
                    .max()
                    .unwrap();
                let wpb = bitpack::words_for(32, l);
                let mut expect = vec![0u32; wpb];
                for (i, &v) in chunk.iter().enumerate() {
                    let c = encode_bits(v.to_bits(), emax, l, false);
                    bitpack::write_bits(&mut expect, i * l as usize, l, c);
                }
                let mut got = vec![0u32; wpb];
                pack_block(l, emax, false, chunk, &mut got);
                assert_eq!(got, expect, "l={l} count={count}");
            }
        }
    }
}
