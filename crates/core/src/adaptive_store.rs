//! Per-block adaptive-`l` FRSZ2 column storage.
//!
//! §VII of the paper names the fixed whole-basis bit length as FRSZ2's
//! main open problem: one `l` for every block means wide-exponent-range
//! data (the PR02R regime) flushes to zero under `frsz2_16` even though
//! most 32-value blocks are locally smooth and would compress fine.
//! [`Frsz2AdaptiveStore`] closes that gap by choosing `l` per block
//! from the block's own exponent *spread*: a block whose nonzero values
//! span `s` binades keeps every value to at least `guard_bits`
//! significand bits by picking the smallest palette length with
//! `l − 2 ≥ s + guard_bits`.
//!
//! Storage layout follows the uniform [`crate::store::Frsz2Store`]
//! (separate code-word and block-exponent arrays, design choice (5) of
//! §IV-C) with two additions: a per-block bit-length byte and a
//! per-block word offset, because blocks are packed back-to-back at
//! their own width (block `b` occupies exactly `words_per_block(l_b)`
//! words). Kernels touch only the used words of each block, so memory
//! traffic — and the reported [`ColumnStorage::bits_per_value`] — track
//! the actual per-column rate, not the worst-case capacity.
//!
//! All fused accessors reuse the word-granular per-block kernels (any
//! `l ≤ 64`) and keep the accessor contracts: single accumulator in row
//! order for dots, ascending-`j` column application with zero-alpha
//! skip for gemv — bit-identical to decode-then-BLAS.

use crate::codec::{decode_code, encode_bits};
use crate::kernels;
use crate::reference::ZERO_BLOCK_EXPONENT;
use numfmt::ColumnStorage;

/// Fixed FRSZ2 block size (the paper's warp width).
const BS: usize = 32;

/// Bit lengths the per-block selector may pick, ascending. The first
/// three are the paper's evaluated lengths; `64` is the lossless
/// fallback for blocks whose spread exceeds what `frsz2_32` retains.
pub const PALETTE: [u32; 4] = [16, 21, 32, 64];

/// Default minimum significand bits retained by the *smallest* nonzero
/// value of a block (see [`Frsz2AdaptiveStore::with_guard`]).
pub const DEFAULT_GUARD_BITS: u32 = 4;

/// Words occupied by one full 32-value block at bit length `l`
/// (`ceil(32·l/32) = l` for every palette length).
#[inline(always)]
fn block_words(l: u32) -> usize {
    l as usize
}

/// Smallest palette length keeping `guard` significand bits for a
/// value `spread` binades below the block maximum; saturates at 64
/// (beyond 58 binades of spread even the widest code flushes the
/// deepest values — unavoidable within a 64-bit field).
#[inline]
fn l_for_spread(spread: u32, guard: u32) -> u32 {
    *PALETTE
        .iter()
        .find(|&&l| l - 2 >= spread + guard)
        .unwrap_or(&64)
}

/// Column-major matrix of FRSZ2 columns with a per-block bit length.
#[derive(Clone, Debug)]
pub struct Frsz2AdaptiveStore {
    rows: usize,
    cols: usize,
    col_blocks: usize,
    /// Capacity stride of `words` per column (all blocks at `l = 64`).
    col_words_cap: usize,
    guard_bits: u32,
    words: Vec<u32>,
    /// Per-block maximum effective exponent, stride `col_blocks`.
    exps: Vec<u32>,
    /// Per-block chosen bit length, stride `col_blocks`.
    ls: Vec<u8>,
    /// Per-block word offset within the column, stride `col_blocks`.
    offs: Vec<u32>,
    /// Words actually used by each column's packed blocks.
    used: Vec<u32>,
}

impl Frsz2AdaptiveStore {
    /// Allocate with an explicit guard-bit budget (`guard_bits ≤ 14`,
    /// so a zero-spread block still picks the cheapest length).
    pub fn with_guard(rows: usize, cols: usize, guard_bits: u32) -> Self {
        assert!(guard_bits <= 14, "guard_bits {guard_bits} > 14");
        let col_blocks = rows.div_ceil(BS);
        let col_words_cap = col_blocks * block_words(64);
        let min_l = PALETTE[0];
        // Initial state is exactly what compressing all-zero columns
        // produces: every block at the cheapest length, zero words,
        // the canonical zero-block exponent.
        let mut offs = vec![0u32; col_blocks * cols];
        for (i, o) in offs.iter_mut().enumerate() {
            *o = ((i % col_blocks.max(1)) * block_words(min_l)) as u32;
        }
        Frsz2AdaptiveStore {
            rows,
            cols,
            col_blocks,
            col_words_cap,
            guard_bits,
            words: vec![0u32; col_words_cap * cols],
            exps: vec![ZERO_BLOCK_EXPONENT; col_blocks * cols],
            ls: vec![min_l as u8; col_blocks * cols],
            offs,
            used: vec![(col_blocks * block_words(min_l)) as u32; cols],
        }
    }

    /// Guard-bit budget of the per-block length selector.
    pub fn guard_bits(&self) -> u32 {
        self.guard_bits
    }

    /// Per-block bit lengths of column `j` (diagnostics/tests).
    pub fn column_bit_lengths(&self, j: usize) -> &[u8] {
        &self.ls[j * self.col_blocks..(j + 1) * self.col_blocks]
    }

    /// Per-block exponents of column `j` (diagnostics/tests).
    pub fn column_exponents(&self, j: usize) -> &[u32] {
        &self.exps[j * self.col_blocks..(j + 1) * self.col_blocks]
    }

    /// Packed words of column `j`, used span only (diagnostics/tests).
    pub fn column_words(&self, j: usize) -> &[u32] {
        &self.words[j * self.col_words_cap..j * self.col_words_cap + self.used[j] as usize]
    }

    /// `(l, word offset, emax)` of block `b` in column `j`.
    #[inline(always)]
    fn block_meta(&self, j: usize, b: usize) -> (u32, usize, u32) {
        let p = j * self.col_blocks + b;
        (self.ls[p] as u32, self.offs[p] as usize, self.exps[p])
    }

    /// Packed words of block `b` in column `j`.
    #[inline(always)]
    fn block_span(&self, j: usize, b: usize) -> (u32, &[u32], u32) {
        let (l, off, emax) = self.block_meta(j, b);
        let base = j * self.col_words_cap + off;
        (l, &self.words[base..base + block_words(l)], emax)
    }
}

impl ColumnStorage for Frsz2AdaptiveStore {
    fn with_shape(rows: usize, cols: usize) -> Self {
        Frsz2AdaptiveStore::with_guard(rows, cols, DEFAULT_GUARD_BITS)
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn write_column(&mut self, j: usize, data: &[f64]) {
        assert_eq!(data.len(), self.rows, "column length mismatch");
        assert!(j < self.cols, "column index {j} out of range");
        let guard = self.guard_bits;
        let base = j * self.col_words_cap;
        let meta = j * self.col_blocks;
        let mut off = 0usize;
        for (b, chunk) in data.chunks(BS).enumerate() {
            // Pass 1: the block's maximum effective exponent plus — new
            // here — the minimum over *nonzero* values, whose distance
            // to the maximum is the spread the length selector sees.
            // Zeros are exact at every length, so they don't widen it.
            let mut emax = ZERO_BLOCK_EXPONENT;
            let mut emin = u32::MAX;
            for &v in chunk {
                debug_assert!(v.is_finite(), "FRSZ2 input must be finite");
                let e = (((v.to_bits() >> 52) & 0x7FF) as u32).max(1);
                emax = emax.max(e);
                if v != 0.0 {
                    emin = emin.min(e);
                }
            }
            let spread = if emin == u32::MAX { 0 } else { emax - emin };
            let l = l_for_spread(spread, guard);
            self.exps[meta + b] = emax;
            self.ls[meta + b] = l as u8;
            self.offs[meta + b] = off as u32;

            // Pass 2: encode and store at the chosen length.
            let bw = &mut self.words[base + off..base + off + block_words(l)];
            if chunk.len() < BS {
                bw.fill(0);
            }
            if l == 64 {
                for (i, &v) in chunk.iter().enumerate() {
                    let c = encode_bits(v.to_bits(), emax, 64, false);
                    bw[2 * i] = c as u32;
                    bw[2 * i + 1] = (c >> 32) as u32;
                }
            } else {
                kernels::pack_block(l, emax, false, chunk, bw);
            }
            off += block_words(l);
        }
        self.used[j] = off as u32;
    }

    #[inline]
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]) {
        if out.is_empty() {
            return;
        }
        assert!(
            row_start.is_multiple_of(BS),
            "row_start must be block-aligned"
        );
        assert!(row_start + out.len() <= self.rows, "range beyond column");
        let first_block = row_start / BS;
        for (ob, chunk) in out.chunks_mut(BS).enumerate() {
            let (l, bw, emax) = self.block_span(j, first_block + ob);
            kernels::decode_block(l, bw, emax, chunk);
        }
    }

    #[inline]
    fn load(&self, i: usize, j: usize) -> f64 {
        let (l, bw, emax) = self.block_span(j, i / BS);
        let idx = i % BS;
        let c = match l {
            32 => bw[idx] as u64,
            16 => ((bw[idx / 2] >> (((idx & 1) as u32) * 16)) & 0xFFFF) as u64,
            64 => bw[2 * idx] as u64 | ((bw[2 * idx + 1] as u64) << 32),
            l => crate::bitpack::read_bits(bw, idx * l as usize, l),
        };
        decode_code(c, emax, l)
    }

    fn chunk_align(&self) -> usize {
        BS
    }

    /// Fused decompress-and-dot straight off the packed words, each
    /// block at its own bit length. Single accumulator, row order.
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        debug_assert!(row_start.is_multiple_of(BS));
        let first_block = row_start / BS;
        let mut acc = 0.0;
        for (ob, wc) in w.chunks(BS).enumerate() {
            let (l, bw, emax) = self.block_span(j, first_block + ob);
            kernels::dot_block(l, bw, emax, wc, &mut acc);
        }
        acc
    }

    /// Fused decompress-and-axpy; see [`Frsz2AdaptiveStore::dot_chunk`].
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        debug_assert!(row_start.is_multiple_of(BS));
        let first_block = row_start / BS;
        for (ob, wc) in w.chunks_mut(BS).enumerate() {
            let (l, bw, emax) = self.block_span(j, first_block + ob);
            kernels::axpy_block(l, bw, emax, alpha, wc);
        }
    }

    /// Multi-column fused dots: all `k` columns swept per block so each
    /// block of `w` is loaded once. Bit-identical to `k` independent
    /// [`Frsz2AdaptiveStore::dot_chunk`] calls.
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        debug_assert!(k <= self.cols);
        debug_assert!(row_start.is_multiple_of(BS));
        let first_block = row_start / BS;
        out[..k].fill(0.0);
        for (ob, wc) in w.chunks(BS).enumerate() {
            let b = first_block + ob;
            for (j, acc) in out[..k].iter_mut().enumerate() {
                let (l, bw, emax) = self.block_span(j, b);
                kernels::dot_block(l, bw, emax, wc, acc);
            }
        }
    }

    /// Multi-column fused update with the accessor's zero-alpha skip
    /// (signed zeros survive). Bit-identical to `k` sequential
    /// [`Frsz2AdaptiveStore::axpy_chunk`] calls.
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        debug_assert!(k <= self.cols);
        debug_assert!(row_start.is_multiple_of(BS));
        let first_block = row_start / BS;
        for (ob, wc) in w.chunks_mut(BS).enumerate() {
            let b = first_block + ob;
            for (j, &a) in alphas.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let (l, bw, emax) = self.block_span(j, b);
                kernels::axpy_block(l, bw, emax, a, wc);
            }
        }
    }

    /// Multi-column, multi-RHS fused dots: each block is decoded once
    /// (at its own bit length) for all `nw` interleaved vectors.
    /// Bit-identical to `nw` independent
    /// [`Frsz2AdaptiveStore::dots_chunk`] calls on deinterleaved
    /// vectors.
    fn dots_many_chunk(&self, k: usize, row_start: usize, ws: &[f64], nw: usize, out: &mut [f64]) {
        debug_assert!(k <= self.cols);
        debug_assert!(row_start.is_multiple_of(BS));
        debug_assert_eq!(ws.len() % nw, 0);
        let len = ws.len() / nw;
        let first_block = row_start / BS;
        out[..k * nw].fill(0.0);
        let mut off = 0usize;
        while off < len {
            let count = BS.min(len - off);
            let b = first_block + off / BS;
            for j in 0..k {
                let (l, bw, emax) = self.block_span(j, b);
                kernels::dot_many_block(
                    l,
                    bw,
                    emax,
                    &ws[off * nw..],
                    nw,
                    count,
                    &mut out[j * nw..(j + 1) * nw],
                );
            }
            off += count;
        }
    }

    /// Multi-column, multi-RHS fused update with the accessor's
    /// per-`(column, vector)` zero-coefficient skip. Bit-identical to
    /// `nw` independent [`Frsz2AdaptiveStore::gemv_chunk`] calls.
    fn gemv_many_chunk(
        &self,
        k: usize,
        row_start: usize,
        alphas: &[f64],
        nw: usize,
        ws: &mut [f64],
    ) {
        debug_assert!(k <= self.cols);
        debug_assert!(row_start.is_multiple_of(BS));
        debug_assert_eq!(ws.len() % nw, 0);
        let len = ws.len() / nw;
        let first_block = row_start / BS;
        let mut off = 0usize;
        while off < len {
            let count = BS.min(len - off);
            let b = first_block + off / BS;
            for j in 0..k {
                let al = &alphas[j * nw..(j + 1) * nw];
                if al.iter().all(|&a| a == 0.0) {
                    continue;
                }
                let (l, bw, emax) = self.block_span(j, b);
                kernels::axpy_many_block(l, bw, emax, al, &mut ws[off * nw..], nw, count);
            }
            off += count;
        }
    }

    /// A variable-rate store has no single column size; report the
    /// across-column average of the *used* bytes (code words + block
    /// exponents + one bit-length byte per block) — the figure the
    /// solver's traffic model needs.
    fn column_bytes(&self) -> usize {
        if self.cols == 0 {
            return 0;
        }
        let word_bytes: usize = self.used.iter().map(|&u| u as usize * 4).sum();
        let meta_bytes = self.col_blocks * 5 * self.cols;
        (word_bytes + meta_bytes) / self.cols
    }

    /// Exact average rate over all columns (the default would re-derive
    /// it from the rounded per-column byte average).
    fn bits_per_value(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        let word_bits: usize = self.used.iter().map(|&u| u as usize * 32).sum();
        let meta_bits = self.col_blocks * 40 * self.cols;
        (word_bits + meta_bits) as f64 / (self.rows * self.cols) as f64
    }

    fn format_name(&self) -> String {
        "frsz2_ab".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    /// ~`binades` of exponent range across the column, smooth locally.
    fn ramped(n: usize, binades: f64, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let s = ((i + 31 * seed) as f64 * 0.37).sin() + 1.5;
                s * (binades * i as f64 / n.max(1) as f64).exp2()
            })
            .collect()
    }

    #[test]
    fn length_selector_is_monotone_in_spread() {
        let mut prev = 0;
        for spread in 0..70 {
            let l = l_for_spread(spread, DEFAULT_GUARD_BITS);
            assert!(PALETTE.contains(&l));
            assert!(l >= prev, "selector must not narrow as spread grows");
            if l < 64 {
                assert!(l - 2 >= spread + DEFAULT_GUARD_BITS);
            }
            prev = l;
        }
        assert_eq!(l_for_spread(0, DEFAULT_GUARD_BITS), 16);
        assert_eq!(l_for_spread(30, DEFAULT_GUARD_BITS), 64);
    }

    /// A narrow-spread column stays at the cheapest length; a column
    /// with one wide block widens exactly that block.
    #[test]
    fn per_block_lengths_track_local_spread() {
        let mut st = Frsz2AdaptiveStore::with_shape(128, 1);
        let mut v = ramped(128, 2.0, 0);
        st.write_column(0, &v);
        assert!(st.column_bit_lengths(0).iter().all(|&l| l == 16));

        v[40] *= (40.0f64).exp2(); // block 1 now spans ~40 binades
        st.write_column(0, &v);
        let ls = st.column_bit_lengths(0);
        assert_eq!(ls[1], 64);
        assert!(ls[0] == 16 && ls[2] == 16 && ls[3] == 16);
    }

    /// Every stored value keeps `guard_bits` of relative accuracy —
    /// the flush-to-zero failure mode of fixed `frsz2_16` is gone.
    #[test]
    fn guard_bits_bound_relative_error() {
        let n = 203; // ragged tail
        let v = ramped(n, 24.0, 3);
        let mut st = Frsz2AdaptiveStore::with_shape(n, 1);
        st.write_column(0, &v);
        let mut out = vec![0.0; n];
        st.read_column(0, &mut out);
        for (i, (&x, &y)) in v.iter().zip(&out).enumerate() {
            let rel = (x - y).abs() / x.abs();
            assert!(
                rel <= (-(DEFAULT_GUARD_BITS as f64)).exp2(),
                "row {i}: rel err {rel:e}"
            );
        }
    }

    /// Decoded values match the scalar reference at each block's
    /// chosen length, bit for bit (truncation mode).
    #[test]
    fn decode_matches_reference_per_block() {
        let n = 170;
        let v = ramped(n, 18.0, 7);
        let mut st = Frsz2AdaptiveStore::with_shape(n, 1);
        st.write_column(0, &v);
        let mut out = vec![0.0; n];
        st.read_column(0, &mut out);
        for (b, chunk) in v.chunks(BS).enumerate() {
            let l = st.column_bit_lengths(0)[b] as u32;
            let (emax, codes) = reference::compress_block(chunk, l, true);
            assert_eq!(st.column_exponents(0)[b], emax);
            let expect = reference::decompress_block(emax, &codes, l);
            for (i, e) in expect.iter().enumerate() {
                assert_eq!(
                    out[b * BS + i].to_bits(),
                    e.to_bits(),
                    "block {b} row {i} (l = {l})"
                );
            }
        }
    }

    /// The unwritten-column state is exactly the compressed-zeros
    /// state: same lengths, exponents, and words.
    #[test]
    fn unwritten_column_matches_compressed_zeros() {
        let mut st = Frsz2AdaptiveStore::with_shape(70, 2);
        st.write_column(0, &vec![0.0; 70]);
        assert_eq!(st.column_bit_lengths(1), st.column_bit_lengths(0));
        assert_eq!(st.column_exponents(1), st.column_exponents(0));
        assert_eq!(st.column_words(1), st.column_words(0));
        let mut out = vec![1.0; 70];
        st.read_column(1, &mut out);
        assert!(out.iter().all(|&x| x == 0.0 && x.is_sign_positive()));
    }

    /// Rewriting a column with different per-block lengths must fully
    /// replace the old layout (offsets shift between writes).
    #[test]
    fn overwriting_column_replaces_old_layout() {
        let n = 96;
        let mut st = Frsz2AdaptiveStore::with_shape(n, 1);
        let wide: Vec<f64> = (0..n)
            .map(|i| (1.0 + i as f64) * ((i as f64 * 0.61).sin() * 20.0).exp2())
            .collect();
        st.write_column(0, &wide);
        let narrow = ramped(n, 1.0, 5);
        st.write_column(0, &narrow);
        assert!(st.column_bit_lengths(0).iter().all(|&l| l == 16));
        let mut out = vec![0.0; n];
        st.read_column(0, &mut out);
        for (i, (&x, &y)) in narrow.iter().zip(&out).enumerate() {
            assert!((x - y).abs() / x.abs() < 0.1, "row {i}");
        }
    }

    /// Rate accounting: a narrow-range column must beat whole-basis
    /// `frsz2_21` (22 bits/value) and carry the 40-bit/block metadata.
    #[test]
    fn rate_reflects_used_words() {
        let n = 3200;
        let mut st = Frsz2AdaptiveStore::with_shape(n, 1);
        st.write_column(0, &ramped(n, 3.0, 1));
        let bpv = st.bits_per_value();
        assert!(
            (bpv - (16.0 + 40.0 / 32.0)).abs() < 1e-12,
            "all-16 column is 17.25 bits/value, got {bpv}"
        );
        assert_eq!(st.format_name(), "frsz2_ab");
        assert_eq!(st.chunk_align(), 32);
    }
}
