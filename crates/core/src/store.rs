//! [`ColumnStorage`] implementation: a Krylov basis held in FRSZ2.
//!
//! Columns are compressed on write (the only write pattern CB-GMRES
//! needs — §IV-A explains why single-element updates are impossible:
//! a changed `emax` would force renormalizing the whole block) and
//! decompressed on chunked reads through the accessor interface.

use crate::codec::{self, Frsz2Config};
use crate::kernels;
use crate::reference::ZERO_BLOCK_EXPONENT;
use numfmt::ColumnStorage;

/// Column-major matrix of FRSZ2-compressed columns.
///
/// Code words and block exponents live in two separate flat arrays
/// (design choice (5) of §IV-C), each with a fixed per-column stride.
#[derive(Clone, Debug)]
pub struct Frsz2Store {
    cfg: Frsz2Config,
    rows: usize,
    cols: usize,
    col_words: usize,
    col_blocks: usize,
    words: Vec<u32>,
    exps: Vec<u32>,
}

impl Frsz2Store {
    /// Allocate with an explicit FRSZ2 configuration.
    pub fn with_config(cfg: Frsz2Config, rows: usize, cols: usize) -> Self {
        let col_words = cfg.words_for_len(rows);
        let col_blocks = cfg.blocks_for(rows);
        Frsz2Store {
            cfg,
            rows,
            cols,
            col_words,
            col_blocks,
            words: vec![0u32; col_words * cols],
            exps: vec![ZERO_BLOCK_EXPONENT; col_blocks * cols],
        }
    }

    /// The format parameters every column is stored with.
    pub fn config(&self) -> Frsz2Config {
        self.cfg
    }

    /// Raw code words of column `j` (diagnostics/tests).
    pub fn column_words(&self, j: usize) -> &[u32] {
        &self.words[j * self.col_words..(j + 1) * self.col_words]
    }

    /// Per-block exponents of column `j` (diagnostics/tests).
    pub fn column_exponents(&self, j: usize) -> &[u32] {
        &self.exps[j * self.col_blocks..(j + 1) * self.col_blocks]
    }
}

impl ColumnStorage for Frsz2Store {
    /// Default shape constructor uses `frsz2_32` (BS = 32, l = 32), the
    /// configuration the paper's evaluation recommends.
    fn with_shape(rows: usize, cols: usize) -> Self {
        Frsz2Store::with_config(Frsz2Config::default(), rows, cols)
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn write_column(&mut self, j: usize, data: &[f64]) {
        assert_eq!(data.len(), self.rows, "column length mismatch");
        assert!(j < self.cols, "column index {j} out of range");
        let words = &mut self.words[j * self.col_words..(j + 1) * self.col_words];
        let exps = &mut self.exps[j * self.col_blocks..(j + 1) * self.col_blocks];
        codec::compress_into(self.cfg, data, words, exps);
    }

    #[inline]
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]) {
        let words = &self.words[j * self.col_words..(j + 1) * self.col_words];
        let exps = &self.exps[j * self.col_blocks..(j + 1) * self.col_blocks];
        codec::decompress_range(self.cfg, words, exps, self.rows, row_start, out);
    }

    #[inline]
    fn load(&self, i: usize, j: usize) -> f64 {
        let words = &self.words[j * self.col_words..(j + 1) * self.col_words];
        let exps = &self.exps[j * self.col_blocks..(j + 1) * self.col_blocks];
        codec::get(self.cfg, words, exps, i)
    }

    fn chunk_align(&self) -> usize {
        self.cfg.block_size()
    }

    /// Fused decompress-and-dot straight off the compressed words — the
    /// in-register decompression of §IV-B, expressed as scalar code.
    /// Every bit length goes through the word-granular window kernels:
    /// no intermediate tile, no per-call allocation.
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        kernels::dot_chunk(
            self.cfg,
            self.column_words(j),
            self.column_exponents(j),
            row_start,
            w,
        )
    }

    /// Fused decompress-and-axpy; see [`Frsz2Store::dot_chunk`].
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        kernels::axpy_chunk(
            self.cfg,
            self.column_words(j),
            self.column_exponents(j),
            row_start,
            alpha,
            w,
        );
    }

    /// Multi-column fused dots: all `k` columns are swept per 32-value
    /// block, so each block of `w` is loaded once instead of `k` times.
    /// Bit-identical to `k` independent [`Frsz2Store::dot_chunk`] calls.
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        debug_assert!(k <= self.cols);
        kernels::dots_chunk(
            self.cfg,
            &self.words,
            &self.exps,
            self.col_words,
            self.col_blocks,
            k,
            row_start,
            w,
            out,
        );
    }

    /// Multi-column fused update (`w ← w + Σ_j alphas[j] · V[:, j]`):
    /// one load/store of each `w` block for all `k` columns.
    /// Bit-identical to `k` sequential [`Frsz2Store::axpy_chunk`] calls.
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        debug_assert!(k <= self.cols);
        kernels::gemv_chunk(
            self.cfg,
            &self.words,
            &self.exps,
            self.col_words,
            self.col_blocks,
            k,
            row_start,
            alphas,
            w,
        );
    }

    /// Multi-column, multi-RHS fused dots for block solves: every
    /// compressed block is decoded **once** for all `nw` interleaved
    /// vectors. Bit-identical to `nw` independent
    /// [`Frsz2Store::dots_chunk`] calls on deinterleaved vectors.
    fn dots_many_chunk(&self, k: usize, row_start: usize, ws: &[f64], nw: usize, out: &mut [f64]) {
        debug_assert!(k <= self.cols);
        kernels::dots_many_chunk(
            self.cfg,
            &self.words,
            &self.exps,
            self.col_words,
            self.col_blocks,
            k,
            row_start,
            ws,
            nw,
            out,
        );
    }

    /// Multi-column, multi-RHS fused update: one decode of each
    /// compressed block for all `nw` interleaved vectors, zero
    /// coefficients skipped per `(column, vector)`. Bit-identical to
    /// `nw` independent [`Frsz2Store::gemv_chunk`] calls.
    fn gemv_many_chunk(
        &self,
        k: usize,
        row_start: usize,
        alphas: &[f64],
        nw: usize,
        ws: &mut [f64],
    ) {
        debug_assert!(k <= self.cols);
        kernels::gemv_many_chunk(
            self.cfg,
            &self.words,
            &self.exps,
            self.col_words,
            self.col_blocks,
            k,
            row_start,
            alphas,
            nw,
            ws,
        );
    }

    fn column_bytes(&self) -> usize {
        (self.col_words + self.col_blocks) * 4
    }

    fn format_name(&self) -> String {
        self.cfg.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.37 + phase).sin()).collect()
    }

    #[test]
    fn write_read_columns_independently() {
        let mut st = Frsz2Store::with_shape(100, 3);
        let (a, b) = (wave(100, 0.0), wave(100, 1.5));
        st.write_column(0, &a);
        st.write_column(2, &b);
        let mut out = vec![0.0; 100];
        st.read_column(0, &mut out);
        for i in 0..100 {
            assert!((out[i] - a[i]).abs() < 1e-8);
        }
        st.read_column(2, &mut out);
        for i in 0..100 {
            assert!((out[i] - b[i]).abs() < 1e-8);
        }
        // Untouched column decodes to zeros.
        st.read_column(1, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn load_matches_chunked_read() {
        let mut st = Frsz2Store::with_config(Frsz2Config::new(32, 21), 90, 2);
        let v = wave(90, 0.3);
        st.write_column(1, &v);
        let mut out = vec![0.0; 90];
        // Chunked read in block-aligned pieces.
        st.read_chunk(1, 0, &mut out[..64]);
        st.read_chunk(1, 64, &mut out[64..]);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(st.load(i, 1).to_bits(), o.to_bits(), "row {i}");
        }
    }

    #[test]
    fn reported_rate_matches_eq3() {
        let st = Frsz2Store::with_shape(3200, 1);
        assert!(
            (st.bits_per_value() - 33.0).abs() < 1e-12,
            "frsz2_32 is 33 bits/value"
        );
        assert_eq!(st.chunk_align(), 32);
        assert_eq!(st.format_name(), "frsz2_32");
        let st16 = Frsz2Store::with_config(Frsz2Config::new(32, 16), 3200, 1);
        assert!(
            (st16.bits_per_value() - 17.0).abs() < 1e-12,
            "frsz2_16 is 17 bits/value"
        );
    }

    /// Regression: a never-written column must be indistinguishable —
    /// words *and* per-block exponents — from a column that was
    /// explicitly compressed from zeros, so `column_exponents` never
    /// lies about never-compressed columns.
    #[test]
    fn unwritten_column_matches_compressed_zeros() {
        let mut st = Frsz2Store::with_config(Frsz2Config::new(32, 21), 70, 2);
        st.write_column(0, &vec![0.0; 70]);
        assert_eq!(st.column_exponents(1), st.column_exponents(0));
        assert_eq!(st.column_words(1), st.column_words(0));
        assert!(st
            .column_exponents(1)
            .iter()
            .all(|&e| e == ZERO_BLOCK_EXPONENT));
    }

    #[test]
    fn overwriting_column_replaces_old_data() {
        let mut st = Frsz2Store::with_shape(64, 1);
        st.write_column(0, &wave(64, 0.0));
        let v2 = wave(64, 2.0);
        st.write_column(0, &v2);
        for (i, v) in v2.iter().enumerate() {
            assert!((st.load(i, 0) - v).abs() < 1e-8);
        }
    }
}
