//! Little-endian bit packing into `u32` words.
//!
//! The unaligned FRSZ2 path (any `l` that is not 8/16/32/64, e.g. the
//! paper's `frsz2_21`) stores value `i` of a block at bit offset `l·i`
//! inside the block's word region. GPUs (and the `gpusim` substrate) can
//! only address bytes, so fields may straddle up to three 32-bit words —
//! exactly the "values interleave in memory" overhead §IV-C blames for
//! `frsz2_21` not outrunning `frsz2_32`.
//!
//! Bit order is little-endian: bit `b` of the stream lives in word
//! `b / 32` at in-word position `b % 32`.

/// Write the low `width` bits of `value` at `bit_offset` in `words`.
///
/// Bits outside `width` of `value` must be zero (checked in debug builds).
/// `width` must be in `1..=64`.
#[inline]
pub fn write_bits(words: &mut [u32], bit_offset: usize, width: u32, value: u64) {
    debug_assert!((1..=64).contains(&width));
    debug_assert!(
        width == 64 || value < (1u64 << width),
        "value wider than field"
    );
    let mut word = bit_offset / 32;
    let mut shift = (bit_offset % 32) as u32;
    let mut remaining = width;
    let mut v = value;
    while remaining > 0 {
        let in_word = (32 - shift).min(remaining);
        let mask = if in_word == 32 {
            u32::MAX
        } else {
            ((1u32 << in_word) - 1) << shift
        };
        let chunk = ((v as u32) << shift) & mask;
        words[word] = (words[word] & !mask) | chunk;
        v >>= in_word;
        remaining -= in_word;
        shift = 0;
        word += 1;
    }
}

/// Read `width` bits starting at `bit_offset` from `words`.
#[inline]
pub fn read_bits(words: &[u32], bit_offset: usize, width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    let mut word = bit_offset / 32;
    let mut shift = (bit_offset % 32) as u32;
    let mut remaining = width;
    let mut out = 0u64;
    let mut out_pos = 0u32;
    while remaining > 0 {
        let in_word = (32 - shift).min(remaining);
        let mask = if in_word == 32 {
            u32::MAX
        } else {
            (1u32 << in_word) - 1
        };
        let chunk = (words[word] >> shift) & mask;
        out |= (chunk as u64) << out_pos;
        out_pos += in_word;
        remaining -= in_word;
        shift = 0;
        word += 1;
    }
    out
}

/// Number of `u32` words needed to hold `count` fields of `width` bits.
#[inline]
pub fn words_for(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_fields() {
        let mut w = vec![0u32; 2];
        write_bits(&mut w, 0, 8, 0xAB);
        write_bits(&mut w, 8, 8, 0xCD);
        write_bits(&mut w, 16, 16, 0x1234);
        assert_eq!(w[0], 0x1234_CDAB);
        assert_eq!(read_bits(&w, 0, 8), 0xAB);
        assert_eq!(read_bits(&w, 8, 8), 0xCD);
        assert_eq!(read_bits(&w, 16, 16), 0x1234);
    }

    #[test]
    fn straddling_fields() {
        let mut w = vec![0u32; 3];
        // 21-bit fields, the paper's frsz2_21 case: offsets 0, 21, 42, 63.
        let vals = [0x1F_FFFF, 0x0A_AAAA, 0x15_5555, 0x00_0001];
        for (i, &v) in vals.iter().enumerate() {
            write_bits(&mut w, i * 21, 21, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(read_bits(&w, i * 21, 21), v, "field {i}");
        }
    }

    #[test]
    fn sixty_four_bit_field_across_three_words() {
        let mut w = vec![0u32; 3];
        write_bits(&mut w, 13, 64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(read_bits(&w, 13, 64), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn overwrite_leaves_neighbours_intact() {
        let mut w = vec![u32::MAX; 2];
        write_bits(&mut w, 7, 10, 0);
        assert_eq!(read_bits(&w, 0, 7), 0x7F);
        assert_eq!(read_bits(&w, 7, 10), 0);
        assert_eq!(read_bits(&w, 17, 15), 0x7FFF);
        write_bits(&mut w, 7, 10, 0x3FF);
        assert_eq!(w, vec![u32::MAX; 2]);
    }

    #[test]
    fn words_for_counts() {
        assert_eq!(words_for(32, 32), 32);
        assert_eq!(words_for(32, 21), 21); // 672 bits = exactly 21 words
        assert_eq!(words_for(32, 16), 16);
        assert_eq!(words_for(1, 1), 1);
        assert_eq!(words_for(0, 21), 0);
        assert_eq!(words_for(3, 21), 2);
    }
}
