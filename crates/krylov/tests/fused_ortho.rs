//! Basis-level contract tests for the fused multi-column
//! orthogonalization path: `Basis::dots`/`dots_with`/`axpys` must be
//! bit-identical to the per-column reference formulation for every
//! storage format and bit length, at 1, 2, and 8 threads.

use frsz2::{Frsz2Config, Frsz2Store};
use krylov::Basis;
use numfmt::{ColumnStorage, DenseStore, F16};

fn wave(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = ((i + 31 * seed) as f64 * 0.37).sin();
            x * f64::powi(2.0, ((i * 7 + seed) % 30) as i32 - 15)
        })
        .collect()
}

/// Per-column reference: mirrors the basis' chunked reduction exactly
/// (per-chunk partials of single-column `dot_chunk` calls, summed in
/// chunk order) — the formulation the fused kernels replaced.
fn reference_dots<S: ColumnStorage>(basis: &Basis<S>, k: usize, w: &[f64], out: &mut [f64]) {
    let n = basis.rows();
    let chunk = basis.chunk_rows();
    let n_chunks = n.div_ceil(chunk);
    for (j, out_j) in out.iter_mut().enumerate().take(k) {
        *out_j = (0..n_chunks)
            .map(|c| {
                let start = c * chunk;
                let len = chunk.min(n - start);
                basis.store().dot_chunk(j, start, &w[start..start + len])
            })
            .sum();
    }
}

/// Per-column reference for `axpys`: chunk outer, column inner, zero
/// coefficients skipped — the exact op order of the old per-column
/// loop.
fn reference_axpys<S: ColumnStorage>(basis: &Basis<S>, k: usize, alpha: &[f64], w: &mut [f64]) {
    let n = basis.rows();
    let chunk = basis.chunk_rows();
    let mut start = 0;
    while start < n {
        let len = chunk.min(n - start);
        for (j, &a) in alpha.iter().enumerate().take(k) {
            if a == 0.0 {
                continue;
            }
            basis
                .store()
                .axpy_chunk(j, start, a, &mut w[start..start + len]);
        }
        start += len;
    }
}

fn check_store<S: ColumnStorage>(basis: &Basis<S>, label: &str) {
    let n = basis.rows();
    let k = basis.cols();
    let w = wave(n, 77);
    let alpha = [0.5, -1.25, 0.0, 2.0, -0.125];
    assert!(k <= alpha.len());

    let mut h_ref = vec![0.0; k];
    reference_dots(basis, k, &w, &mut h_ref);
    let mut u_ref = w.clone();
    reference_axpys(basis, k, &alpha[..k], &mut u_ref);

    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut h = vec![0.0; k];
        let mut scratch = Vec::new();
        let mut u = w.clone();
        pool.install(|| {
            basis.dots_with(k, &w, &mut h, &mut scratch);
            basis.axpys(k, &alpha[..k], &mut u);
        });
        for j in 0..k {
            assert_eq!(
                h[j].to_bits(),
                h_ref[j].to_bits(),
                "{label}: dot {j} at {threads} threads"
            );
        }
        for i in 0..n {
            assert_eq!(
                u[i].to_bits(),
                u_ref[i].to_bits(),
                "{label}: axpys row {i} at {threads} threads"
            );
        }
        // The convenience wrapper must agree with the scratch form.
        let mut h2 = vec![0.0; k];
        pool.install(|| basis.dots(k, &w, &mut h2));
        for j in 0..k {
            assert_eq!(h[j].to_bits(), h2[j].to_bits(), "{label}: dots wrapper {j}");
        }
    }
}

/// n spans multiple row chunks (chunk = 8192) with a ragged tail, so
/// the partial-buffer reduction and tail kernels are all exercised.
const N: usize = 20_011;
const K: usize = 5;

#[test]
fn frsz2_fused_ortho_bit_identical_across_threads_all_lengths() {
    for l in [4u32, 16, 21, 32, 64] {
        let mut basis = Basis::from_store(Frsz2Store::with_config(Frsz2Config::new(32, l), N, K));
        for j in 0..K {
            basis.write(j, &wave(N, j));
        }
        check_store(&basis, &format!("frsz2_{l}"));
    }
}

#[test]
fn dense_fused_ortho_bit_identical_across_threads() {
    let mut f64b = Basis::<DenseStore<f64>>::new(N, K);
    let mut f32b = Basis::<DenseStore<f32>>::new(N, K);
    let mut f16b = Basis::<DenseStore<F16>>::new(N, K);
    for j in 0..K {
        let v = wave(N, j);
        f64b.write(j, &v);
        f32b.write(j, &v);
        f16b.write(j, &v);
    }
    check_store(&f64b, "float64");
    check_store(&f32b, "float32");
    check_store(&f16b, "float16");
}

#[test]
fn boxed_store_uses_fused_kernels() {
    // Box<dyn ColumnStorage> must delegate the multi-column kernels,
    // not fall back to the per-column defaults with different timing
    // (results are bit-equal either way — this pins the delegation by
    // comparing against the concrete store).
    let mut concrete = Frsz2Store::with_config(Frsz2Config::new(32, 21), N, K);
    for j in 0..K {
        concrete.write_column(j, &wave(N, j));
    }
    let boxed: Box<dyn ColumnStorage> = Box::new(concrete.clone());
    let w = wave(N, 13);
    let mut out_c = vec![0.0; K];
    let mut out_b = vec![0.0; K];
    concrete.dots_chunk(K, 0, &w[..8192], &mut out_c);
    boxed.dots_chunk(K, 0, &w[..8192], &mut out_b);
    for j in 0..K {
        assert_eq!(out_c[j].to_bits(), out_b[j].to_bits(), "col {j}");
    }
    let alphas = [0.5, -0.25, 0.0, 1.5, -2.0];
    let mut w_c = w.clone();
    let mut w_b = w.clone();
    concrete.gemv_chunk(K, 0, &alphas, &mut w_c[..8192]);
    boxed.gemv_chunk(K, 0, &alphas, &mut w_b[..8192]);
    for i in 0..8192 {
        assert_eq!(w_c[i].to_bits(), w_b[i].to_bits(), "row {i}");
    }
}
