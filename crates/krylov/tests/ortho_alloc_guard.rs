//! Zero-allocation guard for the GMRES orthogonalization inner loop
//! (its own test binary: the counting allocator is process-global, so
//! no other test may run concurrently in the same process).
//!
//! Satellite of the `Basis::dots` partial-buffer bugfix: the old
//! reduction built a `Vec<Vec<f64>>` (`n_chunks` inner allocations) on
//! **every** orthogonalization call — twice per GMRES iteration with
//! re-orthogonalization. With the flat scratch threaded through the
//! workspace and the fused tile-free store kernels, a steady-state
//! `dots_with` + `axpys` sweep must not touch the heap at all.
//!
//! The guard runs under a 1-thread pool: at a single thread the
//! vendored rayon executes task bodies inline with no per-op result
//! slots, so any allocation observed here belongs to the
//! orthogonalization path itself. (At >1 threads the pool boxes one
//! result slot per task — executor overhead outside the kernels this
//! guard pins.)

use frsz2::{Frsz2Config, Frsz2Store};
use krylov::Basis;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn orthogonalization_loop_is_allocation_free_after_warmup() {
    let n = 20_011; // 3 row chunks, ragged tail
    let k = 6;
    let mut basis = Basis::from_store(Frsz2Store::with_config(Frsz2Config::new(32, 21), n, k));
    let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.041).cos()).collect();
    for j in 0..k {
        let v: Vec<f64> = (0..n).map(|i| ((i + 31 * j) as f64 * 0.13).sin()).collect();
        basis.write(j, &v);
    }
    let mut h = vec![0.0; k];
    let mut neg = vec![0.0; k];
    let mut scratch = Vec::new();
    let mut wv = w.clone();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        // Warmup: grows the scratch to its high-water mark (the one
        // allowed allocation, mirroring `Workspace::new`'s presizing).
        basis.dots_with(k, &w, &mut h, &mut scratch);
        basis.axpys(k, &neg, &mut wv);

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        // Steady state: the step-5 shape of a restart cycle — dots,
        // negate, axpys — for growing column counts, twice per
        // "iteration" like a DGKS re-orthogonalization pass. The
        // coefficients are scaled down so the synthetic (non-
        // orthonormal) basis cannot blow `w` up over the iterations;
        // the kernel call sequence is what matters here.
        for _iter in 0..10 {
            for cols in 1..=k {
                for _pass in 0..2 {
                    basis.dots_with(cols, &wv, &mut h, &mut scratch);
                    for i in 0..cols {
                        neg[i] = -1e-6 * h[i];
                    }
                    basis.axpys(cols, &neg, &mut wv);
                }
            }
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "orthogonalization loop allocated {} times",
            after - before
        );
    });
    assert!(wv.iter().all(|v| v.is_finite()));
}
