//! Restarted GMRES with a compressed Krylov basis (CB-GMRES).
//!
//! Implements the algorithm of the paper's Figure 1 literally; step
//! numbers in comments refer to it. The Krylov basis `V` is held in an
//! arbitrary [`ColumnStorage`] format — `DenseStore<f64>` reproduces
//! standard GMRES, narrower formats reproduce CB-GMRES \[1\], and
//! `frsz2::Frsz2Store` is this paper's contribution. All arithmetic is
//! IEEE f64 regardless of storage (the accessor decouples the two).
//!
//! Residual bookkeeping matches §VI-A: within a restart cycle the
//! residual norm is tracked *implicitly* through the Givens-rotation
//! recurrence; the *explicit* residual `b − Ax` is recomputed only at
//! restarts. The sudden history corrections visible in Fig. 9a are
//! exactly the difference between the two.

use crate::basis::Basis;
use crate::checkpoint::{DriverKind, SolveCheckpoint, SolveControl};
use crate::precond::Preconditioner;
use numfmt::ColumnStorage;
use spla::dense::{axpy, norm2, scale, sub};
use spla::SparseMatrix;
use std::time::{Duration, Instant};

/// Solver options (§V-C defaults).
#[derive(Clone, Debug)]
pub struct GmresOptions {
    /// Restart length `m` (the paper uses 100).
    pub restart: usize,
    /// Upper bound on total inner iterations (the paper's calibration
    /// runs use 20 000).
    pub max_iters: usize,
    /// Stopping criterion: `‖b − Ax‖₂ ≤ target_rrn · ‖b‖₂` (Table I).
    pub target_rrn: f64,
    /// Re-orthogonalization threshold η of Fig. 1 step 7 (DGKS test).
    pub reorth_eta: f64,
    /// Record the per-iteration residual history (Figs. 5/6/9).
    pub record_history: bool,
    /// Capture the basis vector written at this global iteration, as
    /// stored (i.e. after compression) — feeds the Fig. 2 histograms.
    pub capture_basis_at: Option<usize>,
    /// Fault-injection hook (see [`crate::faults`]): poison the
    /// Hessenberg column computed at this global iteration with a NaN.
    /// The non-finite breakdown guard must detect it — this hook
    /// exists so tests and the robustness bench suite can prove that
    /// deterministically. `None` (the default) injects nothing.
    pub fault_nan_hessenberg_at: Option<usize>,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 100,
            max_iters: 20_000,
            target_rrn: 1e-12,
            reorth_eta: std::f64::consts::FRAC_1_SQRT_2,
            record_history: true,
            capture_basis_at: None,
            fault_nan_hessenberg_at: None,
        }
    }
}

/// One point of the convergence history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistoryPoint {
    /// Global iteration count at which this residual was observed.
    pub iteration: usize,
    /// Relative residual norm.
    pub rrn: f64,
    /// `true` when explicitly recomputed as `‖b − Ax‖/‖b‖` (restart
    /// boundaries); `false` for the implicit Givens estimate.
    pub explicit: bool,
}

/// Counters and outcome of a solve.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Total Arnoldi iterations across all restart cycles.
    pub iterations: usize,
    /// Completed restart cycles.
    pub restarts: usize,
    /// Columns that needed a second orthogonalization pass (DGKS).
    pub reorthogonalizations: usize,
    /// Happy/unhappy Arnoldi breakdowns encountered.
    pub breakdowns: usize,
    /// Set **only** from an explicitly recomputed `‖b − Ax‖/‖b‖ ≤
    /// target_rrn` — never from the implicit Givens estimate, whose
    /// drift under lossy storage is exactly the Fig. 9a gap.
    pub converged: bool,
    /// Explicit relative residual norm of the returned solution.
    pub final_rrn: f64,
    /// Wall-clock time of the whole solve.
    pub wall_time: Duration,
    /// Bytes streamed from basis storage (decompression traffic).
    pub basis_bytes_read: u64,
    /// Bytes written to basis storage (compression traffic).
    pub basis_bytes_written: u64,
    /// Number of sparse matrix–vector products.
    pub spmv_count: u64,
    /// Decode sweeps of the stored basis on the dot-product side of
    /// orthogonalization: each sweep decompresses every current basis
    /// column once, however many target vectors it serves (one for the
    /// scalar driver, the whole panel for an s-step solve). This is the
    /// quantity the s-step refactor reduces — `k` round trips per new
    /// column collapse into one multi-column pass per panel.
    pub basis_dot_sweeps: u64,
    /// Decode sweeps of the stored basis on the update side (gemv/axpy
    /// projections and the solution combine), counted like
    /// [`SolveStats::basis_dot_sweeps`].
    pub basis_gemv_sweeps: u64,
    /// Storage format label of the Krylov basis (the final one, for
    /// adaptive solves).
    pub format: String,
    /// Average stored bits per basis value (Eq. 3 for FRSZ2).
    pub basis_bits_per_value: f64,
    /// Storage format of each executed restart cycle, in order. For a
    /// fixed-format solve every entry is the same; `adaptive_gmres`
    /// records its escalation trajectory here.
    pub format_trajectory: Vec<String>,
    /// Number of basis-format escalations performed (adaptive solves;
    /// always 0 for fixed-format solves).
    pub escalations: usize,
    /// Number of basis-format de-escalations (adaptive solves with
    /// [`crate::AdaptiveOptions::de_escalate`] enabled; 0 otherwise).
    pub de_escalations: usize,
}

/// Result of [`gmres`].
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Counters and outcome (see [`SolveStats::converged`]).
    pub stats: SolveStats,
    /// Per-iteration residual history (when `record_history` is set).
    pub history: Vec<HistoryPoint>,
    /// Basis vector captured at `capture_basis_at`, decompressed from
    /// storage (None if never reached).
    pub captured_basis_vector: Option<Vec<f64>>,
}

/// Construct a Givens rotation `(c, s)` annihilating `b` against `a`.
#[inline]
pub(crate) fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else {
        let r = a.hypot(b);
        (a / r, b / r)
    }
}

/// Work buffers of one restart cycle, allocated once per solve and
/// reused across cycles (and across basis-format switches in
/// `adaptive_gmres` — the buffers depend only on `(n, m)`, not on the
/// storage format). Includes the flat per-chunk partial buffer for
/// [`Basis::dots_with`] and the back-substitution vector, so the
/// orthogonalization inner loop performs **zero** heap allocations
/// (guarded by the counting allocator in `tests/ortho_alloc_guard.rs`).
pub(crate) struct Workspace {
    pub(crate) r: Vec<f64>,
    pub(crate) w: Vec<f64>,
    pub(crate) z: Vec<f64>,
    pub(crate) vj: Vec<f64>,
    pub(crate) h: Vec<f64>,
    pub(crate) u: Vec<f64>,
    pub(crate) neg: Vec<f64>,
    pub(crate) hess: Vec<f64>, // column-major, ld = m+1
    pub(crate) cs: Vec<f64>,
    pub(crate) sn: Vec<f64>,
    pub(crate) g: Vec<f64>,
    pub(crate) y: Vec<f64>,
    /// Flat `n_chunks × k` scratch for the orthogonalization partials.
    /// Pre-sized for the worst case (`k = m + 1` columns over the
    /// smallest possible chunking), so `dots_with` never grows it.
    pub(crate) dot_partials: Vec<f64>,
    pub(crate) m: usize,
    pub(crate) ld: usize,
}

impl Workspace {
    pub(crate) fn new(n: usize, m: usize) -> Self {
        // A basis rounds its chunk UP from TARGET_CHUNK to the storage
        // block alignment, so n.div_ceil(TARGET_CHUNK) bounds n_chunks
        // for every format (including mid-solve adaptive switches).
        let max_chunks = n.div_ceil(crate::basis::TARGET_CHUNK);
        Workspace {
            r: vec![0.0; n],
            w: vec![0.0; n],
            z: vec![0.0; n],
            vj: vec![0.0; n],
            h: vec![0.0; m + 1],
            u: vec![0.0; m + 1],
            neg: vec![0.0; m + 1],
            hess: vec![0.0; (m + 1) * m],
            cs: vec![0.0; m],
            sn: vec![0.0; m],
            g: vec![0.0; m + 1],
            y: vec![0.0; m],
            dot_partials: vec![0.0; max_chunks * (m + 1)],
            m,
            ld: m + 1,
        }
    }

    /// Explicit residual `r = b − A x`; returns `‖r‖₂`. The one
    /// residual the convergence decision may trust.
    pub(crate) fn explicit_residual<A: SparseMatrix + ?Sized>(
        &mut self,
        a: &A,
        b: &[f64],
        x: &[f64],
        stats: &mut SolveStats,
    ) -> f64 {
        a.spmv(x, &mut self.w);
        stats.spmv_count += 1;
        sub(b, &self.w, &mut self.r);
        norm2(&self.r)
    }
}

/// What one restart cycle did (consumed by the drivers — `gmres_with`
/// and `adaptive_gmres` — which own the explicit-residual loop).
pub(crate) struct CycleOutcome {
    /// Inner iterations executed (Hessenberg columns recorded).
    pub(crate) steps: usize,
    /// The cycle ended on a (possibly non-finite) breakdown.
    pub(crate) breakdown: bool,
    /// A non-finite Hessenberg entry was detected; the poisoned column
    /// was discarded rather than propagated (NaN-spin guard).
    pub(crate) non_finite: bool,
    /// Implicit Givens residual estimate after the last recorded
    /// column (`None` when the cycle recorded nothing).
    pub(crate) last_implicit_rrn: Option<f64>,
}

/// Run ONE restart cycle of Fig. 1 (steps 1–17): seed the basis with
/// the entering residual `ws.r` (unnormalized, `‖ws.r‖ = beta`), build
/// up to `m` Krylov vectors, and apply the least-squares update to `x`.
///
/// The caller owns the explicit-residual bookkeeping of steps 1/18; the
/// cycle only pushes *implicit* history points. `stats.converged` is
/// never touched here — convergence is decided exclusively by the
/// driver from the explicit residual.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cycle<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    precond: &P,
    opts: &GmresOptions,
    basis: &mut Basis<S>,
    ws: &mut Workspace,
    x: &mut [f64],
    beta: f64,
    bnorm: f64,
    stats: &mut SolveStats,
    history: &mut Vec<HistoryPoint>,
    captured: &mut Option<Vec<f64>>,
) -> CycleOutcome {
    let n = x.len();
    let m = ws.m;
    let ld = ws.ld;
    let mut outcome = CycleOutcome {
        steps: 0,
        breakdown: false,
        non_finite: false,
        last_implicit_rrn: None,
    };

    // v1 = r / beta, stored compressed (step 1).
    scale(1.0 / beta, &mut ws.r);
    basis.write(0, &ws.r);
    // Queried after the first write: round-trip stores only know their
    // achieved rate once a column has actually been compressed.
    let col_bytes = basis.column_bytes() as u64;
    stats.basis_bytes_written += col_bytes;
    if opts.capture_basis_at == Some(stats.iterations) && captured.is_none() {
        let mut cap = vec![0.0; n];
        basis.read_column(0, &mut cap);
        *captured = Some(cap);
    }
    ws.g.fill(0.0);
    ws.g[0] = beta;

    let mut j = 0;
    // Steps 2-15: build the Krylov basis.
    while j < m && stats.iterations < opts.max_iters {
        // Step 3: w = A (M^-1 v_j); v_j decompressed via the accessor.
        basis.read_column(j, &mut ws.vj);
        stats.basis_bytes_read += col_bytes;
        precond.apply(&ws.vj, &mut ws.z);
        a.spmv(&ws.z, &mut ws.w);
        stats.spmv_count += 1;

        // Step 4.
        let omega = norm2(&ws.w);

        // Step 5: classical Gram-Schmidt against the compressed basis,
        // through the fused multi-column kernels with the workspace's
        // preallocated partial buffer (no per-iteration allocation).
        basis.dots_with(j + 1, &ws.w, &mut ws.h[..j + 1], &mut ws.dot_partials);
        for i in 0..=j {
            ws.neg[i] = -ws.h[i];
        }
        basis.axpys(j + 1, &ws.neg, &mut ws.w);
        stats.basis_bytes_read += 2 * (j as u64 + 1) * col_bytes;
        stats.basis_dot_sweeps += 1;
        stats.basis_gemv_sweeps += 1;

        // Step 6.
        let mut hj1 = norm2(&ws.w);

        // Steps 7-11: DGKS re-orthogonalization. The breakdown test of
        // step 12 compares against the norm *entering the second pass*
        // ("twice is enough"): if the second pass removes most of what
        // remained, w is numerically in span(V) and the basis cannot
        // grow.
        let mut broke_down = hj1 == 0.0;
        if !broke_down && hj1 < opts.reorth_eta * omega {
            let before = hj1;
            basis.dots_with(j + 1, &ws.w, &mut ws.u[..j + 1], &mut ws.dot_partials);
            for i in 0..=j {
                ws.neg[i] = -ws.u[i];
                ws.h[i] += ws.u[i]; // step 9
            }
            basis.axpys(j + 1, &ws.neg, &mut ws.w);
            stats.basis_bytes_read += 2 * (j as u64 + 1) * col_bytes;
            stats.basis_dot_sweeps += 1;
            stats.basis_gemv_sweeps += 1;
            hj1 = norm2(&ws.w); // step 10
            stats.reorthogonalizations += 1;
            broke_down = hj1 == 0.0 || hj1 < opts.reorth_eta * before; // step 12
        }

        // Fault-injection hook: poison the freshly computed projection
        // coefficient at the configured global iteration. The guard
        // below must turn it into a typed breakdown. One-shot: the
        // breakdown ends the cycle before `iterations` can pass the
        // trigger, so the hook disarms once a breakdown is on record.
        if opts.fault_nan_hessenberg_at == Some(stats.iterations) && stats.breakdowns == 0 {
            ws.h[j] = f64::NAN;
        }

        // NaN-spin guard: a non-finite Hessenberg entry (overflow in
        // ‖w‖² or in the Gram-Schmidt products from a pathological
        // operator) would poison the Givens recurrence with NaN and
        // make every later stopping test compare false, spinning the
        // solver to `max_iters`. Detect it here, count it as a
        // breakdown, and end the cycle WITHOUT recording the poisoned
        // column — the least-squares solve below then runs on the `j`
        // columns that are still finite.
        if !hj1.is_finite() || !omega.is_finite() || ws.h[..=j].iter().any(|v| !v.is_finite()) {
            stats.breakdowns += 1;
            outcome.breakdown = true;
            outcome.non_finite = true;
            break;
        }

        // Record the Hessenberg column (step 16 assembles these).
        for i in 0..=j {
            ws.hess[j * ld + i] = ws.h[i];
        }
        ws.hess[j * ld + j + 1] = hj1;

        // Least-squares update: apply previous rotations, then a new one.
        for i in 0..j {
            let (hi, hi1) = (ws.hess[j * ld + i], ws.hess[j * ld + i + 1]);
            ws.hess[j * ld + i] = ws.cs[i] * hi + ws.sn[i] * hi1;
            ws.hess[j * ld + i + 1] = -ws.sn[i] * hi + ws.cs[i] * hi1;
        }
        let (c, s) = givens(ws.hess[j * ld + j], ws.hess[j * ld + j + 1]);
        ws.cs[j] = c;
        ws.sn[j] = s;
        ws.hess[j * ld + j] = c * ws.hess[j * ld + j] + s * ws.hess[j * ld + j + 1];
        ws.hess[j * ld + j + 1] = 0.0;
        ws.g[j + 1] = -s * ws.g[j];
        ws.g[j] *= c;

        stats.iterations += 1;
        let implicit_rrn = ws.g[j + 1].abs() / bnorm;
        outcome.last_implicit_rrn = Some(implicit_rrn);
        if opts.record_history {
            history.push(HistoryPoint {
                iteration: stats.iterations,
                rrn: implicit_rrn,
                explicit: false,
            });
        }

        j += 1;
        if broke_down {
            stats.breakdowns += 1;
            outcome.breakdown = true;
            break;
        }
        // The implicit estimate reaching the target only ENDS THE
        // CYCLE; it never sets `converged`. The driver re-checks the
        // explicit residual and keeps iterating when the two disagree
        // (the Fig. 9a implicit/explicit gap).
        if implicit_rrn <= opts.target_rrn {
            break;
        }

        // Step 13/14: v_{j+1} = w / h_{j+1,j}, stored compressed.
        scale(1.0 / hj1, &mut ws.w);
        basis.write(j, &ws.w);
        stats.basis_bytes_written += col_bytes;
        if opts.capture_basis_at == Some(stats.iterations) && captured.is_none() {
            let mut cap = vec![0.0; n];
            basis.read_column(j, &mut cap);
            *captured = Some(cap);
        }
    }
    outcome.steps = j;

    // Step 17: y = argmin ‖beta e1 - H y‖ by back substitution on the
    // rotated (upper-triangular) Hessenberg, then x += M^-1 (V y).
    // A cycle that recorded nothing (immediate non-finite breakdown)
    // has no update to apply.
    if j >= 1 {
        let y = &mut ws.y[..j];
        for i in (0..j).rev() {
            let mut acc = ws.g[i];
            for (k, yk) in y.iter().enumerate().skip(i + 1) {
                acc -= ws.hess[k * ld + i] * yk;
            }
            let d = ws.hess[i * ld + i];
            // A zero pivot can only follow an exact breakdown; the
            // minimizer then ignores that direction.
            y[i] = if d != 0.0 { acc / d } else { 0.0 };
        }
        basis.combine(&ws.y[..j], &mut ws.z);
        stats.basis_bytes_read += j as u64 * col_bytes;
        stats.basis_gemv_sweeps += 1;
        precond.apply(&ws.z, &mut ws.vj);
        axpy(1.0, &ws.vj, x);
    }
    stats.restarts += 1;
    outcome
}

/// Solve `A x = b` with restarted GMRES, storing the Krylov basis in
/// format `S` (right-preconditioned by `precond`).
///
/// This is Fig. 1 of the paper; the highlighted compression points are
/// the `basis.write` (steps 1/13, compress) and every `basis.*` read
/// (steps 5/8/17, decompress through the accessor). The operator is any
/// [`SparseMatrix`] format (CSR/ELL/SELL-C-σ, or `&dyn SparseMatrix`
/// from the runtime auto-selection); because every format's SpMV is
/// bit-identical, the residual history does not depend on the format
/// backing `a`.
pub fn gmres<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    precond: &P,
) -> SolveResult {
    gmres_with(a, b, x0, opts, precond, S::with_shape)
}

/// [`gmres`] with an explicit basis-store factory, for storage formats
/// that need more configuration than a shape (e.g.
/// `Frsz2Store::with_config` for `frsz2_16`/`frsz2_21`, or a
/// compressor-round-trip store). The factory receives `(rows, cols)`.
pub fn gmres_with<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    precond: &P,
    make_store: impl FnOnce(usize, usize) -> S,
) -> SolveResult {
    let basis = Basis::from_store(make_store(a.rows(), opts.restart + 1));
    solve_driver(a, b, x0, opts, precond, basis, |_, _, _| {})
}

/// One per-cycle telemetry record, emitted at every restart boundary of
/// an *observed* solve ([`crate::basis_format::gmres_dyn_observed`],
/// [`crate::adaptive::adaptive_gmres_observed`]) just before the next
/// cycle runs.
///
/// Boundary semantics: the driver checks convergence *before* the hook
/// fires, so a solve that converges after cycle `k` emits events for
/// cycles `0..=k` but not for the final (converged) boundary — the
/// terminal state is reported once, in the returned
/// [`SolveStats`]. Every field is computed from deterministic
/// quantities, so the event stream is bit-identical at any thread
/// count, like the solve itself.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleEvent {
    /// Index of the restart cycle about to run (0-based; equals the
    /// number of completed cycles).
    pub cycle: usize,
    /// Global inner-iteration count accumulated so far.
    pub iterations: usize,
    /// Explicit `‖b − Ax‖/‖b‖` entering the cycle — the only residual
    /// the convergence decision trusts.
    pub explicit_rrn: f64,
    /// Basis storage format of the cycle about to run (after any
    /// adaptive rung change at this boundary).
    pub format: String,
    /// Basis bytes read from storage so far (decompression traffic).
    pub basis_bytes_read: u64,
    /// Basis bytes written to storage so far (compression traffic).
    pub basis_bytes_written: u64,
}

impl CycleEvent {
    /// Assemble an event from the driver state at a restart boundary.
    pub(crate) fn at_boundary<S: ColumnStorage>(
        boundary: &Boundary,
        basis: &Basis<S>,
        stats: &SolveStats,
    ) -> Self {
        CycleEvent {
            cycle: stats.restarts,
            iterations: stats.iterations,
            explicit_rrn: boundary.explicit_rrn,
            format: basis.format_name(),
            basis_bytes_read: stats.basis_bytes_read,
            basis_bytes_written: stats.basis_bytes_written,
        }
    }
}

/// Restart-boundary context handed to the [`solve_driver`] hook, for
/// drivers that adapt between cycles (`adaptive_gmres`).
pub(crate) struct Boundary {
    /// Explicit `‖b − Ax‖/‖b‖` entering the next cycle.
    pub(crate) explicit_rrn: f64,
    /// Explicit residual that entered the *previous* cycle (`None` at
    /// the first boundary).
    pub(crate) prev_explicit_rrn: Option<f64>,
    /// Last implicit Givens estimate of the previous cycle.
    pub(crate) last_implicit_rrn: Option<f64>,
}

/// What the shared restart-boundary bookkeeping decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BoundaryDecision {
    /// Explicit residual reached the target; `stats.converged` is set.
    Converged,
    /// Terminal without convergence (non-finite explicit residual, or
    /// the iteration budget is exhausted).
    Terminal,
    /// Run another cycle.
    Continue,
}

/// The restart-boundary bookkeeping every driver shares — the scalar
/// [`solve_driver`], the block driver in `block.rs`, and the s-step
/// driver in `sstep.rs` all call this VERBATIM so their convergence
/// semantics cannot drift apart (and committed fingerprints stay
/// byte-identical across refactors).
///
/// Given the explicit `‖b − Ax‖/‖b‖` entering the boundary, in this
/// exact order: stamp `stats.final_rrn`, push the explicit history
/// point, then decide — converged (the ONLY place `converged` is ever
/// set, always from the explicit residual, never the implicit Givens
/// estimate), terminal (a non-finite residual cannot improve — every
/// further comparison would be false and the solver would spin — or
/// `max_iters` is exhausted), or continue.
pub(crate) fn boundary_bookkeeping(
    rrn: f64,
    opts: &GmresOptions,
    stats: &mut SolveStats,
    history: &mut Vec<HistoryPoint>,
) -> BoundaryDecision {
    stats.final_rrn = rrn;
    if opts.record_history {
        history.push(HistoryPoint {
            iteration: stats.iterations,
            rrn,
            explicit: true,
        });
    }
    if rrn <= opts.target_rrn {
        stats.converged = true;
        return BoundaryDecision::Converged;
    }
    if !rrn.is_finite() {
        return BoundaryDecision::Terminal;
    }
    if stats.iterations >= opts.max_iters {
        return BoundaryDecision::Terminal;
    }
    BoundaryDecision::Continue
}

/// A [`SolveResult`] plus whether a boundary control probe halted the
/// solve before its natural end (converged/terminal states always win
/// over the probe, so `halted` implies `!stats.converged`).
#[derive(Clone, Debug)]
pub struct ControlledSolve {
    /// The solve outcome up to the halt (or the full outcome).
    pub result: SolveResult,
    /// `true` when the control probe returned [`SolveControl::Halt`].
    pub halted: bool,
}

/// Freeze the driver state at a restart boundary into a
/// [`SolveCheckpoint`] (scalar-driver fields; the adaptive and s-step
/// drivers overwrite their extra state on top).
pub(crate) fn boundary_checkpoint<S: ColumnStorage>(
    rrn: f64,
    x: &[f64],
    stats: &SolveStats,
    history: &[HistoryPoint],
    basis: &Basis<S>,
) -> SolveCheckpoint {
    SolveCheckpoint {
        driver: DriverKind::Scalar,
        format: basis.format_name(),
        x: x.to_vec(),
        explicit_rrn: rrn,
        iterations: stats.iterations,
        restarts: stats.restarts,
        reorthogonalizations: stats.reorthogonalizations,
        breakdowns: stats.breakdowns,
        escalations: stats.escalations,
        de_escalations: stats.de_escalations,
        spmv_count: stats.spmv_count,
        basis_bytes_read: stats.basis_bytes_read,
        basis_bytes_written: stats.basis_bytes_written,
        basis_dot_sweeps: stats.basis_dot_sweeps,
        basis_gemv_sweeps: stats.basis_gemv_sweeps,
        format_trajectory: stats.format_trajectory.clone(),
        history: history.to_vec(),
        qualifying_streak: 0,
        s_cur: 1,
        loo_breaches: 0,
        s_per_cycle: Vec::new(),
        loo_per_cycle: Vec::new(),
    }
}

/// Restore the checkpointed counters, trajectory, and residual stamp
/// into a fresh [`SolveStats`] (shared by every resuming driver).
pub(crate) fn restore_stats(stats: &mut SolveStats, cp: &SolveCheckpoint) {
    stats.iterations = cp.iterations;
    stats.restarts = cp.restarts;
    stats.reorthogonalizations = cp.reorthogonalizations;
    stats.breakdowns = cp.breakdowns;
    stats.escalations = cp.escalations;
    stats.de_escalations = cp.de_escalations;
    stats.spmv_count = cp.spmv_count;
    stats.basis_bytes_read = cp.basis_bytes_read;
    stats.basis_bytes_written = cp.basis_bytes_written;
    stats.basis_dot_sweeps = cp.basis_dot_sweeps;
    stats.basis_gemv_sweeps = cp.basis_gemv_sweeps;
    stats.format_trajectory = cp.format_trajectory.clone();
    stats.final_rrn = cp.explicit_rrn;
}

/// The one restarted-GMRES driver loop: explicit residual at every
/// boundary (the ONLY place `converged` is decided — the implicit
/// Givens estimate inside a cycle never sets it), then one
/// [`run_cycle`]. Both public solvers are thin wrappers: `gmres_with`
/// passes a no-op hook, `adaptive_gmres` a hook that may swap the
/// basis store at the boundary — so their boundary semantics cannot
/// drift apart.
pub(crate) fn solve_driver<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    precond: &P,
    basis: Basis<S>,
    on_boundary: impl FnMut(&Boundary, &mut Basis<S>, &mut SolveStats),
) -> SolveResult {
    solve_driver_full(a, b, x0, opts, precond, basis, on_boundary, None, None).result
}

/// [`solve_driver`] plus the fault-tolerance seam: an optional
/// *control probe* and an optional *resume checkpoint*.
///
/// The probe fires at every restart boundary — after the shared
/// bookkeeping and the `on_boundary` hook (so the format decision for
/// the next cycle is final), before the cycle runs — with a freshly
/// captured [`SolveCheckpoint`]. Returning [`SolveControl::Halt`]
/// stops the solve there; the caller keeps the checkpoint and can
/// resume later. Convergence is decided *before* the probe, so a halt
/// can never mask a finished solve. With `control = None` no
/// checkpoint is ever materialized — the plain path pays nothing.
///
/// Resuming replays the capture-time boundary: the iterate, counters,
/// history, and trajectory are restored, the entry residual is
/// recomputed (its spmv was already counted before capture, so the
/// counter is NOT incremented again), and the bookkeeping + hook that
/// ran before capture are skipped. The continuation is bit-identical
/// to the uninterrupted solve.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_driver_full<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    precond: &P,
    mut basis: Basis<S>,
    mut on_boundary: impl FnMut(&Boundary, &mut Basis<S>, &mut SolveStats),
    mut control: Option<&mut dyn FnMut(&mut SolveCheckpoint) -> SolveControl>,
    resume: Option<&SolveCheckpoint>,
) -> ControlledSolve {
    let n = a.rows();
    assert_eq!(a.cols(), n, "GMRES needs a square matrix");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    assert!(opts.restart >= 1);
    let m = opts.restart;

    let start = Instant::now();
    let mut stats = SolveStats::default();
    let mut history = Vec::new();
    let mut captured: Option<Vec<f64>> = None;
    stats.format = basis.format_name();

    let bnorm = norm2(b);
    // b = 0: the solution is x = 0 exactly.
    if bnorm == 0.0 {
        stats.converged = true;
        stats.final_rrn = 0.0;
        stats.wall_time = start.elapsed();
        return ControlledSolve {
            result: SolveResult {
                x: vec![0.0; n],
                stats,
                history,
                captured_basis_vector: None,
            },
            halted: false,
        };
    }

    let mut x = x0.to_vec();
    let mut ws = Workspace::new(n, m);
    let mut prev_explicit_rrn: Option<f64> = None;
    let mut last_implicit_rrn: Option<f64> = None;
    let mut replay = false;
    if let Some(cp) = resume {
        assert_eq!(
            cp.x.len(),
            n,
            "checkpoint dimension does not match the operator"
        );
        x.copy_from_slice(&cp.x);
        restore_stats(&mut stats, cp);
        history = cp.history.clone();
        replay = true;
    }
    let mut halted = false;

    loop {
        let beta;
        let rrn;
        if replay {
            replay = false;
            // Replay of the capture-time boundary: recompute the
            // residual the checkpoint measured (its spmv is already in
            // the restored counters, so don't count it again) and skip
            // the bookkeeping and hook that ran before capture.
            a.spmv(&x, &mut ws.w);
            sub(b, &ws.w, &mut ws.r);
            beta = norm2(&ws.r);
            rrn = beta / bnorm;
        } else {
            // Step 1 / step 18: explicit residual r = b - A x, then the
            // shared boundary bookkeeping (final_rrn, explicit history
            // point, converged/terminal decision).
            beta = ws.explicit_residual(a, b, &x, &mut stats);
            rrn = beta / bnorm;
            match boundary_bookkeeping(rrn, opts, &mut stats, &mut history) {
                BoundaryDecision::Converged | BoundaryDecision::Terminal => break,
                BoundaryDecision::Continue => {}
            }

            on_boundary(
                &Boundary {
                    explicit_rrn: rrn,
                    prev_explicit_rrn,
                    last_implicit_rrn,
                },
                &mut basis,
                &mut stats,
            );
        }

        if let Some(ctrl) = control.as_mut() {
            let mut cp = boundary_checkpoint(rrn, &x, &stats, &history, &basis);
            if matches!(ctrl(&mut cp), SolveControl::Halt) {
                halted = true;
                break;
            }
        }

        stats.format_trajectory.push(basis.format_name());
        let out = run_cycle(
            a,
            precond,
            opts,
            &mut basis,
            &mut ws,
            &mut x,
            beta,
            bnorm,
            &mut stats,
            &mut history,
            &mut captured,
        );
        // A cycle that could not record a single column (immediate
        // non-finite breakdown) left x untouched; another round would
        // replay it verbatim.
        if out.steps == 0 {
            break;
        }
        prev_explicit_rrn = Some(rrn);
        last_implicit_rrn = out.last_implicit_rrn;
    }

    // Captured at the end: round-trip stores only know their achieved
    // rate after columns have actually been written.
    stats.basis_bits_per_value = if n > 0 {
        basis.column_bytes() as f64 * 8.0 / n as f64
    } else {
        0.0
    };
    stats.wall_time = start.elapsed();
    ControlledSolve {
        result: SolveResult {
            x,
            stats,
            history,
            captured_basis_vector: captured,
        },
        halted,
    }
}

/// [`gmres_with`] plus the fault-tolerance seam: capture checkpoints
/// and/or halt at restart boundaries through `control`, and resume a
/// previous solve bit-identically from `resume`.
///
/// The resume contract: build the store with the same format the
/// checkpoint records (`resume.format`) and pass the same `b`, `opts`,
/// and preconditioner — the continuation then reproduces the
/// uninterrupted solve bit for bit (solution, history, counters).
/// `x0` is ignored when resuming (the checkpointed iterate wins).
/// Panics if the checkpoint came from a different driver.
#[allow(clippy::too_many_arguments)]
pub fn gmres_with_controlled<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    precond: &P,
    make_store: impl FnOnce(usize, usize) -> S,
    resume: Option<&SolveCheckpoint>,
    control: Option<&mut dyn FnMut(&SolveCheckpoint) -> SolveControl>,
) -> ControlledSolve {
    if let Some(cp) = resume {
        assert_eq!(
            cp.driver,
            DriverKind::Scalar,
            "a {:?} checkpoint cannot resume the scalar driver",
            cp.driver
        );
    }
    let basis = Basis::from_store(make_store(a.rows(), opts.restart + 1));
    match control {
        Some(c) => {
            let mut wrap = |cp: &mut SolveCheckpoint| c(cp);
            solve_driver_full(
                a,
                b,
                x0,
                opts,
                precond,
                basis,
                |_, _, _| {},
                Some(&mut wrap),
                resume,
            )
        }
        None => solve_driver_full(a, b, x0, opts, precond, basis, |_, _, _| {}, None, resume),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Identity, Jacobi};
    use frsz2::Frsz2Store;
    use numfmt::{DenseStore, F16};
    use spla::dense::manufactured_rhs;
    use spla::{gen, Csr, Ell, SellCSigma};

    fn opts(target: f64) -> GmresOptions {
        GmresOptions {
            target_rrn: target,
            max_iters: 2000,
            ..GmresOptions::default()
        }
    }

    #[test]
    fn identity_system_converges_in_one_iteration() {
        let a = Csr::identity(500);
        let (xsol, b) = manufactured_rhs(&a);
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 500], &opts(1e-14), &Identity);
        assert!(r.stats.converged);
        assert!(r.stats.iterations <= 2);
        for (xi, si) in r.x.iter().zip(&xsol) {
            assert!((xi - si).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_system_solves_exactly() {
        let mut coo = spla::Coo::new(50, 50);
        for i in 0..50 {
            coo.push(i, i, (i + 1) as f64);
        }
        let a = coo.to_csr();
        let (xsol, b) = manufactured_rhs(&a);
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 50], &opts(1e-13), &Identity);
        assert!(r.stats.converged, "final rrn {}", r.stats.final_rrn);
        for (i, (xi, si)) in r.x.iter().zip(&xsol).enumerate() {
            assert!((xi - si).abs() < 1e-9, "x[{i}]");
        }
    }

    #[test]
    fn convection_diffusion_converges_all_formats() {
        let a = gen::conv_diff_3d(10, 10, 10, [0.4, 0.2, 0.1], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let o = opts(1e-10);
        let f64r = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &o, &Identity);
        let f32r = gmres::<DenseStore<f32>, _, _>(&a, &b, &x0, &o, &Identity);
        let frsz = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &o, &Identity);
        assert!(f64r.stats.converged);
        assert!(f32r.stats.converged);
        assert!(frsz.stats.converged);
        // CB-GMRES ordering (atmosmod regime): f64 needs no more
        // iterations than the compressed formats.
        assert!(f64r.stats.iterations <= f32r.stats.iterations);
        assert!(f64r.stats.iterations <= frsz.stats.iterations);
    }

    #[test]
    fn residual_history_is_recorded_and_final_explicit() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.2, 0.0, 0.0], 0.2);
        let (_, b) = manufactured_rhs(&a);
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 512], &opts(1e-9), &Identity);
        assert!(r.stats.converged);
        assert!(!r.history.is_empty());
        // First point: explicit RRN of the zero initial guess = 1.
        assert!(r.history[0].explicit);
        assert!((r.history[0].rrn - 1.0).abs() < 1e-12);
        // Last point: the explicit converged residual.
        let last = r.history.last().unwrap();
        assert!(last.explicit);
        assert!(last.rrn <= 1e-9);
        // Implicit estimates never increase within a cycle.
        let mut prev = f64::INFINITY;
        for p in r.history.iter().filter(|p| !p.explicit) {
            assert!(
                p.rrn <= prev * (1.0 + 1e-12) || p.explicit,
                "implicit rrn rose"
            );
            prev = if p.explicit { f64::INFINITY } else { p.rrn };
        }
    }

    #[test]
    fn restart_cycles_happen_and_make_progress() {
        // Small restart forces many cycles.
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.1, 0.0], 0.05);
        let (_, b) = manufactured_rhs(&a);
        let o = GmresOptions {
            restart: 10,
            target_rrn: 1e-8,
            max_iters: 3000,
            ..GmresOptions::default()
        };
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 512], &o, &Identity);
        assert!(r.stats.converged, "rrn {}", r.stats.final_rrn);
        assert!(r.stats.restarts >= 2, "expected multiple restarts");
    }

    #[test]
    fn f16_basis_converges_on_easy_problem_with_more_iterations() {
        let a = gen::conv_diff_3d(9, 9, 9, [0.3, 0.2, 0.1], 0.4);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let o = opts(1e-7);
        let full = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &o, &Identity);
        let half = gmres::<DenseStore<F16>, _, _>(&a, &b, &x0, &o, &Identity);
        assert!(full.stats.converged && half.stats.converged);
        assert!(half.stats.iterations >= full.stats.iterations);
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations_on_scaled_problem() {
        // Badly row-scaled diagonal-dominant system: Jacobi fixes it.
        let mut coo = spla::Coo::new(400, 400);
        for i in 0..400 {
            let s = f64::powi(10.0, (i % 7) as i32 - 3);
            coo.push(i, i, 4.0 * s);
            if i + 1 < 400 {
                coo.push(i, i + 1, -s);
                coo.push(i + 1, i, -s);
            }
        }
        let a = coo.to_csr();
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; 400];
        let o = opts(1e-10);
        let plain = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &o, &Identity);
        let jac = Jacobi::new(&a);
        let pre = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &o, &jac);
        assert!(pre.stats.converged);
        assert!(
            pre.stats.iterations <= plain.stats.iterations,
            "jacobi {} vs plain {}",
            pre.stats.iterations,
            plain.stats.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = Csr::identity(10);
        let r = gmres::<DenseStore<f64>, _, _>(&a, &[0.0; 10], &[1.0; 10], &opts(1e-12), &Identity);
        assert!(r.stats.converged);
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert_eq!(r.stats.iterations, 0);
    }

    #[test]
    fn capture_basis_vector_is_normalized() {
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.2);
        let (_, b) = manufactured_rhs(&a);
        let o = GmresOptions {
            capture_basis_at: Some(5),
            target_rrn: 1e-10,
            ..GmresOptions::default()
        };
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 216], &o, &Identity);
        let v = r.captured_basis_vector.expect("vector captured");
        let nrm = spla::dense::norm2(&v);
        assert!(
            (nrm - 1.0).abs() < 1e-10,
            "basis vectors are unit norm, got {nrm}"
        );
    }

    #[test]
    fn lossy_basis_below_accuracy_floor_reports_honest_non_convergence() {
        // Regression (false convergence): frsz2_16 keeps only ~14 bits
        // below each block's max exponent, so on a similarity-scaled
        // operator (the PR02R regime of §VI-A, ~24 binades of
        // within-block spread) the solve stagnates around 1e-4 — far
        // above this target. The implicit Givens estimate keeps
        // shrinking regardless (it knows nothing about the compression
        // loss), so a solver trusting it would report success. The
        // explicit residual must win: converged stays false and
        // final_rrn is exactly the recomputed ‖b − Ax‖/‖b‖.
        let a = gen::wide_range_conv_diff(8, 8, 8, 24, 0x5202);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let o = GmresOptions {
            target_rrn: 1e-12, // below what frsz2_16 can reach here
            max_iters: 400,
            restart: 30,
            ..GmresOptions::default()
        };
        let cfg = frsz2::Frsz2Config::new(32, 16);
        let r = gmres_with(&a, &b, &x0, &o, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        assert!(
            !r.stats.converged,
            "frsz2_16 cannot reach 1e-12 (floor ~1e-4); reported rrn {:.2e}",
            r.stats.final_rrn
        );
        assert!(r.stats.final_rrn > o.target_rrn);
        // Implicit estimates DID cross the target (the false-convergence
        // bait) — the test is vacuous otherwise.
        assert!(
            r.history
                .iter()
                .any(|p| !p.explicit && p.rrn <= o.target_rrn),
            "implicit estimate never crossed the target; stagnation bait missing"
        );
        // Honesty: final_rrn is bit-for-bit the explicit residual of the
        // returned x (same deterministic kernels, same operator).
        let mut ax = vec![0.0; a.rows()];
        a.spmv(&r.x, &mut ax);
        let mut res = vec![0.0; a.rows()];
        spla::dense::sub(&b, &ax, &mut res);
        let explicit = spla::dense::norm2(&res) / spla::dense::norm2(&b);
        assert_eq!(
            explicit.to_bits(),
            r.stats.final_rrn.to_bits(),
            "final_rrn {:.17e} is not the explicit residual {:.17e}",
            r.stats.final_rrn,
            explicit
        );
        // And the recorded history ends on that explicit point.
        let last = r.history.last().unwrap();
        assert!(last.explicit);
        assert_eq!(last.rrn.to_bits(), r.stats.final_rrn.to_bits());
    }

    #[test]
    fn non_finite_hessenberg_terminates_as_breakdown_not_spin() {
        // Regression (NaN spin): with O(1e308) matrix entries the
        // Gram-Schmidt products and ‖w‖² overflow, the Givens rotation
        // becomes inf/inf = NaN, and every later stopping comparison is
        // false — the solver used to spin silently to max_iters. It must
        // instead detect the non-finite Hessenberg entry, count a
        // breakdown, and terminate the cycle (and solve) cleanly.
        let n = 8;
        let mut coo = spla::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1e308);
            coo.push(i, (i + 1) % n, 1e308);
        }
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let o = GmresOptions {
            target_rrn: 1e-12,
            max_iters: 500,
            ..GmresOptions::default()
        };
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; n], &o, &Identity);
        assert!(!r.stats.converged);
        assert!(r.stats.breakdowns >= 1, "overflow must count as breakdown");
        assert!(
            r.stats.iterations < 5,
            "solver spun for {} iterations instead of terminating",
            r.stats.iterations
        );
        assert!(
            r.stats.final_rrn.is_finite(),
            "reported residual must stay finite"
        );
        // The poisoned cycle recorded no columns, so x is untouched.
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert!(r.history.iter().all(|p| p.rrn.is_finite()));
    }

    #[test]
    fn fixed_format_trajectory_has_one_entry_per_cycle() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.1, 0.0], 0.05);
        let (_, b) = manufactured_rhs(&a);
        let o = GmresOptions {
            restart: 10,
            target_rrn: 1e-8,
            max_iters: 3000,
            ..GmresOptions::default()
        };
        let r = gmres::<Frsz2Store, _, _>(&a, &b, &vec![0.0; 512], &o, &Identity);
        assert!(r.stats.converged);
        assert_eq!(r.stats.format_trajectory.len(), r.stats.restarts);
        assert!(r.stats.format_trajectory.iter().all(|f| f == "frsz2_32"));
        assert_eq!(r.stats.escalations, 0);
    }

    #[test]
    fn max_iters_cap_reports_non_convergence() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.5, 0.0, 0.0], 0.0);
        let (_, b) = manufactured_rhs(&a);
        let o = GmresOptions {
            target_rrn: 1e-30, // unattainable
            max_iters: 50,
            ..GmresOptions::default()
        };
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 512], &o, &Identity);
        assert!(!r.stats.converged);
        assert_eq!(r.stats.iterations, 50);
        assert!(r.stats.final_rrn > 0.0);
    }

    #[test]
    fn residual_history_independent_of_matrix_format() {
        // The bit-identity contract of `SparseMatrix` means a solve is
        // the *same computation* whatever format backs the operator.
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.1);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; 512];
        let o = opts(1e-9);
        let base = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &o, &Identity);
        let ell = Ell::from_csr(&a);
        let sell = SellCSigma::from_csr(&a, 32, 256);
        for (label, r) in [
            (
                "ell",
                gmres::<Frsz2Store, _, _>(&ell, &b, &x0, &o, &Identity),
            ),
            (
                "sell",
                gmres::<Frsz2Store, _, _>(&sell, &b, &x0, &o, &Identity),
            ),
            (
                "dyn",
                gmres::<Frsz2Store, _, _>(
                    spla::auto_format(&a).build(&a).as_ref(),
                    &b,
                    &x0,
                    &o,
                    &Identity,
                ),
            ),
        ] {
            assert_eq!(r.stats.iterations, base.stats.iterations, "{label}");
            assert_eq!(r.history.len(), base.history.len(), "{label}");
            for (p, q) in r.history.iter().zip(&base.history) {
                assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "{label} history");
            }
            for (u, v) in r.x.iter().zip(&base.x) {
                assert_eq!(u.to_bits(), v.to_bits(), "{label} solution");
            }
        }
    }

    #[test]
    fn solver_is_deterministic() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.1);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; 512];
        let o = opts(1e-9);
        let r1 = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &o, &Identity);
        let r2 = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &o, &Identity);
        assert_eq!(r1.stats.iterations, r2.stats.iterations);
        assert_eq!(r1.history.len(), r2.history.len());
        for (p, q) in r1.history.iter().zip(&r2.history) {
            assert_eq!(
                p.rrn.to_bits(),
                q.rrn.to_bits(),
                "history must be bitwise equal"
            );
        }
        for (a1, a2) in r1.x.iter().zip(&r2.x) {
            assert_eq!(a1.to_bits(), a2.to_bits());
        }
    }

    #[test]
    fn fault_nan_hessenberg_is_detected_as_breakdown() {
        // Poison one Hessenberg entry mid-solve: the non-finite guard
        // must record a breakdown and the restarted solve must still
        // converge on fresh cycles.
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.1);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; 512];
        let mut o = opts(1e-9);
        o.fault_nan_hessenberg_at = Some(7);
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &o, &Identity);
        assert!(r.stats.converged, "final rrn {}", r.stats.final_rrn);
        assert!(r.stats.breakdowns >= 1, "the injected NaN went undetected");

        let clean = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &opts(1e-9), &Identity);
        assert_eq!(clean.stats.breakdowns, 0);
    }

    #[test]
    fn halt_and_resume_is_bit_identical_to_uninterrupted() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.1);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; 512];
        let mut o = opts(1e-10);
        o.restart = 10;
        let base = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &o, &Identity);
        assert!(base.stats.converged);
        assert!(base.stats.restarts >= 3, "need several cycles to split");

        // Halt at the third boundary, then resume from the captured
        // checkpoint; the stitched solve must equal the base run bit
        // for bit, including the residual history and counters.
        let mut taken: Option<SolveCheckpoint> = None;
        let mut boundaries = 0usize;
        let mut probe = |cp: &SolveCheckpoint| {
            boundaries += 1;
            if boundaries == 3 {
                taken = Some(cp.clone());
                SolveControl::Halt
            } else {
                SolveControl::Continue
            }
        };
        let first = gmres_with_controlled(
            &a,
            &b,
            &x0,
            &o,
            &Identity,
            Frsz2Store::with_shape,
            None,
            Some(&mut probe),
        );
        assert!(first.halted);
        assert!(!first.result.stats.converged);
        let cp = taken.expect("checkpoint captured at halt");
        assert_eq!(cp.driver, DriverKind::Scalar);

        // Round-trip the checkpoint through its byte format too.
        let bytes = cp.encode(None);
        let cp = SolveCheckpoint::decode(&bytes, None).expect("decode");

        let resumed = gmres_with_controlled(
            &a,
            &b,
            &vec![0.0; 512],
            &o,
            &Identity,
            Frsz2Store::with_shape,
            Some(&cp),
            None,
        );
        assert!(!resumed.halted);
        let r = resumed.result;
        assert!(r.stats.converged);
        assert_eq!(r.stats.iterations, base.stats.iterations);
        assert_eq!(r.stats.restarts, base.stats.restarts);
        assert_eq!(r.stats.spmv_count, base.stats.spmv_count);
        assert_eq!(r.history.len(), base.history.len());
        for (p, q) in r.history.iter().zip(&base.history) {
            assert_eq!(p.iteration, q.iteration);
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "history");
        }
        for (u, v) in r.x.iter().zip(&base.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "solution");
        }
        assert_eq!(r.stats.format_trajectory, base.stats.format_trajectory);
    }
}
