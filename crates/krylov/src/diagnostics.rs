//! Convergence diagnostics: Krylov-vector snapshots for the Fig. 2
//! decorrelation analysis.

use crate::gmres::{gmres, GmresOptions};
use crate::precond::Identity;
use numfmt::ColumnStorage;
use spla::stats;
use spla::SparseMatrix;

/// A captured Krylov basis vector with the paper's Fig. 2 statistics.
#[derive(Clone, Debug)]
pub struct KrylovSnapshot {
    /// The stored (post-compression) basis vector.
    pub values: Vec<f64>,
    /// Global iteration at which it was written.
    pub iteration: usize,
    /// Histogram of raw values (Fig. 2a/2c).
    pub value_histogram: Vec<(f64, usize)>,
    /// Histogram of base-2 exponents (Fig. 2b/2d).
    pub exponent_histogram: Vec<(i32, usize)>,
    /// (exponents covering 90 % of entries, distinct exponents) — the
    /// "few common exponent values" observation of §III-A.
    pub exponent_concentration: (usize, usize),
}

/// Run GMRES far enough to write basis vector number `iteration` and
/// return it with its statistics. Returns `None` if the solver converges
/// before reaching that iteration.
pub fn krylov_snapshot<S: ColumnStorage, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    iteration: usize,
    value_bins: usize,
) -> Option<KrylovSnapshot> {
    let opts = GmresOptions {
        capture_basis_at: Some(iteration),
        max_iters: iteration + 2,
        target_rrn: 0.0, // never stop early
        record_history: false,
        ..GmresOptions::default()
    };
    let x0 = vec![0.0; a.rows()];
    let r = gmres::<S, _, _>(a, b, &x0, &opts, &Identity);
    let values = r.captured_basis_vector?;
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let pad = (hi - lo).max(1e-300) * 1e-6;
    Some(KrylovSnapshot {
        iteration,
        value_histogram: stats::value_histogram(&values, lo - pad, hi + pad, value_bins),
        exponent_histogram: stats::exponent_histogram(&values),
        exponent_concentration: stats::exponent_concentration(&values),
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfmt::DenseStore;
    use spla::dense::manufactured_rhs;
    use spla::gen;

    #[test]
    fn snapshot_captures_unit_vector_with_clustered_exponents() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.1, 0.0], 0.1);
        let (_, b) = manufactured_rhs(&a);
        let s = krylov_snapshot::<DenseStore<f64>, _>(&a, &b, 10, 32).expect("snapshot");
        assert_eq!(s.values.len(), 512);
        assert_eq!(s.iteration, 10);
        let nrm = spla::dense::norm2(&s.values);
        assert!((nrm - 1.0).abs() < 1e-10);
        // Fig. 2 observation: most entries share a handful of exponents.
        let (core, total) = s.exponent_concentration;
        assert!(core <= total);
        assert!(core <= 16, "90% of mass within a few binades, got {core}");
        // Histogram counts add to n.
        let count: usize = s.value_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(count, 512);
    }

    #[test]
    fn snapshot_none_when_converged_before_iteration() {
        let a = spla::Csr::identity(64);
        let (_, b) = manufactured_rhs(&a);
        // Identity converges immediately; iteration 50 is never reached.
        let s = krylov_snapshot::<DenseStore<f64>, _>(&a, &b, 50, 16);
        assert!(s.is_none());
    }
}
