//! Convergence diagnostics: Krylov-vector snapshots for the Fig. 2
//! decorrelation analysis, and guarded convergence-history summaries.

use crate::gmres::{gmres, GmresOptions, HistoryPoint};
use crate::precond::Identity;
use numfmt::ColumnStorage;
use spla::stats;
use spla::SparseMatrix;

/// Summary of a recorded convergence history.
///
/// Every field is optional because a history may legitimately be empty
/// (`record_history: false`, or a solve that converged at iteration 0):
/// consumers must never index or `last().unwrap()` a history directly —
/// this summary is the guarded access path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistorySummary {
    /// Total recorded points.
    pub points: usize,
    /// The last recorded point of any kind.
    pub last: Option<HistoryPoint>,
    /// The last explicitly recomputed residual (restart boundaries).
    pub last_explicit: Option<HistoryPoint>,
    /// The last implicit Givens estimate.
    pub last_implicit: Option<HistoryPoint>,
    /// `last_explicit.rrn / preceding implicit rrn` — the Fig. 9a
    /// restart-correction factor. `None` when either side is missing
    /// or the implicit estimate is zero.
    pub implicit_explicit_gap: Option<f64>,
}

/// Summarize a convergence history. Total function: any slice —
/// including the empty one — yields a well-defined summary, so callers
/// downstream of `record_history: false` cannot panic.
pub fn history_summary(history: &[HistoryPoint]) -> HistorySummary {
    let mut summary = HistorySummary {
        points: history.len(),
        ..HistorySummary::default()
    };
    let mut preceding_implicit: Option<f64> = None;
    for p in history {
        if p.explicit {
            summary.implicit_explicit_gap = match preceding_implicit {
                Some(imp) if imp > 0.0 => Some(p.rrn / imp),
                _ => None,
            };
            summary.last_explicit = Some(*p);
        } else {
            preceding_implicit = Some(p.rrn);
            summary.last_implicit = Some(*p);
        }
        summary.last = Some(*p);
    }
    summary
}

/// A captured Krylov basis vector with the paper's Fig. 2 statistics.
#[derive(Clone, Debug)]
pub struct KrylovSnapshot {
    /// The stored (post-compression) basis vector.
    pub values: Vec<f64>,
    /// Global iteration at which it was written.
    pub iteration: usize,
    /// Histogram of raw values (Fig. 2a/2c).
    pub value_histogram: Vec<(f64, usize)>,
    /// Histogram of base-2 exponents (Fig. 2b/2d).
    pub exponent_histogram: Vec<(i32, usize)>,
    /// (exponents covering 90 % of entries, distinct exponents) — the
    /// "few common exponent values" observation of §III-A.
    pub exponent_concentration: (usize, usize),
}

/// Run GMRES far enough to write basis vector number `iteration` and
/// return it with its statistics. Returns `None` if the solver converges
/// before reaching that iteration.
pub fn krylov_snapshot<S: ColumnStorage, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    iteration: usize,
    value_bins: usize,
) -> Option<KrylovSnapshot> {
    let opts = GmresOptions {
        capture_basis_at: Some(iteration),
        max_iters: iteration + 2,
        target_rrn: 0.0, // never stop early
        record_history: false,
        ..GmresOptions::default()
    };
    let x0 = vec![0.0; a.rows()];
    let r = gmres::<S, _, _>(a, b, &x0, &opts, &Identity);
    let values = r.captured_basis_vector?;
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let pad = (hi - lo).max(1e-300) * 1e-6;
    Some(KrylovSnapshot {
        iteration,
        value_histogram: stats::value_histogram(&values, lo - pad, hi + pad, value_bins),
        exponent_histogram: stats::exponent_histogram(&values),
        exponent_concentration: stats::exponent_concentration(&values),
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfmt::DenseStore;
    use spla::dense::manufactured_rhs;
    use spla::gen;

    #[test]
    fn snapshot_captures_unit_vector_with_clustered_exponents() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.1, 0.0], 0.1);
        let (_, b) = manufactured_rhs(&a);
        let s = krylov_snapshot::<DenseStore<f64>, _>(&a, &b, 10, 32).expect("snapshot");
        assert_eq!(s.values.len(), 512);
        assert_eq!(s.iteration, 10);
        let nrm = spla::dense::norm2(&s.values);
        assert!((nrm - 1.0).abs() < 1e-10);
        // Fig. 2 observation: most entries share a handful of exponents.
        let (core, total) = s.exponent_concentration;
        assert!(core <= total);
        assert!(core <= 16, "90% of mass within a few binades, got {core}");
        // Histogram counts add to n.
        let count: usize = s.value_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(count, 512);
    }

    #[test]
    fn snapshot_none_when_converged_before_iteration() {
        let a = spla::Csr::identity(64);
        let (_, b) = manufactured_rhs(&a);
        // Identity converges immediately; iteration 50 is never reached.
        let s = krylov_snapshot::<DenseStore<f64>, _>(&a, &b, 50, 16);
        assert!(s.is_none());
    }

    #[test]
    fn history_summary_of_empty_history_is_all_none() {
        // The `record_history: false` contract: everything downstream
        // must tolerate an empty history.
        let s = history_summary(&[]);
        assert_eq!(s.points, 0);
        assert!(s.last.is_none());
        assert!(s.last_explicit.is_none());
        assert!(s.last_implicit.is_none());
        assert!(s.implicit_explicit_gap.is_none());
    }

    #[test]
    fn history_summary_tracks_kinds_and_restart_gap() {
        let pt = |iteration, rrn, explicit| HistoryPoint {
            iteration,
            rrn,
            explicit,
        };
        let h = vec![
            pt(0, 1.0, true),
            pt(1, 1e-3, false),
            pt(2, 1e-6, false),
            pt(2, 1e-4, true), // restart correction: 100x off the implicit
            pt(3, 5e-5, false),
        ];
        let s = history_summary(&h);
        assert_eq!(s.points, 5);
        assert_eq!(s.last, Some(pt(3, 5e-5, false)));
        assert_eq!(s.last_explicit, Some(pt(2, 1e-4, true)));
        assert_eq!(s.last_implicit, Some(pt(3, 5e-5, false)));
        let gap = s.implicit_explicit_gap.unwrap();
        assert!((gap - 100.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn solve_without_history_produces_empty_but_valid_summary() {
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let opts = GmresOptions {
            record_history: false,
            target_rrn: 1e-8,
            ..GmresOptions::default()
        };
        let r = gmres::<DenseStore<f64>, _, _>(&a, &b, &vec![0.0; 216], &opts, &Identity);
        assert!(r.stats.converged);
        assert!(r.history.is_empty());
        let s = history_summary(&r.history);
        assert_eq!(s, HistorySummary::default());
        // The honest residual lives in stats, independent of history.
        assert!(r.stats.final_rrn <= 1e-8);
    }
}
