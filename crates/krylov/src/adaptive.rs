//! Adaptive-precision CB-GMRES: escalate the basis storage format when
//! the *explicit* residual stops improving.
//!
//! A fixed lossy basis caps the reachable residual at its
//! storage-accuracy floor: below it the implicit Givens estimate keeps
//! shrinking (it cannot see the compression loss) while the explicit
//! `‖b − Ax‖/‖b‖` stagnates — the Fig. 9a implicit/explicit gap, and
//! the false-convergence bug class this module exists to kill.
//! Compressed Basis GMRES (Aliaga et al., arXiv:2009.12101) observes
//! that the storage precision only needs to match the *current*
//! residual: early cycles tolerate aggressive compression, and
//! precision is only paid for once the residual has earned it.
//!
//! [`adaptive_gmres`] implements that schedule as a driver over the
//! cycle-granular core shared with [`crate::gmres::gmres_with`]: run
//! one restart cycle, recompute the explicit residual, and **escalate**
//! the format along [`crate::basis_format::ESCALATION_LADDER`]
//! (`frsz2_16 → frsz2_21 → frsz2_32 → float64`) when the cycle shows
//! stagnation. Escalation happens at most once per restart boundary,
//! carries `x` across the switch (only the basis store is rebuilt —
//! basis vectors never survive a restart anyway), and is recorded in
//! [`crate::SolveStats::format_trajectory`]. All decisions are pure functions
//! of deterministically-computed residuals, so adaptive solves inherit
//! the workspace-wide bit-identical-across-thread-counts contract.

use crate::basis_format::{self, BasisFormat};
use crate::gmres::{solve_driver, GmresOptions, SolveResult};
use crate::precond::Preconditioner;
use spla::SparseMatrix;

/// Options of [`adaptive_gmres`]: the base GMRES options plus the
/// escalation policy.
#[derive(Clone, Debug)]
pub struct AdaptiveOptions {
    /// The underlying solver options (restart length, target, ...).
    pub gmres: GmresOptions,
    /// Starting format name (resolved via [`basis_format::by_name`]).
    /// `None` starts at the bottom of the escalation ladder
    /// (`frsz2_16`): optimistic storage, evidence-driven escalation.
    pub start_format: Option<String>,
    /// A cycle is *stagnant* when it improves the explicit residual by
    /// less than this factor (`previous_rrn / current_rrn <
    /// min_cycle_improvement`). A healthy restart cycle improves by
    /// orders of magnitude; at a storage floor the ratio sits near 1.
    pub min_cycle_improvement: f64,
    /// A cycle is *lying* when the explicit residual exceeds the last
    /// implicit estimate by more than this factor — the implicit/
    /// explicit gap that precedes false convergence.
    pub max_implicit_explicit_gap: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            gmres: GmresOptions::default(),
            start_format: None,
            min_cycle_improvement: 1.5,
            max_implicit_explicit_gap: 10.0,
        }
    }
}

/// Why the driver decided to escalate after a cycle (diagnostic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stagnation {
    /// Explicit residual improved by less than `min_cycle_improvement`.
    FlatCycle,
    /// Implicit estimate crossed the target but the explicit residual
    /// did not (the false-convergence signature).
    FalseConvergence,
    /// Explicit exceeds implicit by more than the allowed gap.
    ImplicitGap,
}

/// Decide whether the just-finished cycle stagnated. Pure function of
/// deterministic residuals — no wall-clock, no randomness — so the
/// escalation schedule is reproducible bit for bit.
fn stagnation(
    opts: &AdaptiveOptions,
    prev_explicit: f64,
    explicit: f64,
    last_implicit: Option<f64>,
) -> Option<Stagnation> {
    let gap = opts.max_implicit_explicit_gap;
    if let Some(implicit) = last_implicit {
        // The implicit estimate claimed the target but the explicit
        // residual missed it by more than the allowed gap. (A healthy
        // cycle that breaks on the implicit test lands the explicit
        // residual within rounding of the target — that is convergence
        // pending the next boundary check, not stagnation.)
        if implicit <= opts.gmres.target_rrn && explicit > gap * opts.gmres.target_rrn {
            return Some(Stagnation::FalseConvergence);
        }
        if implicit > 0.0 && explicit > gap * implicit {
            return Some(Stagnation::ImplicitGap);
        }
    }
    if explicit > 0.0 && prev_explicit / explicit < opts.min_cycle_improvement {
        return Some(Stagnation::FlatCycle);
    }
    None
}

/// Solve `A x = b` with restarted CB-GMRES whose basis format starts
/// cheap and escalates on stagnation (see module docs).
///
/// Semantics shared with [`crate::gmres::gmres`]: `converged` is
/// decided exclusively from the explicit residual, the history mixes
/// implicit points with explicit restart-boundary points, and the
/// residual history is bit-identical for any thread count. Extra
/// reporting: [`crate::SolveStats::format_trajectory`] holds the format of
/// every executed cycle and [`crate::SolveStats::escalations`] counts the
/// switches; [`crate::SolveStats::format`] is the final (strongest) format.
pub fn adaptive_gmres<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &AdaptiveOptions,
    precond: &P,
) -> SolveResult {
    let n = a.rows();
    assert!(opts.min_cycle_improvement >= 1.0);
    assert!(opts.max_implicit_explicit_gap >= 1.0);
    let m = opts.gmres.restart;

    let mut format: Box<dyn BasisFormat> = match &opts.start_format {
        Some(name) => {
            basis_format::by_name(name).unwrap_or_else(|| panic!("unknown basis format {name}"))
        }
        None => basis_format::by_name(basis_format::ESCALATION_LADDER[0])
            .expect("ladder base is registered"),
    };
    let basis = crate::basis::Basis::from_store(format.create(n, m + 1));

    // The shared driver loop owns all boundary semantics (explicit-only
    // convergence, non-finite and max_iters guards); this hook adds the
    // escalation decision — at most one rung per restart boundary,
    // judged on the cycle that just finished.
    solve_driver(
        a,
        b,
        x0,
        &opts.gmres,
        precond,
        basis,
        |boundary, basis, stats| {
            let Some(prev) = boundary.prev_explicit_rrn else {
                return; // first boundary: no finished cycle to judge
            };
            if stagnation(
                opts,
                prev,
                boundary.explicit_rrn,
                boundary.last_implicit_rrn,
            )
            .is_none()
            {
                return;
            }
            if let Some(next) = basis_format::escalate(&format.name()) {
                format = basis_format::by_name(&next).expect("escalation targets are registered");
                *basis = crate::basis::Basis::from_store(format.create(n, m + 1));
                stats.escalations += 1;
                stats.format = basis.format_name();
            }
            // Already at the top: nothing stronger to switch to; keep
            // iterating toward max_iters honestly.
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::gmres_with;
    use crate::precond::Identity;
    use frsz2::{Frsz2Config, Frsz2Store};
    use spla::dense::manufactured_rhs;
    use spla::gen;

    fn adaptive_opts(target: f64, max_iters: usize, restart: usize) -> AdaptiveOptions {
        AdaptiveOptions {
            gmres: GmresOptions {
                target_rrn: target,
                max_iters,
                restart,
                ..GmresOptions::default()
            },
            ..AdaptiveOptions::default()
        }
    }

    /// The PR02R regime (§VI-A): genuine stagnation for narrow FRSZ2,
    /// not just slow convergence (see [`gen::wide_range_conv_diff`]).
    fn wide_range_system() -> (spla::Csr, Vec<f64>) {
        let a = gen::wide_range_conv_diff(8, 8, 8, 24, 0x5202);
        let (_, b) = manufactured_rhs(&a);
        (a, b)
    }

    #[test]
    fn converges_where_fixed_frsz2_16_stagnates() {
        // The acceptance scenario: target far below what frsz2_16 can
        // reach on a wide-dynamic-range operator. Fixed frsz2_16
        // stagnates to max_iters; adaptive escalates through the
        // ladder and converges.
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);

        let cfg = Frsz2Config::new(32, 16);
        let fixed = gmres_with(&a, &b, &x0, &opts.gmres, &Identity, |r, c| {
            Frsz2Store::with_config(cfg, r, c)
        });
        assert!(
            !fixed.stats.converged,
            "fixed frsz2_16 unexpectedly reached 1e-10 (rrn {:.2e})",
            fixed.stats.final_rrn
        );

        let adaptive = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(
            adaptive.stats.converged,
            "adaptive stalled at rrn {:.2e} (trajectory {:?})",
            adaptive.stats.final_rrn, adaptive.stats.format_trajectory
        );
        assert!(adaptive.stats.final_rrn <= 1e-10);
        assert!(adaptive.stats.escalations >= 1, "must have escalated");
        // Trajectory bookkeeping: one entry per executed cycle, walking
        // the ladder monotonically, starting at the base.
        assert_eq!(
            adaptive.stats.format_trajectory.len(),
            adaptive.stats.restarts
        );
        assert_eq!(adaptive.stats.format_trajectory[0], "frsz2_16");
        let ladder = crate::basis_format::ESCALATION_LADDER;
        let rungs: Vec<usize> = adaptive
            .stats
            .format_trajectory
            .iter()
            .map(|f| ladder.iter().position(|l| l == f).expect("on-ladder"))
            .collect();
        for pair in rungs.windows(2) {
            assert!(
                pair[1] == pair[0] || pair[1] == pair[0] + 1,
                "escalation must be at most one rung per restart boundary: {:?}",
                adaptive.stats.format_trajectory
            );
        }
        assert_eq!(
            adaptive.stats.escalations,
            rungs.windows(2).filter(|p| p[1] != p[0]).count()
        );
        // The final format is the strongest one used.
        assert_eq!(
            &adaptive.stats.format,
            adaptive.stats.format_trajectory.last().unwrap()
        );
    }

    #[test]
    fn easy_target_never_escalates() {
        // Above the frsz2_16 floor there is no stagnation evidence, so
        // the solve finishes entirely in the cheapest format.
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-3, 1000, 50);
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(r.stats.converged);
        assert_eq!(r.stats.escalations, 0);
        assert!(r.stats.format_trajectory.iter().all(|f| f == "frsz2_16"));
    }

    #[test]
    fn explicit_start_format_is_respected() {
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let mut opts = adaptive_opts(1e-10, 1000, 40);
        opts.start_format = Some("float64".into());
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(r.stats.converged);
        assert_eq!(r.stats.escalations, 0);
        assert!(r.stats.format_trajectory.iter().all(|f| f == "float64"));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spla::Csr::identity(10);
        let opts = adaptive_opts(1e-12, 100, 10);
        let r = adaptive_gmres(&a, &[0.0; 10], &[1.0; 10], &opts, &Identity);
        assert!(r.stats.converged);
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert!(r.stats.format_trajectory.is_empty());
    }

    #[test]
    fn adaptive_solver_is_deterministic() {
        // Uses the stagnating system so the escalation schedule itself
        // is part of what must reproduce.
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);
        let r1 = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        let r2 = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert_eq!(r1.stats.format_trajectory, r2.stats.format_trajectory);
        assert_eq!(r1.history.len(), r2.history.len());
        for (p, q) in r1.history.iter().zip(&r2.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
        }
        for (u, v) in r1.x.iter().zip(&r2.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}
