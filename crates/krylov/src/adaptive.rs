//! Adaptive-precision CB-GMRES: escalate the basis storage format when
//! the *explicit* residual stops improving.
//!
//! A fixed lossy basis caps the reachable residual at its
//! storage-accuracy floor: below it the implicit Givens estimate keeps
//! shrinking (it cannot see the compression loss) while the explicit
//! `‖b − Ax‖/‖b‖` stagnates — the Fig. 9a implicit/explicit gap, and
//! the false-convergence bug class this module exists to kill.
//! Compressed Basis GMRES (Aliaga et al., arXiv:2009.12101) observes
//! that the storage precision only needs to match the *current*
//! residual: early cycles tolerate aggressive compression, and
//! precision is only paid for once the residual has earned it.
//!
//! [`adaptive_gmres`] implements that schedule as a driver over the
//! cycle-granular core shared with [`crate::gmres::gmres_with`]: run
//! one restart cycle, recompute the explicit residual, and **escalate**
//! the format along [`crate::basis_format::ESCALATION_LADDER`]
//! (`frsz2_16 → frsz2_21 → frsz2_32 → float64`) when the cycle shows
//! stagnation. Escalation happens at most once per restart boundary,
//! carries `x` across the switch (only the basis store is rebuilt —
//! basis vectors never survive a restart anyway), and is recorded in
//! [`crate::SolveStats::format_trajectory`]. All decisions are pure functions
//! of deterministically-computed residuals, so adaptive solves inherit
//! the workspace-wide bit-identical-across-thread-counts contract.
//!
//! With [`AdaptiveOptions::de_escalate`] the driver is *bidirectional*:
//! once the explicit residual has shown
//! [`AdaptiveOptions::de_escalation_cycles`] consecutive healthy
//! cycles — each improving by at least
//! [`AdaptiveOptions::de_escalation_drop`] with the implicit estimate
//! in agreement — the driver steps **down** one rung, reclaiming basis
//! bandwidth that a conservative escalation left on the table (the
//! Aliaga et al. observation in reverse: a residual that is dropping
//! fast has precision headroom to spare). De-escalation carries `x`
//! across the switch exactly as escalation does, counts in
//! [`crate::SolveStats::de_escalations`], and shows in the trajectory.
//! The hysteresis (consecutive-cycle streak, reset on any stagnation
//! or non-qualifying cycle, one rung per boundary) keeps the ladder
//! from thrashing. Off by default: existing escalation-only schedules
//! are reproduced bit for bit.

use crate::basis_format::{self, BasisFormat};
use crate::checkpoint::{DriverKind, SolveCheckpoint, SolveControl};
use crate::gmres::{solve_driver_full, ControlledSolve, CycleEvent, GmresOptions, SolveResult};
use crate::precond::Preconditioner;
use spla::SparseMatrix;
use std::cell::Cell;

/// Options of [`adaptive_gmres`]: the base GMRES options plus the
/// escalation policy.
#[derive(Clone, Debug)]
pub struct AdaptiveOptions {
    /// The underlying solver options (restart length, target, ...).
    pub gmres: GmresOptions,
    /// Starting format name (resolved via [`basis_format::by_name`]).
    /// `None` starts at the bottom of the escalation ladder
    /// (`frsz2_16`): optimistic storage, evidence-driven escalation.
    pub start_format: Option<String>,
    /// A cycle is *stagnant* when it improves the explicit residual by
    /// less than this factor (`previous_rrn / current_rrn <
    /// min_cycle_improvement`). A healthy restart cycle improves by
    /// orders of magnitude; at a storage floor the ratio sits near 1.
    pub min_cycle_improvement: f64,
    /// A cycle is *lying* when the explicit residual exceeds the last
    /// implicit estimate by more than this factor — the implicit/
    /// explicit gap that precedes false convergence.
    pub max_implicit_explicit_gap: f64,
    /// Enable ladder de-escalation (default `false`, which reproduces
    /// the escalation-only schedule bit for bit).
    pub de_escalate: bool,
    /// A cycle *qualifies* toward de-escalation when it improves the
    /// explicit residual by at least this factor
    /// (`previous_rrn / current_rrn ≥ de_escalation_drop`) while the
    /// implicit estimate agrees with the explicit residual within
    /// [`AdaptiveOptions::max_implicit_explicit_gap`] in both
    /// directions.
    pub de_escalation_drop: f64,
    /// Consecutive qualifying cycles required before stepping down one
    /// rung (the hysteresis that prevents ladder thrash). The streak
    /// resets on any stagnant or non-qualifying cycle and after every
    /// rung change.
    pub de_escalation_cycles: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            gmres: GmresOptions::default(),
            start_format: None,
            min_cycle_improvement: 1.5,
            max_implicit_explicit_gap: 10.0,
            de_escalate: false,
            de_escalation_drop: 10.0,
            de_escalation_cycles: 2,
        }
    }
}

/// Why the driver decided to escalate after a cycle (diagnostic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stagnation {
    /// Explicit residual improved by less than `min_cycle_improvement`.
    FlatCycle,
    /// Implicit estimate crossed the target but the explicit residual
    /// did not (the false-convergence signature).
    FalseConvergence,
    /// Explicit exceeds implicit by more than the allowed gap.
    ImplicitGap,
}

/// Decide whether the just-finished cycle stagnated. Pure function of
/// deterministic residuals — no wall-clock, no randomness — so the
/// escalation schedule is reproducible bit for bit.
fn stagnation(
    opts: &AdaptiveOptions,
    prev_explicit: f64,
    explicit: f64,
    last_implicit: Option<f64>,
) -> Option<Stagnation> {
    let gap = opts.max_implicit_explicit_gap;
    if let Some(implicit) = last_implicit {
        // The implicit estimate claimed the target but the explicit
        // residual missed it by more than the allowed gap. (A healthy
        // cycle that breaks on the implicit test lands the explicit
        // residual within rounding of the target — that is convergence
        // pending the next boundary check, not stagnation.)
        if implicit <= opts.gmres.target_rrn && explicit > gap * opts.gmres.target_rrn {
            return Some(Stagnation::FalseConvergence);
        }
        if implicit > 0.0 && explicit > gap * implicit {
            return Some(Stagnation::ImplicitGap);
        }
    }
    if explicit > 0.0 && prev_explicit / explicit < opts.min_cycle_improvement {
        return Some(Stagnation::FlatCycle);
    }
    None
}

/// Decide whether the just-finished cycle *qualifies* toward
/// de-escalation: the explicit residual dropped by the hysteresis
/// factor and the implicit estimate agrees with it within the allowed
/// gap in **both** directions (an implicit estimate far below the
/// explicit residual is the stagnation signature, not health; one far
/// above it means the cycle's own arithmetic is suspect). Pure and
/// deterministic, like [`stagnation`].
fn qualifies_for_de_escalation(
    opts: &AdaptiveOptions,
    prev_explicit: f64,
    explicit: f64,
    last_implicit: Option<f64>,
) -> bool {
    let gap = opts.max_implicit_explicit_gap;
    let agrees = last_implicit.is_some_and(|implicit| {
        implicit > 0.0 && explicit <= gap * implicit && implicit <= gap * explicit
    });
    agrees && explicit > 0.0 && prev_explicit / explicit >= opts.de_escalation_drop
}

/// Solve `A x = b` with restarted CB-GMRES whose basis format starts
/// cheap and escalates on stagnation (see module docs).
///
/// Semantics shared with [`crate::gmres::gmres`]: `converged` is
/// decided exclusively from the explicit residual, the history mixes
/// implicit points with explicit restart-boundary points, and the
/// residual history is bit-identical for any thread count. Extra
/// reporting: [`crate::SolveStats::format_trajectory`] holds the format of
/// every executed cycle, [`crate::SolveStats::escalations`] and
/// [`crate::SolveStats::de_escalations`] count the rung changes in each
/// direction, and [`crate::SolveStats::format`] is the final format.
pub fn adaptive_gmres<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &AdaptiveOptions,
    precond: &P,
) -> SolveResult {
    adaptive_gmres_observed(a, b, x0, opts, precond, |_| {})
}

/// [`adaptive_gmres`] with a per-cycle telemetry observer: `observe`
/// fires once at every restart boundary, *after* the rung decision, so
/// [`CycleEvent::format`] names the format of the cycle about to run.
/// The observer cannot influence the solve — an observed solve is
/// bit-identical to the unobserved one (the escalation schedule
/// included); the final converged state arrives via the returned
/// [`crate::SolveStats`], not an event.
pub fn adaptive_gmres_observed<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &AdaptiveOptions,
    precond: &P,
    observe: impl FnMut(&CycleEvent),
) -> SolveResult {
    adaptive_gmres_controlled(a, b, x0, opts, precond, None, None, observe).result
}

/// [`adaptive_gmres_observed`] plus the fault-tolerance seam: capture
/// checkpoints and/or halt at restart boundaries through `control`,
/// and resume bit-identically from `resume` (see
/// [`crate::gmres::gmres_with_controlled`] for the contract).
///
/// Adaptive extras in the checkpoint: `format` records the rung the
/// next cycle runs in (escalations already applied), and
/// `qualifying_streak` carries the de-escalation hysteresis, so the
/// resumed ladder schedule reproduces exactly. `opts.start_format` is
/// ignored when resuming (the checkpointed rung wins). Panics if the
/// checkpoint came from a different driver.
#[allow(clippy::too_many_arguments)]
pub fn adaptive_gmres_controlled<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &AdaptiveOptions,
    precond: &P,
    resume: Option<&SolveCheckpoint>,
    control: Option<&mut dyn FnMut(&SolveCheckpoint) -> SolveControl>,
    mut observe: impl FnMut(&CycleEvent),
) -> ControlledSolve {
    let n = a.rows();
    assert!(opts.min_cycle_improvement >= 1.0);
    assert!(opts.max_implicit_explicit_gap >= 1.0);
    assert!(opts.de_escalation_drop >= 1.0);
    assert!(opts.de_escalation_cycles >= 1);
    let m = opts.gmres.restart;

    let qualifying_streak = Cell::new(0usize);
    let mut format: Box<dyn BasisFormat> = match resume {
        Some(cp) => {
            assert_eq!(
                cp.driver,
                DriverKind::Adaptive,
                "a {:?} checkpoint cannot resume the adaptive driver",
                cp.driver
            );
            qualifying_streak.set(cp.qualifying_streak);
            basis_format::by_name(&cp.format)
                .unwrap_or_else(|| panic!("unknown checkpointed basis format {}", cp.format))
        }
        None => match &opts.start_format {
            Some(name) => {
                basis_format::by_name(name).unwrap_or_else(|| panic!("unknown basis format {name}"))
            }
            None => basis_format::by_name(basis_format::ESCALATION_LADDER[0])
                .expect("ladder base is registered"),
        },
    };
    let basis = crate::basis::Basis::from_store(format.create(n, m + 1));

    // The shared driver loop owns all boundary semantics (explicit-only
    // convergence, non-finite and max_iters guards); this hook adds the
    // rung decision — at most one rung per restart boundary, in either
    // direction, judged on the cycle that just finished.
    let streak = &qualifying_streak;
    let on_boundary = |boundary: &crate::gmres::Boundary,
                       basis: &mut crate::basis::Basis<Box<dyn numfmt::ColumnStorage>>,
                       stats: &mut crate::gmres::SolveStats| {
        // First boundary: no finished cycle to judge, only observe.
        if let Some(prev) = boundary.prev_explicit_rrn {
            if stagnation(
                opts,
                prev,
                boundary.explicit_rrn,
                boundary.last_implicit_rrn,
            )
            .is_some()
            {
                streak.set(0);
                if let Some(next) = basis_format::escalate(&format.name()) {
                    format =
                        basis_format::by_name(&next).expect("escalation targets are registered");
                    *basis = crate::basis::Basis::from_store(format.create(n, m + 1));
                    stats.escalations += 1;
                    stats.format = basis.format_name();
                }
                // Already at the top: nothing stronger to switch
                // to; keep iterating toward max_iters honestly.
            } else if opts.de_escalate {
                if qualifies_for_de_escalation(
                    opts,
                    prev,
                    boundary.explicit_rrn,
                    boundary.last_implicit_rrn,
                ) {
                    streak.set(streak.get() + 1);
                    if streak.get() >= opts.de_escalation_cycles {
                        streak.set(0);
                        if let Some(down) = basis_format::de_escalate(&format.name()) {
                            format =
                                basis_format::by_name(&down).expect("ladder rungs are registered");
                            *basis = crate::basis::Basis::from_store(format.create(n, m + 1));
                            stats.de_escalations += 1;
                            stats.format = basis.format_name();
                        }
                        // At the bottom rung: nothing cheaper to
                        // reclaim.
                    }
                } else {
                    streak.set(0);
                }
            }
        }
        // Telemetry fires after the rung decision, so the event
        // names the format of the cycle about to run.
        observe(&CycleEvent::at_boundary(boundary, basis, stats));
    };

    match control {
        Some(c) => {
            // Stamp the adaptive-only state on top of the scalar
            // capture before handing the checkpoint to the caller.
            let mut wrap = |cp: &mut SolveCheckpoint| {
                cp.driver = DriverKind::Adaptive;
                cp.qualifying_streak = streak.get();
                c(cp)
            };
            solve_driver_full(
                a,
                b,
                x0,
                &opts.gmres,
                precond,
                basis,
                on_boundary,
                Some(&mut wrap),
                resume,
            )
        }
        None => solve_driver_full(
            a,
            b,
            x0,
            &opts.gmres,
            precond,
            basis,
            on_boundary,
            None,
            resume,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::gmres_with;
    use crate::precond::Identity;
    use frsz2::{Frsz2Config, Frsz2Store};
    use spla::dense::manufactured_rhs;
    use spla::gen;

    fn adaptive_opts(target: f64, max_iters: usize, restart: usize) -> AdaptiveOptions {
        AdaptiveOptions {
            gmres: GmresOptions {
                target_rrn: target,
                max_iters,
                restart,
                ..GmresOptions::default()
            },
            ..AdaptiveOptions::default()
        }
    }

    /// The PR02R regime (§VI-A): genuine stagnation for narrow FRSZ2,
    /// not just slow convergence (see [`gen::wide_range_conv_diff`]).
    fn wide_range_system() -> (spla::Csr, Vec<f64>) {
        let a = gen::wide_range_conv_diff(8, 8, 8, 24, 0x5202);
        let (_, b) = manufactured_rhs(&a);
        (a, b)
    }

    #[test]
    fn converges_where_fixed_frsz2_16_stagnates() {
        // The acceptance scenario: target far below what frsz2_16 can
        // reach on a wide-dynamic-range operator. Fixed frsz2_16
        // stagnates to max_iters; adaptive escalates through the
        // ladder and converges.
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);

        let cfg = Frsz2Config::new(32, 16);
        let fixed = gmres_with(&a, &b, &x0, &opts.gmres, &Identity, |r, c| {
            Frsz2Store::with_config(cfg, r, c)
        });
        assert!(
            !fixed.stats.converged,
            "fixed frsz2_16 unexpectedly reached 1e-10 (rrn {:.2e})",
            fixed.stats.final_rrn
        );

        let adaptive = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(
            adaptive.stats.converged,
            "adaptive stalled at rrn {:.2e} (trajectory {:?})",
            adaptive.stats.final_rrn, adaptive.stats.format_trajectory
        );
        assert!(adaptive.stats.final_rrn <= 1e-10);
        assert!(adaptive.stats.escalations >= 1, "must have escalated");
        // Trajectory bookkeeping: one entry per executed cycle, walking
        // the ladder monotonically, starting at the base.
        assert_eq!(
            adaptive.stats.format_trajectory.len(),
            adaptive.stats.restarts
        );
        assert_eq!(adaptive.stats.format_trajectory[0], "frsz2_16");
        let ladder = crate::basis_format::ESCALATION_LADDER;
        let rungs: Vec<usize> = adaptive
            .stats
            .format_trajectory
            .iter()
            .map(|f| ladder.iter().position(|l| l == f).expect("on-ladder"))
            .collect();
        for pair in rungs.windows(2) {
            assert!(
                pair[1] == pair[0] || pair[1] == pair[0] + 1,
                "escalation must be at most one rung per restart boundary: {:?}",
                adaptive.stats.format_trajectory
            );
        }
        assert_eq!(
            adaptive.stats.escalations,
            rungs.windows(2).filter(|p| p[1] != p[0]).count()
        );
        // The final format is the strongest one used.
        assert_eq!(
            &adaptive.stats.format,
            adaptive.stats.format_trajectory.last().unwrap()
        );
    }

    #[test]
    fn easy_target_never_escalates() {
        // Above the frsz2_16 floor there is no stagnation evidence, so
        // the solve finishes entirely in the cheapest format.
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-3, 1000, 50);
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(r.stats.converged);
        assert_eq!(r.stats.escalations, 0);
        assert!(r.stats.format_trajectory.iter().all(|f| f == "frsz2_16"));
    }

    #[test]
    fn explicit_start_format_is_respected() {
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let mut opts = adaptive_opts(1e-10, 1000, 40);
        opts.start_format = Some("float64".into());
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(r.stats.converged);
        assert_eq!(r.stats.escalations, 0);
        assert!(r.stats.format_trajectory.iter().all(|f| f == "float64"));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spla::Csr::identity(10);
        let opts = adaptive_opts(1e-12, 100, 10);
        let r = adaptive_gmres(&a, &[0.0; 10], &[1.0; 10], &opts, &Identity);
        assert!(r.stats.converged);
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert!(r.stats.format_trajectory.is_empty());
    }

    #[test]
    fn qualifying_rule_needs_drop_and_two_sided_agreement() {
        let opts = AdaptiveOptions {
            de_escalate: true,
            ..AdaptiveOptions::default()
        };
        // 100× drop, implicit within the gap: qualifies.
        assert!(qualifies_for_de_escalation(&opts, 1e-2, 1e-4, Some(2e-4)));
        // Drop below the hysteresis factor: no.
        assert!(!qualifies_for_de_escalation(&opts, 1e-2, 2e-3, Some(2e-3)));
        // Implicit far below explicit (stagnation signature): no.
        assert!(!qualifies_for_de_escalation(&opts, 1e-2, 1e-4, Some(1e-7)));
        // Implicit far above explicit: no.
        assert!(!qualifies_for_de_escalation(&opts, 1e-2, 1e-4, Some(1e-1)));
        // No implicit point at all: no.
        assert!(!qualifies_for_de_escalation(&opts, 1e-2, 1e-4, None));
    }

    /// A solve forced to start at `float64` on a smooth operator drops
    /// by orders of magnitude every cycle: with de-escalation enabled
    /// it must step back down the ladder and still converge.
    #[test]
    fn de_escalation_reclaims_bandwidth_after_float64_start() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let mut opts = adaptive_opts(1e-10, 2000, 10);
        opts.start_format = Some("float64".into());
        opts.de_escalate = true;
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(r.stats.converged, "rrn {:.2e}", r.stats.final_rrn);
        assert!(
            r.stats.de_escalations >= 1,
            "no de-escalation in {:?}",
            r.stats.format_trajectory
        );
        assert_eq!(r.stats.format_trajectory[0], "float64");
        // Rung changes are one step per boundary, both directions, and
        // the counters match the trajectory.
        let ladder = crate::basis_format::ESCALATION_LADDER;
        let rungs: Vec<usize> = r
            .stats
            .format_trajectory
            .iter()
            .map(|f| ladder.iter().position(|l| l == f).expect("on-ladder"))
            .collect();
        for pair in rungs.windows(2) {
            assert!(
                pair[0].abs_diff(pair[1]) <= 1,
                "at most one rung per boundary: {:?}",
                r.stats.format_trajectory
            );
        }
        assert_eq!(
            r.stats.de_escalations,
            rungs.windows(2).filter(|p| p[1] < p[0]).count()
        );
        assert_eq!(
            r.stats.escalations,
            rungs.windows(2).filter(|p| p[1] > p[0]).count()
        );
        assert_eq!(&r.stats.format, r.stats.format_trajectory.last().unwrap());
    }

    /// The acceptance scenario for PR 6: on the wide-range operator the
    /// bidirectional driver escalates out of stagnation *and* steps
    /// back down once the residual is dropping — both directions in one
    /// trajectory, still converging to the deep target.
    #[test]
    fn bidirectional_trajectory_on_wide_range() {
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let mut opts = adaptive_opts(1e-10, 1200, 30);
        opts.de_escalate = true;
        // The 8³ system converges within six cycles; a single qualifying
        // cycle must trigger the step-down for both directions to appear
        // in so short a trajectory (the two-cycle default needs the
        // longer 12³ solve exercised by the bench harness).
        opts.de_escalation_cycles = 1;
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(
            r.stats.converged,
            "stalled at rrn {:.2e} (trajectory {:?})",
            r.stats.final_rrn, r.stats.format_trajectory
        );
        assert!(r.stats.escalations >= 1, "{:?}", r.stats.format_trajectory);
        assert!(
            r.stats.de_escalations >= 1,
            "no de-escalation in {:?}",
            r.stats.format_trajectory
        );
    }

    /// De-escalation is opt-in: with the flag off the escalation-only
    /// schedule of PR 4 reproduces bit for bit, de_escalations stays 0.
    #[test]
    fn de_escalation_is_off_by_default() {
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);
        let r = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert_eq!(r.stats.de_escalations, 0);
        let ladder = crate::basis_format::ESCALATION_LADDER;
        let rungs: Vec<usize> = r
            .stats
            .format_trajectory
            .iter()
            .map(|f| ladder.iter().position(|l| l == f).unwrap())
            .collect();
        assert!(rungs.windows(2).all(|p| p[1] >= p[0]), "up-only");
    }

    /// `frsz2_ab` converges on the mixed-regime runs operator where
    /// *both* fixed `frsz2_16` and fixed `frsz2_21` stagnate — the
    /// per-block selector widens exactly the plateau-straddling blocks
    /// whose spread would otherwise flush — at a lower average rate
    /// than whole-basis `frsz2_21` (22 bits/value). On the fully
    /// uncorrelated operator this is impossible: every block spans
    /// ~`range` binades, so honest per-block selection picks wide codes
    /// everywhere and the average rate exceeds 22.
    #[test]
    fn per_block_store_converges_on_wide_range_below_frsz2_21_rate() {
        let a = gen::wide_range_conv_diff_runs(8, 8, 8, 24, 16, 0x5202);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);

        let fixed = crate::basis_format::by_name("frsz2_16").unwrap();
        let s = crate::basis_format::gmres_dyn(&a, &b, &x0, &opts.gmres, &Identity, fixed.as_ref());
        assert!(
            !s.stats.converged,
            "fixed frsz2_16 unexpectedly converged (rrn {:.2e})",
            s.stats.final_rrn
        );

        let fmt = crate::basis_format::by_name("frsz2_ab").unwrap();
        let r = crate::basis_format::gmres_dyn(&a, &b, &x0, &opts.gmres, &Identity, fmt.as_ref());
        assert!(
            r.stats.converged,
            "frsz2_ab stalled at rrn {:.2e}",
            r.stats.final_rrn
        );
        assert!(
            r.stats.basis_bits_per_value < 22.0,
            "average rate {} not below frsz2_21's 22 bits/value",
            r.stats.basis_bits_per_value
        );
        assert_eq!(r.stats.format, "frsz2_ab");
    }

    /// The telemetry observer is a pure spectator: the observed solve
    /// reproduces the unobserved one bit for bit, streams exactly one
    /// event per executed cycle, and each event names the format the
    /// cycle actually ran in (the trajectory, in order).
    #[test]
    fn observed_solve_is_bit_identical_and_streams_cycles() {
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);
        let mut events = Vec::new();
        let observed =
            adaptive_gmres_observed(&a, &b, &x0, &opts, &Identity, |e| events.push(e.clone()));
        let plain = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert_eq!(
            observed.stats.format_trajectory,
            plain.stats.format_trajectory
        );
        for (u, v) in observed.x.iter().zip(&plain.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(events.len(), observed.stats.restarts);
        let event_formats: Vec<&str> = events.iter().map(|e| e.format.as_str()).collect();
        let trajectory: Vec<&str> = observed
            .stats
            .format_trajectory
            .iter()
            .map(String::as_str)
            .collect();
        assert_eq!(event_formats, trajectory);
        // First boundary: cycle 0, zero iterations, unit residual.
        assert_eq!(events[0].cycle, 0);
        assert_eq!(events[0].iterations, 0);
        assert!((events[0].explicit_rrn - 1.0).abs() < 1e-12);
        // Counters only move forward between boundaries.
        for pair in events.windows(2) {
            assert_eq!(pair[1].cycle, pair[0].cycle + 1);
            assert!(pair[1].iterations > pair[0].iterations);
            assert!(pair[1].basis_bytes_read >= pair[0].basis_bytes_read);
            assert!(pair[1].basis_bytes_written >= pair[0].basis_bytes_written);
        }
    }

    /// Halt the adaptive solve mid-ladder, resume from the captured
    /// checkpoint, and require the stitched run to reproduce the
    /// uninterrupted solve bit for bit — escalation schedule included.
    #[test]
    fn adaptive_halt_and_resume_is_bit_identical() {
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);
        let base = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert!(base.stats.converged);
        assert!(base.stats.escalations >= 1);
        assert!(base.stats.restarts >= 4, "need several cycles to split");

        let mut taken: Option<SolveCheckpoint> = None;
        let mut boundaries = 0usize;
        let mut probe = |cp: &SolveCheckpoint| {
            boundaries += 1;
            if boundaries == 4 {
                taken = Some(cp.clone());
                SolveControl::Halt
            } else {
                SolveControl::Continue
            }
        };
        let first = adaptive_gmres_controlled(
            &a,
            &b,
            &x0,
            &opts,
            &Identity,
            None,
            Some(&mut probe),
            |_| {},
        );
        assert!(first.halted);
        let cp = taken.expect("checkpoint captured at halt");
        assert_eq!(cp.driver, DriverKind::Adaptive);

        // Round-trip through the delta-capable byte format.
        let bytes = cp.encode(None);
        let cp = SolveCheckpoint::decode(&bytes, None).expect("decode");

        let resumed = adaptive_gmres_controlled(
            &a,
            &b,
            &vec![0.0; a.rows()],
            &opts,
            &Identity,
            Some(&cp),
            None,
            |_| {},
        );
        assert!(!resumed.halted);
        let r = resumed.result;
        assert!(r.stats.converged);
        assert_eq!(r.stats.format_trajectory, base.stats.format_trajectory);
        assert_eq!(r.stats.escalations, base.stats.escalations);
        assert_eq!(r.stats.iterations, base.stats.iterations);
        assert_eq!(r.stats.spmv_count, base.stats.spmv_count);
        assert_eq!(r.history.len(), base.history.len());
        for (p, q) in r.history.iter().zip(&base.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "history");
        }
        for (u, v) in r.x.iter().zip(&base.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "solution");
        }
    }

    #[test]
    fn adaptive_solver_is_deterministic() {
        // Uses the stagnating system so the escalation schedule itself
        // is part of what must reproduce.
        let (a, b) = wide_range_system();
        let x0 = vec![0.0; a.rows()];
        let opts = adaptive_opts(1e-10, 1200, 30);
        let r1 = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        let r2 = adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        assert_eq!(r1.stats.format_trajectory, r2.stats.format_trajectory);
        assert_eq!(r1.history.len(), r2.history.len());
        for (p, q) in r1.history.iter().zip(&r2.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
        }
        for (u, v) in r1.x.iter().zip(&r2.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}
