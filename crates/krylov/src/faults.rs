//! Deterministic fault injection for the robustness harness.
//!
//! A production CB-GMRES deployment must treat poisoned compressed
//! basis words, non-finite Hessenberg entries, and wedged or panicking
//! jobs as routine events. This module makes every one of those faults
//! *injectable on demand and deterministically*, so the detection and
//! recovery paths (the explicit-residual convergence test, the
//! non-finite breakdown guards, the service's retry/escalation and
//! deadline machinery) are exercised by tests and the `faults` bench
//! suite instead of waiting for cosmic rays:
//!
//! - **Basis corruption** — [`FaultInjectingStore`] wraps any
//!   [`ColumnStorage`] and flips one chosen bit of one chosen value on
//!   one chosen column write ([`BasisBitFlip`]). [`FaultyFormat`] lifts
//!   the wrapper to a [`BasisFormat`] so the dyn solve paths inject
//!   without code changes. An *unarmed* wrapper delegates every method
//!   and is bit-identical to the bare store.
//! - **Hessenberg NaN** — armed through
//!   [`crate::gmres::GmresOptions::fault_nan_hessenberg_at`], which
//!   poisons the projection coefficients at one global iteration; the
//!   solver's PR-4 non-finite guard must turn it into a typed
//!   breakdown, never an infinite loop or a false convergence.
//! - **Job-level faults** — [`FaultSpec`] is the service-facing plan:
//!   it adds panicking attempts and per-boundary sleeps (to trip
//!   deadlines) on top of the numerical faults above.
//!
//! Detection is structural, not probabilistic: convergence is decided
//! only by the explicit residual `‖b − Ax‖/‖b‖` at restart boundaries,
//! so a corrupted basis can slow a solve or break it down, but it
//! cannot make the solver report a converged `x` that does not satisfy
//! the target — the invariant the `faults` bench suite pins as "zero
//! undetected corruptions".

use crate::basis_format::BasisFormat;
use numfmt::ColumnStorage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Flip one bit of one stored value on one column write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasisBitFlip {
    /// 0-based index of the `write_column` call to corrupt (writes are
    /// counted across the whole solve, restarts included).
    pub nth_write: u64,
    /// Row index of the value to corrupt (reduced modulo the column
    /// length).
    pub index: usize,
    /// Bit of the f64 pattern to flip (reduced modulo 64; bit 63 is
    /// the sign, 52–62 the exponent).
    pub bit: u32,
}

/// A deterministic basis-corruption plan plus a shared counter of
/// faults actually fired (clone the plan, keep a clone, and read
/// [`FaultPlan::fired`] after the solve).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The bit flip to apply, if any.
    pub flip_on_write: Option<BasisBitFlip>,
    /// Incremented once per injected fault.
    pub fired: Arc<AtomicU64>,
}

impl FaultPlan {
    /// A plan that flips `bit` of value `index` on write `nth_write`.
    pub fn bit_flip(nth_write: u64, index: usize, bit: u32) -> FaultPlan {
        FaultPlan {
            flip_on_write: Some(BasisBitFlip {
                nth_write,
                index,
                bit,
            }),
            fired: Arc::new(AtomicU64::new(0)),
        }
    }

    /// How many faults this plan has injected so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

/// [`ColumnStorage`] wrapper that corrupts writes per a [`FaultPlan`]
/// and otherwise delegates everything to the wrapped store.
///
/// Corruption happens *before* delegation, so the poisoned value goes
/// through the format's real compression path and every read kernel
/// sees the corrupted stored data — exactly what a flipped bit in the
/// compressed words would look like to the solver. The wrapper
/// forwards `chunk_align` and the same method set as
/// `Box<dyn ColumnStorage>`, so an unarmed wrapper preserves the
/// solver's reduction order bit for bit.
pub struct FaultInjectingStore {
    inner: Box<dyn ColumnStorage>,
    plan: FaultPlan,
    writes: u64,
}

impl FaultInjectingStore {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Box<dyn ColumnStorage>, plan: FaultPlan) -> FaultInjectingStore {
        FaultInjectingStore {
            inner,
            plan,
            writes: 0,
        }
    }
}

impl ColumnStorage for FaultInjectingStore {
    fn with_shape(_rows: usize, _cols: usize) -> Self {
        panic!(
            "FaultInjectingStore has no default format: wrap a store via FaultInjectingStore::new"
        )
    }

    #[inline]
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    #[inline]
    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn write_column(&mut self, j: usize, data: &[f64]) {
        let nth = self.writes;
        self.writes += 1;
        if let Some(f) = self.plan.flip_on_write {
            if f.nth_write == nth && !data.is_empty() {
                let mut poisoned = data.to_vec();
                let i = f.index % poisoned.len();
                poisoned[i] = f64::from_bits(poisoned[i].to_bits() ^ (1u64 << (f.bit % 64)));
                self.plan.fired.fetch_add(1, Ordering::Relaxed);
                self.inner.write_column(j, &poisoned);
                return;
            }
        }
        self.inner.write_column(j, data);
    }

    #[inline]
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]) {
        self.inner.read_chunk(j, row_start, out);
    }

    #[inline]
    fn read_column(&self, j: usize, out: &mut [f64]) {
        self.inner.read_column(j, out);
    }

    #[inline]
    fn load(&self, i: usize, j: usize) -> f64 {
        self.inner.load(i, j)
    }

    #[inline]
    fn chunk_align(&self) -> usize {
        self.inner.chunk_align()
    }

    #[inline]
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        self.inner.dot_chunk(j, row_start, w)
    }

    #[inline]
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        self.inner.axpy_chunk(j, row_start, alpha, w)
    }

    #[inline]
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        self.inner.dots_chunk(k, row_start, w, out)
    }

    #[inline]
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        self.inner.gemv_chunk(k, row_start, alphas, w)
    }

    fn column_bytes(&self) -> usize {
        self.inner.column_bytes()
    }

    fn bits_per_value(&self) -> f64 {
        self.inner.bits_per_value()
    }

    fn format_name(&self) -> String {
        self.inner.format_name()
    }
}

/// [`BasisFormat`] wrapper whose stores inject faults per a
/// [`FaultPlan`]: the entry point for corrupting a dyn-dispatch solve
/// (`gmres_dyn*`, the service, the bench harness) without touching
/// solver code.
pub struct FaultyFormat {
    inner: Box<dyn BasisFormat>,
    plan: FaultPlan,
}

impl FaultyFormat {
    /// Wrap `inner` so every created store runs under `plan`.
    pub fn new(inner: Box<dyn BasisFormat>, plan: FaultPlan) -> FaultyFormat {
        FaultyFormat { inner, plan }
    }
}

impl BasisFormat for FaultyFormat {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn accuracy_floor(&self) -> f64 {
        self.inner.accuracy_floor()
    }

    fn bits_per_value(&self, rows: usize) -> f64 {
        self.inner.bits_per_value(rows)
    }

    fn max_sstep(&self) -> usize {
        self.inner.max_sstep()
    }

    fn create(&self, rows: usize, cols: usize) -> Box<dyn ColumnStorage> {
        Box::new(FaultInjectingStore::new(
            self.inner.create(rows, cols),
            self.plan.clone(),
        ))
    }
}

/// A job-level fault plan for the solver service: which faults to
/// inject into one job, spanning the numerical faults above plus
/// process-level misbehavior (panics, slowness). All fields default to
/// "no fault"; the spec is plain data so jobs stay `Clone`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Poison the Hessenberg at this global iteration (see
    /// [`crate::gmres::GmresOptions::fault_nan_hessenberg_at`]).
    pub nan_hessenberg_at: Option<usize>,
    /// Restrict the numerical faults to attempts running this basis
    /// format — after a retry escalates past it, the fault stops
    /// firing, which is how the harness exercises
    /// retry-until-recovered deterministically.
    pub only_in_format: Option<String>,
    /// Panic at the start of this 0-based solve attempt (caught by the
    /// service's panic isolation).
    pub panic_on_attempt: Option<usize>,
    /// Sleep this long at every restart boundary (trips deadlines
    /// deterministically).
    pub sleep_per_boundary_ms: u64,
    /// Flip a bit in the stored basis.
    pub basis_flip: Option<BasisBitFlip>,
}

impl FaultSpec {
    /// Whether the numerical faults apply to an attempt running
    /// `format` (true when no format gate is set).
    pub fn applies_to_format(&self, format: &str) -> bool {
        self.only_in_format.as_deref().is_none_or(|f| f == format)
    }

    /// Whether any field is armed.
    pub fn is_armed(&self) -> bool {
        *self != FaultSpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis_format::by_name;

    #[test]
    fn unarmed_wrapper_is_bit_identical_to_the_bare_store() {
        let fmt = by_name("frsz2_21").unwrap();
        let mut bare = fmt.create(1000, 3);
        let mut wrapped = FaultInjectingStore::new(fmt.create(1000, 3), FaultPlan::default());
        let v: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.17).sin()).collect();
        bare.write_column(1, &v);
        wrapped.write_column(1, &v);
        assert_eq!(wrapped.chunk_align(), bare.chunk_align());
        assert_eq!(wrapped.column_bytes(), bare.column_bytes());
        assert_eq!(wrapped.format_name(), bare.format_name());
        let (mut a, mut b) = (vec![0.0; 1000], vec![0.0; 1000]);
        bare.read_column(1, &mut a);
        wrapped.read_column(1, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let w = vec![0.5; 1000];
        assert_eq!(
            bare.dot_chunk(1, 0, &w).to_bits(),
            wrapped.dot_chunk(1, 0, &w).to_bits()
        );
    }

    #[test]
    fn armed_wrapper_corrupts_exactly_the_planned_write() {
        let fmt = by_name("float64").unwrap();
        let plan = FaultPlan::bit_flip(1, 7, 62);
        let observer = plan.clone();
        let mut store = FaultInjectingStore::new(fmt.create(64, 3), plan);
        let v: Vec<f64> = (0..64).map(|i| 1.0 + i as f64 * 1e-3).collect();
        store.write_column(0, &v); // write 0: clean
        store.write_column(1, &v); // write 1: corrupted
        store.write_column(2, &v); // write 2: clean again
        assert_eq!(observer.fired(), 1);
        let mut out = vec![0.0; 64];
        store.read_column(0, &mut out);
        assert_eq!(out, v);
        store.read_column(2, &mut out);
        assert_eq!(out, v);
        store.read_column(1, &mut out);
        let expect = f64::from_bits(v[7].to_bits() ^ (1u64 << 62));
        assert_eq!(out[7].to_bits(), expect.to_bits());
        let clean = out
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 7)
            .all(|(i, &x)| x == v[i]);
        assert!(clean, "only the planned value may be corrupted");
    }

    #[test]
    fn faulty_format_delegates_metadata_and_wraps_stores() {
        let plan = FaultPlan::bit_flip(0, 0, 63);
        let observer = plan.clone();
        let inner = by_name("frsz2_32").unwrap();
        let floor = inner.accuracy_floor();
        let fmt = FaultyFormat::new(inner, plan);
        assert_eq!(fmt.name(), "frsz2_32");
        assert_eq!(fmt.accuracy_floor(), floor);
        let mut store = fmt.create(128, 2);
        store.write_column(0, &vec![1.0; 128]);
        assert_eq!(observer.fired(), 1);
        // Sign bit flipped on row 0.
        assert!(store.load(0, 0) < 0.0);
        assert!(store.load(1, 0) > 0.0);
    }

    #[test]
    fn fault_spec_format_gate() {
        let spec = FaultSpec {
            nan_hessenberg_at: Some(3),
            only_in_format: Some("frsz2_16".into()),
            ..FaultSpec::default()
        };
        assert!(spec.is_armed());
        assert!(spec.applies_to_format("frsz2_16"));
        assert!(!spec.applies_to_format("frsz2_21"));
        assert!(FaultSpec::default().applies_to_format("anything"));
        assert!(!FaultSpec::default().is_armed());
    }
}
