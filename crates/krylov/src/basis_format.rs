//! Runtime registry of Krylov-basis storage formats.
//!
//! The solver is generic over [`numfmt::ColumnStorage`], which is ideal
//! when the format is known at compile time — but the adaptive driver
//! ([`crate::adaptive`]) and anything configuration-driven need to pick
//! (and *re*-pick) a format at runtime. This module is the storage
//! analogue of `spla::select`: every backend sits behind one
//! object-safe factory ([`BasisFormat`]), formats are resolved by the
//! paper's names ([`by_name`]), and [`auto_basis`] chooses a format
//! from the solve parameters the way `spla::select::auto_format`
//! chooses a sparse format from row-length statistics.
//!
//! Registered backends:
//!
//! | name                        | backend                               | accuracy floor      |
//! |-----------------------------|---------------------------------------|---------------------|
//! | `float64`                   | `DenseStore<f64>`                     | 2⁻⁵²                |
//! | `float32`                   | `DenseStore<f32>`                     | 2⁻²⁴                |
//! | `float16`                   | `DenseStore<F16>`                     | 2⁻¹¹                |
//! | `bfloat16`                  | `DenseStore<BF16>`                    | 2⁻⁸                 |
//! | `frsz2_<l>` (2 ≤ l ≤ 64)    | `Frsz2Store`, BS = 32                 | 2⁻⁽ˡ⁻²⁾             |
//! | `frsz2_ab`                  | `Frsz2AdaptiveStore` (per-block `l`)  | 2⁻¹⁴ (measured)     |
//! | any Table II codec name     | `lossy::RoundTripStore`               | `lossy::registry::accuracy_floor` |
//!
//! The **accuracy floor** is the worst-case absolute error storage may
//! add to a unit-scale value (Krylov columns are unit-norm, so this is
//! the storage-induced residual floor a solve can stagnate at). It
//! orders the formats for [`escalate`], the ladder the adaptive solver
//! climbs when the explicit residual stops improving.

use crate::checkpoint::SolveControl;
use crate::gmres::CycleEvent;
use crate::precond::Preconditioner;
use frsz2::{Frsz2AdaptiveStore, Frsz2Config, Frsz2Store};
use lossy::RoundTripStore;
use numfmt::{ColumnStorage, DenseStore, BF16, F16};
use spla::SparseMatrix;
use std::sync::Arc;

/// An object-safe factory for Krylov-basis storage.
///
/// One registered format = one factory; [`BasisFormat::create`] builds
/// a fresh store of the given shape, which the solver drives through
/// the (also object-safe) `ColumnStorage` surface.
pub trait BasisFormat: Send + Sync {
    /// Paper-style display name (`float64`, `frsz2_21`, `sz3_08`, ...).
    fn name(&self) -> String;

    /// Worst-case absolute storage error on a unit-scale value — the
    /// residual floor this format can stagnate at (see module docs).
    fn accuracy_floor(&self) -> f64;

    /// Stored bits per value for a column of `rows` values (Eq. 3 for
    /// FRSZ2; codecs report a nominal estimate since their achieved
    /// rate is data-dependent).
    fn bits_per_value(&self, rows: usize) -> f64;

    /// Largest s-step panel width the format admits (see
    /// [`crate::sstep`]): the monomial matrix-powers basis loses ~one
    /// binade of conditioning per power, so a format keeping `l`
    /// mantissa bits can only absorb panels whose conditioning growth
    /// stays well inside `l` — beyond that the measured
    /// loss-of-orthogonality trips the runtime monitor every cycle and
    /// s-step degenerates to `s = 1` with extra diagnostics traffic.
    /// Mirrors [`BasisFormat::accuracy_floor`]: a measured, per-format
    /// table rather than a universal constant. Defaults to 1 (no
    /// s-step) so unknown formats are safe by construction.
    fn max_sstep(&self) -> usize {
        1
    }

    /// Allocate a `rows × cols` store of this format.
    fn create(&self, rows: usize, cols: usize) -> Box<dyn ColumnStorage>;
}

enum Backend {
    F64,
    F32,
    F16,
    BF16,
    Frsz2(Frsz2Config),
    Frsz2Adaptive,
    Codec { name: String, floor: f64 },
}

/// A registry entry (construct via [`by_name`] or [`auto_basis`]).
pub struct RegisteredFormat {
    backend: Backend,
}

impl BasisFormat for RegisteredFormat {
    fn name(&self) -> String {
        match &self.backend {
            Backend::F64 => "float64".into(),
            Backend::F32 => "float32".into(),
            Backend::F16 => "float16".into(),
            Backend::BF16 => "bfloat16".into(),
            Backend::Frsz2(cfg) => cfg.name(),
            Backend::Frsz2Adaptive => "frsz2_ab".into(),
            Backend::Codec { name, .. } => name.clone(),
        }
    }

    fn accuracy_floor(&self) -> f64 {
        match &self.backend {
            Backend::F64 => f64::powi(2.0, -52),
            Backend::F32 => f64::powi(2.0, -24),
            Backend::F16 => f64::powi(2.0, -11),
            Backend::BF16 => f64::powi(2.0, -8),
            // Worst case of Eq. 2 at block max 1: 2^-(l-2).
            Backend::Frsz2(cfg) => cfg.worst_case_abs_error(1.0),
            // Worst case when the per-block selector picks its
            // cheapest length (`l = 16`, zero-spread block at unit
            // scale) — measured by `frsz2_ab_floor_is_measured_tight`.
            Backend::Frsz2Adaptive => f64::powi(2.0, -14),
            Backend::Codec { floor, .. } => *floor,
        }
    }

    fn bits_per_value(&self, rows: usize) -> f64 {
        match &self.backend {
            Backend::F64 => 64.0,
            Backend::F32 => 32.0,
            Backend::F16 | Backend::BF16 => 16.0,
            Backend::Frsz2(cfg) => cfg.bits_per_value(rows.max(1)),
            // Nominal best case (all blocks at l = 16 plus the 40-bit
            // per-block metadata); the achieved rate is data-dependent
            // and reported by the live store's `bits_per_value`.
            Backend::Frsz2Adaptive => 16.0 + 40.0 / 32.0,
            // Nominal: codecs only know their rate after compressing.
            Backend::Codec { .. } => 64.0,
        }
    }

    fn max_sstep(&self) -> usize {
        match &self.backend {
            // Exact storage: bounded only by the monomial basis itself
            // (κ(panel) ~ κ(A)^s; 16 powers is where double-precision
            // CholQR still recovers on the paper's operators).
            Backend::F64 => 16,
            Backend::F32 => 8,
            // 11/8 mantissa bits leave no headroom beyond a pair.
            Backend::F16 | Backend::BF16 => 2,
            // FRSZ2 keeps `l − 2` mantissa bits below the block max;
            // the table steps down with the bit length like the
            // accuracy floor does.
            Backend::Frsz2(cfg) => match cfg.bits() {
                l if l >= 28 => 12,
                l if l >= 20 => 8,
                l if l >= 12 => 4,
                _ => 2,
            },
            // Per-block adaptive: floor is the cheapest block (l = 16).
            Backend::Frsz2Adaptive => 4,
            // Codecs are ordered by their registered floor.
            Backend::Codec { floor, .. } => {
                if *floor <= 1e-10 {
                    8
                } else if *floor <= 1e-6 {
                    4
                } else {
                    2
                }
            }
        }
    }

    fn create(&self, rows: usize, cols: usize) -> Box<dyn ColumnStorage> {
        match &self.backend {
            Backend::F64 => Box::new(DenseStore::<f64>::with_shape(rows, cols)),
            Backend::F32 => Box::new(DenseStore::<f32>::with_shape(rows, cols)),
            Backend::F16 => Box::new(DenseStore::<F16>::with_shape(rows, cols)),
            Backend::BF16 => Box::new(DenseStore::<BF16>::with_shape(rows, cols)),
            Backend::Frsz2(cfg) => Box::new(Frsz2Store::with_config(*cfg, rows, cols)),
            Backend::Frsz2Adaptive => Box::new(Frsz2AdaptiveStore::with_shape(rows, cols)),
            Backend::Codec { name, .. } => {
                let codec = lossy::registry::by_name(name)
                    .unwrap_or_else(|| panic!("codec {name} vanished from the registry"));
                Box::new(RoundTripStore::new(Arc::clone(&codec), rows, cols))
            }
        }
    }
}

/// The adaptive escalation ladder, cheapest storage first (the
/// `frsz2_16 → frsz2_21 → frsz2_32 → float64` path of the paper's
/// recommended configurations; 17 → 22 → 33 → 64 bits/value).
pub const ESCALATION_LADDER: [&str; 4] = ["frsz2_16", "frsz2_21", "frsz2_32", "float64"];

/// Resolve a format by its paper name. Accepts `float64`/`f64`,
/// `float32`/`f32`, `float16`/`f16`, `bfloat16`/`bf16`, any
/// `frsz2_<l>` with `2 ≤ l ≤ 64` (block size 32), `frsz2_ab` (the
/// per-block adaptive-length store), and every `lossy::registry`
/// codec name. Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn BasisFormat>> {
    let backend = match name {
        "float64" | "f64" => Backend::F64,
        "float32" | "f32" => Backend::F32,
        "float16" | "f16" => Backend::F16,
        "bfloat16" | "bf16" => Backend::BF16,
        "frsz2_ab" => Backend::Frsz2Adaptive,
        _ => {
            if let Some(bits) = name.strip_prefix("frsz2_") {
                let bits: u32 = bits.parse().ok()?;
                if !(2..=64).contains(&bits) {
                    return None;
                }
                Backend::Frsz2(Frsz2Config::new(32, bits))
            } else {
                let floor = lossy::registry::accuracy_floor(name)?;
                // Instantiating validates the name exists as a codec too.
                lossy::registry::by_name(name)?;
                Backend::Codec {
                    name: name.to_string(),
                    floor,
                }
            }
        }
    };
    Some(Box::new(RegisteredFormat { backend }))
}

/// All registered format names: the escalation ladder, the value-level
/// casts, the per-block adaptive store, and every Table II codec.
pub fn names() -> Vec<String> {
    let mut v: Vec<String> = ESCALATION_LADDER.iter().map(|s| s.to_string()).collect();
    v.extend(
        ["float32", "float16", "bfloat16", "frsz2_ab"]
            .iter()
            .map(|s| s.to_string()),
    );
    v.extend(lossy::registry::names().iter().map(|s| s.to_string()));
    v
}

/// Safety margin between a format's accuracy floor and the stopping
/// target in [`auto_basis`]: the floor is a per-value bound, a restart
/// cycle accumulates it over up to `m` orthogonalization passes (√m in
/// the usual probabilistic model), and each pass reduces over `n` rows
/// (√log₂ n — far below the worst-case √n because storage errors are
/// uncorrelated across rows). The floor must clear the target by
/// `HEADROOM · √m · √log₂(n)`.
pub const AUTO_BASIS_HEADROOM: f64 = 4.0;

/// Pick a fixed basis format for a solve with stopping target
/// `target_rrn` on an `n`-row system with restart length `m`: the
/// narrowest ladder format whose accuracy floor, amplified by the
/// documented `HEADROOM · √m · √log₂(n)` margin, still clears the
/// target (mirroring `spla::select::auto_format`'s fixed-threshold
/// style). Falls back to `float64`, which has no meaningful floor.
/// Deterministic: a pure function of its arguments.
///
/// This is the *static* advisor; when the target sits below every
/// compressed floor, [`crate::adaptive::adaptive_gmres`] can still
/// spend most cycles in cheap formats and escalate on evidence.
pub fn auto_basis(target_rrn: f64, n: usize, m: usize) -> Box<dyn BasisFormat> {
    let amplification =
        AUTO_BASIS_HEADROOM * (m.max(1) as f64).sqrt() * (n.max(2) as f64).log2().sqrt();
    for name in ESCALATION_LADDER {
        let fmt = by_name(name).expect("ladder names are registered");
        if fmt.accuracy_floor() * amplification <= target_rrn {
            return fmt;
        }
    }
    by_name("float64").expect("float64 is registered")
}

/// The next-stronger format after `name` on the escalation ladder, or
/// `None` when `name` is `float64` (nothing stronger exists). Aliases
/// (`f64`, `frsz2_ab`, ...) are canonicalized before the ladder
/// lookup. Formats outside the ladder (casts, codecs, wide `frsz2_<l>`)
/// join it monotonically: at the first rung with a *strictly smaller*
/// accuracy floor than their own, falling back to `float64` when no
/// rung qualifies — `float64` stores `f64` data exactly, so it is the
/// one destination stronger than any lossy format in every regime
/// (a nominal `frsz2_60` floor still flushes wide-spread blocks;
/// exact storage never does).
pub fn escalate(name: &str) -> Option<String> {
    let fmt = by_name(name)?;
    let canon = fmt.name();
    if let Some(pos) = ESCALATION_LADDER.iter().position(|&f| f == canon) {
        return ESCALATION_LADDER.get(pos + 1).map(|s| s.to_string());
    }
    let current = fmt.accuracy_floor();
    ESCALATION_LADDER
        .iter()
        .find(|&&f| {
            by_name(f)
                .map(|fmt| fmt.accuracy_floor() < current)
                .unwrap_or(false)
        })
        .map(|s| s.to_string())
        .or_else(|| Some("float64".to_string()))
}

/// The next-*cheaper* ladder format below `name`, or `None` at the
/// bottom rung. De-escalation only retraces the ladder: a solve that
/// escalated through `frsz2_16 → ... → float64` steps back down the
/// same rungs, so off-ladder formats (which nothing escalates *to*)
/// report `None`. Aliases are canonicalized like [`escalate`].
pub fn de_escalate(name: &str) -> Option<String> {
    let canon = by_name(name)?.name();
    let pos = ESCALATION_LADDER.iter().position(|&f| f == canon)?;
    pos.checked_sub(1).map(|p| ESCALATION_LADDER[p].to_string())
}

/// Solve with a runtime-selected basis format: the boxed-storage
/// equivalent of [`crate::gmres::gmres`], one line per registered
/// backend away from any future format.
pub fn gmres_dyn<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &crate::gmres::GmresOptions,
    precond: &P,
    format: &dyn BasisFormat,
) -> crate::gmres::SolveResult {
    crate::gmres::gmres_with(a, b, x0, opts, precond, |rows, cols| {
        format.create(rows, cols)
    })
}

/// [`gmres_dyn`] with a per-cycle telemetry observer: `observe` is
/// called once at every restart boundary (before the cycle runs) with
/// the [`CycleEvent`] snapshot — residual, format, basis traffic. The
/// observer cannot influence the solve, so an observed solve is
/// bit-identical to the unobserved one; the final converged state is
/// reported via the returned [`crate::gmres::SolveStats`], not an
/// event (see [`CycleEvent`] for the boundary semantics).
pub fn gmres_dyn_observed<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &crate::gmres::GmresOptions,
    precond: &P,
    format: &dyn BasisFormat,
    mut observe: impl FnMut(&CycleEvent),
) -> crate::gmres::SolveResult {
    let basis = crate::basis::Basis::from_store(format.create(a.rows(), opts.restart + 1));
    crate::gmres::solve_driver(a, b, x0, opts, precond, basis, |boundary, basis, stats| {
        observe(&CycleEvent::at_boundary(boundary, basis, stats));
    })
}

/// [`gmres_dyn_observed`] plus the fault-tolerance seam: capture
/// checkpoints and/or halt at restart boundaries through `control`,
/// and resume bit-identically from `resume` — the boxed-storage
/// equivalent of [`crate::gmres::gmres_with_controlled`] (see there
/// for the full contract). Panics if the checkpoint came from a
/// different driver or a different basis format.
#[allow(clippy::too_many_arguments)]
pub fn gmres_dyn_controlled<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    opts: &crate::gmres::GmresOptions,
    precond: &P,
    format: &dyn BasisFormat,
    resume: Option<&crate::checkpoint::SolveCheckpoint>,
    control: Option<&mut dyn FnMut(&crate::checkpoint::SolveCheckpoint) -> SolveControl>,
    mut observe: impl FnMut(&CycleEvent),
) -> crate::gmres::ControlledSolve {
    use crate::checkpoint::{DriverKind, SolveCheckpoint};
    let basis = crate::basis::Basis::from_store(format.create(a.rows(), opts.restart + 1));
    if let Some(cp) = resume {
        assert_eq!(
            cp.driver,
            DriverKind::Scalar,
            "a {:?} checkpoint cannot resume the scalar driver",
            cp.driver
        );
        assert_eq!(
            cp.format,
            basis.format_name(),
            "checkpoint format must match the solve format"
        );
    }
    match control {
        Some(c) => {
            let mut wrap = |cp: &mut SolveCheckpoint| c(cp);
            crate::gmres::solve_driver_full(
                a,
                b,
                x0,
                opts,
                precond,
                basis,
                |boundary, basis, stats| {
                    observe(&CycleEvent::at_boundary(boundary, basis, stats));
                },
                Some(&mut wrap),
                resume,
            )
        }
        None => crate::gmres::solve_driver_full(
            a,
            b,
            x0,
            opts,
            precond,
            basis,
            |boundary, basis, stats| {
                observe(&CycleEvent::at_boundary(boundary, basis, stats));
            },
            None,
            resume,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::GmresOptions;
    use crate::precond::Identity;
    use spla::dense::manufactured_rhs;
    use spla::gen;

    #[test]
    fn every_registered_name_resolves_and_creates_storage() {
        for name in names() {
            let fmt = by_name(&name).unwrap_or_else(|| panic!("{name} not resolvable"));
            assert_eq!(fmt.name(), name);
            assert!(fmt.accuracy_floor() > 0.0, "{name}");
            let mut store = fmt.create(64, 2);
            let v: Vec<f64> = (0..64).map(|i| (i as f64 * 0.21).sin()).collect();
            store.write_column(0, &v);
            let mut out = vec![0.0; 64];
            store.read_column(0, &mut out);
            let floor = fmt.accuracy_floor();
            // Generous envelope: per-codec tightness is asserted by the
            // registry's own tests; here the claim is that the floor is
            // the right order of magnitude for escalation ordering.
            for (i, (a, b)) in v.iter().zip(&out).enumerate() {
                assert!(
                    (a - b).abs() <= floor * 8.0 + 1e-6,
                    "{name}: row {i} error {} far above floor {floor}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(by_name("frsz2_99").is_none());
        assert!(by_name("frsz2_1").is_none());
        assert!(by_name("no_such_format").is_none());
    }

    #[test]
    fn floors_order_the_ladder_strictly() {
        let floors: Vec<f64> = ESCALATION_LADDER
            .iter()
            .map(|n| by_name(n).unwrap().accuracy_floor())
            .collect();
        for pair in floors.windows(2) {
            assert!(pair[0] > pair[1], "ladder must strictly gain accuracy");
        }
    }

    #[test]
    fn escalate_walks_the_ladder_and_terminates() {
        assert_eq!(escalate("frsz2_16").as_deref(), Some("frsz2_21"));
        assert_eq!(escalate("frsz2_21").as_deref(), Some("frsz2_32"));
        assert_eq!(escalate("frsz2_32").as_deref(), Some("float64"));
        assert_eq!(escalate("float64"), None);
        // Off-ladder formats join at the first stronger rung.
        assert_eq!(escalate("bfloat16").as_deref(), Some("frsz2_16"));
        assert_eq!(escalate("float32").as_deref(), Some("frsz2_32"));
        assert_eq!(escalate("zfp_fr_16").as_deref(), Some("frsz2_16"));
        // sz3_08's 1e-8 floor is weaker than frsz2_32's 2^-30.
        assert_eq!(escalate("sz3_08").as_deref(), Some("frsz2_32"));
        // The per-block store's measured 2^-14 floor joins below it.
        assert_eq!(escalate("frsz2_ab").as_deref(), Some("frsz2_21"));
        // Aliases canonicalize before the ladder lookup.
        assert_eq!(escalate("f64"), None);
        // Off-ladder formats at or beyond float64's nominal floor used
        // to be stuck (`None` while not actually exact); they now
        // finish on exact storage.
        assert_eq!(escalate("frsz2_54").as_deref(), Some("float64"));
        assert_eq!(escalate("frsz2_64").as_deref(), Some("float64"));
        assert_eq!(escalate("not_a_format"), None);
    }

    /// Property over every registered name (plus aliases and the whole
    /// `frsz2_<l>` family): each escalation step either strictly
    /// shrinks the accuracy floor or lands on exact `float64` storage,
    /// and every chain terminates there within one ladder length.
    #[test]
    fn escalate_is_monotone_and_total_for_every_name() {
        let mut all = names();
        all.extend(["f64", "f32", "f16", "bf16"].map(String::from));
        all.extend((2..=64).map(|l| format!("frsz2_{l}")));
        for name in all {
            let mut cur = by_name(&name).unwrap().name();
            let mut steps = 0;
            while let Some(next) = escalate(&cur) {
                let floor_cur = by_name(&cur).unwrap().accuracy_floor();
                let floor_next = by_name(&next).unwrap().accuracy_floor();
                assert!(
                    floor_next < floor_cur || next == "float64",
                    "{name}: step {cur} → {next} weakened the floor"
                );
                cur = next;
                steps += 1;
                assert!(steps <= ESCALATION_LADDER.len(), "{name}: no termination");
            }
            assert_eq!(cur, "float64", "{name}: chain must end at exact storage");
        }
    }

    #[test]
    fn de_escalate_retraces_the_ladder_only() {
        assert_eq!(de_escalate("float64").as_deref(), Some("frsz2_32"));
        assert_eq!(de_escalate("frsz2_32").as_deref(), Some("frsz2_21"));
        assert_eq!(de_escalate("frsz2_21").as_deref(), Some("frsz2_16"));
        assert_eq!(de_escalate("frsz2_16"), None);
        assert_eq!(de_escalate("f64").as_deref(), Some("frsz2_32"), "alias");
        // Off-ladder formats never step down (nothing escalates to them).
        assert_eq!(de_escalate("float32"), None);
        assert_eq!(de_escalate("frsz2_ab"), None);
        assert_eq!(de_escalate("sz3_08"), None);
        assert_eq!(de_escalate("not_a_format"), None);
    }

    /// The registered `frsz2_ab` floor is *measured*, not nominal: on a
    /// unit-scale zero-spread column (selector picks `l = 16`) the
    /// worst observed error must sit within a factor 2 of 2⁻¹⁴ — large
    /// enough to be honest, small enough that the rung is tight.
    #[test]
    fn frsz2_ab_floor_is_measured_tight() {
        let fmt = by_name("frsz2_ab").unwrap();
        let floor = fmt.accuracy_floor();
        let n = 4096;
        let v: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.49 * ((i as f64) * 0.37).sin())
            .collect();
        let mut store = fmt.create(n, 1);
        store.write_column(0, &v);
        let mut out = vec![0.0; n];
        store.read_column(0, &mut out);
        let worst = v
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= floor, "measured {worst:e} above floor {floor:e}");
        assert!(
            worst > floor / 2.0,
            "floor {floor:e} loose: worst {worst:e}"
        );
    }

    #[test]
    fn auto_basis_matches_documented_thresholds() {
        let (n, m) = (1000, 100);
        // Loose target: the cheapest rung clears it.
        assert_eq!(auto_basis(1e-2, n, m).name(), "frsz2_16");
        // Tighter targets climb the ladder.
        assert_eq!(auto_basis(1e-3, n, m).name(), "frsz2_21");
        assert_eq!(auto_basis(1e-6, n, m).name(), "frsz2_32");
        assert_eq!(auto_basis(1e-12, n, m).name(), "float64");
        // Larger systems amplify the floor: a target frsz2_21 clears at
        // n = 1000 needs frsz2_32 once √log₂(n) grows enough.
        assert_eq!(auto_basis(2.5e-4, 1 << 4, m).name(), "frsz2_21");
        assert_eq!(auto_basis(2.5e-4, 1 << 30, m).name(), "frsz2_32");
        // Deterministic.
        assert_eq!(auto_basis(1e-3, n, m).name(), auto_basis(1e-3, n, m).name());
    }

    /// `gmres_dyn_observed` is `gmres_dyn` plus a spectator: identical
    /// bits, one event per executed cycle, fixed format throughout.
    #[test]
    fn gmres_dyn_observed_matches_unobserved_and_reports_cycles() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.1, 0.0], 0.05);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            restart: 10,
            target_rrn: 1e-8,
            max_iters: 3000,
            ..GmresOptions::default()
        };
        let fmt = by_name("frsz2_32").unwrap();
        let mut events = Vec::new();
        let observed = gmres_dyn_observed(&a, &b, &x0, &opts, &Identity, fmt.as_ref(), |e| {
            events.push(e.clone())
        });
        let plain = gmres_dyn(&a, &b, &x0, &opts, &Identity, fmt.as_ref());
        assert!(observed.stats.converged);
        assert_eq!(observed.stats.iterations, plain.stats.iterations);
        for (u, v) in observed.x.iter().zip(&plain.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(events.len(), observed.stats.restarts);
        assert!(events.iter().all(|e| e.format == "frsz2_32"));
        // Residuals at successive boundaries are the explicit history
        // points, which never leave the recorded history's order.
        assert!((events[0].explicit_rrn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmres_dyn_matches_static_dispatch_bit_for_bit() {
        let a = gen::conv_diff_3d(7, 7, 7, [0.3, 0.1, 0.0], 0.2);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-9,
            max_iters: 1000,
            ..GmresOptions::default()
        };
        let fmt = by_name("frsz2_21").unwrap();
        let dynamic = gmres_dyn(&a, &b, &x0, &opts, &Identity, fmt.as_ref());
        let cfg = Frsz2Config::new(32, 21);
        let statically = crate::gmres::gmres_with(&a, &b, &x0, &opts, &Identity, |r, c| {
            Frsz2Store::with_config(cfg, r, c)
        });
        assert!(dynamic.stats.converged);
        assert_eq!(dynamic.stats.iterations, statically.stats.iterations);
        assert_eq!(dynamic.history.len(), statically.history.len());
        for (p, q) in dynamic.history.iter().zip(&statically.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
        }
        for (u, v) in dynamic.x.iter().zip(&statically.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}
