//! Restart-boundary solver checkpoints: capture, serialize, resume.
//!
//! CB-GMRES recomputes the true residual `b − Ax` at every restart
//! boundary and rebuilds the Krylov basis from it, so the complete
//! resumable state of a solve at a boundary is tiny: the iterate `x`,
//! the explicit residual just measured, the per-cycle bookkeeping
//! (counters, format trajectory, residual history), and — for the
//! adaptive and s-step drivers — their rung/panel state. A
//! [`SolveCheckpoint`] freezes exactly that state at the seam between
//! `boundary_bookkeeping` and the next `run_cycle`; resuming replays
//! the residual recomputation and drops straight back into the cycle
//! loop, **bit-identically** to the uninterrupted solve (the same
//! contract every kernel in this workspace honors for thread counts
//! and storage formats).
//!
//! Checkpoints serialize to a compact versioned byte format
//! ([`SolveCheckpoint::encode`]): consecutive checkpoints of one solve
//! differ mostly in `x`, so encoding against the previous checkpoint
//! XORs the f64 bit patterns (similar doubles share high bits, so the
//! XOR is a small integer) and stores history/trajectory as shared
//! prefix + new suffix, all through LEB128 varints. A trailing FNV-1a
//! checksum turns torn or corrupted blobs into typed
//! [`CheckpointError`]s instead of silent garbage.

use crate::gmres::HistoryPoint;

/// Which solver driver captured a checkpoint. Resume must go through
/// the same driver: each one carries different auxiliary state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// The fixed-format scalar driver (`gmres`/`gmres_with`).
    Scalar,
    /// The escalating [`crate::adaptive`] driver.
    Adaptive,
    /// The [`crate::sstep`] matrix-powers driver.
    SStep,
}

impl DriverKind {
    fn to_u8(self) -> u8 {
        match self {
            DriverKind::Scalar => 0,
            DriverKind::Adaptive => 1,
            DriverKind::SStep => 2,
        }
    }

    fn from_u8(v: u8) -> Option<DriverKind> {
        match v {
            0 => Some(DriverKind::Scalar),
            1 => Some(DriverKind::Adaptive),
            2 => Some(DriverKind::SStep),
            _ => None,
        }
    }
}

/// Verdict returned by a boundary control probe: keep solving, or stop
/// here (the caller holds the just-captured checkpoint and can resume
/// later). Convergence and terminal states are decided *before* the
/// probe runs, so halting can never preempt a finished solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveControl {
    /// Run the next restart cycle.
    Continue,
    /// Stop before the next cycle; the driver reports `halted = true`.
    Halt,
}

/// The complete resumable state of a solve at a restart boundary.
///
/// Captured after the boundary's explicit-residual bookkeeping and the
/// driver's format decision, but before the cycle runs: `format` is
/// the format the *next* cycle will use, `format_trajectory` lists
/// only completed cycles, and `history` ends with this boundary's
/// explicit point. The `qualifying_streak` field is meaningful only
/// for [`DriverKind::Adaptive`]; `s_cur`, `loo_breaches`,
/// `s_per_cycle`, and `loo_per_cycle` only for [`DriverKind::SStep`].
#[derive(Clone, Debug, PartialEq)]
pub struct SolveCheckpoint {
    /// Driver that captured this checkpoint (resume must match).
    pub driver: DriverKind,
    /// Basis format the next cycle will run in.
    pub format: String,
    /// The iterate at the boundary.
    pub x: Vec<f64>,
    /// Explicit relative residual norm measured at the boundary.
    pub explicit_rrn: f64,
    /// Arnoldi iterations completed so far.
    pub iterations: usize,
    /// Restart cycles completed so far.
    pub restarts: usize,
    /// DGKS re-orthogonalization passes so far.
    pub reorthogonalizations: usize,
    /// Breakdown events so far.
    pub breakdowns: usize,
    /// Adaptive-ladder escalations so far.
    pub escalations: usize,
    /// Adaptive-ladder de-escalations so far.
    pub de_escalations: usize,
    /// Operator applications so far.
    pub spmv_count: u64,
    /// Compressed-basis bytes decoded so far.
    pub basis_bytes_read: u64,
    /// Compressed-basis bytes written so far.
    pub basis_bytes_written: u64,
    /// Fused dot sweeps over the basis so far.
    pub basis_dot_sweeps: u64,
    /// Fused gemv sweeps over the basis so far.
    pub basis_gemv_sweeps: u64,
    /// Format of every completed cycle.
    pub format_trajectory: Vec<String>,
    /// Residual history up to and including this boundary's explicit
    /// point.
    pub history: Vec<HistoryPoint>,
    /// Adaptive driver: consecutive cycles qualifying for
    /// de-escalation.
    pub qualifying_streak: usize,
    /// S-step driver: panel width the next cycle will use.
    pub s_cur: usize,
    /// S-step driver: loss-of-orthogonality budget breaches so far.
    pub loo_breaches: usize,
    /// S-step driver: panel width of every completed cycle.
    pub s_per_cycle: Vec<usize>,
    /// S-step driver: measured loss of orthogonality per completed
    /// cycle (only cycles with `s > 1` are measured).
    pub loo_per_cycle: Vec<f64>,
}

impl Default for SolveCheckpoint {
    /// An empty scalar-driver checkpoint (all counters zero): a
    /// starting point for hand-built checkpoints in tests and tools.
    fn default() -> Self {
        SolveCheckpoint {
            driver: DriverKind::Scalar,
            format: String::new(),
            x: Vec::new(),
            explicit_rrn: 0.0,
            iterations: 0,
            restarts: 0,
            reorthogonalizations: 0,
            breakdowns: 0,
            escalations: 0,
            de_escalations: 0,
            spmv_count: 0,
            basis_bytes_read: 0,
            basis_bytes_written: 0,
            basis_dot_sweeps: 0,
            basis_gemv_sweeps: 0,
            format_trajectory: Vec::new(),
            history: Vec::new(),
            qualifying_streak: 0,
            s_cur: 1,
            loo_breaches: 0,
            s_per_cycle: Vec::new(),
            loo_per_cycle: Vec::new(),
        }
    }
}

/// Typed failure modes of [`SolveCheckpoint::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the `FZCK` magic.
    BadMagic,
    /// The blob's version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The blob ends mid-field.
    Truncated,
    /// The trailing FNV-1a checksum does not match the payload.
    ChecksumMismatch,
    /// A field decoded to an impossible value (context in the payload).
    Malformed(&'static str),
    /// The blob was delta-encoded but no (or a mismatched) previous
    /// checkpoint was supplied.
    MissingPrevious,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a solver checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint field: {what}"),
            CheckpointError::MissingPrevious => {
                write!(
                    f,
                    "delta checkpoint needs its previous checkpoint to decode"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialization format version written by [`SolveCheckpoint::encode`].
pub const CHECKPOINT_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"FZCK";
const FLAG_DELTA: u8 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, CheckpointError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CheckpointError::Malformed("varint overruns 64 bits"))
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| CheckpointError::Malformed("length exceeds usize"))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let raw = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(raw.try_into().unwrap())))
    }

    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.len()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CheckpointError::Malformed("string is not UTF-8"))
    }
}

/// Shared prefix length of two slices (the part a delta encoding can
/// reference instead of re-emitting).
fn shared_prefix<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl SolveCheckpoint {
    /// Serialize to the compact versioned byte format.
    ///
    /// Pass the solve's previous checkpoint as `prev` to delta-encode
    /// against it: `x` is stored as XOR of f64 bit patterns (short
    /// varints when the iterate moved little) and history/trajectory
    /// as shared prefix + suffix. `prev` with a different dimension is
    /// ignored (full encoding). Decode with the same `prev`.
    pub fn encode(&self, prev: Option<&SolveCheckpoint>) -> Vec<u8> {
        let prev = prev.filter(|p| p.x.len() == self.x.len());
        let mut out = Vec::with_capacity(64 + 9 * self.x.len() / 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.push(self.driver.to_u8());
        out.push(if prev.is_some() { FLAG_DELTA } else { 0 });
        put_str(&mut out, &self.format);
        put_f64(&mut out, self.explicit_rrn);
        for v in [
            self.iterations as u64,
            self.restarts as u64,
            self.reorthogonalizations as u64,
            self.breakdowns as u64,
            self.escalations as u64,
            self.de_escalations as u64,
            self.spmv_count,
            self.basis_bytes_read,
            self.basis_bytes_written,
            self.basis_dot_sweeps,
            self.basis_gemv_sweeps,
            self.qualifying_streak as u64,
            self.s_cur as u64,
            self.loo_breaches as u64,
        ] {
            put_varint(&mut out, v);
        }
        put_varint(&mut out, self.x.len() as u64);
        for (i, &xi) in self.x.iter().enumerate() {
            let base = prev.map_or(0, |p| p.x[i].to_bits());
            put_varint(&mut out, xi.to_bits() ^ base);
        }
        let shared_t = prev.map_or(0, |p| {
            shared_prefix(&self.format_trajectory, &p.format_trajectory)
        });
        put_varint(&mut out, shared_t as u64);
        put_varint(&mut out, (self.format_trajectory.len() - shared_t) as u64);
        for s in &self.format_trajectory[shared_t..] {
            put_str(&mut out, s);
        }
        let shared_h = prev.map_or(0, |p| shared_prefix(&self.history, &p.history));
        put_varint(&mut out, shared_h as u64);
        put_varint(&mut out, (self.history.len() - shared_h) as u64);
        for p in &self.history[shared_h..] {
            put_varint(&mut out, p.iteration as u64);
            put_f64(&mut out, p.rrn);
            out.push(p.explicit as u8);
        }
        let shared_s = prev.map_or(0, |p| shared_prefix(&self.s_per_cycle, &p.s_per_cycle));
        put_varint(&mut out, shared_s as u64);
        put_varint(&mut out, (self.s_per_cycle.len() - shared_s) as u64);
        for &s in &self.s_per_cycle[shared_s..] {
            put_varint(&mut out, s as u64);
        }
        let shared_l = prev.map_or(0, |p| shared_prefix(&self.loo_per_cycle, &p.loo_per_cycle));
        put_varint(&mut out, shared_l as u64);
        put_varint(&mut out, (self.loo_per_cycle.len() - shared_l) as u64);
        for &l in &self.loo_per_cycle[shared_l..] {
            put_f64(&mut out, l);
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a blob produced by [`SolveCheckpoint::encode`].
    ///
    /// A delta-encoded blob needs the same `prev` it was encoded
    /// against; a full blob ignores `prev`.
    pub fn decode(
        bytes: &[u8],
        prev: Option<&SolveCheckpoint>,
    ) -> Result<SolveCheckpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() + 2 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(payload) != sum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut cur = Cursor {
            bytes: payload,
            pos: 6,
        };
        let driver = DriverKind::from_u8(cur.u8()?)
            .ok_or(CheckpointError::Malformed("unknown driver kind"))?;
        let delta = cur.u8()? & FLAG_DELTA != 0;
        let prev = if delta {
            Some(prev.ok_or(CheckpointError::MissingPrevious)?)
        } else {
            None
        };
        let format = cur.str()?;
        let explicit_rrn = cur.f64()?;
        let mut counters = [0u64; 14];
        for c in counters.iter_mut() {
            *c = cur.varint()?;
        }
        let n = cur.len()?;
        if let Some(p) = prev {
            if p.x.len() != n {
                return Err(CheckpointError::MissingPrevious);
            }
        }
        let mut x = Vec::with_capacity(n);
        for i in 0..n {
            let base = prev.map_or(0, |p| p.x[i].to_bits());
            x.push(f64::from_bits(cur.varint()? ^ base));
        }
        let suffix_strings =
            |cur: &mut Cursor, prev: Option<&[String]>| -> Result<Vec<String>, CheckpointError> {
                let shared = cur.len()?;
                let fresh = cur.len()?;
                let base = prev.unwrap_or(&[]);
                if shared > base.len() {
                    return Err(CheckpointError::Malformed("shared prefix beyond previous"));
                }
                let mut v: Vec<String> = base[..shared].to_vec();
                v.reserve(fresh);
                for _ in 0..fresh {
                    v.push(cur.str()?);
                }
                Ok(v)
            };
        let format_trajectory =
            suffix_strings(&mut cur, prev.map(|p| p.format_trajectory.as_slice()))?;
        let shared_h = cur.len()?;
        let fresh_h = cur.len()?;
        let base_h = prev.map_or(&[][..], |p| p.history.as_slice());
        if shared_h > base_h.len() {
            return Err(CheckpointError::Malformed("shared prefix beyond previous"));
        }
        let mut history: Vec<HistoryPoint> = base_h[..shared_h].to_vec();
        for _ in 0..fresh_h {
            let iteration = cur.len()?;
            let rrn = cur.f64()?;
            let explicit = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CheckpointError::Malformed("history explicit flag")),
            };
            history.push(HistoryPoint {
                iteration,
                rrn,
                explicit,
            });
        }
        let shared_s = cur.len()?;
        let fresh_s = cur.len()?;
        let base_s = prev.map_or(&[][..], |p| p.s_per_cycle.as_slice());
        if shared_s > base_s.len() {
            return Err(CheckpointError::Malformed("shared prefix beyond previous"));
        }
        let mut s_per_cycle: Vec<usize> = base_s[..shared_s].to_vec();
        for _ in 0..fresh_s {
            s_per_cycle.push(cur.len()?);
        }
        let shared_l = cur.len()?;
        let fresh_l = cur.len()?;
        let base_l = prev.map_or(&[][..], |p| p.loo_per_cycle.as_slice());
        if shared_l > base_l.len() {
            return Err(CheckpointError::Malformed("shared prefix beyond previous"));
        }
        let mut loo_per_cycle: Vec<f64> = base_l[..shared_l].to_vec();
        for _ in 0..fresh_l {
            loo_per_cycle.push(cur.f64()?);
        }
        if cur.pos != payload.len() {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        Ok(SolveCheckpoint {
            driver,
            format,
            x,
            explicit_rrn,
            iterations: counters[0] as usize,
            restarts: counters[1] as usize,
            reorthogonalizations: counters[2] as usize,
            breakdowns: counters[3] as usize,
            escalations: counters[4] as usize,
            de_escalations: counters[5] as usize,
            spmv_count: counters[6],
            basis_bytes_read: counters[7],
            basis_bytes_written: counters[8],
            basis_dot_sweeps: counters[9],
            basis_gemv_sweeps: counters[10],
            qualifying_streak: counters[11] as usize,
            s_cur: counters[12] as usize,
            loo_breaches: counters[13] as usize,
            format_trajectory,
            history,
            s_per_cycle,
            loo_per_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(restarts: usize) -> SolveCheckpoint {
        SolveCheckpoint {
            driver: DriverKind::Adaptive,
            format: "frsz2_21".into(),
            x: (0..97).map(|i| (i as f64 * 0.37).sin() * 1e-3).collect(),
            explicit_rrn: 3.25e-5,
            iterations: 40 * restarts,
            restarts,
            reorthogonalizations: 3,
            breakdowns: 0,
            escalations: 1,
            de_escalations: 0,
            spmv_count: 41 * restarts as u64,
            basis_bytes_read: 123_456,
            basis_bytes_written: 23_456,
            basis_dot_sweeps: 40,
            basis_gemv_sweeps: 40,
            format_trajectory: (0..restarts).map(|_| "frsz2_21".to_string()).collect(),
            history: (0..=restarts)
                .map(|i| HistoryPoint {
                    iteration: 40 * i,
                    rrn: f64::powi(0.5, i as i32),
                    explicit: true,
                })
                .collect(),
            qualifying_streak: 1,
            s_cur: 1,
            loo_breaches: 0,
            s_per_cycle: Vec::new(),
            loo_per_cycle: Vec::new(),
        }
    }

    #[test]
    fn full_round_trip_is_exact() {
        let cp = sample(3);
        let blob = cp.encode(None);
        let back = SolveCheckpoint::decode(&blob, None).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn delta_round_trip_is_exact_and_smaller() {
        let prev = sample(3);
        let mut next = sample(4);
        // Nudge x the way one more cycle would.
        for (i, xi) in next.x.iter_mut().enumerate() {
            *xi += 1e-9 * (i as f64 + 1.0);
        }
        let full = next.encode(None);
        let delta = next.encode(Some(&prev));
        assert!(
            delta.len() < full.len(),
            "delta {} >= full {}",
            delta.len(),
            full.len()
        );
        let back = SolveCheckpoint::decode(&delta, Some(&prev)).unwrap();
        assert_eq!(next, back);
        // A full blob ignores prev entirely.
        let back_full = SolveCheckpoint::decode(&full, Some(&prev)).unwrap();
        assert_eq!(next, back_full);
    }

    #[test]
    fn delta_without_previous_is_a_typed_error() {
        let prev = sample(2);
        let blob = sample(3).encode(Some(&prev));
        assert_eq!(
            SolveCheckpoint::decode(&blob, None),
            Err(CheckpointError::MissingPrevious)
        );
    }

    #[test]
    fn corruption_is_detected_by_the_checksum() {
        let mut blob = sample(2).encode(None);
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        assert_eq!(
            SolveCheckpoint::decode(&blob, None),
            Err(CheckpointError::ChecksumMismatch)
        );
    }

    #[test]
    fn truncation_magic_and_version_are_typed_errors() {
        let blob = sample(1).encode(None);
        assert_eq!(
            SolveCheckpoint::decode(&blob[..blob.len() - 3], None),
            Err(CheckpointError::ChecksumMismatch),
            "losing tail bytes breaks the checksum"
        );
        assert_eq!(
            SolveCheckpoint::decode(&blob[..3], None),
            Err(CheckpointError::Truncated)
        );
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert_eq!(
            SolveCheckpoint::decode(&bad, None),
            Err(CheckpointError::BadMagic)
        );
        let mut newer = blob.clone();
        newer[4] = 0xff;
        // Version is covered by the checksum, so re-seal the blob the
        // way a future writer would.
        let len = newer.len();
        let sum = super::fnv1a(&newer[..len - 8]);
        newer[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SolveCheckpoint::decode(&newer, None),
            Err(CheckpointError::UnsupportedVersion(0x00ff))
        );
    }

    #[test]
    fn mismatched_previous_dimension_falls_back_to_full_encoding() {
        let mut prev = sample(2);
        prev.x.truncate(10);
        let cp = sample(3);
        let blob = cp.encode(Some(&prev));
        // Encoder ignored the mismatched prev, so decode without one.
        let back = SolveCheckpoint::decode(&blob, None).unwrap();
        assert_eq!(cp, back);
    }
}
