//! The Krylov basis: a [`ColumnStorage`] plus the streaming operations
//! CB-GMRES performs against it.
//!
//! Orthogonalization is the memory-bound heart of GMRES (§II): every
//! iteration streams all previously stored basis vectors twice (once for
//! the dot products `h = Vᵀw`, once for the update `w ← w − Vh`). The
//! basis therefore exposes exactly those two bulk kernels, implemented
//! as rayon-parallel loops over block-aligned row chunks. Within a
//! chunk the storage format's fused multi-column kernels
//! ([`ColumnStorage::dots_chunk`] / [`ColumnStorage::gemv_chunk`]) sweep
//! all `k` columns per pass — `w` is read (dots) or read-and-written
//! (axpys) once instead of `k` times, and compressed formats decode
//! straight off their packed words with no scratch tile. Reductions sum
//! per-chunk partials in chunk order into a caller-reusable flat
//! buffer, so results are bit-deterministic for any thread count and
//! the hot path allocates nothing after warmup.

use numfmt::ColumnStorage;
use rayon::prelude::*;

/// Target rows per parallel work item (rounded up to the storage
/// format's block alignment).
pub(crate) const TARGET_CHUNK: usize = 8192;

/// A Krylov basis of up to `cols` vectors of length `rows`, held in an
/// arbitrary storage format. All arithmetic is f64; only storage is
/// compressed.
pub struct Basis<S: ColumnStorage> {
    store: S,
    chunk: usize,
}

impl<S: ColumnStorage> Basis<S> {
    /// A basis of `cols` columns of `rows` values in `S`'s default
    /// configuration.
    pub fn new(rows: usize, cols: usize) -> Self {
        Basis::from_store(S::with_shape(rows, cols))
    }

    /// Wrap an already-configured store (e.g. `Frsz2Store::with_config`
    /// for non-default block size / bit length).
    pub fn from_store(store: S) -> Self {
        let align = store.chunk_align().max(1);
        let chunk = TARGET_CHUNK.div_ceil(align) * align;
        Basis { store, chunk }
    }

    /// Values per column.
    pub fn rows(&self) -> usize {
        self.store.rows()
    }

    /// Column capacity (`restart + 1` for GMRES).
    pub fn cols(&self) -> usize {
        self.store.cols()
    }

    /// The underlying column storage.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Store vector `v` as basis column `j` (the compression write of
    /// GMRES steps 1/13).
    pub fn write(&mut self, j: usize, v: &[f64]) {
        self.store.write_column(j, v);
    }

    /// Decompress column `j` into `out`.
    pub fn read_column(&self, j: usize, out: &mut [f64]) {
        self.store.read_column(j, out);
    }

    /// Rows per parallel work item for this basis (the block-aligned
    /// chunking `dots`/`axpys` reduce over). Exposed so callers can
    /// size [`Basis::dots_with`] scratch buffers and so reference
    /// implementations can mirror the reduction order exactly.
    pub fn chunk_rows(&self) -> usize {
        self.chunk
    }

    /// `out[i] = V[:, i]ᵀ w` for `i in 0..k` — the orthogonalization dot
    /// products of step 5. Convenience wrapper over
    /// [`Basis::dots_with`] that allocates its own scratch; hot callers
    /// (the GMRES workspace) thread a reusable buffer instead.
    pub fn dots(&self, k: usize, w: &[f64], out: &mut [f64]) {
        let mut scratch = Vec::new();
        self.dots_with(k, w, out, &mut scratch);
    }

    /// [`Basis::dots`] with caller-provided scratch for the per-chunk
    /// partials (`n_chunks · k` values, grown on demand and never
    /// shrunk) — zero heap allocation once the buffer has reached its
    /// high-water mark.
    ///
    /// All `k` products are computed in **one** parallel pass over the
    /// row chunks through the storage format's fused multi-column
    /// kernel ([`ColumnStorage::dots_chunk`]): each worker holds its
    /// chunk of `w` hot in cache while sweeping the stored columns, and
    /// the pool is entered once per orthogonalization instead of once
    /// per column. Per-column partial sums are still reduced serially
    /// in chunk order, so the result is bit-identical for any thread
    /// count (and to the per-column formulation this replaces).
    pub fn dots_with(&self, k: usize, w: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
        assert!(k <= self.cols());
        assert_eq!(w.len(), self.rows());
        assert!(out.len() >= k);
        if k == 0 {
            return;
        }
        let n = self.rows();
        let chunk = self.chunk;
        let n_chunks = n.div_ceil(chunk);
        if scratch.len() < n_chunks * k {
            scratch.resize(n_chunks * k, 0.0);
        }
        let store = &self.store;
        let partials = &mut scratch[..n_chunks * k];
        partials
            .par_chunks_mut(k)
            .enumerate()
            .for_each(|(c, slot)| {
                let start = c * chunk;
                let len = chunk.min(n - start);
                store.dots_chunk(k, start, &w[start..start + len], slot);
            });
        for (j, out_j) in out.iter_mut().enumerate().take(k) {
            *out_j = (0..n_chunks).map(|c| partials[c * k + j]).sum();
        }
    }

    /// `w ← w + Σ_i alpha[i] · V[:, i]` for `i in 0..k` — the projection
    /// update of step 5 (callers pass `alpha = -h`). One parallel pass;
    /// within each chunk the format's fused [`ColumnStorage::gemv_chunk`]
    /// loads and stores `w` once for all `k` columns.
    pub fn axpys(&self, k: usize, alpha: &[f64], w: &mut [f64]) {
        assert!(k <= self.cols());
        assert!(alpha.len() >= k);
        assert_eq!(w.len(), self.rows());
        if k == 0 {
            return;
        }
        let chunk = self.chunk;
        let store = &self.store;
        w.par_chunks_mut(chunk).enumerate().for_each(|(c, wc)| {
            store.gemv_chunk(k, c * chunk, &alpha[..k], wc);
        });
    }

    /// `out = Σ_i y[i] · V[:, i]` — the solution update `V_m y_m` of
    /// step 17.
    pub fn combine(&self, y: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        self.axpys(y.len(), y, out);
    }

    /// Block-Arnoldi projection `out[j·nw + t] = V[:, j]ᵀ w_t` for `j
    /// in 0..k`, `t in 0..nw`, with the `nw` vectors interleaved
    /// row-major in `ws` (vector `t` at stride `nw`). One parallel
    /// decode sweep of the stored columns serves **all** `nw` vectors
    /// through the format's fused [`ColumnStorage::dots_many_chunk`];
    /// per-chunk partials reduce serially in chunk order, so every
    /// `out[j·nw + t]` is bit-identical to [`Basis::dots_with`] on the
    /// deinterleaved vector `t`, at any thread count.
    pub fn dots_many_with(
        &self,
        k: usize,
        ws: &[f64],
        nw: usize,
        out: &mut [f64],
        scratch: &mut Vec<f64>,
    ) {
        assert!(k <= self.cols());
        assert!(nw >= 1);
        assert_eq!(ws.len(), self.rows() * nw);
        assert!(out.len() >= k * nw);
        if k == 0 {
            return;
        }
        let n = self.rows();
        let chunk = self.chunk;
        let n_chunks = n.div_ceil(chunk);
        if scratch.len() < n_chunks * k * nw {
            scratch.resize(n_chunks * k * nw, 0.0);
        }
        let store = &self.store;
        let partials = &mut scratch[..n_chunks * k * nw];
        partials
            .par_chunks_mut(k * nw)
            .enumerate()
            .for_each(|(c, slot)| {
                let start = c * chunk;
                let len = chunk.min(n - start);
                store.dots_many_chunk(k, start, &ws[start * nw..(start + len) * nw], nw, slot);
            });
        for jt in 0..k * nw {
            out[jt] = (0..n_chunks).map(|c| partials[c * k * nw + jt]).sum();
        }
    }

    /// Block projection update `w_t ← w_t + Σ_j alphas[j·nw + t] ·
    /// V[:, j]` over `nw` interleaved vectors (callers pass `alphas =
    /// −H`). One parallel decode sweep through the format's fused
    /// [`ColumnStorage::gemv_many_chunk`]; each vector's result is
    /// bit-identical to [`Basis::axpys`] with its coefficient column,
    /// at any thread count.
    pub fn axpys_many(&self, k: usize, alphas: &[f64], ws: &mut [f64], nw: usize) {
        assert!(k <= self.cols());
        assert!(nw >= 1);
        assert!(alphas.len() >= k * nw);
        assert_eq!(ws.len(), self.rows() * nw);
        if k == 0 {
            return;
        }
        let chunk = self.chunk;
        let store = &self.store;
        ws.par_chunks_mut(chunk * nw)
            .enumerate()
            .for_each(|(c, wc)| {
                store.gemv_many_chunk(k, c * chunk, &alphas[..k * nw], nw, wc);
            });
    }

    /// Batched solution update `w_t = Σ_j ys[j·nw + t] · V[:, j]` —
    /// `nw` per-RHS [`Basis::combine`] calls in one decode sweep.
    /// Zero coefficients are skipped by the underlying kernels, so a
    /// vector whose coefficient column is zero-padded (a right-hand
    /// side that used fewer Krylov directions) gets exactly the bits
    /// of a shorter per-vector combine.
    pub fn combine_many(&self, k: usize, ys: &[f64], outs: &mut [f64], nw: usize) {
        outs.iter_mut().for_each(|v| *v = 0.0);
        self.axpys_many(k, ys, outs, nw);
    }

    /// Bytes streamed from storage when reading one full column.
    pub fn column_bytes(&self) -> usize {
        self.store.column_bytes()
    }

    /// Storage format label (paper nomenclature).
    pub fn format_name(&self) -> String {
        self.store.format_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frsz2::Frsz2Store;
    use numfmt::DenseStore;

    fn vec_of(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dots_match_serial_for_f64() {
        let n = 30_000;
        let mut basis = Basis::<DenseStore<f64>>::new(n, 3);
        let v0 = vec_of(n, |i| (i as f64 * 0.1).sin());
        let v1 = vec_of(n, |i| (i as f64 * 0.2).cos());
        basis.write(0, &v0);
        basis.write(1, &v1);
        let w = vec_of(n, |i| (i as f64 * 0.05).sin() + 0.1);
        let mut h = vec![0.0; 2];
        basis.dots(2, &w, &mut h);
        let s0: f64 = v0.iter().zip(&w).map(|(a, b)| a * b).sum();
        let s1: f64 = v1.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert!((h[0] - s0).abs() < 1e-9 * s0.abs().max(1.0));
        assert!((h[1] - s1).abs() < 1e-9 * s1.abs().max(1.0));
        // Determinism.
        let mut h2 = vec![0.0; 2];
        basis.dots(2, &w, &mut h2);
        assert_eq!(h[0].to_bits(), h2[0].to_bits());
        assert_eq!(h[1].to_bits(), h2[1].to_bits());
    }

    #[test]
    fn axpys_matches_serial() {
        let n = 20_000;
        let mut basis = Basis::<DenseStore<f32>>::new(n, 2);
        let v0 = vec_of(n, |i| (i as f64 * 0.3).sin());
        let v1 = vec_of(n, |i| (i as f64 * 0.7).cos());
        basis.write(0, &v0);
        basis.write(1, &v1);
        let mut w = vec_of(n, |i| i as f64 * 1e-5);
        let mut expect = w.clone();
        basis.axpys(2, &[2.0, -0.5], &mut w);
        // The kernel accumulates column by column; mirror that order so
        // the comparison is exact.
        for i in 0..n {
            expect[i] += 2.0 * (v0[i] as f32 as f64);
        }
        for i in 0..n {
            expect[i] += -0.5 * (v1[i] as f32 as f64);
        }
        assert_eq!(w, expect);
    }

    #[test]
    fn dots_and_axpys_bit_identical_across_thread_counts() {
        let n = 40_000;
        let k = 4;
        let mut basis = Basis::<Frsz2Store>::new(n, k);
        for j in 0..k {
            basis.write(j, &vec_of(n, |i| ((i + 31 * j) as f64 * 0.13).sin()));
        }
        let w = vec_of(n, |i| ((i as f64) * 0.041).cos());
        let mut h_ref = vec![0.0; k];
        basis.dots(k, &w, &mut h_ref);
        let mut u_ref = w.clone();
        basis.axpys(k, &[0.5, -1.25, 2.0, -0.125], &mut u_ref);
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut h = vec![0.0; k];
            let mut u = w.clone();
            pool.install(|| {
                basis.dots(k, &w, &mut h);
                basis.axpys(k, &[0.5, -1.25, 2.0, -0.125], &mut u);
            });
            for j in 0..k {
                assert_eq!(
                    h[j].to_bits(),
                    h_ref[j].to_bits(),
                    "dot {j} at {threads} threads"
                );
            }
            for i in 0..n {
                assert_eq!(
                    u[i].to_bits(),
                    u_ref[i].to_bits(),
                    "row {i} at {threads} threads"
                );
            }
        }
    }

    /// Same reproducibility pin for the per-block adaptive store: the
    /// wide-spread data makes neighbouring blocks pick different bit
    /// lengths, and the chunk-dealt kernels must still be bit-identical
    /// at any thread count.
    #[test]
    fn adaptive_store_dots_and_axpys_bit_identical_across_thread_counts() {
        let n = 40_000;
        let k = 4;
        let mut basis = Basis::<frsz2::Frsz2AdaptiveStore>::new(n, k);
        for j in 0..k {
            basis.write(
                j,
                &vec_of(n, |i| {
                    let x = ((i + 31 * j) as f64 * 0.13).sin() + 1.1;
                    x * f64::powi(2.0, -(((i * 7 + j) % 25) as i32))
                }),
            );
        }
        let ls = basis.store().column_bit_lengths(0);
        assert!(ls.iter().any(|&l| l as u32 != ls[0] as u32), "lengths vary");
        let w = vec_of(n, |i| ((i as f64) * 0.041).cos());
        let mut h_ref = vec![0.0; k];
        basis.dots(k, &w, &mut h_ref);
        let mut u_ref = w.clone();
        basis.axpys(k, &[0.5, -1.25, 2.0, -0.125], &mut u_ref);
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut h = vec![0.0; k];
            let mut u = w.clone();
            pool.install(|| {
                basis.dots(k, &w, &mut h);
                basis.axpys(k, &[0.5, -1.25, 2.0, -0.125], &mut u);
            });
            for j in 0..k {
                assert_eq!(
                    h[j].to_bits(),
                    h_ref[j].to_bits(),
                    "dot {j} at {threads} threads"
                );
            }
            for i in 0..n {
                assert_eq!(
                    u[i].to_bits(),
                    u_ref[i].to_bits(),
                    "row {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn combine_is_weighted_sum() {
        let n = 100;
        let mut basis = Basis::<DenseStore<f64>>::new(n, 3);
        for j in 0..3 {
            basis.write(j, &vec_of(n, |i| (i + j) as f64));
        }
        let mut out = vec![7.0; n]; // must be overwritten, not accumulated
        basis.combine(&[1.0, -1.0, 0.5], &mut out);
        for (i, o) in out.iter().enumerate() {
            let expect = i as f64 - (i + 1) as f64 + 0.5 * (i + 2) as f64;
            assert_eq!(*o, expect);
        }
    }

    #[test]
    fn frsz2_basis_respects_block_error_bound() {
        let n = 10_000;
        let mut basis = Basis::<Frsz2Store>::new(n, 1);
        let v = vec_of(n, |i| (i as f64 * 0.17).sin() * 0.9);
        basis.write(0, &v);
        let mut back = vec![0.0; n];
        basis.read_column(0, &mut back);
        for i in 0..n {
            // frsz2_32: error below 2^-30 of the block max (<= 1).
            assert!((back[i] - v[i]).abs() < f64::powi(2.0, -30), "row {i}");
        }
        assert_eq!(basis.format_name(), "frsz2_32");
        // Eq. 3: 313 blocks of (32 code words + 1 exponent word).
        let blocks = 10_000usize.div_ceil(32);
        assert_eq!(basis.column_bytes(), blocks * 33 * 4);
    }
}
