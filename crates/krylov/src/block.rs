//! Block (multi-RHS) CB-GMRES: many right-hand sides against one
//! operator, expanded through **one shared compressed Krylov basis**.
//!
//! Real traffic (power-flow Jacobians, parameter sweeps) arrives as
//! `b` right-hand sides sharing one `A`. Solving them independently
//! streams the operator `b` times per expansion and decodes `b`
//! separate compressed bases. The block driver instead runs block
//! Arnoldi: each expansion appends `b` columns at once (one
//! [`SparseMatrix::spmm_into`] sweep reads every stored matrix entry
//! once for all `b` outputs) and orthogonalizes all `b` new vectors in
//! **one decode sweep** of the shared basis through the fused
//! multi-RHS kernels ([`Basis::dots_many_with`] /
//! [`Basis::axpys_many`]) — the multi-RHS analogue of the paper's
//! compressed-basis traffic argument, applied to both of the solver's
//! memory-bound streams.
//!
//! # Shared-space semantics
//!
//! Every right-hand side draws its iterate from the same block Krylov
//! space `K_j(A, [r_1 … r_b])`: the restart boundary seeds the cycle
//! by orthonormalizing the `b` explicit residuals into basis block 0
//! (recording the mixing factor Γ), and each step extends the space by
//! `A·M⁻¹` applied to the newest block. The block Hessenberg is kept
//! QR-factored by Givens rotations (each new column needs exactly `b`
//! eliminations of its subdiagonal band); per RHS the driver carries a
//! rotated right-hand side `g_k` seeded from Γ, so an implicit
//! residual `‖tail(g_k)‖/‖b_k‖` is available per RHS per step, along
//! with per-RHS Hessenberg bookkeeping (`y_k` uses only the leading
//! `q_k` columns recorded while RHS `k` was still unconverged).
//!
//! Because the space is shared, a width-`b` solve is **not**
//! bit-identical per RHS to `b` independent solves — block Arnoldi
//! legitimately differs (it usually converges in fewer iterations per
//! RHS: the shared space deflates the spectrum seen by every RHS).
//! Convergence claims therefore rest on the same contract as the
//! single-RHS driver: only the *explicit* residual at a restart
//! boundary sets [`SolveStats::converged`]. Two things are pinned
//! bit-for-bit:
//!
//! - **b = 1 is the single solver.** The driver delegates width-1
//!   solves to the `solve_driver` behind [`crate::gmres_with`], so the
//!   b=1 path is fingerprint-identical by construction (enforced by
//!   the `block_solve` bench suite against the committed
//!   `cb_gmres_frsz2_21` case).
//! - **Thread-count invariance.** All parallel reductions go through
//!   the chunk-deterministic basis kernels, so a width-`b` solve is
//!   bit-identical at any thread count.
//!
//! # Per-RHS convergence, freezing, and deflation
//!
//! Within a cycle, an RHS whose implicit residual reaches the target
//! (or whose iteration budget is exhausted) **freezes**: it stops
//! counting iterations and remembers how many Hessenberg columns
//! `q_k` it consumed, while the block keeps expanding for the rest.
//! At the cycle end each RHS back-substitutes its own `q_k × q_k`
//! triangle and all solution updates run through one batched
//! [`Basis::combine_many`] decode sweep. At the next boundary,
//! converged RHS **deflate**: they retire from the block entirely, so
//! subsequent cycles run with a genuinely smaller width (narrower
//! SpMM, fewer appended columns) — the shrinking active block of the
//! issue contract.
//!
//! A breakdown inside the block (a new column that vanishes after
//! projection, i.e. the block Krylov space stopped growing — exactly
//! linearly dependent right-hand sides trigger this at the seed)
//! freezes the whole cycle at the columns recorded so far; the
//! boundary's explicit residual then decides each RHS's fate, and a
//! cycle that recorded nothing retires its RHS unconverged (it would
//! replay verbatim). Use distinct right-hand sides; duplicates are
//! better served by one solve.
//!
//! `GmresOptions::capture_basis_at` is honored only on the `b = 1`
//! delegation path; wider solves ignore it (basis columns are shared,
//! so there is no per-RHS "the" vector at a global iteration).

use crate::basis::Basis;
use crate::basis_format::BasisFormat;
use crate::diagnostics::{history_summary, HistorySummary};
use crate::gmres::{
    boundary_bookkeeping, givens, solve_driver, BoundaryDecision, CycleEvent, GmresOptions,
    HistoryPoint, SolveStats,
};
use crate::precond::Preconditioner;
use numfmt::ColumnStorage;
use spla::dense::{axpy, norm2};
use spla::SparseMatrix;
use std::time::Instant;

/// The shared compressed Krylov basis of a block solve: one
/// [`ColumnStorage`] holding `width × cols_per_rhs` columns, appended
/// `width` at a time by block Arnoldi.
///
/// One store (not one per RHS) is the point: a single decode sweep of
/// its columns serves every right-hand side. The capacity is exactly
/// `width ×` the single-solve basis, which keeps the service layer's
/// admission estimate (`width ×` the single-basis bytes) exact.
pub struct BlockBasis<S: ColumnStorage> {
    basis: Basis<S>,
    width: usize,
    cols_per_rhs: usize,
}

impl<S: ColumnStorage> BlockBasis<S> {
    /// Build a shared basis for `width` right-hand sides with
    /// `cols_per_rhs` columns each (`restart + 1` for GMRES) through a
    /// storage factory (the block analogue of [`crate::gmres_with`]'s
    /// factory argument; it is called once, for the whole block).
    ///
    /// # Panics
    /// If `width == 0`.
    pub fn with_factory(
        width: usize,
        rows: usize,
        cols_per_rhs: usize,
        make_store: impl Fn(usize, usize) -> S,
    ) -> Self {
        assert!(width >= 1, "a block basis needs at least one rhs");
        BlockBasis {
            basis: Basis::from_store(make_store(rows, cols_per_rhs * width)),
            width,
            cols_per_rhs,
        }
    }

    /// Block width `b` the basis was sized for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column capacity reserved per right-hand side.
    pub fn cols_per_rhs(&self) -> usize {
        self.cols_per_rhs
    }

    /// The shared basis all right-hand sides expand.
    pub fn shared(&self) -> &Basis<S> {
        &self.basis
    }

    fn into_single(self) -> Basis<S> {
        debug_assert_eq!(self.width, 1);
        self.basis
    }
}

/// Result of a block solve: per-RHS outputs plus the one block-level
/// quantity single-RHS stats cannot express — how many full sweeps of
/// the operator the whole solve cost.
#[derive(Clone, Debug)]
pub struct BlockSolveResult {
    /// Solution vector of each right-hand side, in input order.
    pub solutions: Vec<Vec<f64>>,
    /// Per-RHS counters and outcome (see [`SolveStats::converged`];
    /// each entry means exactly what it does for a single solve —
    /// `iterations` counts the block steps the RHS participated in
    /// unconverged, and the byte counters are the RHS's amortized
    /// share of the shared-basis traffic).
    pub stats: Vec<SolveStats>,
    /// Per-RHS residual histories (empty when
    /// `GmresOptions::record_history` is off).
    pub histories: Vec<Vec<HistoryPoint>>,
    /// Full passes over the operator's stored entries ([`spmv`] or
    /// [`spmm_into`] calls). Amortized SpMV traffic per RHS is
    /// `operator_sweeps * storage_bytes / width` — the block solver's
    /// headline metric, strictly below the single-solve total whenever
    /// right-hand sides share sweeps.
    ///
    /// [`spmv`]: SparseMatrix::spmv
    /// [`spmm_into`]: SparseMatrix::spmm_into
    pub operator_sweeps: u64,
}

impl BlockSolveResult {
    /// Block width `b` of the solve that produced this result.
    pub fn width(&self) -> usize {
        self.solutions.len()
    }

    /// `true` only when **every** RHS converged (each decided from its
    /// own explicit residual, never the implicit estimate).
    pub fn all_converged(&self) -> bool {
        self.stats.iter().all(|s| s.converged)
    }

    /// Per-RHS [`HistorySummary`] (all-`None` entries when histories
    /// were not recorded) — the block form of
    /// [`crate::diagnostics::history_summary`].
    pub fn history_summaries(&self) -> Vec<HistorySummary> {
        self.histories.iter().map(|h| history_summary(h)).collect()
    }
}

/// Per-RHS driver state that survives across cycles.
struct Lane {
    x: Vec<f64>,
    /// Explicit residual `b − Ax` entering the current cycle.
    r: Vec<f64>,
    stats: SolveStats,
    history: Vec<HistoryPoint>,
    bnorm: f64,
    /// Still solving (not converged / terminated).
    active: bool,
}

impl Lane {
    /// Retire the RHS from the block (converged or terminal), stamping
    /// its wall time: the time-to-solution of *this* RHS, deflation
    /// included.
    fn retire(&mut self, start: Instant) {
        self.active = false;
        self.stats.wall_time = start.elapsed();
    }
}

/// Solve `A x_k = b_k` for every right-hand side in `bs` with block
/// CB-GMRES, expanding one shared Krylov basis stored in format `S`.
///
/// `x0s` supplies per-RHS initial guesses (zero vectors when `None`).
/// See the [module docs](self) for the shared-space semantics; at
/// `b = 1` the result is bit-identical to [`crate::gmres()`].
pub fn block_gmres<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    bs: &[Vec<f64>],
    x0s: Option<&[Vec<f64>]>,
    opts: &GmresOptions,
    precond: &P,
) -> BlockSolveResult {
    block_gmres_with(a, bs, x0s, opts, precond, S::with_shape)
}

/// [`block_gmres`] with an explicit basis-store factory (e.g.
/// `Frsz2Store::with_config`); the factory receives `(rows, cols)` for
/// the whole shared basis and is called once.
pub fn block_gmres_with<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    bs: &[Vec<f64>],
    x0s: Option<&[Vec<f64>]>,
    opts: &GmresOptions,
    precond: &P,
    make_store: impl Fn(usize, usize) -> S,
) -> BlockSolveResult {
    block_solve_driver(a, bs, x0s, opts, precond, make_store, |_, _| {})
}

/// [`block_gmres`] over a runtime-selected basis format from the
/// [`crate::basis_format`] registry (the block analogue of
/// [`crate::basis_format::gmres_dyn`]).
pub fn block_gmres_dyn<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    bs: &[Vec<f64>],
    x0s: Option<&[Vec<f64>]>,
    opts: &GmresOptions,
    precond: &P,
    format: &dyn BasisFormat,
) -> BlockSolveResult {
    block_gmres_dyn_observed(a, bs, x0s, opts, precond, format, |_, _| {})
}

/// [`block_gmres_dyn`] with per-RHS restart-boundary telemetry: the
/// hook receives `(rhs_index, event)` for every cycle an RHS is about
/// to run, with the same boundary semantics as the single-RHS observed
/// drivers (an RHS's converged boundary emits no event). The event
/// stream is deterministic, like the solve.
pub fn block_gmres_dyn_observed<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    bs: &[Vec<f64>],
    x0s: Option<&[Vec<f64>]>,
    opts: &GmresOptions,
    precond: &P,
    format: &dyn BasisFormat,
    on_event: impl FnMut(usize, CycleEvent),
) -> BlockSolveResult {
    block_solve_driver(
        a,
        bs,
        x0s,
        opts,
        precond,
        |rows, cols| format.create(rows, cols),
        on_event,
    )
}

/// The one block driver: validates shapes, delegates `b = 1` to the
/// single-RHS `solve_driver` (fingerprint identity by construction),
/// and runs the shared-space block Arnoldi loop otherwise.
fn block_solve_driver<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    bs: &[Vec<f64>],
    x0s: Option<&[Vec<f64>]>,
    opts: &GmresOptions,
    precond: &P,
    make_store: impl Fn(usize, usize) -> S,
    mut on_event: impl FnMut(usize, CycleEvent),
) -> BlockSolveResult {
    let n = a.rows();
    assert_eq!(a.cols(), n, "GMRES needs a square matrix");
    let width = bs.len();
    assert!(width >= 1, "block solve needs at least one right-hand side");
    for b in bs {
        assert_eq!(b.len(), n, "rhs length mismatch");
    }
    if let Some(x0s) = x0s {
        assert_eq!(x0s.len(), width, "one initial guess per rhs");
        for x0 in x0s {
            assert_eq!(x0.len(), n, "x0 length mismatch");
        }
    }
    assert!(opts.restart >= 1);
    let m = opts.restart;
    let basis = BlockBasis::with_factory(width, n, m + 1, &make_store);

    if width == 1 {
        let zero;
        let x0 = match x0s {
            Some(x0s) => &x0s[0],
            None => {
                zero = vec![0.0; n];
                &zero
            }
        };
        let r = solve_driver(
            a,
            &bs[0],
            x0,
            opts,
            precond,
            basis.into_single(),
            |boundary, basis, stats| on_event(0, CycleEvent::at_boundary(boundary, basis, stats)),
        );
        let operator_sweeps = r.stats.spmv_count;
        return BlockSolveResult {
            solutions: vec![r.x],
            stats: vec![r.stats],
            histories: vec![r.history],
            operator_sweeps,
        };
    }

    block_arnoldi_driver(a, bs, x0s, opts, precond, basis, &mut on_event)
}

/// Row window (in buffer elements) for the interleave passes between
/// per-RHS vectors and the row-major multi-RHS buffers. A window of
/// `PACK_WINDOW / width` rows keeps the strided side of the copy
/// inside L1 while every column's pass streams through it; the copy is
/// pure data movement, so the window size cannot affect any result bit.
const PACK_WINDOW: usize = 4096;

/// `buf[i * w + slot] = srcs[slot][i]` for all `i < n`, row-windowed.
pub(crate) fn pack_interleaved(buf: &mut [f64], srcs: &[&[f64]], n: usize) {
    let w = srcs.len();
    let rows = (PACK_WINDOW / w).max(1);
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + rows).min(n);
        for (slot, src) in srcs.iter().enumerate() {
            for i in i0..i1 {
                buf[i * w + slot] = src[i];
            }
        }
        i0 = i1;
    }
}

/// `out[i] = buf[i * w + slot]`: one column of a row-major block.
pub(crate) fn gather_col(buf: &[f64], w: usize, slot: usize, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = buf[i * w + slot];
    }
}

/// `buf[i * w + slot] = src[i]`: write one column of a row-major block.
fn scatter_col(buf: &mut [f64], w: usize, slot: usize, src: &[f64]) {
    for (i, &v) in src.iter().enumerate() {
        buf[i * w + slot] = v;
    }
}

/// Column 2-norms of a row-major `n × w` block, one fused row pass.
pub(crate) fn col_norms(buf: &[f64], w: usize, n: usize, out: &mut [f64]) {
    out[..w].fill(0.0);
    for i in 0..n {
        let row = &buf[i * w..i * w + w];
        for (acc, &v) in out[..w].iter_mut().zip(row) {
            *acc += v * v;
        }
    }
    for v in out[..w].iter_mut() {
        *v = v.sqrt();
    }
}

/// One right-looking modified-Gram-Schmidt pass over a row-major
/// `n × w` block, in place: normalizes column `s`, then projects it
/// out of columns `s+1..w` in one fused row pass per pivot. Fills the
/// upper-triangular factor into `r` (row-major `w × w`,
/// `r[s*w + t]`). Returns `false` on breakdown (a pivot with zero or
/// non-finite norm: the block's columns are linearly dependent).
fn mgs_pass(wv: &mut [f64], w: usize, n: usize, r: &mut [f64], d: &mut [f64]) -> bool {
    r[..w * w].fill(0.0);
    for s in 0..w {
        let mut nrm = 0.0;
        for i in 0..n {
            let v = wv[i * w + s];
            nrm += v * v;
        }
        nrm = nrm.sqrt();
        if nrm == 0.0 || !nrm.is_finite() {
            return false;
        }
        r[s * w + s] = nrm;
        let inv = 1.0 / nrm;
        for i in 0..n {
            wv[i * w + s] *= inv;
        }
        if s + 1 == w {
            continue;
        }
        d[s + 1..w].fill(0.0);
        for i in 0..n {
            let vs = wv[i * w + s];
            let row = &wv[i * w..i * w + w];
            for (t, dt) in d[s + 1..w].iter_mut().enumerate() {
                *dt += vs * row[s + 1 + t];
            }
        }
        r[s * w + s + 1..(s + 1) * w].copy_from_slice(&d[s + 1..w]);
        for i in 0..n {
            let vs = wv[i * w + s];
            let row = &mut wv[i * w..i * w + w];
            for (t, &dt) in d[s + 1..w].iter().enumerate() {
                row[s + 1 + t] -= dt * vs;
            }
        }
    }
    true
}

/// Orthonormalize a row-major `n × w` block in place with two MGS
/// passes (MGS with full reorthogonalization — cheap at block width,
/// and robust for the nearly-dependent seed blocks deflation
/// produces), composing the triangular factors: `W = Q·(R₂R₁)` with
/// the product written into `r`. Returns `false` on breakdown. Also
/// the conditional CholQR fallback of the s-step panel in `sstep.rs`.
pub(crate) fn mgs2_block(
    wv: &mut [f64],
    w: usize,
    n: usize,
    r: &mut [f64],
    r2: &mut [f64],
    d: &mut [f64],
) -> bool {
    if !mgs_pass(wv, w, n, r, d) {
        return false;
    }
    if !mgs_pass(wv, w, n, r2, d) {
        return false;
    }
    // r ← r2 · r1, upper-triangular product, safely in place: entry
    // (s, t) only consumes r[u*w + t] with u >= s.
    for t in 0..w {
        for s in 0..=t {
            let mut acc = 0.0;
            for u in s..=t {
                acc += r2[s * w + u] * r[u * w + t];
            }
            r[s * w + t] = acc;
        }
    }
    true
}

/// The width > 1 shared-space loop. Restart boundaries mirror
/// `solve_driver` per RHS (explicit residual, deflation, telemetry);
/// inside a cycle the block Arnoldi recursion replaces the per-RHS
/// inner loop.
fn block_arnoldi_driver<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    bs: &[Vec<f64>],
    x0s: Option<&[Vec<f64>]>,
    opts: &GmresOptions,
    precond: &P,
    mut basis: BlockBasis<S>,
    on_event: &mut impl FnMut(usize, CycleEvent),
) -> BlockSolveResult {
    let n = a.rows();
    let width = bs.len();
    let m = opts.restart;
    let start = Instant::now();
    let mut operator_sweeps: u64 = 0;
    let col_bytes = basis.shared().column_bytes() as u64;
    let format = basis.shared().format_name();

    let mut lanes: Vec<Lane> = (0..width)
        .map(|k| {
            let mut lane = Lane {
                x: match x0s {
                    Some(x0s) => x0s[k].clone(),
                    None => vec![0.0; n],
                },
                r: vec![0.0; n],
                stats: SolveStats::default(),
                history: Vec::new(),
                bnorm: norm2(&bs[k]),
                active: true,
            };
            lane.stats.format = format.clone();
            // b_k = 0: the solution is x_k = 0 exactly (single-driver
            // early return, per RHS).
            if lane.bnorm == 0.0 {
                lane.x.fill(0.0);
                lane.stats.converged = true;
                lane.stats.final_rrn = 0.0;
                lane.retire(start);
            }
            lane
        })
        .collect();

    // Work buffers, sized for the full width once and sliced down as
    // the block deflates. `ld` is the leading dimension of the rotated
    // Hessenberg / carrier columns: the shared basis can hold at most
    // `(m + 1) · width` columns.
    let ld = (m + 1) * width;
    let cmax = m * width;
    let mut xbuf = vec![0.0; n * width]; // SpMM input block
    let mut wbuf = vec![0.0; n * width]; // SpMM output / new columns W
    let mut tmp = vec![0.0; n];
    let mut tmp2 = vec![0.0; n];
    let mut hproj = vec![0.0; cmax * width]; // projections VᵀW, [jc·wa + t]
    let mut hcorr = vec![0.0; cmax * width]; // DGKS correction
    let mut nbuf = vec![0.0; cmax * width]; // negated coefficients
    let mut rmat = vec![0.0; ld * cmax]; // rotated H̄, column c at c·ld
    let mut gmat = vec![0.0; ld * width]; // per-RHS carriers g_k
    let mut rots: Vec<(u32, f64, f64)> = Vec::new();
    let mut hcol = vec![0.0; ld];
    let mut ys = vec![0.0; cmax * width]; // per-RHS y columns, [jc·wa + s]
    let mut rblk = vec![0.0; width * width];
    let mut rblk2 = vec![0.0; width * width];
    let mut dvec = vec![0.0; width];
    let mut omegas = vec![0.0; width];
    let mut pnorms = vec![0.0; width];
    let mut dot_scratch: Vec<f64> = Vec::new();

    loop {
        // Restart boundary: batched explicit residual r_k = b_k − A x_k
        // over the RHS still solving — the ONLY residual allowed to
        // decide convergence.
        let boundary: Vec<usize> = (0..width).filter(|&k| lanes[k].active).collect();
        if boundary.is_empty() {
            break;
        }
        let wb = boundary.len();
        {
            let srcs: Vec<&[f64]> = boundary.iter().map(|&k| &lanes[k].x[..]).collect();
            pack_interleaved(&mut xbuf[..n * wb], &srcs, n);
        }
        a.spmm_into(&xbuf[..n * wb], &mut wbuf[..n * wb], wb);
        operator_sweeps += 1;
        for (slot, &k) in boundary.iter().enumerate() {
            let lane = &mut lanes[k];
            lane.stats.spmv_count += 1;
            for i in 0..n {
                lane.r[i] = bs[k][i] - wbuf[i * wb + slot];
            }
            let rrn = norm2(&lane.r) / lane.bnorm;
            // Shared boundary bookkeeping (identical to `solve_driver`):
            // a converged lane deflates — the block shrinks — and a
            // terminal lane (non-finite residual / budget) retires.
            match boundary_bookkeeping(rrn, opts, &mut lane.stats, &mut lane.history) {
                BoundaryDecision::Converged | BoundaryDecision::Terminal => {
                    lane.retire(start);
                    continue;
                }
                BoundaryDecision::Continue => {}
            }
            on_event(
                k,
                CycleEvent {
                    cycle: lane.stats.restarts,
                    iterations: lane.stats.iterations,
                    explicit_rrn: rrn,
                    format: format.clone(),
                    basis_bytes_read: lane.stats.basis_bytes_read,
                    basis_bytes_written: lane.stats.basis_bytes_written,
                },
            );
            lane.stats.format_trajectory.push(format.clone());
        }

        // The block of this cycle: RHS that survived the boundary.
        let act: Vec<usize> = (0..width).filter(|&k| lanes[k].active).collect();
        if act.is_empty() {
            break;
        }
        let wa = act.len();

        // Seed block: orthonormalize the explicit residuals into basis
        // block 0 and seed each carrier from the mixing factor Γ
        // (g_k = Γ e_k expresses r_k in the new basis; at wa = 1 this
        // is the familiar g = β e₁).
        {
            let srcs: Vec<&[f64]> = act.iter().map(|&k| &lanes[k].r[..]).collect();
            pack_interleaved(&mut wbuf[..n * wa], &srcs, n);
        }
        let mut c_end = 0usize; // Hessenberg columns recorded this cycle
        let mut frozen = vec![false; wa];
        let mut qk = vec![0usize; wa];
        rots.clear();
        let seed_ok = mgs2_block(&mut wbuf[..n * wa], wa, n, &mut rblk, &mut rblk2, &mut dvec);
        if seed_ok {
            for s in 0..wa {
                gather_col(&wbuf[..n * wa], wa, s, &mut tmp);
                basis.basis.write(s, &tmp);
            }
            gmat[..ld * wa].fill(0.0);
            for s in 0..wa {
                for u in 0..=s {
                    gmat[s * ld + u] = rblk[u * wa + s];
                }
                lanes[act[s]].stats.basis_bytes_written += col_bytes;
            }

            // Block Arnoldi steps: append wa columns per expansion.
            for j in 0..m {
                // RHS at their iteration budget freeze (stop counting)
                // but their slot keeps riding the block to the cycle end.
                for s in 0..wa {
                    if !frozen[s] && lanes[act[s]].stats.iterations >= opts.max_iters {
                        frozen[s] = true;
                        qk[s] = c_end;
                    }
                }
                if frozen.iter().all(|&f| f) {
                    break;
                }
                let q0 = (j + 1) * wa; // columns already in the basis

                // Expansion: W = A · M⁻¹ V_j, one operator sweep for
                // the whole block.
                for s in 0..wa {
                    basis.basis.read_column(q0 - wa + s, &mut tmp);
                    precond.apply(&tmp, &mut tmp2);
                    scatter_col(&mut xbuf[..n * wa], wa, s, &tmp2);
                }
                a.spmm_into(&xbuf[..n * wa], &mut wbuf[..n * wa], wa);
                operator_sweeps += 1;
                for s in 0..wa {
                    if !frozen[s] {
                        let st = &mut lanes[act[s]].stats;
                        st.spmv_count += 1;
                        st.basis_bytes_read += col_bytes;
                    }
                }

                // Block orthogonalization: ONE decode sweep of all q0
                // shared columns serves every new vector (dots), and
                // one more applies the update (axpys).
                col_norms(&wbuf[..n * wa], wa, n, &mut omegas);
                basis.basis.dots_many_with(
                    q0,
                    &wbuf[..n * wa],
                    wa,
                    &mut hproj[..q0 * wa],
                    &mut dot_scratch,
                );
                for (nv, &hv) in nbuf[..q0 * wa].iter_mut().zip(&hproj[..q0 * wa]) {
                    *nv = -hv;
                }
                basis
                    .basis
                    .axpys_many(q0, &nbuf[..q0 * wa], &mut wbuf[..n * wa], wa);
                col_norms(&wbuf[..n * wa], wa, n, &mut pnorms);
                for s in 0..wa {
                    if !frozen[s] {
                        let st = &mut lanes[act[s]].stats;
                        st.basis_bytes_read += 2 * (j as u64 + 1) * col_bytes;
                        st.basis_dot_sweeps += 1;
                        st.basis_gemv_sweeps += 1;
                    }
                }

                // DGKS: if any new column shrank past η, reorthogonalize
                // the whole block once (one extra pair of decode sweeps).
                if pnorms[..wa]
                    .iter()
                    .zip(&omegas[..wa])
                    .any(|(&p, &o)| p.is_finite() && o.is_finite() && p < opts.reorth_eta * o)
                {
                    basis.basis.dots_many_with(
                        q0,
                        &wbuf[..n * wa],
                        wa,
                        &mut hcorr[..q0 * wa],
                        &mut dot_scratch,
                    );
                    for jc in 0..q0 * wa {
                        hproj[jc] += hcorr[jc];
                        nbuf[jc] = -hcorr[jc];
                    }
                    basis
                        .basis
                        .axpys_many(q0, &nbuf[..q0 * wa], &mut wbuf[..n * wa], wa);
                    col_norms(&wbuf[..n * wa], wa, n, &mut pnorms);
                    for s in 0..wa {
                        if !frozen[s] {
                            let st = &mut lanes[act[s]].stats;
                            st.reorthogonalizations += 1;
                            st.basis_bytes_read += 2 * (j as u64 + 1) * col_bytes;
                            st.basis_dot_sweeps += 1;
                            st.basis_gemv_sweeps += 1;
                        }
                    }
                }

                // Breakdown / poison guard: a non-finite projection or
                // a rank-deficient new block ends the cycle at the
                // columns recorded so far (the boundary's explicit
                // residual still decides every RHS).
                let poisoned = pnorms[..wa].iter().any(|v| !v.is_finite())
                    || omegas[..wa].iter().any(|v| !v.is_finite())
                    || hproj[..q0 * wa].iter().any(|v| !v.is_finite());
                let grew = !poisoned
                    && mgs2_block(&mut wbuf[..n * wa], wa, n, &mut rblk, &mut rblk2, &mut dvec);
                if !grew {
                    for s in 0..wa {
                        if !frozen[s] {
                            lanes[act[s]].stats.breakdowns += 1;
                            frozen[s] = true;
                            qk[s] = c_end;
                        }
                    }
                    break;
                }

                // Store the wa new columns (one compression write each).
                for s in 0..wa {
                    gather_col(&wbuf[..n * wa], wa, s, &mut tmp);
                    basis.basis.write(q0 + s, &tmp);
                    if !frozen[s] {
                        lanes[act[s]].stats.basis_bytes_written += col_bytes;
                    }
                }

                // Band QR: each new Hessenberg column gets the stored
                // rotations, then exactly wa new eliminations of its
                // subdiagonal band, applied to every carrier too.
                for t in 0..wa {
                    let c = c_end + t;
                    hcol[..q0 + wa].fill(0.0);
                    for jc in 0..q0 {
                        hcol[jc] = hproj[jc * wa + t];
                    }
                    for u in 0..=t {
                        hcol[q0 + u] = rblk[u * wa + t];
                    }
                    for &(rr, co, si) in rots.iter() {
                        let r = rr as usize;
                        let (a0, a1) = (hcol[r - 1], hcol[r]);
                        hcol[r - 1] = co * a0 + si * a1;
                        hcol[r] = -si * a0 + co * a1;
                    }
                    for r in ((c + 1)..=(q0 + t)).rev() {
                        let (co, si) = givens(hcol[r - 1], hcol[r]);
                        let (a0, a1) = (hcol[r - 1], hcol[r]);
                        hcol[r - 1] = co * a0 + si * a1;
                        hcol[r] = 0.0;
                        rots.push((r as u32, co, si));
                        // Frozen carriers are safe: these rotations only
                        // touch rows >= c >= their recorded q_k.
                        for s in 0..wa {
                            let g = &mut gmat[s * ld..(s + 1) * ld];
                            let (g0, g1) = (g[r - 1], g[r]);
                            g[r - 1] = co * g0 + si * g1;
                            g[r] = -si * g0 + co * g1;
                        }
                    }
                    rmat[c * ld..c * ld + c + 1].copy_from_slice(&hcol[..c + 1]);
                }
                c_end += wa;

                // Per-RHS implicit residual from the carrier tail; a
                // target hit freezes the RHS at its q_k (the next
                // boundary's explicit residual decides convergence).
                for s in 0..wa {
                    if frozen[s] {
                        continue;
                    }
                    let lane = &mut lanes[act[s]];
                    lane.stats.iterations += 1;
                    let g = &gmat[s * ld..(s + 1) * ld];
                    let tail: f64 = g[c_end..c_end + wa]
                        .iter()
                        .map(|v| v * v)
                        .sum::<f64>()
                        .sqrt();
                    let implicit_rrn = tail / lane.bnorm;
                    if opts.record_history {
                        lane.history.push(HistoryPoint {
                            iteration: lane.stats.iterations,
                            rrn: implicit_rrn,
                            explicit: false,
                        });
                    }
                    if implicit_rrn <= opts.target_rrn || !implicit_rrn.is_finite() {
                        frozen[s] = true;
                        qk[s] = c_end;
                    }
                }
                if frozen.iter().all(|&f| f) {
                    break;
                }
            }
        } else {
            // Seed breakdown: exactly dependent residuals. No progress
            // is possible this cycle; every RHS records the breakdown.
            for &k in &act {
                lanes[k].stats.breakdowns += 1;
            }
        }
        for s in 0..wa {
            if !frozen[s] {
                qk[s] = c_end;
            }
        }

        // Cycle end: per-RHS back-substitution on its own leading
        // q_k × q_k triangle, then ONE batched decode sweep updates
        // every solution (zero-padded columns reproduce the shorter
        // per-RHS combine bit for bit, thanks to the zero-skip).
        let kmax = qk.iter().copied().max().unwrap_or(0);
        ys[..kmax.max(1) * wa].fill(0.0);
        for s in 0..wa {
            let q = qk[s];
            let lane = &mut lanes[act[s]];
            lane.stats.restarts += 1;
            if q == 0 {
                // A cycle that recorded nothing would replay verbatim.
                lane.retire(start);
                continue;
            }
            let g = &gmat[s * ld..(s + 1) * ld];
            for i in (0..q).rev() {
                let mut acc = g[i];
                for kk in i + 1..q {
                    acc -= rmat[kk * ld + i] * ys[kk * wa + s];
                }
                let d = rmat[i * ld + i];
                ys[i * wa + s] = if d != 0.0 { acc / d } else { 0.0 };
            }
            lane.stats.basis_bytes_read += q as u64 * col_bytes;
            lane.stats.basis_gemv_sweeps += 1;
        }
        if kmax > 0 {
            basis
                .basis
                .combine_many(kmax, &ys[..kmax * wa], &mut wbuf[..n * wa], wa);
            for s in 0..wa {
                if qk[s] == 0 {
                    continue;
                }
                gather_col(&wbuf[..n * wa], wa, s, &mut tmp);
                precond.apply(&tmp, &mut tmp2);
                axpy(1.0, &tmp2, &mut lanes[act[s]].x);
            }
        }
    }

    for lane in lanes.iter_mut() {
        lane.stats.basis_bits_per_value = if n > 0 {
            col_bytes as f64 * 8.0 / n as f64
        } else {
            0.0
        };
    }
    let mut solutions = Vec::with_capacity(width);
    let mut stats = Vec::with_capacity(width);
    let mut histories = Vec::with_capacity(width);
    for lane in lanes {
        solutions.push(lane.x);
        stats.push(lane.stats);
        histories.push(lane.history);
    }
    BlockSolveResult {
        solutions,
        stats,
        histories,
        operator_sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres_with;
    use crate::precond::Identity;
    use frsz2::{Frsz2Config, Frsz2Store};
    use numfmt::DenseStore;
    use spla::dense::{manufactured_rhs, sub};
    use spla::{gen, Csr};

    /// Deterministic family of comparable-difficulty right-hand sides:
    /// RHS 0 is the manufactured one, the rest are smooth waves with
    /// per-RHS frequency AND phase, so any prefix of the family is
    /// full-rank (a phase-only family spans just two dimensions —
    /// sin(ωi + φ) is a combination of sin ωi and cos ωi — which a
    /// shared-basis block solver must not be tested on).
    fn rhs_family(a: &Csr, count: usize) -> Vec<Vec<f64>> {
        let (_, b0) = manufactured_rhs(a);
        let n = a.rows();
        (0..count)
            .map(|k| {
                if k == 0 {
                    b0.clone()
                } else {
                    (0..n)
                        .map(|i| {
                            ((i as f64) * (0.21 + 0.045 * k as f64) + (k as f64) * 0.73).sin() + 0.1
                        })
                        .collect()
                }
            })
            .collect()
    }

    fn opts(target: f64) -> GmresOptions {
        GmresOptions {
            target_rrn: target,
            max_iters: 4000,
            ..GmresOptions::default()
        }
    }

    #[test]
    fn width_one_is_bit_identical_to_gmres_with() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.4, 0.2, 0.1], 0.2);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let o = opts(1e-9);
        let cfg = Frsz2Config::new(32, 21);
        let single = gmres_with(&a, &b, &x0, &o, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        let block = block_gmres_with(&a, &[b], None, &o, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        assert!(single.stats.converged && block.stats[0].converged);
        assert_eq!(block.stats[0].iterations, single.stats.iterations);
        assert_eq!(block.histories[0].len(), single.history.len());
        for (p, q) in block.histories[0].iter().zip(&single.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "history bits");
        }
        for (u, v) in block.solutions[0].iter().zip(&single.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "solution bits");
        }
        assert_eq!(block.operator_sweeps, single.stats.spmv_count);
    }

    #[test]
    fn shared_space_deflates_converged_rhs_and_solves_the_rest() {
        // RHS 0 starts at the exact solution, so it deflates at its
        // first boundary with zero iterations while the others keep
        // cycling — the block provably runs with a shrunk width, and
        // the shared space still converges every surviving RHS. (A
        // per-RHS bit-identity against sequential solves is NOT
        // expected: block Arnoldi legitimately differs.)
        let a = gen::conv_diff_3d(7, 7, 7, [0.3, 0.2, 0.1], 0.2);
        let bs = rhs_family(&a, 4);
        let o = GmresOptions {
            restart: 20,
            target_rrn: 1e-8,
            max_iters: 3000,
            ..GmresOptions::default()
        };
        let (xsol, _) = manufactured_rhs(&a);
        let mut x0s = vec![vec![0.0; a.rows()]; 4];
        x0s[0] = xsol;
        let block = block_gmres::<DenseStore<f64>, _, _>(&a, &bs, Some(&x0s), &o, &Identity);
        assert_eq!(block.stats[0].iterations, 0, "rhs 0 deflates immediately");
        assert!(
            block.stats.iter().any(|s| s.restarts > 0),
            "remaining rhs must keep cycling after the deflation"
        );
        assert!(block.all_converged());
        // Convergence claims are explicit-residual claims: recompute.
        for (k, x) in block.solutions.iter().enumerate() {
            let mut ax = vec![0.0; a.rows()];
            a.spmv(x, &mut ax);
            let mut res = vec![0.0; a.rows()];
            sub(&bs[k], &ax, &mut res);
            let rrn = norm2(&res) / norm2(&bs[k]);
            assert!(rrn <= o.target_rrn * (1.0 + 1e-12), "rhs {k}: {rrn:.2e}");
        }
    }

    #[test]
    fn wide_block_reaches_explicit_target_on_every_rhs_at_any_thread_count() {
        // The acceptance shape: every RHS of a b=16 solve reaches its
        // explicit-residual target, at 1/2/8 threads, with bit-identical
        // results across the pools.
        let a = gen::conv_diff_3d(8, 8, 8, [0.4, 0.2, 0.1], 0.2);
        let bs = rhs_family(&a, 16);
        let o = opts(1e-9);
        let cfg = Frsz2Config::new(32, 21);
        let mut reference: Option<BlockSolveResult> = None;
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let r = pool.install(|| {
                block_gmres_with(&a, &bs, None, &o, &Identity, |rows, cols| {
                    Frsz2Store::with_config(cfg, rows, cols)
                })
            });
            assert_eq!(r.width(), 16);
            for (k, s) in r.stats.iter().enumerate() {
                assert!(
                    s.converged,
                    "rhs {k} failed at {threads} threads (rrn {:.2e})",
                    s.final_rrn
                );
                assert!(s.final_rrn <= o.target_rrn);
            }
            // Explicit residual of the returned solutions, recomputed
            // here: the solver's claim must hold outside its own
            // bookkeeping.
            for (k, x) in r.solutions.iter().enumerate() {
                let mut ax = vec![0.0; a.rows()];
                a.spmv(x, &mut ax);
                let mut res = vec![0.0; a.rows()];
                sub(&bs[k], &ax, &mut res);
                let rrn = norm2(&res) / norm2(&bs[k]);
                assert!(rrn <= o.target_rrn * (1.0 + 1e-12), "rhs {k}: {rrn:.2e}");
            }
            match &reference {
                None => reference = Some(r),
                Some(base) => {
                    for k in 0..16 {
                        assert_eq!(
                            r.stats[k].iterations, base.stats[k].iterations,
                            "rhs {k} at {threads} threads"
                        );
                        for (u, v) in r.solutions[k].iter().zip(&base.solutions[k]) {
                            assert_eq!(u.to_bits(), v.to_bits(), "rhs {k} at {threads} threads");
                        }
                        for (p, q) in r.histories[k].iter().zip(&base.histories[k]) {
                            assert_eq!(
                                p.rrn.to_bits(),
                                q.rrn.to_bits(),
                                "rhs {k} at {threads} threads"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn block_solve_amortizes_operator_sweeps() {
        let a = gen::conv_diff_3d(8, 8, 8, [0.4, 0.2, 0.1], 0.2);
        let bs = rhs_family(&a, 8);
        let o = opts(1e-9);
        let block = block_gmres::<DenseStore<f64>, _, _>(&a, &bs, None, &o, &Identity);
        let independent: u64 = bs
            .iter()
            .map(|b| {
                crate::gmres::<DenseStore<f64>, _, _>(&a, b, &vec![0.0; a.rows()], &o, &Identity)
                    .stats
                    .spmv_count
            })
            .sum();
        assert!(block.all_converged());
        assert!(
            block.operator_sweeps < independent,
            "block {} sweeps vs {} independent spmvs",
            block.operator_sweeps,
            independent
        );
    }

    #[test]
    fn histories_stay_empty_when_recording_is_off_at_width_gt_1() {
        // Satellite regression: the `record_history: false` guards hold
        // per RHS at b > 1, and the per-RHS summaries are all-None.
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.2);
        let bs = rhs_family(&a, 4);
        let o = GmresOptions {
            record_history: false,
            target_rrn: 1e-8,
            max_iters: 2000,
            ..GmresOptions::default()
        };
        let r = block_gmres::<DenseStore<f64>, _, _>(&a, &bs, None, &o, &Identity);
        assert!(r.all_converged());
        assert!(r.histories.iter().all(|h| h.is_empty()));
        for s in r.history_summaries() {
            assert_eq!(s.points, 0);
            assert!(s.last.is_none());
            assert!(s.last_explicit.is_none());
        }
        // Convergence is still decided (explicitly) without history.
        assert!(r.stats.iter().all(|s| s.final_rrn <= 1e-8));
    }

    #[test]
    fn per_rhs_telemetry_has_single_solve_boundary_semantics() {
        let a = gen::conv_diff_3d(7, 7, 7, [0.3, 0.1, 0.0], 0.05);
        let bs = rhs_family(&a, 3);
        let o = GmresOptions {
            restart: 10,
            target_rrn: 1e-10,
            max_iters: 2000,
            ..GmresOptions::default()
        };
        let fmt = crate::basis_format::by_name("float64").unwrap();
        let mut events: Vec<(usize, CycleEvent)> = Vec::new();
        let r = block_gmres_dyn_observed(&a, &bs, None, &o, &Identity, fmt.as_ref(), |k, e| {
            events.push((k, e))
        });
        assert!(r.all_converged());
        for k in 0..3 {
            let lane_events: Vec<&CycleEvent> = events
                .iter()
                .filter(|(j, _)| *j == k)
                .map(|(_, e)| e)
                .collect();
            // One event per executed cycle (converged boundary silent).
            assert_eq!(lane_events.len(), r.stats[k].restarts, "rhs {k}");
            for (c, e) in lane_events.iter().enumerate() {
                assert_eq!(e.cycle, c, "rhs {k}");
                assert_eq!(e.format, "float64");
                assert!(e.explicit_rrn > o.target_rrn);
            }
            assert_eq!(lane_events[0].iterations, 0);
        }
        assert!(
            r.stats.iter().any(|s| s.restarts > 1),
            "the small restart must force at least one rhs through multiple cycles"
        );
    }

    #[test]
    fn zero_rhs_lane_returns_zero_solution_and_others_solve() {
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.2);
        let (_, b) = manufactured_rhs(&a);
        let bs = vec![vec![0.0; a.rows()], b];
        let o = opts(1e-9);
        let r = block_gmres::<DenseStore<f64>, _, _>(&a, &bs, None, &o, &Identity);
        assert!(r.stats[0].converged);
        assert_eq!(r.stats[0].iterations, 0);
        assert!(r.solutions[0].iter().all(|&v| v == 0.0));
        assert!(r.stats[1].converged);
        assert!(r.stats[1].iterations > 0);
    }

    #[test]
    fn block_basis_is_one_shared_store_sized_for_the_whole_block() {
        let bb: BlockBasis<DenseStore<f64>> =
            BlockBasis::with_factory(3, 100, 11, DenseStore::with_shape);
        assert_eq!(bb.width(), 3);
        assert_eq!(bb.cols_per_rhs(), 11);
        assert_eq!(bb.shared().rows(), 100);
        assert_eq!(bb.shared().cols(), 33);
    }
}
