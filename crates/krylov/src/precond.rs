//! Preconditioners for right-preconditioned GMRES.
//!
//! The paper's evaluation runs *without* a preconditioner "to not blur
//! the numerical impact" (§V-C) — [`Identity`] reproduces that setup.
//! [`Jacobi`] and [`BlockJacobi`] are the optional extension the related
//! work points at (\[15\]: adaptive-precision block-Jacobi): they exercise
//! the `M⁻¹` hooks of Fig. 1 steps 3 and 17.

use spla::Csr;

/// Application of `M⁻¹` (right preconditioning: `w = A M⁻¹ v`).
pub trait Preconditioner: Send + Sync {
    /// `out = M⁻¹ v`.
    fn apply(&self, v: &[f64], out: &mut [f64]);

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// No preconditioning (`M = I`) — the paper's configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    #[inline]
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        out.copy_from_slice(v);
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Point-Jacobi: `M = diag(A)`.
#[derive(Clone, Debug)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the matrix diagonal.
    ///
    /// # Panics
    /// If any diagonal entry is zero.
    pub fn new(a: &Csr) -> Self {
        let inv_diag = a
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(d != 0.0, "zero diagonal at row {i}: Jacobi undefined");
                1.0 / d
            })
            .collect();
        Jacobi { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    #[inline]
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        for ((o, &x), &d) in out.iter_mut().zip(v).zip(&self.inv_diag) {
            *o = x * d;
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Block-Jacobi with dense inverted diagonal blocks of fixed size.
///
/// Blocks are factorized once with partial-pivoted LU; `apply` performs
/// the two triangular solves per block.
#[derive(Clone, Debug)]
pub struct BlockJacobi {
    n: usize,
    bs: usize,
    /// Per block: LU factors (row-major bs×bs) and pivot indices.
    lu: Vec<(Vec<f64>, Vec<usize>)>,
}

impl BlockJacobi {
    /// Extract and factorize the block diagonal of `a` with `block_size`.
    ///
    /// # Panics
    /// If a diagonal block is numerically singular.
    pub fn new(a: &Csr, block_size: usize) -> Self {
        assert!(block_size >= 1);
        let n = a.rows();
        let mut lu = Vec::with_capacity(n.div_ceil(block_size));
        for start in (0..n).step_by(block_size) {
            let bs = block_size.min(n - start);
            let mut block = vec![0.0; bs * bs];
            for r in 0..bs {
                let (cols, vals) = a.row(start + r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let c = c as usize;
                    if c >= start && c < start + bs {
                        block[r * bs + (c - start)] = v;
                    }
                }
            }
            lu.push(lu_factor(block, bs));
        }
        BlockJacobi {
            n,
            bs: block_size,
            lu,
        }
    }
}

/// In-place partial-pivot LU. Returns (factors, pivots).
fn lu_factor(mut m: Vec<f64>, n: usize) -> (Vec<f64>, Vec<usize>) {
    let mut piv: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot selection.
        let (mut best, mut best_abs) = (k, m[k * n + k].abs());
        for r in k + 1..n {
            let a = m[r * n + k].abs();
            if a > best_abs {
                best = r;
                best_abs = a;
            }
        }
        assert!(best_abs > 0.0, "singular diagonal block in BlockJacobi");
        if best != k {
            for c in 0..n {
                m.swap(k * n + c, best * n + c);
            }
            piv.swap(k, best);
        }
        let pivot = m[k * n + k];
        for r in k + 1..n {
            let f = m[r * n + k] / pivot;
            m[r * n + k] = f;
            for c in k + 1..n {
                m[r * n + c] -= f * m[k * n + c];
            }
        }
    }
    (m, piv)
}

/// Solve `LU x = b[piv]` in place into `x`.
fn lu_solve(lu: &[f64], piv: &[usize], b: &[f64], x: &mut [f64]) {
    let n = piv.len();
    for i in 0..n {
        x[i] = b[piv[i]];
    }
    // Forward substitution (unit lower).
    for i in 0..n {
        for j in 0..i {
            x[i] -= lu[i * n + j] * x[j];
        }
    }
    // Backward substitution.
    for i in (0..n).rev() {
        for j in i + 1..n {
            x[i] -= lu[i * n + j] * x[j];
        }
        x[i] /= lu[i * n + i];
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n);
        assert_eq!(out.len(), self.n);
        for (b, (lu, piv)) in self.lu.iter().enumerate() {
            let start = b * self.bs;
            let bs = piv.len();
            lu_solve(lu, piv, &v[start..start + bs], &mut out[start..start + bs]);
        }
    }

    fn name(&self) -> &'static str {
        "block-jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spla::Coo;

    #[test]
    fn identity_copies() {
        let p = Identity;
        let v = vec![1.0, -2.0, 3.0];
        let mut out = vec![0.0; 3];
        p.apply(&v, &mut out);
        assert_eq!(out, v);
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(1, 1, 4.0);
        m.push(2, 2, -0.5);
        m.push(0, 1, 9.0); // off-diagonal ignored by Jacobi
        let p = Jacobi::new(&m.to_csr());
        let mut out = vec![0.0; 3];
        p.apply(&[2.0, 4.0, -0.5], &mut out);
        assert_eq!(out, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn block_jacobi_inverts_block_diagonal_exactly() {
        // Block-diagonal matrix with 2x2 blocks: BlockJacobi::apply must
        // be a perfect inverse.
        let mut m = Coo::new(4, 4);
        // block 0: [[4, 1], [2, 3]]
        m.push(0, 0, 4.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 2.0);
        m.push(1, 1, 3.0);
        // block 1: [[1, -1], [0, 2]]
        m.push(2, 2, 1.0);
        m.push(2, 3, -1.0);
        m.push(3, 3, 2.0);
        let a = m.to_csr();
        let p = BlockJacobi::new(&a, 2);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let b = a.mul_vec(&x);
        let mut out = vec![0.0; 4];
        p.apply(&b, &mut out);
        for i in 0..4 {
            assert!(
                (out[i] - x[i]).abs() < 1e-14,
                "i={i}: {} vs {}",
                out[i],
                x[i]
            );
        }
    }

    #[test]
    fn block_jacobi_handles_trailing_partial_block() {
        let mut m = Coo::new(5, 5);
        for i in 0..5 {
            m.push(i, i, (i + 1) as f64);
        }
        let p = BlockJacobi::new(&m.to_csr(), 2);
        let mut out = vec![0.0; 5];
        p.apply(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut out);
        assert_eq!(out, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn lu_pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a row swap.
        let (lu, piv) = lu_factor(vec![0.0, 1.0, 1.0, 0.0], 2);
        let mut x = vec![0.0; 2];
        lu_solve(&lu, &piv, &[3.0, 7.0], &mut x);
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_block_panics() {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.push(1, 1, 1.0);
        BlockJacobi::new(&m.to_csr(), 2);
    }
}
