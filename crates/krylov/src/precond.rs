//! Preconditioners for right-preconditioned GMRES.
//!
//! The paper's evaluation runs *without* a preconditioner "to not blur
//! the numerical impact" (§V-C) — [`Identity`] reproduces that setup.
//! [`Jacobi`] and [`BlockJacobi`] are the optional extension the related
//! work points at (\[15\]: adaptive-precision block-Jacobi): they exercise
//! the `M⁻¹` hooks of Fig. 1 steps 3 and 17.
//!
//! Construction accepts any [`SparseMatrix`] format. The validating
//! `try_new` constructors reject degenerate operators (zero diagonals,
//! singular blocks) with a typed [`PrecondError`]; the infallible `new`
//! constructors *degrade gracefully* instead — a zero-diagonal row or
//! singular block falls back to identity scaling and the fallback count
//! is recorded — so a whole suite run is never aborted by one bad row.

use spla::SparseMatrix;

/// Why a preconditioner could not be built exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecondError {
    /// `diag(A)` has a zero entry at this row: point-Jacobi undefined.
    ZeroDiagonal {
        /// Row whose diagonal entry is zero.
        row: usize,
    },
    /// This diagonal block is numerically singular: block-Jacobi
    /// undefined.
    SingularBlock {
        /// Index of the singular diagonal block.
        block: usize,
    },
}

impl std::fmt::Display for PrecondError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecondError::ZeroDiagonal { row } => {
                write!(f, "zero diagonal at row {row}: Jacobi undefined")
            }
            PrecondError::SingularBlock { block } => {
                write!(f, "singular diagonal block {block}: BlockJacobi undefined")
            }
        }
    }
}

impl std::error::Error for PrecondError {}

/// Application of `M⁻¹` (right preconditioning: `w = A M⁻¹ v`).
pub trait Preconditioner: Send + Sync {
    /// `out = M⁻¹ v`.
    fn apply(&self, v: &[f64], out: &mut [f64]);

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// `true` when `M⁻¹` is exactly the identity map. The s-step driver
    /// uses this to route the matrix-powers panel through the fused
    /// [`spla::SparseMatrix::spmv_powers_into`] kernel; any non-trivial
    /// preconditioner falls back to stepwise `apply` + `spmv` (which is
    /// what the fused kernel computes bit-for-bit when `M = I`).
    fn is_identity(&self) -> bool {
        false
    }
}

/// No preconditioning (`M = I`) — the paper's configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    #[inline]
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        out.copy_from_slice(v);
    }

    fn name(&self) -> &'static str {
        "none"
    }

    fn is_identity(&self) -> bool {
        true
    }
}

/// Point-Jacobi: `M = diag(A)`.
#[derive(Clone, Debug)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
    skipped_rows: usize,
}

impl Jacobi {
    /// Build from the matrix diagonal, rejecting zero diagonal entries.
    pub fn try_new(a: &(impl SparseMatrix + ?Sized)) -> Result<Self, PrecondError> {
        let mut inv_diag = Vec::new();
        for (row, &d) in a.diagonal().iter().enumerate() {
            if d == 0.0 {
                return Err(PrecondError::ZeroDiagonal { row });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(Jacobi {
            inv_diag,
            skipped_rows: 0,
        })
    }

    /// Build from the matrix diagonal. Zero-diagonal rows fall back to
    /// identity scaling (factor 1.0) and are counted in
    /// [`Jacobi::skipped_rows`], so a degenerate row degrades the
    /// preconditioner instead of aborting the solve.
    pub fn new(a: &(impl SparseMatrix + ?Sized)) -> Self {
        let mut skipped_rows = 0usize;
        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| {
                if d == 0.0 {
                    skipped_rows += 1;
                    1.0
                } else {
                    1.0 / d
                }
            })
            .collect();
        Jacobi {
            inv_diag,
            skipped_rows,
        }
    }

    /// Rows where the zero-diagonal identity fallback was applied.
    pub fn skipped_rows(&self) -> usize {
        self.skipped_rows
    }
}

impl Preconditioner for Jacobi {
    #[inline]
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        for ((o, &x), &d) in out.iter_mut().zip(v).zip(&self.inv_diag) {
            *o = x * d;
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Block-Jacobi with dense inverted diagonal blocks of fixed size.
///
/// Blocks are factorized once with partial-pivoted LU; `apply` performs
/// the two triangular solves per block. A singular block falls back to
/// the identity (see [`BlockJacobi::new`]).
#[derive(Clone, Debug)]
pub struct BlockJacobi {
    n: usize,
    bs: usize,
    /// Per block: LU factors (row-major bs×bs) and pivot indices, or
    /// `None` for a singular block handled as identity.
    lu: Vec<Option<(Vec<f64>, Vec<usize>)>>,
    singular_blocks: usize,
}

impl BlockJacobi {
    /// Extract and factorize the block diagonal of `a`, rejecting
    /// numerically singular blocks.
    pub fn try_new(
        a: &(impl SparseMatrix + ?Sized),
        block_size: usize,
    ) -> Result<Self, PrecondError> {
        let p = Self::build(a, block_size);
        if let Some(block) = p.lu.iter().position(Option::is_none) {
            return Err(PrecondError::SingularBlock { block });
        }
        Ok(p)
    }

    /// Extract and factorize the block diagonal of `a` with
    /// `block_size`. Singular blocks fall back to the identity (the
    /// block's rows pass through unscaled) and are counted in
    /// [`BlockJacobi::singular_blocks`].
    ///
    /// # Panics
    /// If `block_size == 0`.
    pub fn new(a: &(impl SparseMatrix + ?Sized), block_size: usize) -> Self {
        Self::build(a, block_size)
    }

    fn build(a: &(impl SparseMatrix + ?Sized), block_size: usize) -> Self {
        assert!(block_size >= 1);
        let n = a.rows();
        let mut lu = Vec::with_capacity(n.div_ceil(block_size));
        let mut singular_blocks = 0usize;
        for start in (0..n).step_by(block_size) {
            let bs = block_size.min(n - start);
            let mut block = vec![0.0; bs * bs];
            for r in 0..bs {
                a.for_each_in_row(start + r, &mut |c, v| {
                    let c = c as usize;
                    if c >= start && c < start + bs {
                        block[r * bs + (c - start)] = v;
                    }
                });
            }
            match lu_factor(block, bs) {
                Some(f) => lu.push(Some(f)),
                None => {
                    singular_blocks += 1;
                    lu.push(None);
                }
            }
        }
        BlockJacobi {
            n,
            bs: block_size,
            lu,
            singular_blocks,
        }
    }

    /// Blocks where the singular-block identity fallback was applied.
    pub fn singular_blocks(&self) -> usize {
        self.singular_blocks
    }
}

/// In-place partial-pivot LU. Returns `None` for a singular matrix.
fn lu_factor(mut m: Vec<f64>, n: usize) -> Option<(Vec<f64>, Vec<usize>)> {
    let mut piv: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot selection.
        let (mut best, mut best_abs) = (k, m[k * n + k].abs());
        for r in k + 1..n {
            let a = m[r * n + k].abs();
            if a > best_abs {
                best = r;
                best_abs = a;
            }
        }
        if best_abs == 0.0 {
            return None;
        }
        if best != k {
            for c in 0..n {
                m.swap(k * n + c, best * n + c);
            }
            piv.swap(k, best);
        }
        let pivot = m[k * n + k];
        for r in k + 1..n {
            let f = m[r * n + k] / pivot;
            m[r * n + k] = f;
            for c in k + 1..n {
                m[r * n + c] -= f * m[k * n + c];
            }
        }
    }
    Some((m, piv))
}

/// Solve `LU x = b[piv]` in place into `x`.
fn lu_solve(lu: &[f64], piv: &[usize], b: &[f64], x: &mut [f64]) {
    let n = piv.len();
    for i in 0..n {
        x[i] = b[piv[i]];
    }
    // Forward substitution (unit lower).
    for i in 0..n {
        for j in 0..i {
            x[i] -= lu[i * n + j] * x[j];
        }
    }
    // Backward substitution.
    for i in (0..n).rev() {
        for j in i + 1..n {
            x[i] -= lu[i * n + j] * x[j];
        }
        x[i] /= lu[i * n + i];
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n);
        assert_eq!(out.len(), self.n);
        for (b, factors) in self.lu.iter().enumerate() {
            let start = b * self.bs;
            let bs = self.bs.min(self.n - start);
            match factors {
                Some((lu, piv)) => {
                    lu_solve(lu, piv, &v[start..start + bs], &mut out[start..start + bs]);
                }
                // Singular block: identity fallback.
                None => out[start..start + bs].copy_from_slice(&v[start..start + bs]),
            }
        }
    }

    fn name(&self) -> &'static str {
        "block-jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spla::{Coo, Ell, SellCSigma};

    #[test]
    fn identity_copies() {
        let p = Identity;
        let v = vec![1.0, -2.0, 3.0];
        let mut out = vec![0.0; 3];
        p.apply(&v, &mut out);
        assert_eq!(out, v);
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(1, 1, 4.0);
        m.push(2, 2, -0.5);
        m.push(0, 1, 9.0); // off-diagonal ignored by Jacobi
        let p = Jacobi::new(&m.to_csr());
        assert_eq!(p.skipped_rows(), 0);
        let mut out = vec![0.0; 3];
        p.apply(&[2.0, 4.0, -0.5], &mut out);
        assert_eq!(out, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn jacobi_zero_diagonal_falls_back_and_try_new_errors() {
        // Row 1 has no diagonal entry at all.
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(1, 0, 7.0);
        m.push(2, 2, 4.0);
        let a = m.to_csr();
        assert_eq!(
            Jacobi::try_new(&a).unwrap_err(),
            PrecondError::ZeroDiagonal { row: 1 }
        );
        // `new` must not panic: the zero row passes through unscaled.
        let p = Jacobi::new(&a);
        assert_eq!(p.skipped_rows(), 1);
        let mut out = vec![0.0; 3];
        p.apply(&[2.0, 5.0, 8.0], &mut out);
        assert_eq!(out, vec![1.0, 5.0, 2.0]);
    }

    #[test]
    fn jacobi_accepts_any_sparse_format() {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 2.0);
        m.push(1, 1, 4.0);
        m.push(2, 2, 8.0);
        let a = m.to_csr();
        for p in [
            Jacobi::new(&Ell::from_csr(&a)),
            Jacobi::new(&SellCSigma::from_csr(&a, 2, 4)),
        ] {
            let mut out = vec![0.0; 3];
            p.apply(&[2.0, 4.0, 8.0], &mut out);
            assert_eq!(out, vec![1.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn block_jacobi_inverts_block_diagonal_exactly() {
        // Block-diagonal matrix with 2x2 blocks: BlockJacobi::apply must
        // be a perfect inverse.
        let mut m = Coo::new(4, 4);
        // block 0: [[4, 1], [2, 3]]
        m.push(0, 0, 4.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 2.0);
        m.push(1, 1, 3.0);
        // block 1: [[1, -1], [0, 2]]
        m.push(2, 2, 1.0);
        m.push(2, 3, -1.0);
        m.push(3, 3, 2.0);
        let a = m.to_csr();
        let p = BlockJacobi::new(&a, 2);
        assert_eq!(p.singular_blocks(), 0);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let b = a.mul_vec(&x);
        let mut out = vec![0.0; 4];
        p.apply(&b, &mut out);
        for i in 0..4 {
            assert!(
                (out[i] - x[i]).abs() < 1e-14,
                "i={i}: {} vs {}",
                out[i],
                x[i]
            );
        }
    }

    #[test]
    fn block_jacobi_handles_trailing_partial_block() {
        let mut m = Coo::new(5, 5);
        for i in 0..5 {
            m.push(i, i, (i + 1) as f64);
        }
        let p = BlockJacobi::new(&m.to_csr(), 2);
        let mut out = vec![0.0; 5];
        p.apply(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut out);
        assert_eq!(out, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn partial_trailing_block_roundtrips_matvec_exactly() {
        // 5×5 block-diagonal with block size 2: two full 2×2 blocks and
        // a trailing 1×1 block. Entries are dyadic and upper-triangular
        // within each block, so LU needs no pivoting and both the
        // matvec and the two triangular solves are exact in f64:
        // apply(matvec(x)) must round-trip *bitwise*.
        let mut m = Coo::new(5, 5);
        m.push(0, 0, 2.0);
        m.push(0, 1, 1.0);
        m.push(1, 1, 4.0);
        m.push(2, 2, 0.5);
        m.push(2, 3, -1.0);
        m.push(3, 3, 8.0);
        m.push(4, 4, 16.0); // trailing partial block
        let a = m.to_csr();
        let p = BlockJacobi::new(&a, 2);
        assert_eq!(p.singular_blocks(), 0);
        let x = vec![1.5, -2.25, 0.75, 3.0, -0.125];
        let b = a.mul_vec(&x);
        let mut out = vec![0.0; 5];
        p.apply(&b, &mut out);
        for i in 0..5 {
            assert_eq!(
                out[i].to_bits(),
                x[i].to_bits(),
                "i={i}: {} vs {}",
                out[i],
                x[i]
            );
        }
    }

    #[test]
    fn lu_pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a row swap.
        let (lu, piv) = lu_factor(vec![0.0, 1.0, 1.0, 0.0], 2).unwrap();
        let mut x = vec![0.0; 2];
        lu_solve(&lu, &piv, &[3.0, 7.0], &mut x);
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_block_falls_back_and_try_new_errors() {
        // Block 0 is the singular [[1, 1], [1, 1]]; block 1 is fine.
        let mut m = Coo::new(4, 4);
        m.push(0, 0, 1.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.push(1, 1, 1.0);
        m.push(2, 2, 2.0);
        m.push(3, 3, 4.0);
        let a = m.to_csr();
        assert_eq!(
            BlockJacobi::try_new(&a, 2).unwrap_err(),
            PrecondError::SingularBlock { block: 0 }
        );
        // `new` must not panic: the singular block acts as identity,
        // the healthy block still inverts.
        let p = BlockJacobi::new(&a, 2);
        assert_eq!(p.singular_blocks(), 1);
        let mut out = vec![0.0; 4];
        p.apply(&[3.0, 5.0, 2.0, 4.0], &mut out);
        assert_eq!(out, vec![3.0, 5.0, 1.0, 1.0]);
    }

    #[test]
    fn error_messages_name_the_offender() {
        assert!(PrecondError::ZeroDiagonal { row: 7 }
            .to_string()
            .contains("row 7"));
        assert!(PrecondError::SingularBlock { block: 3 }
            .to_string()
            .contains("block 3"));
    }
}
