//! Restarted GMRES / Compressed-Basis GMRES with pluggable basis storage.
//!
//! The solver ([`gmres::gmres`]) implements the paper's Figure 1. Its
//! Krylov basis is generic over [`numfmt::ColumnStorage`]:
//!
//! | storage type                  | paper label        |
//! |-------------------------------|--------------------|
//! | `DenseStore<f64>`             | `float64`          |
//! | `DenseStore<f32>`             | `float32`          |
//! | `DenseStore<F16>`             | `float16`          |
//! | `DenseStore<BF16>`            | `bfloat16` (ext.)  |
//! | `frsz2::Frsz2Store`           | `frsz2_l`          |
//! | `lossy::RoundTripStore`       | Table II codecs    |
//!
//! (the `bench` crate wires the Table II codecs in via `RoundTripStore`)
//!
//! The `bench` crate resolves the paper's format names at runtime so the
//! experiment binaries can sweep formats from the command line.

pub mod basis;
pub mod diagnostics;
pub mod gmres;
pub mod precond;

pub use basis::Basis;
pub use gmres::{gmres, gmres_with, GmresOptions, HistoryPoint, SolveResult, SolveStats};
pub use precond::{BlockJacobi, Identity, Jacobi, PrecondError, Preconditioner};
