//! Restarted GMRES / Compressed-Basis GMRES with pluggable basis storage.
//!
//! The solver ([`gmres::gmres`]) implements the paper's Figure 1. Its
//! Krylov basis is generic over [`numfmt::ColumnStorage`]:
//!
//! | storage type                  | paper label        |
//! |-------------------------------|--------------------|
//! | `DenseStore<f64>`             | `float64`          |
//! | `DenseStore<f32>`             | `float32`          |
//! | `DenseStore<F16>`             | `float16`          |
//! | `DenseStore<BF16>`            | `bfloat16` (ext.)  |
//! | `frsz2::Frsz2Store`           | `frsz2_l`          |
//! | `lossy::RoundTripStore`       | Table II codecs    |
//!
//! Runtime format selection lives in [`basis_format`]: every backend
//! above (including the Table II codecs via `lossy::RoundTripStore`)
//! sits behind one object-safe factory, resolvable by paper name and
//! orderable by storage-accuracy floor. [`adaptive::adaptive_gmres`]
//! builds on it: start the solve in the cheapest format and escalate
//! along `frsz2_16 → frsz2_21 → frsz2_32 → float64` whenever the
//! explicit restart residual shows stagnation or an implicit/explicit
//! gap — one solver, every storage backend, no false convergence.
//!
//! Many right-hand sides against one operator go through [`block`]:
//! [`block::block_gmres`] grows **one shared compressed Krylov space**
//! for the whole block — each Arnoldi expansion appends b columns,
//! orthogonalized in a single decode sweep of the basis via the
//! multi-vector fused kernels — and batches every operator touch
//! through `spla`'s `spmm_into`, so one matrix sweep serves the whole
//! block. Convergence, Hessenberg/Givens bookkeeping, and histories
//! stay per-RHS; converged RHS deflate early while the space keeps
//! expanding for the rest. At width 1 the driver delegates to
//! [`gmres::gmres_with`], bit for bit.
//!
//! [`sstep`] amortizes the *per-iteration* decode traffic the same
//! way [`block`] amortizes the per-RHS traffic: each outer step
//! expands the space by `s` directions at once via the matrix-powers
//! kernel (`spla`'s fused `spmv_powers_into`), orthogonalized in two
//! stages — one fused block-CGS sweep of the compressed basis, then
//! an intra-panel CholQR with MGS² fallback. A per-restart
//! loss-of-orthogonality monitor gates `s` per basis format
//! ([`basis_format::BasisFormat::max_sstep`]) and shrinks it to 1 on
//! a breach; at `s = 1` the driver delegates to [`gmres::gmres_with`],
//! bit for bit.
//!
//! Fault tolerance lives in [`checkpoint`] and [`faults`]: every
//! driver exposes a `*_controlled` entry that can capture a
//! [`checkpoint::SolveCheckpoint`] at any restart boundary, halt
//! there, and later resume **bit-identically** to the uninterrupted
//! solve; [`faults`] provides the deterministic fault-injection
//! harness (basis bit-flips, NaN Hessenberg entries) that proves the
//! detection paths fire.

#![warn(missing_docs)]

pub mod adaptive;
pub mod basis;
pub mod basis_format;
pub mod block;
pub mod checkpoint;
pub mod diagnostics;
pub mod faults;
pub mod gmres;
pub mod precond;
pub mod sstep;

pub use adaptive::{
    adaptive_gmres, adaptive_gmres_controlled, adaptive_gmres_observed, AdaptiveOptions,
};
pub use basis::Basis;
pub use basis_format::{
    auto_basis, gmres_dyn_controlled, gmres_dyn_observed, BasisFormat, ESCALATION_LADDER,
};
pub use block::{
    block_gmres, block_gmres_dyn, block_gmres_dyn_observed, block_gmres_with, BlockBasis,
    BlockSolveResult,
};
pub use checkpoint::{CheckpointError, DriverKind, SolveCheckpoint, SolveControl};
pub use diagnostics::{history_summary, HistorySummary};
pub use faults::{BasisBitFlip, FaultInjectingStore, FaultPlan, FaultSpec, FaultyFormat};
pub use gmres::{
    gmres, gmres_with, gmres_with_controlled, ControlledSolve, CycleEvent, GmresOptions,
    HistoryPoint, SolveResult, SolveStats,
};
pub use precond::{BlockJacobi, Identity, Jacobi, PrecondError, Preconditioner};
pub use sstep::{
    loo_budget, sstep_gmres_dyn, sstep_gmres_dyn_controlled, sstep_gmres_dyn_observed,
    sstep_gmres_with, ControlledSStepSolve, SStepOptions, SStepSolveResult,
};
