//! s-step CB-GMRES: matrix-powers expansion with two-stage block
//! orthogonalization over the compressed basis.
//!
//! Classical CB-GMRES (Fig. 1) generates one Krylov direction per
//! inner step; each new column costs one operator apply plus **two
//! decode sweeps** of every stored basis column (dots + axpys). The
//! s-step variant (Chronopoulos/Gear lineage; see Yamazaki et al. for
//! the communication-avoiding formulation) generates `s` directions
//! per outer step from the monomial matrix-powers panel
//! `P = [Bv_j, B²v_j, …, Bˢv_j]` (`B = A·M⁻¹`), so the
//! orthogonalization against the compressed basis amortizes: **one**
//! multi-column decode sweep ([`Basis::dots_many_with`] /
//! [`Basis::axpys_many`]) serves all `s` panel columns where the
//! scalar driver would pay `s` separate round trips. With an identity
//! preconditioner the whole panel comes from the fused
//! [`spla::SparseMatrix::spmv_powers_into`] kernel.
//!
//! Orthogonalization runs in two stages:
//!
//! 1. **Block CGS against the stored basis** — one fused
//!    `dots_many`/`axpys_many` pair projects the panel against all `k`
//!    current columns (exactly one dot sweep + one gemv sweep,
//!    whatever `s` is).
//! 2. **Intra-panel CholQR** — a serial `s × s` Gram matrix and its
//!    Cholesky factor turn the projected panel into orthonormal
//!    columns. When the Gram pivot collapses (monomial panels lose
//!    ~one binade of conditioning per power) the driver falls back to
//!    one corrective block-CGS sweep plus the MGS² factorization
//!    shared with the block solver ([`crate::block`]).
//!
//! The Hessenberg columns are *recovered* from the change-of-basis
//! coefficients (`hp`, the panel's projection onto the old columns,
//! and `R`, the intra-panel triangular factor) rather than measured
//! one apply at a time; the Givens least-squares recurrence then runs
//! unchanged. Because the implicit estimate inherits the panel's
//! conditioning on top of the storage loss, convergence remains
//! decided **only** by the explicit residual at restart boundaries —
//! the same contract as every other driver in this crate, enforced by
//! the restart-boundary bookkeeping helper shared with
//! [`mod@crate::gmres`] and [`crate::block`].
//!
//! **Loss-of-orthogonality (LOO) monitor.** Lossy storage floors
//! interact with monomial conditioning: a panel that CholQR considers
//! fine can still decompress into columns that have drifted from
//! orthogonality. After every `s > 1` restart cycle the driver
//! measures `max |(QᵀQ − I)_{ab}|` over the cycle's recorded columns
//! (reading them back *through* the compressed store, so the measure
//! sees exactly what the next cycle will) and compares it against a
//! format-relative budget ([`loo_budget`]). One breach shrinks `s` to
//! 1 for the rest of the solve — convergence evidence is untouched
//! (explicit residual only); the solve just stops amortizing.
//! Per-format admissible `s` lives in
//! [`BasisFormat::max_sstep`], mirroring the measured
//! `accuracy_floor` table.
//!
//! **`s = 1` delegates.** A requested or gated `s` of 1 routes to the
//! scalar driver outright — bit-for-bit identical to
//! [`crate::gmres::gmres_with`] / [`crate::basis_format::gmres_dyn`],
//! the same contract the block solver keeps at width 1 (and enforced
//! by the committed bench fingerprints).

use crate::basis::{Basis, TARGET_CHUNK};
use crate::basis_format::BasisFormat;
use crate::block::{gather_col, mgs2_block, pack_interleaved};
use crate::checkpoint::{DriverKind, SolveCheckpoint, SolveControl};
use crate::gmres::{
    boundary_bookkeeping, boundary_checkpoint, givens, restore_stats, solve_driver_full, Boundary,
    BoundaryDecision, CycleEvent, CycleOutcome, GmresOptions, HistoryPoint, SolveResult,
    SolveStats, Workspace,
};
use crate::precond::Preconditioner;
use numfmt::ColumnStorage;
use spla::dense::{axpy, norm2, scale, sub};
use spla::SparseMatrix;
use std::time::Instant;

/// Relative Gram-pivot threshold below which CholQR is abandoned for
/// the corrective-sweep + MGS² fallback: a pivot this far under the
/// largest diagonal means the panel has lost ≳10 digits of linear
/// independence and the Cholesky factor would amplify noise into the
/// recovered Hessenberg.
const CHOLQR_PIVOT_RTOL: f64 = 1e-10;

/// Headroom factor of [`loo_budget`] over the storage-induced LOO
/// floor (`floor · √n`): decompression error alone puts every column
/// pair within `~2·floor·√n` of orthogonal, and one block-CGS sweep
/// over a well-conditioned panel stays within a small multiple of
/// that. A breach therefore signals *conditioning* loss, not routine
/// compression noise.
pub const LOO_HEADROOM: f64 = 32.0;

/// Format-relative loss-of-orthogonality budget for an `n`-row solve
/// whose basis storage has worst-case per-value error `floor` (see
/// [`BasisFormat::accuracy_floor`]): `LOO_HEADROOM · floor · √n`,
/// clamped below by `1e-8` so that near-exact formats (whose floor is
/// machine epsilon) still tolerate the ordinary rounding drift of a
/// single classical Gram-Schmidt sweep.
pub fn loo_budget(floor: f64, rows: usize) -> f64 {
    let n = rows.max(2) as f64;
    (LOO_HEADROOM * floor * n.sqrt()).max(1e-8)
}

/// Options of an s-step solve: the panel width on top of the scalar
/// [`GmresOptions`].
#[derive(Clone, Debug)]
pub struct SStepOptions {
    /// Krylov directions generated per outer step (panel width).
    /// `1` delegates to the scalar driver bit-for-bit; larger values
    /// are clamped per basis format by [`BasisFormat::max_sstep`] in
    /// the `dyn` entry points.
    pub s: usize,
    /// Loss-of-orthogonality budget override. `None` derives the
    /// format-relative default via [`loo_budget`].
    pub loo_budget: Option<f64>,
    /// The underlying solver options (restart length, target, ...).
    pub gmres: GmresOptions,
}

impl Default for SStepOptions {
    fn default() -> Self {
        SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: GmresOptions::default(),
        }
    }
}

/// Result of an s-step solve: the scalar [`SolveResult`] plus the
/// panel-width trajectory the LOO monitor produced.
#[derive(Clone, Debug)]
pub struct SStepSolveResult {
    /// Solution, stats, and history — same shape and semantics as the
    /// scalar solver (convergence from the explicit residual only).
    pub solve: SolveResult,
    /// Panel width used by each executed restart cycle, in order
    /// (all `1`s for a delegated `s = 1` solve).
    pub s_per_cycle: Vec<usize>,
    /// Measured `max |(QᵀQ − I)_{ab}|` after each `s > 1` cycle, in
    /// order (empty for a delegated solve — the monitor never runs).
    pub loo_per_cycle: Vec<f64>,
    /// Number of LOO budget breaches (each shrinks `s` to 1; at most 1
    /// per solve since the width never grows back).
    pub loo_breaches: usize,
}

/// Per-solve scratch of the s-step cycle, allocated once and reused
/// across restarts (sized by `(n, m, s)`).
struct PanelScratch {
    /// Contiguous matrix powers `[Bv; B²v; …]`, `n · s`.
    powers: Vec<f64>,
    /// Row-major interleaved working panel, `n · s`.
    wpanel: Vec<f64>,
    /// Projection of the panel onto the stored columns (`hp[i·s + c] =
    /// v_iᵀ p_c`), `(m+1) · s`; accumulates the corrective sweep.
    hp: Vec<f64>,
    /// Negated coefficients for `axpys_many`, `(m+1) · s`.
    nbuf: Vec<f64>,
    /// Intra-panel Gram matrix, `s · s`.
    gram: Vec<f64>,
    /// Intra-panel triangular factor `R` (CholQR or composed MGS²).
    rfac: Vec<f64>,
    /// Second MGS² factor scratch, `s · s`.
    r2: Vec<f64>,
    /// MGS row-pass scratch, `s`.
    dcol: Vec<f64>,
    /// Panel column norms entering orthogonalization, `s`.
    omegas: Vec<f64>,
    /// Panel column norms after the CGS sweep (DGKS shrink test), `s`.
    pnorms: Vec<f64>,
    /// Unrotated Hessenberg (column-major, ld = m+1) — the recovery
    /// recurrence needs raw columns, while `ws.hess` holds the
    /// Givens-rotated triangle.
    hraw: Vec<f64>,
    /// One recovered raw Hessenberg column, `m + 1`.
    pvec: Vec<f64>,
    /// LOO dot products, `m + 1`.
    loo: Vec<f64>,
}

impl PanelScratch {
    fn new(n: usize, m: usize, s: usize) -> Self {
        PanelScratch {
            powers: vec![0.0; n * s],
            wpanel: vec![0.0; n * s],
            hp: vec![0.0; (m + 1) * s],
            nbuf: vec![0.0; (m + 1) * s],
            gram: vec![0.0; s * s],
            rfac: vec![0.0; s * s],
            r2: vec![0.0; s * s],
            dcol: vec![0.0; s],
            omegas: vec![0.0; s],
            pnorms: vec![0.0; s],
            hraw: vec![0.0; (m + 1) * m],
            pvec: vec![0.0; m + 1],
            loo: vec![0.0; m + 1],
        }
    }
}

/// Gram + upper-Cholesky factorization of the row-major `n × s` panel.
/// Fills `rfac` (row-major upper, `rfac[u·s + c]`, `u ≤ c`) and
/// returns `false` when a pivot falls under `CHOLQR_PIVOT_RTOL` times
/// the largest Gram diagonal (or anything is non-finite) — the
/// caller's cue to take the MGS² fallback.
fn cholqr_factor(wpanel: &[f64], s: usize, n: usize, gram: &mut [f64], rfac: &mut [f64]) -> bool {
    gram[..s * s].fill(0.0);
    for i in 0..n {
        let row = &wpanel[i * s..(i + 1) * s];
        for a in 0..s {
            let va = row[a];
            for b in a..s {
                gram[a * s + b] += va * row[b];
            }
        }
    }
    let mut gmax = 0.0f64;
    for a in 0..s {
        gmax = gmax.max(gram[a * s + a]);
    }
    if gmax == 0.0 || !gmax.is_finite() {
        return false;
    }
    rfac[..s * s].fill(0.0);
    for c in 0..s {
        let mut d = gram[c * s + c];
        for u in 0..c {
            d -= rfac[u * s + c] * rfac[u * s + c];
        }
        if d.is_nan() || d <= gmax * CHOLQR_PIVOT_RTOL {
            return false;
        }
        let dc = d.sqrt();
        rfac[c * s + c] = dc;
        let inv = 1.0 / dc;
        for t in c + 1..s {
            let mut acc = gram[c * s + t];
            for u in 0..c {
                acc -= rfac[u * s + c] * rfac[u * s + t];
            }
            rfac[c * s + t] = acc * inv;
        }
    }
    true
}

/// `W ← W·R⁻¹` in place on the row-major `n × s` panel (row-wise
/// forward substitution against the upper-triangular `rfac`).
fn trsm_rows(wpanel: &mut [f64], s: usize, n: usize, rfac: &[f64]) {
    for i in 0..n {
        let row = &mut wpanel[i * s..(i + 1) * s];
        for c in 0..s {
            let mut acc = row[c];
            for u in 0..c {
                acc -= rfac[u * s + c] * row[u];
            }
            row[c] = acc / rfac[c * s + c];
        }
    }
}

/// One s-step restart cycle: panels of `s_cur` matrix-powers
/// directions, two-stage orthogonalization, Hessenberg recovery, then
/// the same least-squares update as the scalar [`crate::gmres`] cycle.
/// The caller owns the explicit-residual boundary (via
/// [`boundary_bookkeeping`]); only implicit history points are pushed
/// here.
#[allow(clippy::too_many_arguments)]
fn run_sstep_cycle<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    precond: &P,
    opts: &GmresOptions,
    basis: &mut Basis<S>,
    ws: &mut Workspace,
    px: &mut PanelScratch,
    x: &mut [f64],
    beta: f64,
    bnorm: f64,
    stats: &mut SolveStats,
    history: &mut Vec<HistoryPoint>,
    captured: &mut Option<Vec<f64>>,
    s_cur: usize,
) -> CycleOutcome {
    let n = x.len();
    let m = ws.m;
    let ld = ws.ld;
    let mut outcome = CycleOutcome {
        steps: 0,
        breakdown: false,
        non_finite: false,
        last_implicit_rrn: None,
    };

    // v1 = r / beta, stored compressed (step 1 of Fig. 1).
    scale(1.0 / beta, &mut ws.r);
    basis.write(0, &ws.r);
    let col_bytes = basis.column_bytes() as u64;
    stats.basis_bytes_written += col_bytes;
    if opts.capture_basis_at == Some(stats.iterations) && captured.is_none() {
        let mut cap = vec![0.0; n];
        basis.read_column(0, &mut cap);
        *captured = Some(cap);
    }
    ws.g.fill(0.0);
    ws.g[0] = beta;
    // The recovery recurrence consumes raw (unrotated) columns of the
    // whole cycle so far; reset per cycle.
    px.hraw.fill(0.0);

    let mut j = 0usize;
    'outer: while j < m && stats.iterations < opts.max_iters {
        let k = j + 1; // stored columns the panel orthogonalizes against
        let s_eff = s_cur.min(m - j);

        // Matrix-powers expansion: P = [Bv_j, B²v_j, …] with
        // B = A·M⁻¹. Identity preconditioning takes the fused kernel
        // (bit-identical to the stepwise loop); anything else applies
        // M⁻¹ between powers.
        basis.read_column(j, &mut ws.vj);
        stats.basis_bytes_read += col_bytes;
        if precond.is_identity() {
            a.spmv_powers_into(&ws.vj, &mut px.powers[..n * s_eff], s_eff);
        } else {
            for p in 0..s_eff {
                let (done, rest) = px.powers.split_at_mut(p * n);
                let src: &[f64] = if p == 0 { &ws.vj } else { &done[(p - 1) * n..] };
                precond.apply(src, &mut ws.z);
                a.spmv(&ws.z, &mut rest[..n]);
            }
        }
        stats.spmv_count += s_eff as u64;
        {
            let refs: Vec<&[f64]> = px.powers[..n * s_eff].chunks(n).collect();
            pack_interleaved(&mut px.wpanel[..n * s_eff], &refs, n);
        }

        // Stage 1: ONE block-CGS sweep against the stored basis — the
        // whole point of the s-step formulation: one dot sweep + one
        // gemv sweep serve all s_eff new directions.
        crate::block::col_norms(&px.wpanel[..n * s_eff], s_eff, n, &mut px.omegas);
        basis.dots_many_with(
            k,
            &px.wpanel[..n * s_eff],
            s_eff,
            &mut px.hp[..k * s_eff],
            &mut ws.dot_partials,
        );
        for (nv, &hv) in px.nbuf[..k * s_eff].iter_mut().zip(&px.hp[..k * s_eff]) {
            *nv = -hv;
        }
        basis.axpys_many(k, &px.nbuf[..k * s_eff], &mut px.wpanel[..n * s_eff], s_eff);
        stats.basis_bytes_read += 2 * k as u64 * col_bytes;
        stats.basis_dot_sweeps += 1;
        stats.basis_gemv_sweeps += 1;

        // DGKS shrink test, panel-wide (same rule as the scalar cycle
        // and the block driver): if any panel column lost most of its
        // mass to the projection, one more fused sweep pair — still
        // amortized over all s_eff directions where the scalar driver
        // pays it per column.
        crate::block::col_norms(&px.wpanel[..n * s_eff], s_eff, n, &mut px.pnorms);
        if px.pnorms[..s_eff]
            .iter()
            .zip(&px.omegas[..s_eff])
            .any(|(&p, &o)| p.is_finite() && o.is_finite() && p < opts.reorth_eta * o)
        {
            basis.dots_many_with(
                k,
                &px.wpanel[..n * s_eff],
                s_eff,
                &mut px.nbuf[..k * s_eff],
                &mut ws.dot_partials,
            );
            for i in 0..k * s_eff {
                px.hp[i] += px.nbuf[i];
                px.nbuf[i] = -px.nbuf[i];
            }
            basis.axpys_many(k, &px.nbuf[..k * s_eff], &mut px.wpanel[..n * s_eff], s_eff);
            stats.basis_bytes_read += 2 * k as u64 * col_bytes;
            stats.basis_dot_sweeps += 1;
            stats.basis_gemv_sweeps += 1;
            stats.reorthogonalizations += 1;
        }

        // Stage 2: intra-panel CholQR; on an ill-conditioned Gram,
        // one corrective block-CGS sweep (the panel has then also lost
        // orthogonality to V) followed by MGS².
        if cholqr_factor(
            &px.wpanel[..n * s_eff],
            s_eff,
            n,
            &mut px.gram,
            &mut px.rfac,
        ) {
            trsm_rows(&mut px.wpanel[..n * s_eff], s_eff, n, &px.rfac);
        } else {
            basis.dots_many_with(
                k,
                &px.wpanel[..n * s_eff],
                s_eff,
                &mut px.nbuf[..k * s_eff],
                &mut ws.dot_partials,
            );
            for i in 0..k * s_eff {
                px.hp[i] += px.nbuf[i];
                px.nbuf[i] = -px.nbuf[i];
            }
            basis.axpys_many(k, &px.nbuf[..k * s_eff], &mut px.wpanel[..n * s_eff], s_eff);
            stats.basis_bytes_read += 2 * k as u64 * col_bytes;
            stats.basis_dot_sweeps += 1;
            stats.basis_gemv_sweeps += 1;
            stats.reorthogonalizations += 1;
            if !mgs2_block(
                &mut px.wpanel[..n * s_eff],
                s_eff,
                n,
                &mut px.rfac,
                &mut px.r2,
                &mut px.dcol,
            ) {
                stats.breakdowns += 1;
                outcome.breakdown = true;
                break 'outer;
            }
        }
        if px.hp[..k * s_eff].iter().any(|v| !v.is_finite())
            || px.rfac[..s_eff * s_eff].iter().any(|v| !v.is_finite())
        {
            stats.breakdowns += 1;
            outcome.breakdown = true;
            outcome.non_finite = true;
            break 'outer;
        }

        // Hessenberg recovery: with P = V·hp + Q·R and the monomial
        // shift B·p_c = p_{c+1},
        //   column j     (B v_j   = p_0):  rows i<k ← hp[i,0],
        //                                  row  k   ← R[0,0];
        //   column j+c   (B q_{c-1}, c≥1): ( coeffs(p_c)
        //                                    − Σ_i  hp[i,c−1]·hraw[:,i]
        //                                    − Σ_u  R[u,c−1]·hraw[:,j+1+u] )
        //                                  / R[c−1,c−1], u ≤ c−2,
        // where coeffs(p_c) are hp[:,c] on the old rows and R[:,c] on
        // the panel rows. Each recovered column then runs the ordinary
        // Givens recurrence.
        let jbase = j;
        for c in 0..s_eff {
            let jc = jbase + c;
            {
                let col = &mut px.pvec[..jc + 2];
                col.fill(0.0);
                for (i, cv) in col.iter_mut().enumerate().take(k) {
                    *cv = px.hp[i * s_eff + c];
                }
                for u in 0..=c {
                    col[k + u] = px.rfac[u * s_eff + c];
                }
                if c > 0 {
                    for (i, hcol) in px.hraw.chunks(ld).enumerate().take(k) {
                        let coef = px.hp[i * s_eff + (c - 1)];
                        if coef != 0.0 {
                            for (cv, &hv) in col[..i + 2].iter_mut().zip(&hcol[..i + 2]) {
                                *cv -= coef * hv;
                            }
                        }
                    }
                    for u in 0..c - 1 {
                        let coef = px.rfac[u * s_eff + (c - 1)];
                        let src = jbase + 1 + u;
                        if coef != 0.0 {
                            for (cv, &hv) in col[..src + 2]
                                .iter_mut()
                                .zip(&px.hraw[src * ld..src * ld + src + 2])
                            {
                                *cv -= coef * hv;
                            }
                        }
                    }
                    let dvsr = px.rfac[(c - 1) * s_eff + (c - 1)];
                    if dvsr == 0.0 || !dvsr.is_finite() {
                        stats.breakdowns += 1;
                        outcome.breakdown = true;
                        break 'outer;
                    }
                    let inv = 1.0 / dvsr;
                    for v in col.iter_mut() {
                        *v *= inv;
                    }
                }
                if col.iter().any(|v| !v.is_finite()) {
                    stats.breakdowns += 1;
                    outcome.breakdown = true;
                    outcome.non_finite = true;
                    break 'outer;
                }
            }
            px.hraw[jc * ld..jc * ld + jc + 2].copy_from_slice(&px.pvec[..jc + 2]);

            // Givens least-squares recurrence, identical to the scalar
            // cycle's step 16.
            for (row, &hv) in px.pvec[..jc + 2].iter().enumerate() {
                ws.hess[jc * ld + row] = hv;
            }
            for i in 0..jc {
                let (hi, hi1) = (ws.hess[jc * ld + i], ws.hess[jc * ld + i + 1]);
                ws.hess[jc * ld + i] = ws.cs[i] * hi + ws.sn[i] * hi1;
                ws.hess[jc * ld + i + 1] = -ws.sn[i] * hi + ws.cs[i] * hi1;
            }
            let (cg, sg) = givens(ws.hess[jc * ld + jc], ws.hess[jc * ld + jc + 1]);
            ws.cs[jc] = cg;
            ws.sn[jc] = sg;
            ws.hess[jc * ld + jc] = cg * ws.hess[jc * ld + jc] + sg * ws.hess[jc * ld + jc + 1];
            ws.hess[jc * ld + jc + 1] = 0.0;
            ws.g[jc + 1] = -sg * ws.g[jc];
            ws.g[jc] *= cg;

            stats.iterations += 1;
            let implicit_rrn = ws.g[jc + 1].abs() / bnorm;
            outcome.last_implicit_rrn = Some(implicit_rrn);
            if opts.record_history {
                history.push(HistoryPoint {
                    iteration: stats.iterations,
                    rrn: implicit_rrn,
                    explicit: false,
                });
            }
            j = jc + 1;

            // The implicit estimate reaching the target only ENDS THE
            // CYCLE (never sets `converged`); remaining panel columns
            // are discarded, like the scalar cycle discards its
            // unbuilt columns.
            if implicit_rrn <= opts.target_rrn || stats.iterations >= opts.max_iters {
                break 'outer;
            }

            // Store q_c as basis column jc+1 (compressed write) — the
            // next panel and the final combine read it back through
            // the accessor like every other column.
            gather_col(&px.wpanel[..n * s_eff], s_eff, c, &mut ws.w);
            basis.write(jc + 1, &ws.w);
            stats.basis_bytes_written += col_bytes;
            if opts.capture_basis_at == Some(stats.iterations) && captured.is_none() {
                let mut cap = vec![0.0; n];
                basis.read_column(jc + 1, &mut cap);
                *captured = Some(cap);
            }
        }
    }
    outcome.steps = j;

    // Least-squares solve + solution update, identical to the scalar
    // cycle's step 17.
    if j >= 1 {
        let y = &mut ws.y[..j];
        for i in (0..j).rev() {
            let mut acc = ws.g[i];
            for (kk, yk) in y.iter().enumerate().skip(i + 1) {
                acc -= ws.hess[kk * ld + i] * yk;
            }
            let d = ws.hess[i * ld + i];
            y[i] = if d != 0.0 { acc / d } else { 0.0 };
        }
        basis.combine(&ws.y[..j], &mut ws.z);
        stats.basis_bytes_read += j as u64 * col_bytes;
        stats.basis_gemv_sweeps += 1;
        precond.apply(&ws.z, &mut ws.vj);
        axpy(1.0, &ws.vj, x);
    }
    stats.restarts += 1;
    outcome
}

/// Measure `max |(QᵀQ − I)_{ab}|` over the first `k` stored basis
/// columns, reading each column back through the compressed store.
/// Diagnostics only: the `k(k+1)/2` column decodes are charged to
/// `basis_bytes_read` but NOT to the sweep counters, which count
/// solver work (the quantity s-step reduces), not monitoring.
fn measure_loo<S: ColumnStorage>(
    basis: &Basis<S>,
    k: usize,
    ws: &mut Workspace,
    px: &mut PanelScratch,
    stats: &mut SolveStats,
) -> f64 {
    let col_bytes = basis.column_bytes() as u64;
    let mut worst = 0.0f64;
    for c in 0..k {
        basis.read_column(c, &mut ws.vj);
        basis.dots_with(c + 1, &ws.vj, &mut px.loo[..c + 1], &mut ws.dot_partials);
        stats.basis_bytes_read += (c as u64 + 2) * col_bytes;
        for (i, &d) in px.loo[..c + 1].iter().enumerate() {
            let target = if i == c { 1.0 } else { 0.0 };
            let dev = (d - target).abs();
            if !dev.is_finite() {
                return f64::INFINITY;
            }
            worst = worst.max(dev);
        }
    }
    worst
}

/// A [`SStepSolveResult`] plus whether a boundary control probe halted
/// the solve before its natural end (same contract as
/// [`crate::gmres::ControlledSolve`]).
#[derive(Clone, Debug)]
pub struct ControlledSStepSolve {
    /// The solve outcome up to the halt (or the full outcome).
    pub result: SStepSolveResult,
    /// `true` when the control probe returned [`SolveControl::Halt`].
    pub halted: bool,
}

/// The s-step driver loop: the same boundary structure as the scalar
/// [`crate::gmres::gmres_with`] driver (explicit residual → shared
/// bookkeeping → hook → cycle), with the LOO monitor gating `s`
/// between cycles. `s_init` arrives pre-gated by the caller;
/// `s_init == 1` delegates to the scalar driver outright, bit-for-bit.
/// `control` and `resume` are the fault-tolerance seam shared with
/// [`solve_driver_full`]: the checkpoint additionally carries the LOO
/// monitor state (`s_cur`, breach count, per-cycle widths and
/// measures) so a resumed solve reproduces the gating schedule.
#[allow(clippy::too_many_arguments)]
fn sstep_driver<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    sopts: &SStepOptions,
    precond: &P,
    basis: Basis<S>,
    budget: f64,
    s_init: usize,
    on_boundary: impl FnMut(&Boundary, &mut Basis<S>, &mut SolveStats),
    mut control: Option<&mut dyn FnMut(&mut SolveCheckpoint) -> SolveControl>,
    resume: Option<&SolveCheckpoint>,
) -> ControlledSStepSolve {
    let opts = &sopts.gmres;
    if s_init <= 1 {
        let inner = match control {
            Some(c) => {
                // Stamp the s-step identity on the scalar capture so a
                // delegated checkpoint resumes through this driver.
                let mut wrap = |cp: &mut SolveCheckpoint| {
                    cp.driver = DriverKind::SStep;
                    cp.s_cur = 1;
                    cp.s_per_cycle = vec![1; cp.restarts];
                    c(cp)
                };
                solve_driver_full(
                    a,
                    b,
                    x0,
                    opts,
                    precond,
                    basis,
                    on_boundary,
                    Some(&mut wrap),
                    resume,
                )
            }
            None => solve_driver_full(a, b, x0, opts, precond, basis, on_boundary, None, resume),
        };
        let cycles = inner.result.stats.restarts;
        return ControlledSStepSolve {
            result: SStepSolveResult {
                solve: inner.result,
                s_per_cycle: vec![1; cycles],
                loo_per_cycle: Vec::new(),
                loo_breaches: 0,
            },
            halted: inner.halted,
        };
    }
    let mut on_boundary = on_boundary;

    let n = a.rows();
    assert_eq!(a.cols(), n, "GMRES needs a square matrix");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    assert!(opts.restart >= 1);
    let m = opts.restart;
    let mut basis = basis;

    let start = Instant::now();
    let mut stats = SolveStats::default();
    let mut history = Vec::new();
    let mut captured: Option<Vec<f64>> = None;
    let mut s_per_cycle = Vec::new();
    let mut loo_per_cycle = Vec::new();
    let mut loo_breaches = 0usize;
    stats.format = basis.format_name();

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        stats.converged = true;
        stats.final_rrn = 0.0;
        stats.wall_time = start.elapsed();
        return ControlledSStepSolve {
            result: SStepSolveResult {
                solve: SolveResult {
                    x: vec![0.0; n],
                    stats,
                    history,
                    captured_basis_vector: None,
                },
                s_per_cycle,
                loo_per_cycle,
                loo_breaches,
            },
            halted: false,
        };
    }

    let mut x = x0.to_vec();
    let mut ws = Workspace::new(n, m);
    // Pre-size the shared partial buffer for the widest dots_many the
    // panel can issue (k ≤ m columns × s_init targets) so cycles never
    // grow it mid-solve.
    let max_chunks = n.div_ceil(TARGET_CHUNK);
    ws.dot_partials.resize(max_chunks * (m + 1) * s_init, 0.0);
    let mut px = PanelScratch::new(n, m, s_init);
    let mut s_cur = s_init;
    let mut prev_explicit_rrn: Option<f64> = None;
    let mut last_implicit_rrn: Option<f64> = None;
    let mut replay = false;
    if let Some(cp) = resume {
        assert_eq!(
            cp.x.len(),
            n,
            "checkpoint dimension does not match the operator"
        );
        x.copy_from_slice(&cp.x);
        restore_stats(&mut stats, cp);
        history = cp.history.clone();
        s_cur = cp.s_cur;
        loo_breaches = cp.loo_breaches;
        s_per_cycle = cp.s_per_cycle.clone();
        loo_per_cycle = cp.loo_per_cycle.clone();
        replay = true;
    }
    let mut halted = false;

    loop {
        let beta;
        let rrn;
        if replay {
            replay = false;
            // Replay of the capture-time boundary: recompute the
            // residual the checkpoint measured (its spmv is already in
            // the restored counters) and skip the bookkeeping and hook
            // that ran before capture.
            a.spmv(&x, &mut ws.w);
            sub(b, &ws.w, &mut ws.r);
            beta = norm2(&ws.r);
            rrn = beta / bnorm;
        } else {
            beta = ws.explicit_residual(a, b, &x, &mut stats);
            rrn = beta / bnorm;
            match boundary_bookkeeping(rrn, opts, &mut stats, &mut history) {
                BoundaryDecision::Converged | BoundaryDecision::Terminal => break,
                BoundaryDecision::Continue => {}
            }

            on_boundary(
                &Boundary {
                    explicit_rrn: rrn,
                    prev_explicit_rrn,
                    last_implicit_rrn,
                },
                &mut basis,
                &mut stats,
            );
        }

        if let Some(ctrl) = control.as_mut() {
            let mut cp = boundary_checkpoint(rrn, &x, &stats, &history, &basis);
            cp.driver = DriverKind::SStep;
            cp.s_cur = s_cur;
            cp.loo_breaches = loo_breaches;
            cp.s_per_cycle = s_per_cycle.clone();
            cp.loo_per_cycle = loo_per_cycle.clone();
            if matches!(ctrl(&mut cp), SolveControl::Halt) {
                halted = true;
                break;
            }
        }

        stats.format_trajectory.push(basis.format_name());
        s_per_cycle.push(s_cur);
        let out = run_sstep_cycle(
            a,
            precond,
            opts,
            &mut basis,
            &mut ws,
            &mut px,
            &mut x,
            beta,
            bnorm,
            &mut stats,
            &mut history,
            &mut captured,
            s_cur,
        );

        // LOO monitor: measure the cycle's recorded columns through the
        // store; one breach shrinks s to 1 for the rest of the solve.
        if s_cur > 1 && out.steps > 0 {
            let loo = measure_loo(&basis, out.steps, &mut ws, &mut px, &mut stats);
            loo_per_cycle.push(loo);
            // NaN counts as a breach: a non-finite measure means the
            // stored columns are unusable for a wide panel.
            if loo.is_nan() || loo > budget {
                s_cur = 1;
                loo_breaches += 1;
            }
        }

        if out.steps == 0 {
            break;
        }
        prev_explicit_rrn = Some(rrn);
        last_implicit_rrn = out.last_implicit_rrn;
    }

    stats.basis_bits_per_value = if n > 0 {
        basis.column_bytes() as f64 * 8.0 / n as f64
    } else {
        0.0
    };
    stats.wall_time = start.elapsed();
    ControlledSStepSolve {
        result: SStepSolveResult {
            solve: SolveResult {
                x,
                stats,
                history,
                captured_basis_vector: captured,
            },
            s_per_cycle,
            loo_per_cycle,
            loo_breaches,
        },
        halted,
    }
}

/// s-step CB-GMRES with an explicit basis-store factory (the s-step
/// analogue of [`crate::gmres::gmres_with`]). With `sopts.s == 1` the
/// returned solve is bit-for-bit identical to `gmres_with` on the same
/// inputs. The default LOO budget assumes exact (f64) storage; pass
/// `sopts.loo_budget` or use [`sstep_gmres_dyn`] for format-relative
/// gating.
pub fn sstep_gmres_with<S: ColumnStorage, P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    sopts: &SStepOptions,
    precond: &P,
    make_store: impl FnOnce(usize, usize) -> S,
) -> SStepSolveResult {
    let basis = Basis::from_store(make_store(a.rows(), sopts.gmres.restart + 1));
    let budget = sopts
        .loo_budget
        .unwrap_or_else(|| loo_budget(f64::powi(2.0, -52), a.rows()));
    sstep_driver(
        a,
        b,
        x0,
        sopts,
        precond,
        basis,
        budget,
        sopts.s.max(1),
        |_, _, _| {},
        None,
        None,
    )
    .result
}

/// s-step CB-GMRES over a runtime-selected basis format: `s` is gated
/// at [`BasisFormat::max_sstep`] and the LOO budget derives from the
/// format's [`BasisFormat::accuracy_floor`] (unless overridden). A
/// requested or gated `s` of 1 is bit-for-bit
/// [`crate::basis_format::gmres_dyn`].
pub fn sstep_gmres_dyn<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    sopts: &SStepOptions,
    precond: &P,
    format: &dyn BasisFormat,
) -> SStepSolveResult {
    sstep_gmres_dyn_observed(a, b, x0, sopts, precond, format, |_| {})
}

/// [`sstep_gmres_dyn`] with the per-cycle telemetry observer of
/// [`crate::basis_format::gmres_dyn_observed`]: one [`CycleEvent`] per
/// executed restart cycle, emitted before the cycle runs. The observer
/// cannot influence the solve.
pub fn sstep_gmres_dyn_observed<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    sopts: &SStepOptions,
    precond: &P,
    format: &dyn BasisFormat,
    observe: impl FnMut(&CycleEvent),
) -> SStepSolveResult {
    sstep_gmres_dyn_controlled(a, b, x0, sopts, precond, format, None, None, observe).result
}

/// [`sstep_gmres_dyn_observed`] plus the fault-tolerance seam: capture
/// checkpoints and/or halt at restart boundaries through `control`,
/// and resume bit-identically from `resume` (see
/// [`crate::gmres::gmres_with_controlled`] for the contract).
///
/// s-step extras in the checkpoint: the current panel width `s_cur`,
/// the breach count, and the per-cycle width/LOO records, so a solve
/// resumed after a mid-run LOO breach stays shrunk exactly where the
/// uninterrupted solve would. Panics if the checkpoint came from a
/// different driver or a different basis format.
#[allow(clippy::too_many_arguments)]
pub fn sstep_gmres_dyn_controlled<P: Preconditioner, A: SparseMatrix + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    sopts: &SStepOptions,
    precond: &P,
    format: &dyn BasisFormat,
    resume: Option<&SolveCheckpoint>,
    control: Option<&mut dyn FnMut(&SolveCheckpoint) -> SolveControl>,
    mut observe: impl FnMut(&CycleEvent),
) -> ControlledSStepSolve {
    let basis = Basis::from_store(format.create(a.rows(), sopts.gmres.restart + 1));
    if let Some(cp) = resume {
        assert_eq!(
            cp.driver,
            DriverKind::SStep,
            "a {:?} checkpoint cannot resume the s-step driver",
            cp.driver
        );
        assert_eq!(
            cp.format,
            basis.format_name(),
            "checkpoint format must match the solve format"
        );
    }
    let gated = sopts.s.max(1).min(format.max_sstep().max(1));
    let budget = sopts
        .loo_budget
        .unwrap_or_else(|| loo_budget(format.accuracy_floor(), a.rows()));
    match control {
        Some(c) => {
            let mut wrap = |cp: &mut SolveCheckpoint| c(cp);
            sstep_driver(
                a,
                b,
                x0,
                sopts,
                precond,
                basis,
                budget,
                gated,
                |boundary, basis, stats| {
                    observe(&CycleEvent::at_boundary(boundary, basis, stats));
                },
                Some(&mut wrap),
                resume,
            )
        }
        None => sstep_driver(
            a,
            b,
            x0,
            sopts,
            precond,
            basis,
            budget,
            gated,
            |boundary, basis, stats| {
                observe(&CycleEvent::at_boundary(boundary, basis, stats));
            },
            None,
            resume,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis_format::by_name;
    use crate::gmres::gmres_with;
    use crate::precond::{Identity, Jacobi};
    use frsz2::{Frsz2Config, Frsz2Store};
    use numfmt::DenseStore;
    use spla::dense::manufactured_rhs;
    use spla::gen;

    fn test_system() -> (spla::Csr, Vec<f64>, Vec<f64>) {
        let a = gen::conv_diff_3d(8, 8, 8, [0.4, 0.2, 0.1], 0.2);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        (a, b, x0)
    }

    fn opts(target: f64) -> GmresOptions {
        GmresOptions {
            target_rrn: target,
            max_iters: 4000,
            ..GmresOptions::default()
        }
    }

    #[test]
    fn s_one_is_bit_identical_to_gmres_with() {
        let (a, b, x0) = test_system();
        let o = opts(1e-9);
        let cfg = Frsz2Config::new(32, 21);
        let scalar = gmres_with(&a, &b, &x0, &o, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        let sopts = SStepOptions {
            s: 1,
            loo_budget: None,
            gmres: o,
        };
        let sstep = sstep_gmres_with(&a, &b, &x0, &sopts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        assert!(scalar.stats.converged && sstep.solve.stats.converged);
        assert_eq!(sstep.solve.stats.iterations, scalar.stats.iterations);
        assert_eq!(sstep.solve.history.len(), scalar.history.len());
        for (p, q) in sstep.solve.history.iter().zip(&scalar.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "history must match");
        }
        for (u, v) in sstep.solve.x.iter().zip(&scalar.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "solution must match");
        }
        assert_eq!(
            sstep.solve.stats.basis_dot_sweeps,
            scalar.stats.basis_dot_sweeps
        );
        assert_eq!(
            sstep.solve.stats.basis_gemv_sweeps,
            scalar.stats.basis_gemv_sweeps
        );
        assert!(sstep.s_per_cycle.iter().all(|&s| s == 1));
        assert!(sstep.loo_per_cycle.is_empty());
        assert_eq!(sstep.loo_breaches, 0);
    }

    #[test]
    fn sstep_converges_with_fewer_sweeps_than_scalar() {
        let (a, b, x0) = test_system();
        let o = opts(1e-9);
        let cfg = Frsz2Config::new(32, 21);
        let scalar = gmres_with(&a, &b, &x0, &o, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        for s in [2, 4, 8] {
            let sopts = SStepOptions {
                s,
                loo_budget: None,
                gmres: o.clone(),
            };
            let fmt = by_name("frsz2_21").unwrap();
            let r = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
            assert!(r.solve.stats.converged, "s={s} must converge");
            assert!(r.solve.stats.final_rrn <= 1e-9, "s={s} explicit target");
            let scalar_sweeps = scalar.stats.basis_dot_sweeps + scalar.stats.basis_gemv_sweeps;
            let sstep_sweeps = r.solve.stats.basis_dot_sweeps + r.solve.stats.basis_gemv_sweeps;
            assert!(
                sstep_sweeps < scalar_sweeps,
                "s={s}: {sstep_sweeps} sweeps must undercut scalar {scalar_sweeps}"
            );
            assert_eq!(r.loo_breaches, 0, "s={s}: no breach expected here");
            assert!(r.s_per_cycle.iter().all(|&sv| sv == s));
        }
    }

    #[test]
    fn sstep_float64_matches_scalar_iteration_count_closely() {
        // Exact storage, well-conditioned operator: the recovered
        // Hessenberg is accurate enough that s-step needs at most a
        // handful of extra iterations over scalar GMRES.
        let (a, b, x0) = test_system();
        let o = opts(1e-10);
        let scalar = gmres_with(&a, &b, &x0, &o, &Identity, DenseStore::<f64>::with_shape);
        let sopts = SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: o,
        };
        let r = sstep_gmres_with(
            &a,
            &b,
            &x0,
            &sopts,
            &Identity,
            DenseStore::<f64>::with_shape,
        );
        assert!(r.solve.stats.converged);
        assert!(
            r.solve.stats.iterations <= scalar.stats.iterations + 2 * scalar.stats.restarts + 8,
            "s-step {} vs scalar {} iterations",
            r.solve.stats.iterations,
            scalar.stats.iterations
        );
    }

    #[test]
    fn sstep_supports_non_identity_preconditioner() {
        let (a, b, x0) = test_system();
        let jac = Jacobi::new(&a);
        assert!(!jac.is_identity());
        let sopts = SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: opts(1e-9),
        };
        let r = sstep_gmres_with(&a, &b, &x0, &sopts, &jac, DenseStore::<f64>::with_shape);
        assert!(r.solve.stats.converged, "rrn {}", r.solve.stats.final_rrn);
        // The explicit-residual contract holds regardless of precond.
        let last = r.solve.history.last().unwrap();
        assert!(last.explicit);
        assert!(last.rrn <= 1e-9);
    }

    #[test]
    fn forced_loo_breach_shrinks_s_without_breaking_convergence() {
        let (a, b, x0) = test_system();
        let sopts = SStepOptions {
            s: 4,
            // Impossible budget: even pure f64 rounding breaches it.
            loo_budget: Some(1e-30),
            gmres: opts(1e-9),
        };
        let cfg = Frsz2Config::new(32, 21);
        let r = sstep_gmres_with(&a, &b, &x0, &sopts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        assert!(r.loo_breaches >= 1, "budget 1e-30 must breach");
        assert_eq!(r.s_per_cycle[0], 4, "first cycle runs at requested s");
        // After the breach every later cycle runs at s = 1.
        if r.s_per_cycle.len() > 1 {
            assert!(r.s_per_cycle[1..].iter().all(|&s| s == 1));
        }
        // Convergence evidence untouched: explicit-only contract.
        assert!(r.solve.stats.converged, "rrn {}", r.solve.stats.final_rrn);
        let last = r.solve.history.last().unwrap();
        assert!(last.explicit);
        assert!(last.rrn <= 1e-9);
    }

    #[test]
    fn every_registered_format_reports_finite_loo_and_respects_gate() {
        // Property over the whole registry (satellite: LOO tests).
        let a = gen::conv_diff_3d(6, 6, 6, [0.3, 0.2, 0.1], 0.3);
        let (_, b) = manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        for name in crate::basis_format::names() {
            let fmt = by_name(&name).unwrap();
            let cap = fmt.max_sstep();
            assert!(cap >= 1, "{name}: cap must admit scalar solves");
            let sopts = SStepOptions {
                s: 64, // far above every cap: the gate must clamp
                loo_budget: None,
                gmres: GmresOptions {
                    target_rrn: 1e-4,
                    max_iters: 400,
                    restart: 20,
                    ..GmresOptions::default()
                },
            };
            let r = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
            assert!(
                r.s_per_cycle.iter().all(|&s| s <= cap),
                "{name}: gated s exceeded max_sstep {cap}"
            );
            for (i, &loo) in r.loo_per_cycle.iter().enumerate() {
                assert!(loo.is_finite(), "{name}: cycle {i} LOO not finite");
                assert!(loo >= 0.0, "{name}: cycle {i} LOO negative");
            }
            if cap > 1 {
                // An s > 1 cycle must have been measured (unless the
                // solve finished in zero cycles, impossible here).
                assert_eq!(
                    r.loo_per_cycle.len(),
                    r.s_per_cycle.iter().filter(|&&s| s > 1).count(),
                    "{name}: one LOO sample per s>1 cycle"
                );
            } else {
                assert!(r.loo_per_cycle.is_empty(), "{name}: s=1 never measures");
            }
        }
    }

    #[test]
    fn format_gate_clamps_float16_to_its_table_entry() {
        let fmt = by_name("float16").unwrap();
        assert_eq!(fmt.max_sstep(), 2);
        let (a, b, x0) = test_system();
        let sopts = SStepOptions {
            s: 8,
            loo_budget: None,
            gmres: GmresOptions {
                target_rrn: 1e-3,
                max_iters: 1000,
                ..GmresOptions::default()
            },
        };
        let r = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
        assert!(r.s_per_cycle.iter().all(|&s| s <= 2));
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = spla::Csr::identity(12);
        let sopts = SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: opts(1e-12),
        };
        let r = sstep_gmres_with(
            &a,
            &[0.0; 12],
            &[1.0; 12],
            &sopts,
            &Identity,
            DenseStore::<f64>::with_shape,
        );
        assert!(r.solve.stats.converged);
        assert!(r.solve.x.iter().all(|&v| v == 0.0));
        assert_eq!(r.solve.stats.iterations, 0);
    }

    #[test]
    fn sstep_is_deterministic() {
        let (a, b, x0) = test_system();
        let sopts = SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: opts(1e-9),
        };
        let fmt = by_name("frsz2_21").unwrap();
        let r1 = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
        let r2 = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
        assert_eq!(r1.solve.stats.iterations, r2.solve.stats.iterations);
        assert_eq!(r1.solve.history.len(), r2.solve.history.len());
        for (p, q) in r1.solve.history.iter().zip(&r2.solve.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
        }
        for (u, v) in r1.solve.x.iter().zip(&r2.solve.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(r1.loo_per_cycle.len(), r2.loo_per_cycle.len());
        for (p, q) in r1.loo_per_cycle.iter().zip(&r2.loo_per_cycle) {
            assert_eq!(p.to_bits(), q.to_bits(), "LOO must be deterministic");
        }
    }

    #[test]
    fn observed_matches_unobserved_and_reports_cycles() {
        let (a, b, x0) = test_system();
        let sopts = SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: GmresOptions {
                restart: 20,
                target_rrn: 1e-8,
                max_iters: 3000,
                ..GmresOptions::default()
            },
        };
        let fmt = by_name("frsz2_32").unwrap();
        let mut events = Vec::new();
        let observed =
            sstep_gmres_dyn_observed(&a, &b, &x0, &sopts, &Identity, fmt.as_ref(), |e| {
                events.push(e.clone())
            });
        let plain = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
        assert!(observed.solve.stats.converged);
        assert_eq!(
            observed.solve.stats.iterations,
            plain.solve.stats.iterations
        );
        for (u, v) in observed.solve.x.iter().zip(&plain.solve.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(events.len(), observed.solve.stats.restarts);
        assert!(events.iter().all(|e| e.format == "frsz2_32"));
    }

    /// Halt the wide s-step solve mid-run, resume from the captured
    /// checkpoint, and require the stitched run to reproduce the
    /// uninterrupted solve bit for bit — panel-width schedule included.
    #[test]
    fn sstep_halt_and_resume_is_bit_identical() {
        let (a, b, x0) = test_system();
        let sopts = SStepOptions {
            s: 4,
            loo_budget: None,
            gmres: GmresOptions {
                restart: 12,
                ..opts(1e-9)
            },
        };
        let fmt = by_name("frsz2_21").unwrap();
        let base = sstep_gmres_dyn(&a, &b, &x0, &sopts, &Identity, fmt.as_ref());
        assert!(base.solve.stats.converged);
        assert!(
            base.solve.stats.restarts >= 3,
            "need several cycles to split"
        );

        let mut taken: Option<SolveCheckpoint> = None;
        let mut boundaries = 0usize;
        let mut probe = |cp: &SolveCheckpoint| {
            boundaries += 1;
            if boundaries == 3 {
                taken = Some(cp.clone());
                SolveControl::Halt
            } else {
                SolveControl::Continue
            }
        };
        let first = sstep_gmres_dyn_controlled(
            &a,
            &b,
            &x0,
            &sopts,
            &Identity,
            fmt.as_ref(),
            None,
            Some(&mut probe),
            |_| {},
        );
        assert!(first.halted);
        let cp = taken.expect("checkpoint captured at halt");
        assert_eq!(cp.driver, DriverKind::SStep);
        assert_eq!(cp.s_per_cycle.len(), 2, "two cycles completed at halt");

        // Round-trip through the byte format.
        let bytes = cp.encode(None);
        let cp = SolveCheckpoint::decode(&bytes, None).expect("decode");

        let resumed = sstep_gmres_dyn_controlled(
            &a,
            &b,
            &vec![0.0; a.rows()],
            &sopts,
            &Identity,
            fmt.as_ref(),
            Some(&cp),
            None,
            |_| {},
        );
        assert!(!resumed.halted);
        let r = resumed.result;
        assert!(r.solve.stats.converged);
        assert_eq!(r.s_per_cycle, base.s_per_cycle);
        assert_eq!(r.loo_breaches, base.loo_breaches);
        assert_eq!(r.loo_per_cycle.len(), base.loo_per_cycle.len());
        for (p, q) in r.loo_per_cycle.iter().zip(&base.loo_per_cycle) {
            assert_eq!(p.to_bits(), q.to_bits(), "LOO trace");
        }
        assert_eq!(r.solve.stats.iterations, base.solve.stats.iterations);
        assert_eq!(r.solve.stats.spmv_count, base.solve.stats.spmv_count);
        assert_eq!(r.solve.history.len(), base.solve.history.len());
        for (p, q) in r.solve.history.iter().zip(&base.solve.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "history");
        }
        for (u, v) in r.solve.x.iter().zip(&base.solve.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "solution");
        }
    }

    #[test]
    fn loo_budget_is_format_relative_and_clamped() {
        // frsz2_21 on 8000 rows: well above the exact-storage clamp.
        let lossy = loo_budget(f64::powi(2.0, -19), 8000);
        assert!(lossy > 1e-4 && lossy < 1.0);
        // Exact storage: clamped at 1e-8.
        assert_eq!(loo_budget(f64::powi(2.0, -52), 8000), 1e-8);
        // Monotone in the floor.
        assert!(loo_budget(1e-3, 4096) > loo_budget(1e-6, 4096));
    }
}
