//! Typed errors of the solver service.
//!
//! Every rejection a caller can hit — unknown names, shape mismatches,
//! preconditioner failures, admission-control denials — is a variant
//! here, never a panic: a service survives a bad job; a library call
//! may not.

use krylov::{PrecondError, SolveCheckpoint};

/// Why the service refused a registration or a solve job.
///
/// (`Eq` is deliberately absent: [`ServiceError::DeadlineExceeded`]
/// carries a [`SolveCheckpoint`] full of `f64`s.)
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The job names an operator that was never registered.
    UnknownOperator(String),
    /// An operator with this name is already registered (re-registering
    /// would silently invalidate cached analysis other jobs rely on).
    DuplicateOperator(String),
    /// The job's fixed basis format is not in the
    /// `krylov::basis_format` registry.
    UnknownFormat(String),
    /// The job's right-hand side (or initial guess) does not match the
    /// operator's dimension.
    DimensionMismatch {
        /// Registered operator the job targeted.
        operator: String,
        /// The operator's row count.
        rows: usize,
        /// Length of the offending vector.
        got: usize,
    },
    /// The requested preconditioner could not be factorized for this
    /// operator (zero diagonal, singular block, ...).
    PrecondFailed {
        /// Operator the factorization ran against.
        operator: String,
        /// The underlying factorization error.
        source: PrecondError,
    },
    /// Admitting the job would exceed the configured compressed-basis
    /// memory budget. Under [`crate::AdmissionPolicy::Reject`] this is
    /// returned whenever the reservation does not fit *right now*;
    /// under [`crate::AdmissionPolicy::Queue`] only when the job could
    /// never fit (its reservation alone exceeds the whole budget).
    BudgetExceeded {
        /// Operator the rejected job targeted.
        operator: String,
        /// Bytes the job's basis reservation asked for.
        requested: u64,
        /// The configured budget in bytes.
        budget: u64,
        /// Bytes reserved by in-flight jobs at decision time.
        in_use: u64,
    },
    /// A queued job waited longer than the admission timeout
    /// configured on [`crate::AdmissionPolicy::Queue`] without the
    /// budget draining enough to admit it.
    AdmissionTimeout {
        /// Operator the timed-out job targeted.
        operator: String,
        /// Bytes the job's basis reservation asked for.
        requested: u64,
        /// The configured budget in bytes.
        budget: u64,
        /// Bytes reserved by in-flight jobs when the wait gave up.
        in_use: u64,
        /// How long the job waited, in milliseconds.
        waited_ms: u64,
    },
    /// The job's wall-clock deadline passed. The solve halted
    /// cooperatively at the next restart boundary and its state at
    /// that boundary rides along: [`JobSpec::resume`] a follow-up job
    /// from `checkpoint` and it continues **bit-identically** to the
    /// uninterrupted solve — no progress is lost, only postponed.
    ///
    /// [`JobSpec::resume`]: crate::JobSpec::resume
    DeadlineExceeded {
        /// Operator the interrupted job targeted.
        operator: String,
        /// The deadline that was breached, in milliseconds.
        deadline_ms: u64,
        /// The solve's state at the boundary where it halted.
        checkpoint: Box<SolveCheckpoint>,
    },
    /// The job's solve panicked (every attempt, if retries were
    /// configured). The panic was caught at the job boundary — other
    /// jobs in the batch, and the service itself, are unaffected.
    JobPanicked {
        /// Operator the panicked job targeted.
        operator: String,
        /// Attempts run before giving up (≥ 1).
        attempts: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownOperator(name) => {
                write!(f, "no operator named {name:?} is registered")
            }
            ServiceError::DuplicateOperator(name) => {
                write!(f, "operator {name:?} is already registered")
            }
            ServiceError::UnknownFormat(name) => {
                write!(f, "unknown basis format {name:?}")
            }
            ServiceError::DimensionMismatch {
                operator,
                rows,
                got,
            } => write!(
                f,
                "operator {operator:?} has {rows} rows but the job vector has {got}"
            ),
            ServiceError::PrecondFailed { operator, source } => {
                write!(
                    f,
                    "preconditioner for operator {operator:?} failed: {source}"
                )
            }
            ServiceError::BudgetExceeded {
                operator,
                requested,
                budget,
                in_use,
            } => write!(
                f,
                "job on {operator:?} needs {requested} basis bytes but only {} of the \
                 {budget}-byte budget are free ({in_use} in use)",
                budget.saturating_sub(*in_use)
            ),
            ServiceError::AdmissionTimeout {
                operator,
                requested,
                budget,
                in_use,
                waited_ms,
            } => write!(
                f,
                "job on {operator:?} waited {waited_ms} ms for {requested} basis bytes \
                 but the {budget}-byte budget never drained ({in_use} still in use)"
            ),
            ServiceError::DeadlineExceeded {
                operator,
                deadline_ms,
                checkpoint,
            } => write!(
                f,
                "job on {operator:?} hit its {deadline_ms} ms deadline at restart \
                 boundary {} (relative residual {:.3e}; resume from the attached checkpoint)",
                checkpoint.restarts, checkpoint.explicit_rrn
            ),
            ServiceError::JobPanicked {
                operator,
                attempts,
                message,
            } => write!(
                f,
                "job on {operator:?} panicked after {attempts} attempt(s): {message}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::PrecondFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ServiceError::UnknownOperator("pr02r".into())
            .to_string()
            .contains("pr02r"));
        let e = ServiceError::BudgetExceeded {
            operator: "big".into(),
            requested: 900,
            budget: 1000,
            in_use: 400,
        };
        let msg = e.to_string();
        assert!(msg.contains("900") && msg.contains("1000") && msg.contains("400"));
        // Free-byte arithmetic saturates instead of underflowing.
        assert!(msg.contains("600"));
    }

    #[test]
    fn fault_tolerance_messages_carry_the_recovery_handle() {
        let e = ServiceError::AdmissionTimeout {
            operator: "busy".into(),
            requested: 300,
            budget: 1000,
            in_use: 900,
            waited_ms: 250,
        };
        let msg = e.to_string();
        assert!(msg.contains("busy") && msg.contains("250 ms") && msg.contains("300"));

        let cp = SolveCheckpoint {
            restarts: 4,
            explicit_rrn: 1.25e-5,
            ..SolveCheckpoint::default()
        };
        let e = ServiceError::DeadlineExceeded {
            operator: "slow".into(),
            deadline_ms: 10,
            checkpoint: Box::new(cp),
        };
        let msg = e.to_string();
        assert!(msg.contains("slow") && msg.contains("10 ms") && msg.contains("boundary 4"));
        assert!(msg.contains("resume"));

        let e = ServiceError::JobPanicked {
            operator: "boom".into(),
            attempts: 2,
            message: "injected job panic".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("boom") && msg.contains("2 attempt") && msg.contains("injected"));
    }

    #[test]
    fn precond_failure_exposes_its_source() {
        use std::error::Error;
        let e = ServiceError::PrecondFailed {
            operator: "scaled".into(),
            source: PrecondError::ZeroDiagonal { row: 3 },
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("row 3"));
    }
}
