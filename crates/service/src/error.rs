//! Typed errors of the solver service.
//!
//! Every rejection a caller can hit — unknown names, shape mismatches,
//! preconditioner failures, admission-control denials — is a variant
//! here, never a panic: a service survives a bad job; a library call
//! may not.

use krylov::PrecondError;

/// Why the service refused a registration or a solve job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The job names an operator that was never registered.
    UnknownOperator(String),
    /// An operator with this name is already registered (re-registering
    /// would silently invalidate cached analysis other jobs rely on).
    DuplicateOperator(String),
    /// The job's fixed basis format is not in the
    /// `krylov::basis_format` registry.
    UnknownFormat(String),
    /// The job's right-hand side (or initial guess) does not match the
    /// operator's dimension.
    DimensionMismatch {
        /// Registered operator the job targeted.
        operator: String,
        /// The operator's row count.
        rows: usize,
        /// Length of the offending vector.
        got: usize,
    },
    /// The requested preconditioner could not be factorized for this
    /// operator (zero diagonal, singular block, ...).
    PrecondFailed {
        /// Operator the factorization ran against.
        operator: String,
        /// The underlying factorization error.
        source: PrecondError,
    },
    /// Admitting the job would exceed the configured compressed-basis
    /// memory budget. Under [`crate::AdmissionPolicy::Reject`] this is
    /// returned whenever the reservation does not fit *right now*;
    /// under [`crate::AdmissionPolicy::Queue`] only when the job could
    /// never fit (its reservation alone exceeds the whole budget).
    BudgetExceeded {
        /// Operator the rejected job targeted.
        operator: String,
        /// Bytes the job's basis reservation asked for.
        requested: u64,
        /// The configured budget in bytes.
        budget: u64,
        /// Bytes reserved by in-flight jobs at decision time.
        in_use: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownOperator(name) => {
                write!(f, "no operator named {name:?} is registered")
            }
            ServiceError::DuplicateOperator(name) => {
                write!(f, "operator {name:?} is already registered")
            }
            ServiceError::UnknownFormat(name) => {
                write!(f, "unknown basis format {name:?}")
            }
            ServiceError::DimensionMismatch {
                operator,
                rows,
                got,
            } => write!(
                f,
                "operator {operator:?} has {rows} rows but the job vector has {got}"
            ),
            ServiceError::PrecondFailed { operator, source } => {
                write!(
                    f,
                    "preconditioner for operator {operator:?} failed: {source}"
                )
            }
            ServiceError::BudgetExceeded {
                operator,
                requested,
                budget,
                in_use,
            } => write!(
                f,
                "job on {operator:?} needs {requested} basis bytes but only {} of the \
                 {budget}-byte budget are free ({in_use} in use)",
                budget.saturating_sub(*in_use)
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::PrecondFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ServiceError::UnknownOperator("pr02r".into())
            .to_string()
            .contains("pr02r"));
        let e = ServiceError::BudgetExceeded {
            operator: "big".into(),
            requested: 900,
            budget: 1000,
            in_use: 400,
        };
        let msg = e.to_string();
        assert!(msg.contains("900") && msg.contains("1000") && msg.contains("400"));
        // Free-byte arithmetic saturates instead of underflowing.
        assert!(msg.contains("600"));
    }

    #[test]
    fn precond_failure_exposes_its_source() {
        use std::error::Error;
        let e = ServiceError::PrecondFailed {
            operator: "scaled".into(),
            source: PrecondError::ZeroDiagonal { row: 3 },
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("row 3"));
    }
}
