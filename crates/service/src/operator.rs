//! Cached per-operator analysis.
//!
//! Registering a matrix with the service runs every expensive
//! per-operator step **once** — sparse-format auto-selection
//! ([`spla::select::auto_format`]), row-length statistics,
//! preconditioner factorization — and keeps the results behind an
//! `Arc`, so any number of concurrent jobs share them read-only.

use crate::error::ServiceError;
use krylov::{auto_basis, BlockJacobi, Identity, Jacobi, Preconditioner};
use spla::stats::{row_length_stats, RowLengthStats};
use spla::{auto_format, Csr, SparseMatrix};

/// Which preconditioner to factorize (once) at registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecondSpec {
    /// No preconditioning (`M = I`) — the paper's configuration.
    None,
    /// Point-Jacobi from the operator diagonal.
    Jacobi,
    /// Block-Jacobi with dense LU-factorized diagonal blocks of this
    /// size.
    BlockJacobi {
        /// Diagonal block edge length (rows per block).
        block_size: usize,
    },
}

/// The factorized preconditioner cached with an operator (one enum so
/// the hot path dispatches without a heap indirection).
#[derive(Clone, Debug)]
pub(crate) enum CachedPrecond {
    Identity(Identity),
    Jacobi(Jacobi),
    Block(BlockJacobi),
}

impl Preconditioner for CachedPrecond {
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        match self {
            CachedPrecond::Identity(p) => p.apply(v, out),
            CachedPrecond::Jacobi(p) => p.apply(v, out),
            CachedPrecond::Block(p) => p.apply(v, out),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            CachedPrecond::Identity(p) => p.name(),
            CachedPrecond::Jacobi(p) => p.name(),
            CachedPrecond::Block(p) => p.name(),
        }
    }
}

/// One registered operator: the auto-selected sparse matrix plus every
/// analysis product jobs reuse.
pub(crate) struct AnalyzedOperator {
    pub(crate) name: String,
    /// The operator in its auto-selected format. `SparseMatrix` is
    /// `Send + Sync`, so concurrent jobs share this box read-only.
    pub(crate) matrix: Box<dyn SparseMatrix>,
    pub(crate) row_stats: RowLengthStats,
    pub(crate) sparse_format: &'static str,
    pub(crate) precond: CachedPrecond,
}

impl AnalyzedOperator {
    /// Run the full (expensive) analysis for a matrix: format
    /// selection, row statistics, preconditioner factorization.
    pub(crate) fn analyze(name: &str, a: &Csr, precond: PrecondSpec) -> Result<Self, ServiceError> {
        let choice = auto_format(a);
        let precond = match precond {
            PrecondSpec::None => CachedPrecond::Identity(Identity),
            PrecondSpec::Jacobi => CachedPrecond::Jacobi(Jacobi::try_new(a).map_err(|source| {
                ServiceError::PrecondFailed {
                    operator: name.to_string(),
                    source,
                }
            })?),
            PrecondSpec::BlockJacobi { block_size } => {
                CachedPrecond::Block(BlockJacobi::try_new(a, block_size).map_err(|source| {
                    ServiceError::PrecondFailed {
                        operator: name.to_string(),
                        source,
                    }
                })?)
            }
        };
        Ok(AnalyzedOperator {
            name: name.to_string(),
            matrix: choice.build(a),
            row_stats: row_length_stats(a),
            sparse_format: choice.name(),
            precond,
        })
    }

    /// The basis format [`krylov::auto_basis`] recommends for a solve
    /// on this operator with the given stopping target and restart
    /// length (a pure function of the cached dimensions).
    pub(crate) fn recommended_basis(&self, target_rrn: f64, restart: usize) -> String {
        auto_basis(target_rrn, self.matrix.rows(), restart).name()
    }

    /// Public snapshot of the cached analysis.
    pub(crate) fn info(&self, target_rrn: f64, restart: usize) -> OperatorInfo {
        OperatorInfo {
            name: self.name.clone(),
            rows: self.matrix.rows(),
            cols: self.matrix.cols(),
            nnz: self.matrix.nnz(),
            sparse_format: self.sparse_format.to_string(),
            storage_bytes: self.matrix.storage_bytes(),
            row_stats: self.row_stats,
            preconditioner: self.precond.name().to_string(),
            recommended_basis: self.recommended_basis(target_rrn, restart),
        }
    }
}

/// Snapshot of one operator's cached analysis, as returned by
/// [`crate::SolverService::register_csr`] and
/// [`crate::SolverService::operator_info`].
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorInfo {
    /// Registration name jobs refer to.
    pub name: String,
    /// Operator row count.
    pub rows: usize,
    /// Operator column count.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Sparse format `auto_format` selected (`csr`/`ell`/`sell-c-sigma`).
    pub sparse_format: String,
    /// Bytes the selected format stores (exposes the padding trade-off).
    pub storage_bytes: usize,
    /// Row-length statistics that drove the format selection.
    pub row_stats: RowLengthStats,
    /// Name of the factorized preconditioner (`none`/`jacobi`/
    /// `block-jacobi`).
    pub preconditioner: String,
    /// Basis format [`krylov::auto_basis`] recommends at the default
    /// solver options (per-job `Auto` selection re-evaluates for the
    /// job's own target).
    pub recommended_basis: String,
}
