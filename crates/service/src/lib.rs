//! A long-lived, concurrent front end for the CB-GMRES solver stack.
//!
//! The library crates answer "solve this system once": every call pays
//! for sparse-format selection, row statistics, and preconditioner
//! factorization again. [`SolverService`] amortizes that work the way a
//! resident solver process would:
//!
//! 1. **Register** each matrix once ([`SolverService::register_csr`]).
//!    Registration runs the expensive analysis a single time — the
//!    `spla::auto_format` choice, row-length statistics, and the
//!    factorized preconditioner are cached behind an `Arc` and shared
//!    read-only by every later job.
//! 2. **Submit** solve jobs ([`JobSpec`]) against registered operators,
//!    one at a time ([`SolverService::solve`]) or as a concurrent batch
//!    ([`SolverService::run_batch`]). Each job picks a basis format
//!    ([`BasisSelection`]): a fixed registry name, the accuracy-floor
//!    `Auto` pick, or the bidirectionally `Adaptive` ladder. Many
//!    right-hand sides against one operator go in as a single
//!    [`BlockJobSpec`] ([`SolverService::solve_block`]), routed to the
//!    shared-space block driver so every matrix sweep and every decode
//!    sweep of the compressed basis is amortized over the whole block.
//! 3. **Observe** per-cycle telemetry — explicit residual, basis format
//!    in effect, compressed-basis traffic — through a callback
//!    ([`SolverService::run_batch_observed`]) or an `mpsc` channel
//!    ([`SolverService::run_batch_streaming`]).
//!
//! # Determinism under concurrency
//!
//! The workspace's bit-identity contract (chunk dealing by item count,
//! task-ordered combination) makes every solve independent of its
//! worker-thread count. The service leans on it: each job installs its
//! own thread pool, so a batch of concurrent jobs returns results
//! byte-for-byte equal to the same jobs run sequentially on one thread
//! — the `service` bench suite fingerprint-checks exactly this.
//!
//! # Admission control
//!
//! The Krylov basis dominates a job's memory (`restart + 1` columns of
//! `rows` values in the selected format). A [`ServiceConfig`] budget
//! caps the bytes reserved by in-flight jobs: a job that does not fit
//! is rejected with the typed [`ServiceError::BudgetExceeded`] (policy
//! [`AdmissionPolicy::Reject`]) or parked until capacity frees
//! ([`AdmissionPolicy::Queue`], optionally bounded by a wait timeout
//! that surfaces as [`ServiceError::AdmissionTimeout`]) — the service
//! never OOMs on a burst. Block jobs are charged per lane: `width ×`
//! the single-RHS estimate (and `8 · rows · (restart + 1) · width` for
//! the adaptive worst case), so a 16-RHS job cannot sneak in under a
//! single-solve budget.
//!
//! # Fault tolerance
//!
//! A resident solver outlives individual failures. Each [`JobSpec`]
//! can carry
//!
//! - a **deadline** ([`JobSpec::deadline`]): checked cooperatively at
//!   every restart boundary; on breach the job returns
//!   [`ServiceError::DeadlineExceeded`] with the boundary's
//!   [`SolveCheckpoint`], and a follow-up job can
//!   [`JobSpec::resume`] from it **bit-identically** to the
//!   uninterrupted solve;
//! - a **retry policy** ([`RetryPolicy`]): non-converged attempts are
//!   retried after bounded exponential backoff with the basis format
//!   escalated one ladder rung per attempt; panicking attempts are
//!   caught (`catch_unwind` at the job boundary) and retried at the
//!   same rung, surfacing as [`ServiceError::JobPanicked`] only when
//!   retries are exhausted;
//! - a **fault plan** ([`FaultSpec`]): deterministic basis bit-flips,
//!   Hessenberg NaNs, injected panics and per-boundary sleeps, used by
//!   the tests and the `faults` bench suite to prove every detection
//!   path fires. Detection is structural — convergence is only ever
//!   decided from the explicit residual `‖b − Ax‖/‖b‖` — so injected
//!   corruption can slow a solve or fail it, never fake a solution.
//!
//! # Example
//!
//! ```
//! use solver_service::{JobSpec, PrecondSpec, SolverService};
//! use spla::dense::manufactured_rhs;
//! use spla::gen;
//!
//! let service = SolverService::with_defaults();
//! let a = gen::conv_diff_3d(6, 6, 6, [0.3, 0.2, 0.1], 0.3);
//! let info = service.register_csr("demo", &a, PrecondSpec::Jacobi)?;
//! assert_eq!(info.rows, 216);
//!
//! let (_, b) = manufactured_rhs(&a);
//! let mut spec = JobSpec::new("demo", b); // Auto basis, 1 thread
//! spec.opts.target_rrn = 1e-8;
//! let result = service.solve(&spec)?;
//! assert!(result.stats.converged);
//! # Ok::<(), solver_service::ServiceError>(())
//! ```

#![warn(missing_docs)]

mod admission;
mod error;
mod job;
mod operator;
mod service;

pub use admission::AdmissionPolicy;
pub use error::ServiceError;
pub use job::{BasisSelection, BlockJobSpec, JobEvent, JobReport, JobSpec, RetryPolicy, RhsEvent};
pub use operator::{OperatorInfo, PrecondSpec};
pub use service::{
    estimated_adaptive_basis_bytes, estimated_basis_bytes, ServiceConfig, SolverService,
};

// The fault-tolerance vocabulary callers need to drive deadlines,
// resume, and fault injection without importing `krylov` themselves.
pub use krylov::{BasisBitFlip, FaultSpec, SolveCheckpoint};
