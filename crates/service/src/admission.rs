//! Admission control against a compressed-basis memory budget.
//!
//! Every job's Krylov basis is the dominant allocation of a solve
//! (`(restart + 1)` columns of `rows` values in the chosen storage
//! format). The ledger tracks the bytes reserved by in-flight jobs and
//! refuses — or queues — jobs that would push the total past the
//! configured budget, so a burst of concurrent solves degrades into a
//! typed error or a wait instead of an OOM kill.

use crate::error::ServiceError;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What to do with a job whose basis reservation does not fit the
/// remaining budget right now.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail fast with [`ServiceError::BudgetExceeded`].
    #[default]
    Reject,
    /// Block until enough in-flight jobs finish for the reservation to
    /// fit. A job whose reservation alone exceeds the whole budget is
    /// still rejected — it could never run.
    Queue {
        /// Give up waiting after this long and return the typed
        /// [`ServiceError::AdmissionTimeout`]; `None` waits forever.
        timeout: Option<Duration>,
    },
}

/// The byte ledger: budget, policy, and the bytes currently reserved.
pub(crate) struct Ledger {
    budget: Option<u64>,
    policy: AdmissionPolicy,
    in_use: Mutex<u64>,
    freed: Condvar,
}

impl Ledger {
    pub(crate) fn new(budget: Option<u64>, policy: AdmissionPolicy) -> Self {
        Ledger {
            budget,
            policy,
            in_use: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Bytes currently reserved by in-flight jobs.
    pub(crate) fn in_use(&self) -> u64 {
        *self.in_use.lock().expect("ledger lock")
    }

    /// Reserve `requested` bytes for a job on `operator`, honoring the
    /// policy. The returned guard releases the reservation on drop
    /// (solve completion, success or panic alike).
    pub(crate) fn admit(
        &self,
        operator: &str,
        requested: u64,
    ) -> Result<Reservation<'_>, ServiceError> {
        let Some(budget) = self.budget else {
            // Unlimited: nothing to track.
            return Ok(Reservation {
                ledger: None,
                bytes: 0,
            });
        };
        let mut in_use = self.in_use.lock().expect("ledger lock");
        if requested > budget {
            // Could never fit, whatever drains — reject under both
            // policies (queueing would deadlock).
            return Err(ServiceError::BudgetExceeded {
                operator: operator.to_string(),
                requested,
                budget,
                in_use: *in_use,
            });
        }
        match self.policy {
            AdmissionPolicy::Reject => {
                if *in_use + requested > budget {
                    return Err(ServiceError::BudgetExceeded {
                        operator: operator.to_string(),
                        requested,
                        budget,
                        in_use: *in_use,
                    });
                }
            }
            AdmissionPolicy::Queue { timeout: None } => {
                while *in_use + requested > budget {
                    in_use = self.freed.wait(in_use).expect("ledger lock");
                }
            }
            AdmissionPolicy::Queue {
                timeout: Some(limit),
            } => {
                let start = Instant::now();
                while *in_use + requested > budget {
                    let Some(remaining) = limit.checked_sub(start.elapsed()) else {
                        return Err(ServiceError::AdmissionTimeout {
                            operator: operator.to_string(),
                            requested,
                            budget,
                            in_use: *in_use,
                            waited_ms: start.elapsed().as_millis() as u64,
                        });
                    };
                    let (guard, timed_out) = self
                        .freed
                        .wait_timeout(in_use, remaining)
                        .expect("ledger lock");
                    in_use = guard;
                    if timed_out.timed_out() && *in_use + requested > budget {
                        return Err(ServiceError::AdmissionTimeout {
                            operator: operator.to_string(),
                            requested,
                            budget,
                            in_use: *in_use,
                            waited_ms: start.elapsed().as_millis() as u64,
                        });
                    }
                }
            }
        }
        *in_use += requested;
        Ok(Reservation {
            ledger: Some(self),
            bytes: requested,
        })
    }
}

/// RAII reservation: holds `bytes` of the budget until dropped.
pub(crate) struct Reservation<'a> {
    ledger: Option<&'a Ledger>,
    bytes: u64,
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if let Some(ledger) = self.ledger {
            let mut in_use = ledger.in_use.lock().expect("ledger lock");
            *in_use = in_use.saturating_sub(self.bytes);
            drop(in_use);
            ledger.freed.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_ledger_admits_everything() {
        let ledger = Ledger::new(None, AdmissionPolicy::Reject);
        let _a = ledger.admit("x", u64::MAX).unwrap();
        let _b = ledger.admit("y", u64::MAX).unwrap();
        assert_eq!(ledger.in_use(), 0);
    }

    #[test]
    fn reject_policy_fails_fast_and_frees_on_drop() {
        let ledger = Ledger::new(Some(1000), AdmissionPolicy::Reject);
        let a = ledger.admit("a", 700).unwrap();
        assert_eq!(ledger.in_use(), 700);
        let denied = ledger.admit("b", 400).err().unwrap();
        assert!(matches!(
            denied,
            ServiceError::BudgetExceeded {
                requested: 400,
                budget: 1000,
                in_use: 700,
                ..
            }
        ));
        drop(a);
        assert_eq!(ledger.in_use(), 0);
        let _b = ledger.admit("b", 400).unwrap();
    }

    #[test]
    fn oversized_request_is_rejected_even_when_queueing() {
        let ledger = Ledger::new(Some(100), AdmissionPolicy::Queue { timeout: None });
        assert!(matches!(
            ledger.admit("huge", 101),
            Err(ServiceError::BudgetExceeded { requested: 101, .. })
        ));
    }

    #[test]
    fn queue_policy_waits_for_the_budget_to_drain() {
        use std::sync::Arc;
        let ledger = Arc::new(Ledger::new(
            Some(100),
            AdmissionPolicy::Queue { timeout: None },
        ));
        let first = ledger.admit("a", 80).unwrap();
        let waiter = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                // Blocks until `first` drops, then succeeds.
                let r = ledger.admit("b", 80).unwrap();
                drop(r);
            })
        };
        // Give the waiter time to reach the condvar, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(first);
        waiter.join().unwrap();
        assert_eq!(ledger.in_use(), 0);
    }

    #[test]
    fn queue_timeout_surfaces_as_typed_admission_timeout() {
        let ledger = Ledger::new(
            Some(100),
            AdmissionPolicy::Queue {
                timeout: Some(Duration::from_millis(30)),
            },
        );
        let held = ledger.admit("a", 80).unwrap();
        let start = Instant::now();
        let denied = ledger.admit("b", 80).err().expect("must time out");
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "must actually wait out the timeout"
        );
        assert!(matches!(
            denied,
            ServiceError::AdmissionTimeout {
                requested: 80,
                budget: 100,
                in_use: 80,
                ..
            }
        ));
        // The timed-out job reserved nothing; capacity still drains.
        drop(held);
        assert_eq!(ledger.in_use(), 0);
        let _b = ledger.admit("b", 80).unwrap();
    }

    #[test]
    fn queue_timeout_admits_when_capacity_frees_in_time() {
        use std::sync::Arc;
        let ledger = Arc::new(Ledger::new(
            Some(100),
            AdmissionPolicy::Queue {
                timeout: Some(Duration::from_secs(10)),
            },
        ));
        let first = ledger.admit("a", 80).unwrap();
        let waiter = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || ledger.admit("b", 80).map(drop))
        };
        std::thread::sleep(Duration::from_millis(50));
        drop(first);
        waiter.join().unwrap().unwrap();
        assert_eq!(ledger.in_use(), 0);
    }
}
