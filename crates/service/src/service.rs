//! The long-lived [`SolverService`].

use crate::admission::{AdmissionPolicy, Ledger};
use crate::error::ServiceError;
use crate::job::{BasisSelection, BlockJobSpec, JobEvent, JobReport, JobSpec, RhsEvent};
use crate::operator::{AnalyzedOperator, OperatorInfo, PrecondSpec};
use krylov::basis_format::{self, BasisFormat};
use krylov::{
    adaptive_gmres_controlled, adaptive_gmres_observed, block_gmres_dyn_observed,
    gmres_dyn_controlled, sstep_gmres_dyn_controlled, AdaptiveOptions, BlockSolveResult,
    CycleEvent, FaultPlan, FaultyFormat, GmresOptions, SStepOptions, SolveCheckpoint, SolveControl,
    SolveResult,
};
use spla::Csr;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Best-effort string form of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Service-wide configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Upper bound on the compressed-basis bytes of all in-flight jobs
    /// combined; `None` disables admission control.
    pub basis_budget_bytes: Option<u64>,
    /// What to do with a job that does not fit the remaining budget.
    pub admission: AdmissionPolicy,
}

/// Estimated basis reservation of a fixed-format job: one column of
/// `rows` values at the format's nominal rate (Eq. 3 for FRSZ2), times
/// the `restart + 1` columns a cycle stores, times the `width` lanes of
/// a block job (each RHS keeps its own compressed Krylov lane — pass
/// `1` for a single-RHS job). An `sstep > 1` job additionally holds the
/// uncompressed f64 s-step panel — the matrix-powers buffer plus the
/// interleaved working panel, two `rows · sstep` f64 arrays — which is
/// charged on top (pass `1` for a scalar job; the panel lives once per
/// job, not per lane). This is the number admission control charges
/// against the budget — an a-priori bound, deliberately computed from
/// the *registry* rate rather than a live store, so rejection happens
/// before any allocation.
pub fn estimated_basis_bytes(
    format: &dyn BasisFormat,
    rows: usize,
    restart: usize,
    width: usize,
    sstep: usize,
) -> u64 {
    let column = (format.bits_per_value(rows) * rows as f64 / 8.0).ceil() as u64;
    let panel = if sstep > 1 {
        2 * 8 * rows as u64 * sstep as u64
    } else {
        0
    };
    column * (restart as u64 + 1) * width as u64 + panel
}

/// Worst-case basis reservation of an adaptive job: the escalation
/// ladder may end at `float64`, so the full 8 bytes/value are charged
/// up front for every lane — `8 · rows · (restart + 1) · width` (a
/// budget that admits the optimistic start but not the escalated end
/// would OOM exactly when the solve needs help most; pass `width = 1`
/// for a single-RHS job).
pub fn estimated_adaptive_basis_bytes(rows: usize, restart: usize, width: usize) -> u64 {
    8 * rows as u64 * (restart as u64 + 1) * width as u64
}

/// A long-lived solver front end: operators are registered (and
/// analyzed) once, then any number of solve jobs run against the cached
/// analysis — sequentially or concurrently, with per-cycle telemetry
/// and admission control against a basis-memory budget. See the crate
/// docs for a walkthrough.
pub struct SolverService {
    config: ServiceConfig,
    operators: RwLock<HashMap<String, Arc<AnalyzedOperator>>>,
    ledger: Ledger,
}

impl SolverService {
    /// Build a service with the given budget/admission configuration.
    pub fn new(config: ServiceConfig) -> Self {
        SolverService {
            config,
            operators: RwLock::new(HashMap::new()),
            ledger: Ledger::new(config.basis_budget_bytes, config.admission),
        }
    }

    /// Build an unlimited service (no admission control).
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Compressed-basis bytes currently reserved by in-flight jobs
    /// (always 0 when no budget is configured).
    pub fn basis_bytes_in_use(&self) -> u64 {
        self.ledger.in_use()
    }

    /// Register a matrix under `name`, running the expensive
    /// per-operator analysis once: sparse-format auto-selection,
    /// row-length statistics, preconditioner factorization. Returns the
    /// cached analysis snapshot. Fails with
    /// [`ServiceError::DuplicateOperator`] if the name is taken and
    /// [`ServiceError::PrecondFailed`] if the factorization rejects the
    /// operator.
    pub fn register_csr(
        &self,
        name: &str,
        a: &Csr,
        precond: PrecondSpec,
    ) -> Result<OperatorInfo, ServiceError> {
        if self
            .operators
            .read()
            .expect("registry lock")
            .contains_key(name)
        {
            return Err(ServiceError::DuplicateOperator(name.to_string()));
        }
        // Analyze outside the write lock: registration of independent
        // operators can proceed concurrently.
        let analyzed = Arc::new(AnalyzedOperator::analyze(name, a, precond)?);
        let opts = GmresOptions::default();
        let info = analyzed.info(opts.target_rrn, opts.restart);
        let mut registry = self.operators.write().expect("registry lock");
        if registry.contains_key(name) {
            return Err(ServiceError::DuplicateOperator(name.to_string()));
        }
        registry.insert(name.to_string(), analyzed);
        Ok(info)
    }

    /// Names of all registered operators (sorted, for stable output).
    pub fn operator_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .operators
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Cached analysis snapshot of a registered operator.
    pub fn operator_info(&self, name: &str) -> Result<OperatorInfo, ServiceError> {
        let opts = GmresOptions::default();
        Ok(self.operator(name)?.info(opts.target_rrn, opts.restart))
    }

    /// The basis format [`krylov::auto_basis`] recommends for a solve
    /// on `operator` with this stopping target and restart length.
    pub fn recommended_basis(
        &self,
        operator: &str,
        target_rrn: f64,
        restart: usize,
    ) -> Result<String, ServiceError> {
        Ok(self
            .operator(operator)?
            .recommended_basis(target_rrn, restart))
    }

    fn operator(&self, name: &str) -> Result<Arc<AnalyzedOperator>, ServiceError> {
        self.operators
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownOperator(name.to_string()))
    }

    /// Run one job to completion on the calling thread (under the job's
    /// own thread pool), without telemetry.
    pub fn solve(&self, spec: &JobSpec) -> Result<SolveResult, ServiceError> {
        self.solve_observed(spec, |_| {})
    }

    /// Run one job to completion, streaming a [`CycleEvent`] to
    /// `observe` at every restart boundary. The observer is a pure
    /// spectator: observed and unobserved runs are bit-identical.
    ///
    /// The job is admitted against the basis budget first (a typed
    /// [`ServiceError::BudgetExceeded`] instead of an allocation
    /// failure), then solved inside a dedicated pool of
    /// [`JobSpec::threads`] workers. The bit-identity contract makes
    /// the result independent of that thread count, which is what lets
    /// [`SolverService::run_batch`] check concurrent jobs against
    /// sequential reference runs.
    pub fn solve_observed(
        &self,
        spec: &JobSpec,
        observe: impl FnMut(&CycleEvent),
    ) -> Result<SolveResult, ServiceError> {
        self.solve_report_observed(spec, observe).map(|r| r.result)
    }

    /// [`SolverService::solve`] returning the full [`JobReport`] —
    /// the result plus the retry trail (attempt count, the basis
    /// format each attempt started in, faults injected).
    pub fn solve_report(&self, spec: &JobSpec) -> Result<JobReport, ServiceError> {
        self.solve_report_observed(spec, |_| {})
    }

    /// The fault-tolerant solve path: every `solve*` entry funnels
    /// here. On top of the plain solve it implements
    ///
    /// - **deadlines** ([`JobSpec::deadline`]): checked cooperatively
    ///   at every restart boundary; on breach the solve halts at the
    ///   boundary and [`ServiceError::DeadlineExceeded`] carries that
    ///   boundary's [`SolveCheckpoint`] (deadline breaches are never
    ///   retried);
    /// - **resume** ([`JobSpec::resume`]): continue a checkpointed
    ///   solve bit-identically to the uninterrupted run;
    /// - **retry with escalation** ([`JobSpec::retry`]): a
    ///   non-converged attempt (breakdown, stagnation) is retried
    ///   after a bounded exponential backoff with the basis format
    ///   escalated one ladder rung
    ///   ([`krylov::basis_format::escalate`]); a panicked attempt is
    ///   caught ([`ServiceError::JobPanicked`] once retries are
    ///   exhausted) and retried at the same rung;
    /// - **fault injection** ([`JobSpec::fault`]): deterministic basis
    ///   bit-flips, Hessenberg NaNs, injected panics and per-boundary
    ///   sleeps, for tests and the `faults` bench suite.
    ///
    /// A retry-enabled fixed/auto-format job is admitted at the
    /// ladder-top (`float64`) worst case up front, like an adaptive
    /// job: escalating mid-job must not be able to OOM past the
    /// budget, and re-admitting between attempts could deadlock a
    /// queued batch.
    pub fn solve_report_observed(
        &self,
        spec: &JobSpec,
        mut observe: impl FnMut(&CycleEvent),
    ) -> Result<JobReport, ServiceError> {
        let op = self.operator(&spec.operator)?;
        let rows = op.matrix.rows();
        for vec in std::iter::once(&spec.b).chain(spec.x0.as_ref()) {
            if vec.len() != rows {
                return Err(ServiceError::DimensionMismatch {
                    operator: spec.operator.clone(),
                    rows,
                    got: vec.len(),
                });
            }
        }
        // Resolve the format (and the reservation it implies) before
        // touching the budget, so every rejection is typed.
        let format: Option<Box<dyn BasisFormat>> = match &spec.basis {
            BasisSelection::Fixed(name) => Some(
                basis_format::by_name(name)
                    .ok_or_else(|| ServiceError::UnknownFormat(name.clone()))?,
            ),
            BasisSelection::Auto => Some(krylov::auto_basis(
                spec.opts.target_rrn,
                rows,
                spec.opts.restart,
            )),
            BasisSelection::Adaptive => None,
        };
        let sstep = spec.sstep.max(1);
        let panel_bytes = if sstep > 1 {
            2 * 8 * rows as u64 * sstep as u64
        } else {
            0
        };
        let requested = match &format {
            Some(_) if spec.retry.is_some() => {
                // Retries may escalate all the way to float64: charge
                // the ladder-top worst case up front (escalation does
                // not change the panel scratch).
                estimated_adaptive_basis_bytes(rows, spec.opts.restart, 1) + panel_bytes
            }
            Some(f) => estimated_basis_bytes(f.as_ref(), rows, spec.opts.restart, 1, sstep),
            // The adaptive driver owns its own cycle policy and ignores
            // the s-step knob, so no panel scratch is charged.
            None => estimated_adaptive_basis_bytes(rows, spec.opts.restart, 1),
        };
        let _reservation = self.ledger.admit(&spec.operator, requested)?;

        let zeros;
        let x0: &[f64] = match &spec.x0 {
            Some(x0) => x0,
            None => {
                zeros = vec![0.0; rows];
                &zeros
            }
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(spec.threads.max(1))
            .build()
            .expect("job thread pool");

        // The deadline clock spans the whole job: retries and their
        // backoffs burn the same budget as the first attempt.
        let job_start = Instant::now();
        let deadline = spec.deadline;
        let fault = spec.fault.as_ref();
        let sleep_per_boundary = fault.map_or(0, |f| f.sleep_per_boundary_ms);
        let fault_fired = Arc::new(AtomicU64::new(0));
        let max_retries = spec.retry.map_or(0, |r| r.max_retries);

        let mut attempts = 0usize;
        let mut formats_tried: Vec<String> = Vec::new();
        // The current rung: retries escalate this one step at a time.
        let mut format_name: Option<String> = format.as_ref().map(|f| f.name());
        let mut escalated = false;
        loop {
            attempts += 1;
            formats_tried.push(
                format_name
                    .clone()
                    .unwrap_or_else(|| "adaptive".to_string()),
            );
            // Numerical faults are format-gated: after an escalation
            // moves past `only_in_format`, they stop firing — which is
            // what makes retry-until-recovered deterministic.
            let faults_apply = fault
                .is_some_and(|f| f.applies_to_format(format_name.as_deref().unwrap_or("adaptive")));
            let mut opts = spec.opts.clone();
            if faults_apply {
                opts.fault_nan_hessenberg_at = fault.and_then(|f| f.nan_hessenberg_at);
            }
            let attempt_format: Option<Box<dyn BasisFormat>> = format_name.as_deref().map(|n| {
                let base = basis_format::by_name(n).expect("ladder formats are registered");
                match fault.and_then(|f| f.basis_flip).filter(|_| faults_apply) {
                    Some(flip) => Box::new(FaultyFormat::new(
                        base,
                        FaultPlan {
                            flip_on_write: Some(flip),
                            fired: Arc::clone(&fault_fired),
                        },
                    )) as Box<dyn BasisFormat>,
                    None => base,
                }
            });
            // A checkpoint only resumes the format (and driver) it was
            // captured in: once a retry escalates away, attempts start
            // fresh.
            let resume_cp: Option<&SolveCheckpoint> = if escalated {
                None
            } else {
                spec.resume.as_deref()
            };
            let panic_now = fault.is_some_and(|f| f.panic_on_attempt == Some(attempts - 1));
            // Only pay for the boundary probe when something is armed.
            let control_armed = deadline.is_some() || sleep_per_boundary > 0;
            let mut halted_cp: Option<SolveCheckpoint> = None;

            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if panic_now {
                    panic!("injected job panic (attempt {})", attempts - 1);
                }
                pool.install(|| {
                    let mut probe = |cp: &SolveCheckpoint| {
                        if sleep_per_boundary > 0 {
                            std::thread::sleep(Duration::from_millis(sleep_per_boundary));
                        }
                        match deadline {
                            Some(d) if job_start.elapsed() >= d => {
                                halted_cp = Some(cp.clone());
                                SolveControl::Halt
                            }
                            _ => SolveControl::Continue,
                        }
                    };
                    let control: Option<&mut dyn FnMut(&SolveCheckpoint) -> SolveControl> =
                        if control_armed {
                            Some(&mut probe)
                        } else {
                            None
                        };
                    match &attempt_format {
                        Some(f) if sstep > 1 => {
                            let r = sstep_gmres_dyn_controlled(
                                op.matrix.as_ref(),
                                &spec.b,
                                x0,
                                &SStepOptions {
                                    s: sstep,
                                    loo_budget: None,
                                    gmres: opts.clone(),
                                },
                                &op.precond,
                                f.as_ref(),
                                resume_cp,
                                control,
                                &mut observe,
                            );
                            (r.result.solve, r.halted)
                        }
                        Some(f) => {
                            let r = gmres_dyn_controlled(
                                op.matrix.as_ref(),
                                &spec.b,
                                x0,
                                &opts,
                                &op.precond,
                                f.as_ref(),
                                resume_cp,
                                control,
                                &mut observe,
                            );
                            (r.result, r.halted)
                        }
                        None => {
                            let r = adaptive_gmres_controlled(
                                op.matrix.as_ref(),
                                &spec.b,
                                x0,
                                &AdaptiveOptions {
                                    gmres: opts.clone(),
                                    ..AdaptiveOptions::default()
                                },
                                &op.precond,
                                resume_cp,
                                control,
                                &mut observe,
                            );
                            (r.result, r.halted)
                        }
                    }
                })
            }));

            match outcome {
                Err(payload) => {
                    // Panic isolation: the job dies, the service (and
                    // the rest of the batch) does not. A panic carries
                    // no evidence against the format, so retries stay
                    // on the same rung.
                    if attempts <= max_retries {
                        self.backoff(spec, attempts);
                        continue;
                    }
                    return Err(ServiceError::JobPanicked {
                        operator: spec.operator.clone(),
                        attempts,
                        message: panic_message(payload),
                    });
                }
                Ok((_, true)) => {
                    // Cooperative deadline halt: progress is postponed,
                    // not lost — the checkpoint resumes bit-identically.
                    return Err(ServiceError::DeadlineExceeded {
                        operator: spec.operator.clone(),
                        deadline_ms: deadline.map_or(0, |d| d.as_millis() as u64),
                        checkpoint: Box::new(
                            halted_cp.expect("a halted solve captured its boundary checkpoint"),
                        ),
                    });
                }
                Ok((result, false)) => {
                    let report = |result| JobReport {
                        result,
                        attempts,
                        formats_tried: formats_tried.clone(),
                        faults_injected: fault_fired.load(Ordering::Relaxed),
                    };
                    if result.stats.converged || attempts > max_retries {
                        return Ok(report(result));
                    }
                    // Numerical failure (breakdown or stagnation):
                    // spend more bytes per basis value and try again.
                    match format_name.as_deref().and_then(basis_format::escalate) {
                        Some(up) => {
                            format_name = Some(up);
                            escalated = true;
                        }
                        // Already at the ladder top (or adaptive, which
                        // escalates internally): nothing smarter to try.
                        None => return Ok(report(result)),
                    }
                    self.backoff(spec, attempts);
                }
            }
        }
    }

    /// Sleep the bounded exponential backoff before 1-based retry
    /// `attempt` of `spec`.
    fn backoff(&self, spec: &JobSpec, attempt: usize) {
        if let Some(policy) = spec.retry {
            let pause = policy.backoff(attempt);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }

    /// Run one multi-RHS (block) job to completion on the calling
    /// thread, without telemetry. See
    /// [`SolverService::solve_block_observed`].
    pub fn solve_block(&self, spec: &BlockJobSpec) -> Result<BlockSolveResult, ServiceError> {
        self.solve_block_observed(spec, |_| {})
    }

    /// Run one multi-RHS (block) job to completion, streaming an
    /// [`RhsEvent`] to `observe` at every restart boundary of every
    /// RHS (the shared space restarts all active RHS together; one
    /// RHS's events stay in cycle order). The observer is a pure
    /// spectator.
    ///
    /// The whole block is admitted as ONE reservation scaled by the
    /// block width — `width ×` the per-RHS estimate, which is exactly
    /// the shared basis's `width · (restart + 1)` columns — so a block
    /// that would blow the budget is rejected with a typed
    /// [`ServiceError::BudgetExceeded`] before any allocation.
    /// `Fixed`/`Auto` selections route to the shared-space
    /// [`krylov::block_gmres_dyn_observed`] driver;
    /// [`BasisSelection::Adaptive`] falls back to independent per-RHS
    /// adaptive solves (documented on [`BlockJobSpec::basis`]), charged
    /// at the adaptive worst case `8 · rows · (restart + 1) · width`.
    ///
    /// An empty `rhss` is rejected as a
    /// [`ServiceError::DimensionMismatch`] with `got = 0`.
    pub fn solve_block_observed(
        &self,
        spec: &BlockJobSpec,
        mut observe: impl FnMut(&RhsEvent),
    ) -> Result<BlockSolveResult, ServiceError> {
        let op = self.operator(&spec.operator)?;
        let rows = op.matrix.rows();
        let width = spec.rhss.len();
        if width == 0 {
            return Err(ServiceError::DimensionMismatch {
                operator: spec.operator.clone(),
                rows,
                got: 0,
            });
        }
        let x0_vecs = spec.x0s.as_deref().unwrap_or(&[]);
        if spec.x0s.is_some() && x0_vecs.len() != width {
            return Err(ServiceError::DimensionMismatch {
                operator: spec.operator.clone(),
                rows,
                got: x0_vecs.len(),
            });
        }
        for vec in spec.rhss.iter().chain(x0_vecs) {
            if vec.len() != rows {
                return Err(ServiceError::DimensionMismatch {
                    operator: spec.operator.clone(),
                    rows,
                    got: vec.len(),
                });
            }
        }
        let format: Option<Box<dyn BasisFormat>> = match &spec.basis {
            BasisSelection::Fixed(name) => Some(
                basis_format::by_name(name)
                    .ok_or_else(|| ServiceError::UnknownFormat(name.clone()))?,
            ),
            BasisSelection::Auto => Some(krylov::auto_basis(
                spec.opts.target_rrn,
                rows,
                spec.opts.restart,
            )),
            BasisSelection::Adaptive => None,
        };
        let requested = match &format {
            Some(f) => estimated_basis_bytes(f.as_ref(), rows, spec.opts.restart, width, 1),
            None => estimated_adaptive_basis_bytes(rows, spec.opts.restart, width),
        };
        let _reservation = self.ledger.admit(&spec.operator, requested)?;

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(spec.threads.max(1))
            .build()
            .expect("job thread pool");
        let result = pool.install(|| match &format {
            Some(f) => block_gmres_dyn_observed(
                op.matrix.as_ref(),
                &spec.rhss,
                spec.x0s.as_deref(),
                &spec.opts,
                &op.precond,
                f.as_ref(),
                |rhs, cycle| observe(&RhsEvent { rhs, cycle }),
            ),
            // Adaptive lanes escalate at their own pace, which one
            // shared basis cannot express: run them as independent
            // adaptive solves under the one block-sized reservation.
            None => {
                let zeros = vec![0.0; rows];
                let mut solutions = Vec::with_capacity(width);
                let mut stats = Vec::with_capacity(width);
                let mut histories = Vec::with_capacity(width);
                let mut operator_sweeps = 0u64;
                for (rhs, b) in spec.rhss.iter().enumerate() {
                    let x0 = spec.x0s.as_ref().map_or(&zeros[..], |x| &x[rhs]);
                    let r = adaptive_gmres_observed(
                        op.matrix.as_ref(),
                        b,
                        x0,
                        &AdaptiveOptions {
                            gmres: spec.opts.clone(),
                            ..AdaptiveOptions::default()
                        },
                        &op.precond,
                        |cycle| {
                            observe(&RhsEvent {
                                rhs,
                                cycle: cycle.clone(),
                            })
                        },
                    );
                    operator_sweeps += r.stats.spmv_count;
                    solutions.push(r.x);
                    stats.push(r.stats);
                    histories.push(r.history);
                }
                BlockSolveResult {
                    solutions,
                    stats,
                    histories,
                    operator_sweeps,
                }
            }
        });
        Ok(result)
    }

    /// Run a batch of jobs **concurrently**, one OS thread per job,
    /// each inside its own [`JobSpec::threads`]-sized pool slice.
    /// Results come back in submission order; each entry is that job's
    /// own outcome (one rejected job does not fail the batch).
    pub fn run_batch(&self, specs: &[JobSpec]) -> Vec<Result<SolveResult, ServiceError>> {
        self.run_batch_observed(specs, |_| {})
    }

    /// [`SolverService::run_batch`] with telemetry: `on_event` receives
    /// every job's per-cycle [`JobEvent`], interleaved across jobs as
    /// boundaries are reached (events of one job stay in cycle order).
    ///
    /// A panicking job — whether its solve panicked past the per-job
    /// isolation or its observer callback panicked — is reported as
    /// that job's own [`ServiceError::JobPanicked`]; the other jobs
    /// and the batch are unaffected.
    pub fn run_batch_observed(
        &self,
        specs: &[JobSpec],
        on_event: impl Fn(JobEvent) + Sync,
    ) -> Vec<Result<SolveResult, ServiceError>> {
        std::thread::scope(|scope| {
            let on_event = &on_event;
            let handles: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(job, spec)| {
                    scope.spawn(move || {
                        self.solve_observed(spec, |cycle| {
                            on_event(JobEvent {
                                job,
                                cycle: cycle.clone(),
                            })
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(specs)
                .map(|(h, spec)| {
                    h.join().unwrap_or_else(|payload| {
                        Err(ServiceError::JobPanicked {
                            operator: spec.operator.clone(),
                            attempts: 1,
                            message: panic_message(payload),
                        })
                    })
                })
                .collect()
        })
    }

    /// [`SolverService::run_batch`] streaming telemetry through a
    /// channel instead of a callback — the ergonomic form when the
    /// consumer lives on another thread. Telemetry is best-effort, the
    /// solve is not: when the receiver is dropped mid-batch, the first
    /// failed send flips a disconnected flag, every later event is
    /// discarded without touching the channel (or the sender lock),
    /// and the jobs run to completion as if unobserved.
    pub fn run_batch_streaming(
        &self,
        specs: &[JobSpec],
        events: Sender<JobEvent>,
    ) -> Vec<Result<SolveResult, ServiceError>> {
        let events = Mutex::new(events);
        let disconnected = AtomicBool::new(false);
        self.run_batch_observed(specs, move |event| {
            if disconnected.load(Ordering::Relaxed) {
                return;
            }
            if events
                .lock()
                .expect("event sender lock")
                .send(event)
                .is_err()
            {
                disconnected.store(true, Ordering::Relaxed);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spla::dense::manufactured_rhs;
    use spla::gen;

    fn smooth() -> (Csr, Vec<f64>) {
        let a = gen::conv_diff_3d(8, 8, 8, [0.3, 0.2, 0.1], 0.3);
        let (_, b) = manufactured_rhs(&a);
        (a, b)
    }

    fn job(operator: &str, b: Vec<f64>, format: &str, target: f64) -> JobSpec {
        let mut spec = JobSpec::new(operator, b);
        spec.basis = BasisSelection::Fixed(format.into());
        spec.opts.target_rrn = target;
        spec.opts.max_iters = 2000;
        spec
    }

    #[test]
    fn registration_caches_analysis_and_rejects_duplicates() {
        let service = SolverService::with_defaults();
        let (a, _) = smooth();
        let info = service
            .register_csr("smooth", &a, PrecondSpec::Jacobi)
            .unwrap();
        assert_eq!(info.rows, 512);
        assert_eq!(info.nnz, a.nnz());
        assert_eq!(info.preconditioner, "jacobi");
        // The 7-point stencil is near-uniform: auto_format picks a
        // padded format, never CSR.
        assert_ne!(info.sparse_format, "csr");
        assert_eq!(info.row_stats.rows, 512);
        assert_eq!(
            service.register_csr("smooth", &a, PrecondSpec::None),
            Err(ServiceError::DuplicateOperator("smooth".into()))
        );
        assert_eq!(service.operator_names(), vec!["smooth".to_string()]);
        assert_eq!(service.operator_info("smooth").unwrap(), info);
    }

    #[test]
    fn unknown_names_surface_as_typed_errors() {
        let service = SolverService::with_defaults();
        let (a, b) = smooth();
        assert!(matches!(
            service.solve(&JobSpec::new("ghost", b.clone())),
            Err(ServiceError::UnknownOperator(_))
        ));
        assert!(matches!(
            service.operator_info("ghost"),
            Err(ServiceError::UnknownOperator(_))
        ));
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        assert_eq!(
            service.solve(&job("smooth", b, "frsz2_99", 1e-6)).err(),
            Some(ServiceError::UnknownFormat("frsz2_99".into()))
        );
    }

    #[test]
    fn dimension_mismatch_is_checked_for_b_and_x0() {
        let service = SolverService::with_defaults();
        let (a, b) = smooth();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        assert!(matches!(
            service.solve(&JobSpec::new("smooth", vec![1.0; 10])),
            Err(ServiceError::DimensionMismatch {
                rows: 512,
                got: 10,
                ..
            })
        ));
        let mut spec = JobSpec::new("smooth", b);
        spec.x0 = Some(vec![0.0; 100]);
        assert!(matches!(
            service.solve(&spec),
            Err(ServiceError::DimensionMismatch { got: 100, .. })
        ));
    }

    #[test]
    fn precond_factorization_failure_is_typed() {
        let service = SolverService::with_defaults();
        // Row 1 has a zero diagonal: Jacobi must refuse.
        let mut coo = spla::Coo::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 2, 4.0);
        let err = service
            .register_csr("bad", &coo.to_csr(), PrecondSpec::Jacobi)
            .unwrap_err();
        assert!(matches!(err, ServiceError::PrecondFailed { .. }));
        // The failed registration left nothing behind.
        assert!(service.operator_names().is_empty());
    }

    #[test]
    fn budget_exceeding_job_is_rejected_with_typed_error() {
        let (a, b) = smooth();
        let fmt = basis_format::by_name("float64").unwrap();
        let opts = GmresOptions::default();
        let needed = estimated_basis_bytes(fmt.as_ref(), a.rows(), opts.restart, 1, 1);
        let service = SolverService::new(ServiceConfig {
            basis_budget_bytes: Some(needed - 1),
            admission: AdmissionPolicy::Reject,
        });
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let denied = service
            .solve(&job("smooth", b.clone(), "float64", 1e-8))
            .unwrap_err();
        assert!(matches!(
            denied,
            ServiceError::BudgetExceeded { requested, budget, .. }
                if requested == needed && budget == needed - 1
        ));
        // A compressed-basis job fits the same budget comfortably.
        let ok = service.solve(&job("smooth", b, "frsz2_21", 1e-6)).unwrap();
        assert!(ok.stats.converged);
        assert_eq!(service.basis_bytes_in_use(), 0);
    }

    #[test]
    fn sstep_panel_scratch_is_charged_and_gates_admission() {
        let (a, b) = smooth();
        let fmt = basis_format::by_name("frsz2_21").unwrap();
        let opts = GmresOptions::default();
        let scalar = estimated_basis_bytes(fmt.as_ref(), a.rows(), opts.restart, 1, 1);
        let panel = estimated_basis_bytes(fmt.as_ref(), a.rows(), opts.restart, 1, 8);
        // The s-step job carries the two uncompressed f64 panels
        // (matrix powers + working panel) on top of the basis columns.
        assert_eq!(panel, scalar + 2 * 8 * a.rows() as u64 * 8);
        // Budget fits the scalar job but not the panel scratch.
        let service = SolverService::new(ServiceConfig {
            basis_budget_bytes: Some(scalar),
            admission: AdmissionPolicy::Reject,
        });
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let mut wide = job("smooth", b.clone(), "frsz2_21", 1e-6);
        wide.sstep = 8;
        let denied = service.solve(&wide).unwrap_err();
        assert!(matches!(
            denied,
            ServiceError::BudgetExceeded { requested, budget, .. }
                if requested == panel && budget == scalar
        ));
        // The same job at sstep = 1 is admitted and converges.
        let ok = service.solve(&job("smooth", b, "frsz2_21", 1e-6)).unwrap();
        assert!(ok.stats.converged);
        assert_eq!(service.basis_bytes_in_use(), 0);
    }

    #[test]
    fn sstep_job_converges_with_fewer_basis_sweeps() {
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let scalar = service
            .solve(&job("smooth", b.clone(), "frsz2_21", 1e-8))
            .unwrap();
        let mut fast = job("smooth", b, "frsz2_21", 1e-8);
        fast.sstep = 4;
        let sstep = service.solve(&fast).unwrap();
        assert!(scalar.stats.converged && sstep.stats.converged);
        assert!(
            sstep.stats.basis_dot_sweeps < scalar.stats.basis_dot_sweeps,
            "s-step job must amortize decode sweeps: {} vs {}",
            sstep.stats.basis_dot_sweeps,
            scalar.stats.basis_dot_sweeps
        );
    }

    #[test]
    fn queue_policy_serializes_jobs_instead_of_rejecting() {
        let (a, b) = smooth();
        let fmt = basis_format::by_name("frsz2_21").unwrap();
        let opts = GmresOptions::default();
        let one_job = estimated_basis_bytes(fmt.as_ref(), a.rows(), opts.restart, 1, 1);
        // Budget fits exactly one job at a time.
        let service = SolverService::new(ServiceConfig {
            basis_budget_bytes: Some(one_job + one_job / 2),
            admission: AdmissionPolicy::Queue { timeout: None },
        });
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let specs: Vec<JobSpec> = (0..3)
            .map(|_| job("smooth", b.clone(), "frsz2_21", 1e-6))
            .collect();
        let results = service.run_batch(&specs);
        for r in &results {
            assert!(r.as_ref().unwrap().stats.converged);
        }
        assert_eq!(service.basis_bytes_in_use(), 0);
    }

    #[test]
    fn concurrent_batch_matches_sequential_single_thread_bit_for_bit() {
        let (a, b) = smooth();
        let wide = gen::wide_range_conv_diff(6, 6, 6, 24, 0x5202);
        let (_, bw) = manufactured_rhs(&wide);
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::Jacobi)
            .unwrap();
        service
            .register_csr("wide", &wide, PrecondSpec::None)
            .unwrap();

        let mut specs = vec![
            job("smooth", b.clone(), "frsz2_21", 1e-8),
            job("smooth", b.clone(), "float64", 1e-10),
            job("smooth", b, "frsz2_ab", 1e-6),
            {
                let mut s = JobSpec::new("wide", bw);
                s.basis = BasisSelection::Adaptive;
                s.opts.target_rrn = 1e-10;
                s.opts.restart = 30;
                s.opts.max_iters = 1200;
                s
            },
        ];
        // Sequential reference: one job at a time, single-threaded.
        let reference: Vec<SolveResult> = specs.iter().map(|s| service.solve(s).unwrap()).collect();
        // Concurrent: all jobs at once, two workers each.
        for s in &mut specs {
            s.threads = 2;
        }
        let concurrent = service.run_batch(&specs);
        for (r, c) in reference.iter().zip(&concurrent) {
            let c = c.as_ref().unwrap();
            assert_eq!(r.stats.iterations, c.stats.iterations);
            assert_eq!(r.stats.format_trajectory, c.stats.format_trajectory);
            assert_eq!(r.history.len(), c.history.len());
            for (p, q) in r.history.iter().zip(&c.history) {
                assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
            }
            for (u, v) in r.x.iter().zip(&c.x) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn streamed_telemetry_matches_the_executed_trajectories() {
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let mut specs = vec![
            job("smooth", b.clone(), "frsz2_21", 1e-8),
            job("smooth", b, "float64", 1e-10),
        ];
        for s in &mut specs {
            s.opts.restart = 20; // force several cycles → several events
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let results = service.run_batch_streaming(&specs, tx);
        let events: Vec<JobEvent> = rx.try_iter().collect();
        for (job_idx, result) in results.iter().enumerate() {
            let result = result.as_ref().unwrap();
            assert!(result.stats.converged);
            let mine: Vec<&JobEvent> = events.iter().filter(|e| e.job == job_idx).collect();
            // One event per executed cycle, in cycle order, naming the
            // format the cycle ran in.
            assert_eq!(mine.len(), result.stats.restarts);
            for (k, e) in mine.iter().enumerate() {
                assert_eq!(e.cycle.cycle, k);
                assert_eq!(e.cycle.format, result.stats.format_trajectory[k]);
            }
            assert!(mine.len() > 1, "restart 20 must take multiple cycles");
        }
    }

    fn rhs_family(a: &Csr, width: usize) -> Vec<Vec<f64>> {
        let (_, b0) = manufactured_rhs(a);
        (0..width)
            .map(|k| {
                if k == 0 {
                    b0.clone()
                } else {
                    (0..a.rows())
                        .map(|i| ((i as f64) * 0.21 + (k as f64) * 0.73).sin() + 0.1)
                        .collect()
                }
            })
            .collect()
    }

    fn block_job(operator: &str, rhss: Vec<Vec<f64>>, format: &str, target: f64) -> BlockJobSpec {
        let mut spec = BlockJobSpec::new(operator, rhss);
        spec.basis = BasisSelection::Fixed(format.into());
        spec.opts.target_rrn = target;
        spec.opts.max_iters = 2000;
        spec
    }

    #[test]
    fn block_job_budget_scales_with_width() {
        let (a, _) = smooth();
        let fmt = basis_format::by_name("frsz2_21").unwrap();
        let opts = GmresOptions::default();
        let one_lane = estimated_basis_bytes(fmt.as_ref(), a.rows(), opts.restart, 1, 1);
        assert_eq!(
            estimated_basis_bytes(fmt.as_ref(), a.rows(), opts.restart, 16, 1),
            16 * one_lane
        );
        assert_eq!(
            estimated_adaptive_basis_bytes(a.rows(), opts.restart, 16),
            16 * 8 * (a.rows() as u64) * (opts.restart as u64 + 1)
        );
        // Budget fits exactly one lane: a 16-RHS block must be refused,
        // the same job at width 1 must pass.
        let service = SolverService::new(ServiceConfig {
            basis_budget_bytes: Some(one_lane),
            admission: AdmissionPolicy::Reject,
        });
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let wide = block_job("smooth", rhs_family(&a, 16), "frsz2_21", 1e-6);
        let denied = service.solve_block(&wide).unwrap_err();
        assert!(matches!(
            denied,
            ServiceError::BudgetExceeded { requested, budget, .. }
                if requested == 16 * one_lane && budget == one_lane
        ));
        let narrow = block_job("smooth", rhs_family(&a, 1), "frsz2_21", 1e-6);
        let ok = service.solve_block(&narrow).unwrap();
        assert!(ok.all_converged());
        assert_eq!(service.basis_bytes_in_use(), 0);
    }

    #[test]
    fn block_job_solves_every_rhs_and_streams_per_rhs_telemetry() {
        let (a, _) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::Jacobi)
            .unwrap();
        let mut spec = block_job("smooth", rhs_family(&a, 3), "frsz2_21", 1e-8);
        spec.opts.restart = 20; // force several cycles → several events
        let mut events: Vec<RhsEvent> = Vec::new();
        let result = service
            .solve_block_observed(&spec, |e| events.push(e.clone()))
            .unwrap();
        assert_eq!(result.width(), 3);
        assert!(result.all_converged());
        for (rhs, stats) in result.stats.iter().enumerate() {
            let mine: Vec<&RhsEvent> = events.iter().filter(|e| e.rhs == rhs).collect();
            // Single-solve boundary semantics per lane: one event per
            // executed cycle, in cycle order, naming the cycle's format.
            assert_eq!(mine.len(), stats.restarts);
            for (k, e) in mine.iter().enumerate() {
                assert_eq!(e.cycle.cycle, k);
                assert_eq!(e.cycle.format, stats.format_trajectory[k]);
            }
            assert!(mine.len() > 1, "restart 20 must take multiple cycles");
        }
    }

    #[test]
    fn width_one_block_job_matches_single_job_bit_for_bit() {
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let single = service
            .solve(&job("smooth", b.clone(), "frsz2_21", 1e-8))
            .unwrap();
        let block = service
            .solve_block(&block_job("smooth", vec![b], "frsz2_21", 1e-8))
            .unwrap();
        assert_eq!(block.stats[0].iterations, single.stats.iterations);
        assert_eq!(block.operator_sweeps, single.stats.spmv_count);
        assert_eq!(block.histories[0].len(), single.history.len());
        for (p, q) in block.histories[0].iter().zip(&single.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
        }
        for (u, v) in block.solutions[0].iter().zip(&single.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn adaptive_block_job_matches_independent_adaptive_solves() {
        let a = gen::wide_range_conv_diff(6, 6, 6, 24, 0x5202);
        let rhss = rhs_family(&a, 2);
        let service = SolverService::with_defaults();
        service.register_csr("wide", &a, PrecondSpec::None).unwrap();
        let mut spec = BlockJobSpec::new("wide", rhss.clone());
        spec.basis = BasisSelection::Adaptive;
        spec.opts.target_rrn = 1e-10;
        spec.opts.restart = 30;
        spec.opts.max_iters = 1200;
        let block = service.solve_block(&spec).unwrap();
        // The adaptive fallback runs the lanes as independent adaptive
        // solves: each lane is bit-identical to its own JobSpec run.
        let mut sweep_sum = 0;
        for (k, b) in rhss.into_iter().enumerate() {
            let mut single = JobSpec::new("wide", b);
            single.basis = BasisSelection::Adaptive;
            single.opts = spec.opts.clone();
            let r = service.solve(&single).unwrap();
            sweep_sum += r.stats.spmv_count;
            assert_eq!(block.stats[k].iterations, r.stats.iterations);
            assert_eq!(block.stats[k].format_trajectory, r.stats.format_trajectory);
            for (u, v) in block.solutions[k].iter().zip(&r.x) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        assert_eq!(block.operator_sweeps, sweep_sum);
    }

    #[test]
    fn block_job_dimension_checks_cover_width_rhs_and_x0() {
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        // Empty block.
        assert!(matches!(
            service.solve_block(&BlockJobSpec::new("smooth", vec![])),
            Err(ServiceError::DimensionMismatch { got: 0, .. })
        ));
        // One RHS of the wrong length.
        assert!(matches!(
            service.solve_block(&BlockJobSpec::new("smooth", vec![b.clone(), vec![1.0; 10]])),
            Err(ServiceError::DimensionMismatch { got: 10, .. })
        ));
        // x0 count must match the block width.
        let mut spec = BlockJobSpec::new("smooth", vec![b.clone(), b]);
        spec.x0s = Some(vec![vec![0.0; 512]]);
        assert!(matches!(
            service.solve_block(&spec),
            Err(ServiceError::DimensionMismatch { got: 1, .. })
        ));
    }

    #[test]
    fn deadline_halts_with_a_checkpoint_and_resume_is_bit_identical() {
        use krylov::FaultSpec;
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::Jacobi)
            .unwrap();
        let mut base = job("smooth", b, "frsz2_21", 1e-8);
        base.opts.restart = 10; // several cycles → several boundaries
        let reference = service.solve(&base).unwrap();
        assert!(reference.stats.converged);
        assert!(reference.stats.restarts >= 2);

        // An already-expired deadline halts at the FIRST boundary —
        // fully deterministic, no timing sensitivity. The sleep fault
        // doubles as proof the probe path runs.
        let mut rushed = base.clone();
        rushed.deadline = Some(Duration::ZERO);
        rushed.fault = Some(FaultSpec {
            sleep_per_boundary_ms: 1,
            ..FaultSpec::default()
        });
        let err = service.solve(&rushed).unwrap_err();
        let ServiceError::DeadlineExceeded {
            operator,
            deadline_ms,
            checkpoint,
        } = err
        else {
            panic!("expected DeadlineExceeded, got {err:?}");
        };
        assert_eq!(operator, "smooth");
        assert_eq!(deadline_ms, 0);
        assert_eq!(checkpoint.restarts, 0, "halted at the entry boundary");

        // The checkpoint survives its wire format and resumes
        // bit-identically to the uninterrupted reference.
        let bytes = checkpoint.encode(None);
        let restored = krylov::SolveCheckpoint::decode(&bytes, None).unwrap();
        let mut resumed = base.clone();
        resumed.resume = Some(Box::new(restored));
        let result = service.solve(&resumed).unwrap();
        assert!(result.stats.converged);
        assert_eq!(result.stats.iterations, reference.stats.iterations);
        assert_eq!(result.stats.spmv_count, reference.stats.spmv_count);
        assert_eq!(result.history.len(), reference.history.len());
        for (p, q) in result.history.iter().zip(&reference.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
        }
        for (u, v) in result.x.iter().zip(&reference.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn retry_escalates_one_rung_per_attempt_until_recovery() {
        use crate::job::RetryPolicy;
        let a = gen::wide_range_conv_diff(6, 6, 6, 24, 0x5202);
        let (_, b) = manufactured_rhs(&a);
        let service = SolverService::with_defaults();
        service.register_csr("wide", &a, PrecondSpec::None).unwrap();
        // On the wide-dynamic-range operator frsz2_16 stagnates far
        // above 1e-10; without retries the job simply comes back
        // non-converged.
        let mut fragile = job("wide", b, "frsz2_16", 1e-10);
        fragile.opts.restart = 30;
        fragile.opts.max_iters = 600;
        let stuck = service.solve_report(&fragile).unwrap();
        assert!(!stuck.result.stats.converged);
        assert_eq!(stuck.attempts, 1);

        // With retries the service walks the escalation ladder one
        // rung per attempt until a format can hold the target.
        fragile.retry = Some(RetryPolicy::quick(3));
        let report = service.solve_report(&fragile).unwrap();
        assert!(report.result.stats.converged);
        assert!(report.attempts >= 2, "first rung cannot reach 1e-10");
        assert_eq!(report.attempts, report.formats_tried.len());
        assert_eq!(report.formats_tried[0], "frsz2_16");
        // The trail is a strict prefix walk up the ladder.
        for (k, name) in report.formats_tried.iter().enumerate() {
            assert_eq!(name, krylov::ESCALATION_LADDER[k]);
        }
    }

    #[test]
    fn injected_basis_corruption_cannot_cause_false_convergence() {
        use krylov::{BasisBitFlip, FaultSpec};
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let mut spec = job("smooth", b.clone(), "frsz2_21", 1e-8);
        spec.opts.restart = 10;
        // Flip a high exponent bit of an early basis value.
        spec.fault = Some(FaultSpec {
            basis_flip: Some(BasisBitFlip {
                nth_write: 3,
                index: 17,
                bit: 62,
            }),
            ..FaultSpec::default()
        });
        let report = service.solve_report(&spec).unwrap();
        assert!(report.faults_injected >= 1, "the fault must actually fire");
        // Detection is structural: if the solver claims convergence,
        // the *independently recomputed* residual must agree, because
        // convergence is only ever decided from `‖b − Ax‖/‖b‖`.
        if report.result.stats.converged {
            let mut ax = vec![0.0; b.len()];
            spla::SparseMatrix::spmv(&a, &report.result.x, &mut ax);
            let rrn = b
                .iter()
                .zip(&ax)
                .map(|(bi, axi)| (bi - axi) * (bi - axi))
                .sum::<f64>()
                .sqrt()
                / b.iter().map(|bi| bi * bi).sum::<f64>().sqrt();
            assert!(
                rrn <= spec.opts.target_rrn * 1.0001,
                "claimed convergence must be real: recomputed rrn {rrn:.3e}"
            );
        }
    }

    #[test]
    fn panicking_job_is_isolated_and_retried_at_the_same_rung() {
        use crate::job::RetryPolicy;
        use krylov::FaultSpec;
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        // Without retries: a typed error, not a crashed service.
        let mut doomed = job("smooth", b.clone(), "frsz2_21", 1e-8);
        doomed.fault = Some(FaultSpec {
            panic_on_attempt: Some(0),
            ..FaultSpec::default()
        });
        let err = service.solve(&doomed).unwrap_err();
        assert!(matches!(
            &err,
            ServiceError::JobPanicked { operator, attempts: 1, message }
                if operator == "smooth" && message.contains("injected")
        ));
        // With one retry the second attempt is clean — and a panic
        // never escalates the format.
        doomed.retry = Some(RetryPolicy::quick(1));
        let report = service.solve_report(&doomed).unwrap();
        assert!(report.result.stats.converged);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.formats_tried, vec!["frsz2_21", "frsz2_21"]);
        // And the batch survives a panicking member: the healthy job
        // still converges.
        let healthy = job("smooth", b, "frsz2_21", 1e-8);
        let mut batch_member = healthy.clone();
        batch_member.fault = Some(FaultSpec {
            panic_on_attempt: Some(0),
            ..FaultSpec::default()
        });
        let results = service.run_batch(&[batch_member, healthy]);
        assert!(matches!(results[0], Err(ServiceError::JobPanicked { .. })));
        assert!(results[1].as_ref().unwrap().stats.converged);
    }

    #[test]
    fn dropping_the_event_receiver_does_not_disturb_the_batch() {
        let (a, b) = smooth();
        let service = SolverService::with_defaults();
        service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        let mut specs = vec![
            job("smooth", b.clone(), "frsz2_21", 1e-8),
            job("smooth", b.clone(), "float64", 1e-10),
        ];
        for s in &mut specs {
            s.opts.restart = 10; // many boundaries → many sends
        }
        let (tx, rx) = std::sync::mpsc::channel();
        drop(rx); // receiver gone before the first event
        let results = service.run_batch_streaming(&specs, tx);
        let reference: Vec<SolveResult> = specs.iter().map(|s| service.solve(s).unwrap()).collect();
        for (r, q) in results.iter().zip(&reference) {
            let r = r.as_ref().unwrap();
            assert!(r.stats.converged);
            assert_eq!(r.stats.iterations, q.stats.iterations);
            for (u, v) in r.x.iter().zip(&q.x) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn recommended_basis_tracks_the_target() {
        let service = SolverService::with_defaults();
        let (a, _) = smooth();
        let info = service
            .register_csr("smooth", &a, PrecondSpec::None)
            .unwrap();
        // The default 1e-12 target sits below every compressed floor.
        assert_eq!(info.recommended_basis, "float64");
        assert_eq!(
            service.recommended_basis("smooth", 1e-2, 100).unwrap(),
            "frsz2_16"
        );
        assert_eq!(
            service.recommended_basis("smooth", 1e-6, 100).unwrap(),
            "frsz2_32"
        );
    }
}
