//! Solve-job descriptions and the telemetry events they stream.

use krylov::{CycleEvent, FaultSpec, GmresOptions, SolveCheckpoint, SolveResult};
use std::time::Duration;

/// How a job picks its Krylov-basis storage format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BasisSelection {
    /// A fixed registry format by paper name (`float64`, `frsz2_21`,
    /// `frsz2_ab`, any Table II codec, ...).
    Fixed(String),
    /// Let [`krylov::auto_basis`] pick the cheapest ladder format whose
    /// accuracy floor clears the job's stopping target.
    Auto,
    /// Run the bidirectionally adaptive driver
    /// ([`krylov::adaptive_gmres`] with default policy): start at the
    /// bottom of the escalation ladder, escalate on stagnation
    /// evidence.
    Adaptive,
}

/// How the service retries a job whose attempt fails to converge
/// (breakdown, stagnation) or panics.
///
/// Each retry of a *numerical* failure escalates the basis format one
/// rung up the escalation ladder
/// ([`krylov::basis_format::escalate`]) — the same "compression was
/// too aggressive, spend more bytes" move the adaptive driver makes
/// mid-solve, applied across attempts — and sleeps a bounded
/// exponential backoff first. A panicked attempt is retried at the
/// same rung (a panic carries no evidence against the format).
/// Deadline breaches are **not** retried: the caller asked for the
/// time limit, so the service returns
/// [`crate::ServiceError::DeadlineExceeded`] with the latest
/// checkpoint instead of burning more wall clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 disables retries).
    pub max_retries: usize,
    /// Backoff before retry `k` (1-based) is
    /// `min(backoff_base_ms << (k - 1), backoff_max_ms)`.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep.
    pub backoff_max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_max_ms: 100,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and near-zero backoff
    /// (tests and benches: deterministic count, no wasted wall clock).
    pub fn quick(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
        }
    }

    /// The backoff to sleep before 1-based retry `k`.
    pub fn backoff(&self, k: usize) -> Duration {
        let shift = (k.saturating_sub(1)).min(63) as u32;
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.backoff_max_ms);
        Duration::from_millis(ms)
    }
}

/// What one job actually took to finish: the result plus the retry
/// trail. Returned by [`crate::SolverService::solve_report`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The final attempt's solve result.
    pub result: SolveResult,
    /// Total attempts run (1 = first attempt succeeded).
    pub attempts: usize,
    /// Basis format each attempt started in (`"adaptive"` for
    /// [`BasisSelection::Adaptive`] jobs); the escalation trail of a
    /// retried job reads left to right.
    pub formats_tried: Vec<String>,
    /// Basis-corruption faults actually injected across all attempts
    /// (only ever nonzero when [`JobSpec::fault`] armed a
    /// [`FaultSpec::basis_flip`]).
    pub faults_injected: u64,
}

/// One solve job against a registered operator.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Name of the registered operator to solve against.
    pub operator: String,
    /// Right-hand side (must match the operator's row count).
    pub b: Vec<f64>,
    /// Initial guess; `None` starts from zero.
    pub x0: Option<Vec<f64>>,
    /// Basis-format selection for this job.
    pub basis: BasisSelection,
    /// Solver options (restart length, stopping target, ...).
    pub opts: GmresOptions,
    /// Worker threads for this job's slice of the pool. Each job
    /// installs its own fixed-size thread pool, and the workspace's
    /// determinism contract makes the result bit-identical for *any*
    /// value here.
    pub threads: usize,
    /// Krylov directions generated per outer step (the s-step panel
    /// width). `1` (the default) runs the scalar driver; larger values
    /// route `Fixed`/`Auto` jobs through
    /// [`krylov::sstep_gmres_dyn_observed`], which clamps the request
    /// per basis format
    /// ([`krylov::BasisFormat::max_sstep`](krylov::basis_format::BasisFormat::max_sstep))
    /// and shrinks to 1 on a loss-of-orthogonality breach.
    /// [`BasisSelection::Adaptive`] ignores this knob — the adaptive
    /// driver owns its own cycle policy. Values are clamped up to 1 at
    /// admission, and the uncompressed f64 panel scratch is charged
    /// against the basis budget.
    pub sstep: usize,
    /// Wall-clock budget for the whole job (all retries included).
    /// Checked cooperatively at every restart boundary: on breach the
    /// solve halts at the boundary and the service returns
    /// [`crate::ServiceError::DeadlineExceeded`] carrying the
    /// boundary's [`SolveCheckpoint`], from which a later job can
    /// [`JobSpec::resume`] bit-identically. `None` (the default) never
    /// interrupts.
    pub deadline: Option<Duration>,
    /// Retry failed attempts per this policy; `None` (the default)
    /// runs exactly one attempt.
    pub retry: Option<RetryPolicy>,
    /// Resume a previous solve from its checkpoint instead of starting
    /// fresh. The checkpoint's driver kind and basis format must match
    /// what this spec resolves to (same `basis`/`sstep`/`opts`); the
    /// resumed solve is bit-identical to the uninterrupted one. A
    /// retry that escalates away from the checkpoint's format starts
    /// that attempt fresh — the checkpoint's compressed trajectory
    /// belongs to the old format.
    pub resume: Option<Box<SolveCheckpoint>>,
    /// Deterministic fault injection (tests, benches, chaos drills);
    /// `None` (the default) injects nothing. See [`FaultSpec`].
    pub fault: Option<FaultSpec>,
}

impl JobSpec {
    /// A single-threaded, auto-format, scalar (`sstep = 1`) job with
    /// default solver options.
    pub fn new(operator: impl Into<String>, b: Vec<f64>) -> Self {
        JobSpec {
            operator: operator.into(),
            b,
            x0: None,
            basis: BasisSelection::Auto,
            opts: GmresOptions::default(),
            threads: 1,
            sstep: 1,
            deadline: None,
            retry: None,
            resume: None,
            fault: None,
        }
    }
}

/// One multi-RHS (block) solve job against a registered operator: all
/// right-hand sides share the operator and run through
/// [`krylov::block_gmres_dyn`]'s shared-space driver, so every matrix
/// sweep — and every decode sweep of the shared compressed basis — is
/// amortized over the block. Admission control charges the basis
/// reservation for the whole shared space — `width ×` the single-RHS
/// estimate, exactly the shared basis's `width · (restart+1)` columns.
#[derive(Clone, Debug)]
pub struct BlockJobSpec {
    /// Name of the registered operator to solve against.
    pub operator: String,
    /// The right-hand sides (each must match the operator's row count;
    /// the block width `b` is `rhss.len()`).
    pub rhss: Vec<Vec<f64>>,
    /// Per-RHS initial guesses; `None` starts every RHS from zero.
    pub x0s: Option<Vec<Vec<f64>>>,
    /// Basis-format selection, applied to every lane.
    /// [`BasisSelection::Adaptive`] falls back to independent per-RHS
    /// adaptive solves (each lane may escalate at its own pace, which
    /// a single shared basis cannot express), still admitted as one
    /// job at the block-scaled worst case.
    pub basis: BasisSelection,
    /// Solver options, applied to every lane.
    pub opts: GmresOptions,
    /// Worker threads for this job's pool (same contract as
    /// [`JobSpec::threads`]: results are bit-identical for any value).
    pub threads: usize,
}

impl BlockJobSpec {
    /// A single-threaded, auto-format block job with default solver
    /// options.
    pub fn new(operator: impl Into<String>, rhss: Vec<Vec<f64>>) -> Self {
        BlockJobSpec {
            operator: operator.into(),
            rhss,
            x0s: None,
            basis: BasisSelection::Auto,
            opts: GmresOptions::default(),
            threads: 1,
        }
    }

    /// Block width `b` of this job.
    pub fn width(&self) -> usize {
        self.rhss.len()
    }
}

/// A per-cycle telemetry event of one job in a batch: the job index
/// plus the solver's [`CycleEvent`] snapshot (residual, format, basis
/// traffic).
#[derive(Clone, Debug, PartialEq)]
pub struct JobEvent {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The restart-boundary snapshot.
    pub cycle: CycleEvent,
}

/// A per-cycle telemetry event of one right-hand side inside a block
/// solve: the RHS index plus that lane's [`CycleEvent`] (same boundary
/// semantics as a single solve — a lane's converged boundary emits no
/// event).
#[derive(Clone, Debug, PartialEq)]
pub struct RhsEvent {
    /// Index of the right-hand side within the block job.
    pub rhs: usize,
    /// The lane's restart-boundary snapshot.
    pub cycle: CycleEvent,
}
