//! Solve-job descriptions and the telemetry events they stream.

use krylov::{CycleEvent, GmresOptions};

/// How a job picks its Krylov-basis storage format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BasisSelection {
    /// A fixed registry format by paper name (`float64`, `frsz2_21`,
    /// `frsz2_ab`, any Table II codec, ...).
    Fixed(String),
    /// Let [`krylov::auto_basis`] pick the cheapest ladder format whose
    /// accuracy floor clears the job's stopping target.
    Auto,
    /// Run the bidirectionally adaptive driver
    /// ([`krylov::adaptive_gmres`] with default policy): start at the
    /// bottom of the escalation ladder, escalate on stagnation
    /// evidence.
    Adaptive,
}

/// One solve job against a registered operator.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Name of the registered operator to solve against.
    pub operator: String,
    /// Right-hand side (must match the operator's row count).
    pub b: Vec<f64>,
    /// Initial guess; `None` starts from zero.
    pub x0: Option<Vec<f64>>,
    /// Basis-format selection for this job.
    pub basis: BasisSelection,
    /// Solver options (restart length, stopping target, ...).
    pub opts: GmresOptions,
    /// Worker threads for this job's slice of the pool. Each job
    /// installs its own fixed-size thread pool, and the workspace's
    /// determinism contract makes the result bit-identical for *any*
    /// value here.
    pub threads: usize,
    /// Krylov directions generated per outer step (the s-step panel
    /// width). `1` (the default) runs the scalar driver; larger values
    /// route `Fixed`/`Auto` jobs through
    /// [`krylov::sstep_gmres_dyn_observed`], which clamps the request
    /// per basis format
    /// ([`krylov::BasisFormat::max_sstep`](krylov::basis_format::BasisFormat::max_sstep))
    /// and shrinks to 1 on a loss-of-orthogonality breach.
    /// [`BasisSelection::Adaptive`] ignores this knob — the adaptive
    /// driver owns its own cycle policy. Values are clamped up to 1 at
    /// admission, and the uncompressed f64 panel scratch is charged
    /// against the basis budget.
    pub sstep: usize,
}

impl JobSpec {
    /// A single-threaded, auto-format, scalar (`sstep = 1`) job with
    /// default solver options.
    pub fn new(operator: impl Into<String>, b: Vec<f64>) -> Self {
        JobSpec {
            operator: operator.into(),
            b,
            x0: None,
            basis: BasisSelection::Auto,
            opts: GmresOptions::default(),
            threads: 1,
            sstep: 1,
        }
    }
}

/// One multi-RHS (block) solve job against a registered operator: all
/// right-hand sides share the operator and run through
/// [`krylov::block_gmres_dyn`]'s shared-space driver, so every matrix
/// sweep — and every decode sweep of the shared compressed basis — is
/// amortized over the block. Admission control charges the basis
/// reservation for the whole shared space — `width ×` the single-RHS
/// estimate, exactly the shared basis's `width · (restart+1)` columns.
#[derive(Clone, Debug)]
pub struct BlockJobSpec {
    /// Name of the registered operator to solve against.
    pub operator: String,
    /// The right-hand sides (each must match the operator's row count;
    /// the block width `b` is `rhss.len()`).
    pub rhss: Vec<Vec<f64>>,
    /// Per-RHS initial guesses; `None` starts every RHS from zero.
    pub x0s: Option<Vec<Vec<f64>>>,
    /// Basis-format selection, applied to every lane.
    /// [`BasisSelection::Adaptive`] falls back to independent per-RHS
    /// adaptive solves (each lane may escalate at its own pace, which
    /// a single shared basis cannot express), still admitted as one
    /// job at the block-scaled worst case.
    pub basis: BasisSelection,
    /// Solver options, applied to every lane.
    pub opts: GmresOptions,
    /// Worker threads for this job's pool (same contract as
    /// [`JobSpec::threads`]: results are bit-identical for any value).
    pub threads: usize,
}

impl BlockJobSpec {
    /// A single-threaded, auto-format block job with default solver
    /// options.
    pub fn new(operator: impl Into<String>, rhss: Vec<Vec<f64>>) -> Self {
        BlockJobSpec {
            operator: operator.into(),
            rhss,
            x0s: None,
            basis: BasisSelection::Auto,
            opts: GmresOptions::default(),
            threads: 1,
        }
    }

    /// Block width `b` of this job.
    pub fn width(&self) -> usize {
        self.rhss.len()
    }
}

/// A per-cycle telemetry event of one job in a batch: the job index
/// plus the solver's [`CycleEvent`] snapshot (residual, format, basis
/// traffic).
#[derive(Clone, Debug, PartialEq)]
pub struct JobEvent {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The restart-boundary snapshot.
    pub cycle: CycleEvent,
}

/// A per-cycle telemetry event of one right-hand side inside a block
/// solve: the RHS index plus that lane's [`CycleEvent`] (same boundary
/// semantics as a single solve — a lane's converged boundary emits no
/// event).
#[derive(Clone, Debug, PartialEq)]
pub struct RhsEvent {
    /// Index of the right-hand side within the block job.
    pub rhs: usize,
    /// The lane's restart-boundary snapshot.
    pub cycle: CycleEvent,
}
