//! Solve-job descriptions and the telemetry events they stream.

use krylov::{CycleEvent, GmresOptions};

/// How a job picks its Krylov-basis storage format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BasisSelection {
    /// A fixed registry format by paper name (`float64`, `frsz2_21`,
    /// `frsz2_ab`, any Table II codec, ...).
    Fixed(String),
    /// Let [`krylov::auto_basis`] pick the cheapest ladder format whose
    /// accuracy floor clears the job's stopping target.
    Auto,
    /// Run the bidirectionally adaptive driver
    /// ([`krylov::adaptive_gmres`] with default policy): start at the
    /// bottom of the escalation ladder, escalate on stagnation
    /// evidence.
    Adaptive,
}

/// One solve job against a registered operator.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Name of the registered operator to solve against.
    pub operator: String,
    /// Right-hand side (must match the operator's row count).
    pub b: Vec<f64>,
    /// Initial guess; `None` starts from zero.
    pub x0: Option<Vec<f64>>,
    /// Basis-format selection for this job.
    pub basis: BasisSelection,
    /// Solver options (restart length, stopping target, ...).
    pub opts: GmresOptions,
    /// Worker threads for this job's slice of the pool. Each job
    /// installs its own fixed-size thread pool, and the workspace's
    /// determinism contract makes the result bit-identical for *any*
    /// value here.
    pub threads: usize,
}

impl JobSpec {
    /// A single-threaded, auto-format job with default solver options.
    pub fn new(operator: impl Into<String>, b: Vec<f64>) -> Self {
        JobSpec {
            operator: operator.into(),
            b,
            x0: None,
            basis: BasisSelection::Auto,
            opts: GmresOptions::default(),
            threads: 1,
        }
    }
}

/// A per-cycle telemetry event of one job in a batch: the job index
/// plus the solver's [`CycleEvent`] snapshot (residual, format, basis
/// traffic).
#[derive(Clone, Debug, PartialEq)]
pub struct JobEvent {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The restart-boundary snapshot.
    pub cycle: CycleEvent,
}
