//! Property tests for the software float formats and dense accessors.

use numfmt::{ColumnStorage, DenseStore, BF16, F16};
use proptest::prelude::*;

proptest! {
    /// f64 -> f16 must round to the *nearest* representable f16: no other
    /// f16 value may be strictly closer.
    #[test]
    fn f16_is_nearest(x in -70000.0f64..70000.0) {
        let h = F16::from_f64(x);
        if h.is_finite() {
            let got = h.to_f64();
            let err = (got - x).abs();
            // Probe the two neighbouring encodings.
            for delta in [-1i32, 1] {
                let nb = F16::from_bits((h.to_bits() as i32 + delta) as u16);
                if nb.is_finite() && (nb.to_bits() & 0x8000) == (h.to_bits() & 0x8000) {
                    let nerr = (nb.to_f64() - x).abs();
                    prop_assert!(err <= nerr,
                        "{x}: chose {got} (err {err}) but neighbour {} is closer ({nerr})",
                        nb.to_f64());
                }
            }
        }
    }

    /// Relative error of a finite f16 conversion of a normal-range value is
    /// bounded by half an ULP: 2^-11.
    #[test]
    fn f16_relative_error_bound(x in prop::num::f64::NORMAL) {
        let small = 6.103515625e-5; // f16 min normal
        let big = 65504.0;
        let y = x.abs().clamp(small, big).copysign(x);
        let h = F16::from_f64(y).to_f64();
        prop_assert!(((h - y) / y).abs() <= f64::powi(2.0, -11) * (1.0 + 1e-12));
    }

    /// bf16 keeps the f32 exponent, so any f32-representable magnitude
    /// converts with relative error <= 2^-8.
    #[test]
    fn bf16_relative_error_bound(x in prop::num::f64::NORMAL) {
        let y = x.abs().clamp(1.2e-38, 3.0e38).copysign(x);
        let b = BF16::from_f64(y).to_f64();
        prop_assert!(((b - y) / y).abs() <= f64::powi(2.0, -8) * (1.0 + 1e-9));
    }

    /// DenseStore read_chunk agrees with load element-wise for every format.
    #[test]
    fn dense_store_chunk_vs_load(
        vals in prop::collection::vec(-1.0f64..1.0, 1..200),
        split in 0usize..200,
    ) {
        let n = vals.len();
        let split = split % n.max(1);
        macro_rules! check {
            ($t:ty) => {{
                let mut st = DenseStore::<$t>::with_shape(n, 1);
                st.write_column(0, &vals);
                let mut out = vec![0.0; n];
                st.read_chunk(0, 0, &mut out[..split]);
                st.read_chunk(0, split, &mut out[split..]);
                for i in 0..n {
                    prop_assert_eq!(out[i], st.load(i, 0));
                }
            }};
        }
        check!(f64);
        check!(f32);
        check!(F16);
        check!(BF16);
    }

    /// Storing through f32 then reading back equals a plain `as f32 as f64`
    /// cast chain (the accessor adds no extra rounding).
    #[test]
    fn f32_store_single_rounding(x in prop::num::f64::ANY) {
        prop_assume!(x.is_finite());
        let mut st = DenseStore::<f32>::with_shape(1, 1);
        st.write_column(0, &[x]);
        prop_assert_eq!(st.load(0, 0), x as f32 as f64);
    }
}
