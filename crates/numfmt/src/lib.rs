//! Number formats and the storage/arithmetic accessor abstraction.
//!
//! The CB-GMRES algorithm of Aliaga et al. stores the Krylov basis in a
//! *storage format* that may be narrower than the *arithmetic format*
//! (IEEE binary64). Ginkgo realizes this with its "accessor"; this crate
//! provides the equivalent Rust abstraction:
//!
//! * [`StoredScalar`] — a value-level storage format (a plain cast such as
//!   `f32`, [`F16`], [`BF16`], or `f64` itself),
//! * [`ColumnStorage`] — a column-major matrix whose columns are written
//!   once (compressed) and then re-read many times (decompressed on the
//!   fly), which is exactly the Krylov-basis access pattern,
//! * [`DenseStore`] — the `ColumnStorage` implementation for value-level
//!   casts.
//!
//! Block-based formats (FRSZ2) implement [`ColumnStorage`] in the `frsz2`
//! crate; the solver in `krylov` is generic over the trait, mirroring how
//! the paper's implementation funnels every decompression through the
//! accessor interface (§IV-C).
//!
//! `binary16` is implemented from scratch here (no `half` dependency): the
//! float16 storage format is one of the compression baselines under study,
//! so its rounding behaviour is part of the system being reproduced.

pub mod accessor;
pub mod bf16;
pub mod f16;

pub use accessor::{ColumnStorage, DenseStore, StoredScalar};
pub use bf16::BF16;
pub use f16::F16;

/// Storage cost in bits per value of each value-level format.
///
/// Block formats report their own effective rate (e.g. FRSZ2 with
/// `BS = 32`, `l = 32` needs 33 bits/value on average, Eq. 3 of the paper).
pub fn bits_per_value<T: StoredScalar>() -> usize {
    std::mem::size_of::<T>() * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_value_matches_width() {
        assert_eq!(bits_per_value::<f64>(), 64);
        assert_eq!(bits_per_value::<f32>(), 32);
        assert_eq!(bits_per_value::<F16>(), 16);
        assert_eq!(bits_per_value::<BF16>(), 16);
    }
}
