//! Software bfloat16 (brain floating point) with round-to-nearest-even.
//!
//! Layout: 1 sign bit, 8 exponent bits (bias 127, same as `f32`), 7
//! mantissa bits. bfloat16 is not evaluated in the paper but is the other
//! 16-bit storage format every GPU generation since A100 supports; it is
//! provided as an extension format for the CB-GMRES storage sweep (same
//! range as `f32`, less precision than binary16).

/// bfloat16 value stored as its bit pattern (top half of the `f32` layout).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct BF16(pub u16);

impl BF16 {
    pub const ZERO: BF16 = BF16(0);
    pub const ONE: BF16 = BF16(0x3F80);
    pub const INFINITY: BF16 = BF16(0x7F80);
    pub const NEG_INFINITY: BF16 = BF16(0xFF80);
    pub const NAN: BF16 = BF16(0x7FC0);

    /// Convert from `f32` with round-to-nearest-even on the low 16 bits.
    pub fn from_f32(x: f32) -> BF16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Keep sign + a nonzero quiet payload.
            return BF16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 1u32 << 15;
        let rem = bits & 0xFFFF;
        let mut hi = bits >> 16;
        if rem > round_bit || (rem == round_bit && hi & 1 == 1) {
            // Carry may flow into the exponent and saturate to infinity;
            // the encoding is continuous, so plain +1 is correct.
            hi += 1;
        }
        BF16(hi as u16)
    }

    /// Convert from `f64`. Rounds `f64 -> f32 -> bf16`; the double rounding
    /// can differ from a fused single rounding only for values within half
    /// an `f32` ULP of a bf16 rounding boundary, which is irrelevant for a
    /// 7-bit storage format (documented, matches what GPU cvt chains do).
    pub fn from_f64(x: f64) -> BF16 {
        BF16::from_f32(x as f32)
    }

    /// Widen to `f32` (exact: append 16 zero bits).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Widen to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    pub fn is_nan(self) -> bool {
        self.0 & 0x7F80 == 0x7F80 && self.0 & 0x007F != 0
    }

    pub fn is_finite(self) -> bool {
        self.0 & 0x7F80 != 0x7F80
    }

    pub fn to_bits(self) -> u16 {
        self.0
    }

    pub fn from_bits(bits: u16) -> BF16 {
        BF16(bits)
    }
}

impl std::fmt::Debug for BF16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BF16({})", self.to_f64())
    }
}

impl From<f64> for BF16 {
    fn from(x: f64) -> BF16 {
        BF16::from_f64(x)
    }
}

impl From<BF16> for f64 {
    fn from(x: BF16) -> f64 {
        x.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(BF16::from_f64(1.0).to_bits(), 0x3F80);
        assert_eq!(BF16::from_f64(-2.0).to_bits(), 0xC000);
        assert_eq!(BF16::from_f64(0.0).to_bits(), 0x0000);
        assert_eq!(BF16::from_f64(-0.0).to_bits(), 0x8000);
        // bf16 keeps f32 range: 1e38 stays finite, 1e39 overflows.
        assert!(BF16::from_f64(1e38).is_finite());
        assert!(!BF16::from_f64(1e39).is_finite());
    }

    #[test]
    fn rtne_on_boundary() {
        // 1 + 2^-8 is halfway between 1.0 and the next bf16 (1 + 2^-7).
        assert_eq!(BF16::from_f32(1.0 + f32::powi(2.0, -8)).to_bits(), 0x3F80);
        // 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6 -> even is 1+2^-6.
        assert_eq!(
            BF16::from_f32(1.0 + 3.0 * f32::powi(2.0, -8)).to_bits(),
            0x3F82
        );
    }

    #[test]
    fn exhaustive_round_trip() {
        for bits in 0..=u16::MAX {
            let b = BF16::from_bits(bits);
            if b.is_nan() {
                assert!(BF16::from_f32(b.to_f32()).is_nan());
            } else {
                assert_eq!(BF16::from_f32(b.to_f32()).to_bits(), bits);
            }
        }
    }

    #[test]
    fn carry_into_exponent_saturates() {
        // Largest finite bf16 is 0x7F7F; anything that rounds past it must
        // become infinity, not wrap into NaN space.
        let max = BF16::from_bits(0x7F7F).to_f32();
        let just_over = max * (1.0 + f32::powi(2.0, -8) * 1.5);
        assert_eq!(BF16::from_f32(just_over).to_bits(), 0x7F80);
    }
}
