//! Software IEEE 754 binary16 with round-to-nearest-even conversions.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Finite range: max 65504, min normal `2^-14`, min subnormal `2^-24`.
//!
//! The `f64 -> f16` conversion rounds once, directly from the 53-bit
//! significand (no double rounding through `f32`), handles gradual
//! underflow into binary16 subnormals, and saturates past-the-end values
//! to infinity exactly as hardware `cvt.rn.f16.f64` does.

/// IEEE 754 binary16 value stored as its bit pattern.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct F16(pub u16);

const EXP_BITS: u32 = 5;
const MAN_BITS: u32 = 10;
const BIAS: i32 = 15;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

/// Round-to-nearest-even right shift of a 64-bit integer.
///
/// Returns `v >> shift` rounded; the result may carry into one bit above
/// the kept field (callers renormalize). `shift >= 64` rounds to zero for
/// any value below `2^63` (all significands here are < `2^53`).
#[inline]
fn rtne_shr(v: u64, shift: u32) -> u64 {
    if shift == 0 {
        return v;
    }
    if shift >= 64 {
        return 0;
    }
    let kept = v >> shift;
    let rem = v & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    if rem > half || (rem == half && kept & 1 == 1) {
        kept + 1
    } else {
        kept
    }
}

impl F16 {
    pub const ZERO: F16 = F16(0);
    pub const ONE: F16 = F16(0x3C00);
    pub const INFINITY: F16 = F16(0x7C00);
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);

    /// Convert from `f64` with a single round-to-nearest-even step.
    pub fn from_f64(x: f64) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 63) as u16) << 15;
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let man = bits & ((1u64 << 52) - 1);

        if exp == 0x7FF {
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                // Preserve the top payload bits, force a quiet NaN.
                F16(sign | EXP_MASK | 0x0200 | ((man >> 42) as u16 & 0x01FF))
            };
        }
        if exp == 0 {
            // f64 subnormals are below 2^-1022, far under the f16
            // subnormal range: they round to (signed) zero.
            return F16(sign);
        }

        let e = exp - 1023;
        let sig53 = (1u64 << 52) | man;
        let et = e + BIAS; // tentative biased f16 exponent

        if et >= 0x1F {
            return F16(sign | EXP_MASK); // overflow to infinity
        }
        if et <= 0 {
            // Subnormal (or zero) target: value = sig53 * 2^(e-52), encode
            // as m * 2^-24, i.e. m = sig53 >> (28 - e) = sig53 >> (43 - et).
            let shift = (43 - et) as u32;
            let m = rtne_shr(sig53, shift);
            // m == 0x400 flows naturally into the smallest normal encoding.
            return F16(sign | m as u16);
        }

        // Normal target: keep the top 11 bits (implicit 1 + 10 mantissa).
        let mut m = rtne_shr(sig53, 52 - MAN_BITS);
        let mut et = et;
        if m == (1 << (MAN_BITS + 1)) {
            // Rounding carried all the way: 1.111..1 -> 10.000..0.
            m >>= 1;
            et += 1;
            if et >= 0x1F {
                return F16(sign | EXP_MASK);
            }
        }
        F16(sign | ((et as u16) << MAN_BITS) | (m as u16 & MAN_MASK))
    }

    /// Convert from `f32` (round-to-nearest-even), via the exact `f64` path.
    pub fn from_f32(x: f32) -> F16 {
        // f32 -> f64 is exact, so a single rounding happens in from_f64.
        F16::from_f64(x as f64)
    }

    /// Widen to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        let sign = ((self.0 >> 15) as u64) << 63;
        let exp = ((self.0 & EXP_MASK) >> MAN_BITS) as i32;
        let man = (self.0 & MAN_MASK) as u64;
        let bits = if exp == 0x1F {
            if man == 0 {
                sign | 0x7FF0_0000_0000_0000
            } else {
                sign | 0x7FF8_0000_0000_0000 | (man << 42)
            }
        } else if exp == 0 {
            if man == 0 {
                sign
            } else {
                // Subnormal: man * 2^-24. Normalize into f64.
                let lz = man.leading_zeros() - (64 - MAN_BITS); // zeros within 10-bit field
                let e = -(BIAS - 1) - 1 - lz as i32; // unbiased exponent of leading 1
                let man52 = (man << (lz + 1 + 42)) & ((1u64 << 52) - 1);
                sign | (((e + 1023) as u64) << 52) | man52
            }
        } else {
            let e = exp - BIAS + 1023;
            sign | ((e as u64) << 52) | (man << 42)
        };
        f64::from_bits(bits)
    }

    /// Widen to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    pub fn is_nan(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & MAN_MASK != 0
    }

    pub fn is_infinite(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & MAN_MASK == 0
    }

    pub fn is_finite(self) -> bool {
        self.0 & EXP_MASK != EXP_MASK
    }

    pub fn to_bits(self) -> u16 {
        self.0
    }

    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Number of exponent bits (5).
    pub const fn exponent_bits() -> u32 {
        EXP_BITS
    }

    /// Number of explicit mantissa bits (10).
    pub const fn mantissa_bits() -> u32 {
        MAN_BITS
    }
}

impl std::fmt::Debug for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F16({})", self.to_f64())
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<f64> for F16 {
    fn from(x: f64) -> F16 {
        F16::from_f64(x)
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_round_trip() {
        for &(v, bits) in &[
            (0.0, 0x0000u16),
            (1.0, 0x3C00),
            (-1.0, 0xBC00),
            (2.0, 0x4000),
            (0.5, 0x3800),
            (65504.0, 0x7BFF),
            (6.103515625e-5, 0x0400),       // min normal 2^-14
            (5.960464477539063e-8, 0x0001), // min subnormal 2^-24
            (0.333251953125, 0x3555),       // nearest f16 to 1/3
        ] {
            assert_eq!(F16::from_f64(v).to_bits(), bits, "encode {v}");
            assert_eq!(F16::from_bits(bits).to_f64(), v, "decode {bits:#06x}");
        }
    }

    #[test]
    fn negative_zero_preserved() {
        assert_eq!(F16::from_f64(-0.0).to_bits(), 0x8000);
        assert_eq!(
            F16::from_bits(0x8000).to_f64().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f64(65520.0).to_bits(), 0x7C00);
        assert_eq!(F16::from_f64(1e30).to_bits(), 0x7C00);
        assert_eq!(F16::from_f64(-1e30).to_bits(), 0xFC00);
        // Just below the rounding threshold stays finite.
        assert_eq!(F16::from_f64(65519.999).to_bits(), 0x7BFF);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even -> 1.0
        assert_eq!(F16::from_f64(1.0 + f64::powi(2.0, -11)).to_bits(), 0x3C00);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9
        assert_eq!(
            F16::from_f64(1.0 + 3.0 * f64::powi(2.0, -11)).to_bits(),
            0x3C02
        );
    }

    #[test]
    fn underflow_to_subnormals_and_zero() {
        // 2^-25 is exactly half the smallest subnormal: ties to even -> 0
        assert_eq!(F16::from_f64(f64::powi(2.0, -25)).to_bits(), 0x0000);
        // slightly above half rounds up to the smallest subnormal
        assert_eq!(
            F16::from_f64(f64::powi(2.0, -25) * 1.0001).to_bits(),
            0x0001
        );
        // 2^-24 encodes exactly
        assert_eq!(F16::from_f64(f64::powi(2.0, -24)).to_bits(), 0x0001);
        // deep underflow is zero
        assert_eq!(F16::from_f64(1e-300).to_bits(), 0x0000);
    }

    #[test]
    fn nan_and_infinity() {
        assert!(F16::from_f64(f64::NAN).is_nan());
        assert!(F16::from_f64(f64::INFINITY).is_infinite());
        assert!(F16::from_f64(f64::NEG_INFINITY).is_infinite());
        assert!(F16::from_bits(0x7E00).to_f64().is_nan());
        assert_eq!(F16::from_bits(0x7C00).to_f64(), f64::INFINITY);
    }

    #[test]
    fn exhaustive_decode_encode_identity() {
        // Every finite f16 bit pattern must survive decode -> encode.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f64(h.to_f64()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f64(h.to_f64()).to_bits(),
                    bits,
                    "round-trip of {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_decode_matches_reference() {
        // Independent reference decoder built from powi arithmetic.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() || h.is_infinite() {
                continue;
            }
            let s = if bits & 0x8000 != 0 { -1.0 } else { 1.0 };
            let e = ((bits >> 10) & 0x1F) as i32;
            let m = (bits & 0x3FF) as f64;
            let reference = if e == 0 {
                s * m * f64::powi(2.0, -24)
            } else {
                s * (1.0 + m / 1024.0) * f64::powi(2.0, e - 15)
            };
            assert_eq!(h.to_f64(), reference, "decode of {bits:#06x}");
        }
    }
}
