//! The Ginkgo-style accessor: storage format decoupled from arithmetic.
//!
//! CB-GMRES touches the Krylov basis through exactly three patterns:
//!
//! 1. a whole column is written once, immediately after normalization
//!    (compression happens here, and only here — FRSZ2 cannot update
//!    single elements because the block exponent would change, §IV-A);
//! 2. columns are streamed forward during orthogonalization (dots and
//!    axpys) — served by [`ColumnStorage::read_chunk`] over block-aligned
//!    row ranges so each thread decompresses only its own rows;
//! 3. occasional random access for diagnostics — [`ColumnStorage::load`].
//!
//! The solver is generic over [`ColumnStorage`], so swapping `float64` for
//! `float32`, `float16`, `bfloat16` or any `frsz2_l` variant is a type
//! parameter change, mirroring `Acc<...>` in the paper's Figure 4.

/// A value-level storage format: each f64 is converted independently.
///
/// This is the "compression by casting to low precision" of the original
/// CB-GMRES paper. All arithmetic stays in f64; only the stored bytes are
/// narrow.
pub trait StoredScalar: Copy + Send + Sync + Default + 'static {
    /// Display name matching the paper's labels (`float64`, `float32`, ...).
    const NAME: &'static str;
    fn encode(x: f64) -> Self;
    fn decode(self) -> f64;
}

impl StoredScalar for f64 {
    const NAME: &'static str = "float64";
    #[inline(always)]
    fn encode(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn decode(self) -> f64 {
        self
    }
}

impl StoredScalar for f32 {
    const NAME: &'static str = "float32";
    #[inline(always)]
    fn encode(x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn decode(self) -> f64 {
        self as f64
    }
}

/// Lazily-built 65536-entry decode table: f16 -> f64 widening is in the
/// solver's innermost loop, and a 512 KiB table beats the branchy bit
/// manipulation there.
fn f16_decode_table() -> &'static [f64; 1 << 16] {
    static TABLE: std::sync::OnceLock<Box<[f64; 1 << 16]>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0.0f64; 1 << 16];
        for (bits, slot) in t.iter_mut().enumerate() {
            *slot = crate::F16::from_bits(bits as u16).to_f64();
        }
        t.into_boxed_slice().try_into().unwrap()
    })
}

impl StoredScalar for crate::F16 {
    const NAME: &'static str = "float16";
    #[inline(always)]
    fn encode(x: f64) -> crate::F16 {
        crate::F16::from_f64(x)
    }
    #[inline(always)]
    fn decode(self) -> f64 {
        f16_decode_table()[self.to_bits() as usize]
    }
}

impl StoredScalar for crate::BF16 {
    const NAME: &'static str = "bfloat16";
    #[inline(always)]
    fn encode(x: f64) -> crate::BF16 {
        crate::BF16::from_f64(x)
    }
    #[inline(always)]
    fn decode(self) -> f64 {
        self.to_f64()
    }
}

/// Column-major matrix of f64 values held in an arbitrary storage format.
///
/// `rows` is fixed at construction; columns are written whole and read
/// back either whole, in chunks, or element-wise. Implementations must be
/// `Sync` so the solver can decompress disjoint row ranges from multiple
/// threads concurrently.
pub trait ColumnStorage: Send + Sync {
    /// Allocate storage for a `rows x cols` matrix (zero-initialized).
    fn with_shape(rows: usize, cols: usize) -> Self
    where
        Self: Sized;

    fn rows(&self) -> usize;
    fn cols(&self) -> usize;

    /// Overwrite column `j` with `data` (`data.len() == rows`).
    /// This is the compression step.
    fn write_column(&mut self, j: usize, data: &[f64]);

    /// Decompress rows `row_start .. row_start + out.len()` of column `j`.
    ///
    /// `row_start` must be a multiple of [`Self::chunk_align`] and
    /// `out.len()` a multiple of it too (except for the final chunk of a
    /// column). This lets block formats decode whole blocks without
    /// cross-chunk state.
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]);

    /// Decompress all of column `j` into `out` (`out.len() == rows`).
    fn read_column(&self, j: usize, out: &mut [f64]) {
        self.read_chunk(j, 0, out);
    }

    /// Random access to element `(i, j)`.
    fn load(&self, i: usize, j: usize) -> f64;

    /// Required row alignment of chunked reads (1 for scalar formats,
    /// the block size for FRSZ2).
    fn chunk_align(&self) -> usize {
        1
    }

    /// Fused dot product: `Σ_i column_j[row_start + i] · w[i]`, the
    /// orthogonalization kernel. The default tiles through a small stack
    /// buffer; formats override with copy-free loops.
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        let mut tile = [0.0f64; 512];
        let mut acc = 0.0;
        let mut off = 0;
        while off < w.len() {
            let len = 512.min(w.len() - off);
            self.read_chunk(j, row_start + off, &mut tile[..len]);
            for (a, b) in tile[..len].iter().zip(&w[off..off + len]) {
                acc += a * b;
            }
            off += len;
        }
        acc
    }

    /// Fused axpy: `w[i] += alpha · column_j[row_start + i]`, the
    /// projection-update kernel. Same tiling default as
    /// [`ColumnStorage::dot_chunk`].
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        let mut tile = [0.0f64; 512];
        let mut off = 0;
        while off < w.len() {
            let len = 512.min(w.len() - off);
            self.read_chunk(j, row_start + off, &mut tile[..len]);
            for (b, a) in w[off..off + len].iter_mut().zip(&tile[..len]) {
                *b += alpha * a;
            }
            off += len;
        }
    }

    /// Multi-column fused dot products:
    /// `out[j] = Σ_i column_j[row_start + i] · w[i]` for every
    /// `j < k` — the whole Gram-Schmidt projection row `h = Vᵀw` over
    /// one row chunk in a single sweep.
    ///
    /// The default simply runs [`ColumnStorage::dot_chunk`] per column
    /// (inheriting its tiling); block formats override with kernels
    /// that sweep all `k` columns per storage block so each block of
    /// `w` is loaded once instead of `k` times.
    ///
    /// # Bit-identity contract
    /// `out[j]` must accumulate column `j`'s products in row order with
    /// one accumulator — i.e. be bit-for-bit what `k` independent
    /// [`ColumnStorage::dot_chunk`] calls would produce. The solver's
    /// reproducibility-across-formats-and-threads guarantees depend on
    /// every implementation honoring this.
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        for (j, out_j) in out.iter_mut().enumerate().take(k) {
            *out_j = self.dot_chunk(j, row_start, w);
        }
    }

    /// Multi-column fused update:
    /// `w[i] += Σ_j alphas[j] · column_j[row_start + i]` for every
    /// `j < k` — the projection update `w ← w − Vh` over one row chunk
    /// in a single sweep (callers pass `alphas = −h`).
    ///
    /// The default applies [`ColumnStorage::axpy_chunk`] per column;
    /// overrides fuse the sweep so each element of `w` is loaded and
    /// stored once for all `k` columns instead of `k` times.
    ///
    /// # Bit-identity contract
    /// Per element, column contributions must apply one at a time in
    /// ascending `j` (each addition separately rounded), and columns
    /// with `alphas[j] == 0.0` must be skipped entirely — adding a
    /// literal `+ 0.0` could flip a signed zero. The result must be
    /// bit-for-bit what `k` sequential [`ColumnStorage::axpy_chunk`]
    /// calls (skipping zero coefficients) would produce.
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        for (j, &a) in alphas.iter().enumerate().take(k) {
            if a == 0.0 {
                continue;
            }
            self.axpy_chunk(j, row_start, a, w);
        }
    }

    /// Multi-RHS fused dot products:
    /// `out[j·nw + t] = Σ_i column_j[row_start + i] · ws[i·nw + t]` for
    /// every `j < k`, `t < nw` — the block-Arnoldi projection
    /// `H = VᵀW` over one row chunk. `ws` holds `nw` right-hand vectors
    /// interleaved row-major (vector `t` at stride `nw`), the layout
    /// [`SparseMatrix::spmm_into`]-style multi-RHS buffers already use.
    ///
    /// The default tiles each column through a stack buffer; block
    /// formats override so each stored block is decoded **once** for
    /// all `nw` vectors — the whole point of a block solve: one decode
    /// sweep of the compressed basis per expansion block, not one per
    /// right-hand side.
    ///
    /// # Bit-identity contract
    /// `out[j·nw + t]` must accumulate column `j`'s products with
    /// vector `t` in row order with one accumulator — bit-for-bit what
    /// [`ColumnStorage::dot_chunk`] would produce on the deinterleaved
    /// vector `t`.
    ///
    /// [`SparseMatrix::spmm_into`]: trait.ColumnStorage.html#method.dots_many_chunk
    fn dots_many_chunk(&self, k: usize, row_start: usize, ws: &[f64], nw: usize, out: &mut [f64]) {
        assert!(nw >= 1, "dots_many_chunk needs at least one vector");
        debug_assert_eq!(ws.len() % nw, 0);
        let len = ws.len() / nw;
        let mut tile = [0.0f64; 512];
        for j in 0..k {
            let accs = &mut out[j * nw..(j + 1) * nw];
            accs.fill(0.0);
            let mut off = 0;
            while off < len {
                let t_len = 512.min(len - off);
                self.read_chunk(j, row_start + off, &mut tile[..t_len]);
                for (i, &v) in tile[..t_len].iter().enumerate() {
                    let row = &ws[(off + i) * nw..(off + i) * nw + nw];
                    for (acc, &wv) in accs.iter_mut().zip(row) {
                        *acc += v * wv;
                    }
                }
                off += t_len;
            }
        }
    }

    /// Multi-RHS fused update:
    /// `ws[i·nw + t] += Σ_j alphas[j·nw + t] · column_j[row_start + i]`
    /// — the block projection update `W ← W − VH` over one row chunk,
    /// with `ws` interleaved row-major as in
    /// [`ColumnStorage::dots_many_chunk`]. Callers pass `alphas = −H`.
    ///
    /// The default applies per column through a stack tile; block
    /// formats override so each stored block is decoded once for all
    /// `nw` vectors.
    ///
    /// # Bit-identity contract
    /// Per element of each vector, column contributions apply one at a
    /// time in ascending `j` (each addition separately rounded), and a
    /// `(j, t)` pair with `alphas[j·nw + t] == 0.0` must be skipped
    /// entirely (a literal `+ 0.0` could flip a signed zero) —
    /// bit-for-bit what [`ColumnStorage::gemv_chunk`] would produce on
    /// the deinterleaved vector `t`.
    fn gemv_many_chunk(
        &self,
        k: usize,
        row_start: usize,
        alphas: &[f64],
        nw: usize,
        ws: &mut [f64],
    ) {
        assert!(nw >= 1, "gemv_many_chunk needs at least one vector");
        debug_assert_eq!(ws.len() % nw, 0);
        let len = ws.len() / nw;
        let mut tile = [0.0f64; 512];
        for j in 0..k {
            let al = &alphas[j * nw..(j + 1) * nw];
            if al.iter().all(|&a| a == 0.0) {
                continue;
            }
            let mut off = 0;
            while off < len {
                let t_len = 512.min(len - off);
                self.read_chunk(j, row_start + off, &mut tile[..t_len]);
                for (i, &v) in tile[..t_len].iter().enumerate() {
                    let row = &mut ws[(off + i) * nw..(off + i) * nw + nw];
                    for (wv, &a) in row.iter_mut().zip(al) {
                        if a != 0.0 {
                            *wv += a * v;
                        }
                    }
                }
                off += t_len;
            }
        }
    }

    /// Bytes of storage actually occupied by one column, including any
    /// per-block metadata. Drives the memory-traffic model.
    fn column_bytes(&self) -> usize;

    /// Average storage rate in bits per value (Eq. 3 for FRSZ2).
    ///
    /// A zero-row store has no values, so the rate is defined as 0.0
    /// rather than the `0/0 = NaN` the naive quotient would produce.
    fn bits_per_value(&self) -> f64 {
        if self.rows() == 0 {
            0.0
        } else {
            self.column_bytes() as f64 * 8.0 / self.rows() as f64
        }
    }

    /// Display name matching the paper's labels.
    fn format_name(&self) -> String;
}

/// Boxed storage is itself storage: every method delegates to the
/// contained object. This is what makes runtime format selection
/// possible — a `krylov::basis_format` factory hands the solver a
/// `Box<dyn ColumnStorage>` and the generic solve path runs unchanged
/// (the same pattern as `spla::FormatChoice::build` returning
/// `Box<dyn SparseMatrix>`). The only non-object-safe method is
/// [`ColumnStorage::with_shape`], which cannot pick a format out of
/// thin air and therefore panics; boxed stores are always built by a
/// factory.
impl ColumnStorage for Box<dyn ColumnStorage> {
    fn with_shape(_rows: usize, _cols: usize) -> Self {
        panic!("Box<dyn ColumnStorage> has no default format: build one via a basis-format factory")
    }

    #[inline]
    fn rows(&self) -> usize {
        (**self).rows()
    }

    #[inline]
    fn cols(&self) -> usize {
        (**self).cols()
    }

    fn write_column(&mut self, j: usize, data: &[f64]) {
        (**self).write_column(j, data);
    }

    #[inline]
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]) {
        (**self).read_chunk(j, row_start, out);
    }

    #[inline]
    fn read_column(&self, j: usize, out: &mut [f64]) {
        (**self).read_column(j, out);
    }

    #[inline]
    fn load(&self, i: usize, j: usize) -> f64 {
        (**self).load(i, j)
    }

    #[inline]
    fn chunk_align(&self) -> usize {
        (**self).chunk_align()
    }

    #[inline]
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        (**self).dot_chunk(j, row_start, w)
    }

    #[inline]
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        (**self).axpy_chunk(j, row_start, alpha, w)
    }

    #[inline]
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        (**self).dots_chunk(k, row_start, w, out)
    }

    #[inline]
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        (**self).gemv_chunk(k, row_start, alphas, w)
    }

    fn column_bytes(&self) -> usize {
        (**self).column_bytes()
    }

    fn bits_per_value(&self) -> f64 {
        (**self).bits_per_value()
    }

    fn format_name(&self) -> String {
        (**self).format_name()
    }
}

/// [`ColumnStorage`] backed by a flat `Vec<T>` of independently-cast values.
#[derive(Clone, Debug)]
pub struct DenseStore<T: StoredScalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: StoredScalar> DenseStore<T> {
    /// Borrow the raw stored column (test/diagnostic use).
    pub fn column_raw(&self, j: usize) -> &[T] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }
}

impl<T: StoredScalar> ColumnStorage for DenseStore<T> {
    fn with_shape(rows: usize, cols: usize) -> Self {
        DenseStore {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    #[inline]
    fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    fn cols(&self) -> usize {
        self.cols
    }

    fn write_column(&mut self, j: usize, data: &[f64]) {
        assert_eq!(data.len(), self.rows, "column length mismatch");
        assert!(j < self.cols, "column index {j} out of range");
        let col = &mut self.data[j * self.rows..(j + 1) * self.rows];
        for (dst, &src) in col.iter_mut().zip(data) {
            *dst = T::encode(src);
        }
    }

    #[inline]
    fn read_chunk(&self, j: usize, row_start: usize, out: &mut [f64]) {
        debug_assert!(row_start + out.len() <= self.rows);
        let col = &self.data[j * self.rows + row_start..j * self.rows + row_start + out.len()];
        for (dst, src) in out.iter_mut().zip(col) {
            *dst = src.decode();
        }
    }

    #[inline]
    fn load(&self, i: usize, j: usize) -> f64 {
        self.data[j * self.rows + i].decode()
    }

    #[inline]
    fn dot_chunk(&self, j: usize, row_start: usize, w: &[f64]) -> f64 {
        let col = &self.data[j * self.rows + row_start..j * self.rows + row_start + w.len()];
        let mut acc = 0.0;
        for (a, b) in col.iter().zip(w) {
            acc += a.decode() * b;
        }
        acc
    }

    #[inline]
    fn axpy_chunk(&self, j: usize, row_start: usize, alpha: f64, w: &mut [f64]) {
        let col = &self.data[j * self.rows + row_start..j * self.rows + row_start + w.len()];
        for (b, a) in w.iter_mut().zip(col) {
            *b += alpha * a.decode();
        }
    }

    /// Fused multi-column dots, tiled so the active slice of `w` stays
    /// cache-hot while all `k` column tiles stream past it. Each
    /// accumulator still sums its column in row order (tile by tile),
    /// so results are bit-identical to per-column
    /// [`DenseStore::dot_chunk`][ColumnStorage::dot_chunk] calls.
    fn dots_chunk(&self, k: usize, row_start: usize, w: &[f64], out: &mut [f64]) {
        const TILE: usize = 64;
        let rows = self.rows;
        out[..k].fill(0.0);
        let mut off = 0;
        while off < w.len() {
            let len = TILE.min(w.len() - off);
            let wt = &w[off..off + len];
            for (j, acc) in out[..k].iter_mut().enumerate() {
                let base = j * rows + row_start + off;
                let col = &self.data[base..base + len];
                let mut a = *acc;
                for (x, y) in col.iter().zip(wt) {
                    a += x.decode() * y;
                }
                *acc = a;
            }
            off += len;
        }
    }

    /// Fused multi-column update: each tile of `w` is loaded and stored
    /// once for all `k` columns. Per element the columns apply in `j`
    /// order and zero coefficients are skipped, so results are
    /// bit-identical to sequential
    /// [`DenseStore::axpy_chunk`][ColumnStorage::axpy_chunk] calls.
    fn gemv_chunk(&self, k: usize, row_start: usize, alphas: &[f64], w: &mut [f64]) {
        const TILE: usize = 64;
        let rows = self.rows;
        let mut off = 0;
        while off < w.len() {
            let len = TILE.min(w.len() - off);
            let wt = &mut w[off..off + len];
            for (j, &a) in alphas.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let base = j * rows + row_start + off;
                let col = &self.data[base..base + len];
                for (b, x) in wt.iter_mut().zip(col) {
                    *b += a * x.decode();
                }
            }
            off += len;
        }
    }

    fn column_bytes(&self) -> usize {
        self.rows * std::mem::size_of::<T>()
    }

    fn format_name(&self) -> String {
        T::NAME.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BF16, F16};

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 - 8.0) / 3.0).collect()
    }

    #[test]
    fn f64_store_is_lossless() {
        let mut st = DenseStore::<f64>::with_shape(17, 3);
        let v = ramp(17);
        st.write_column(1, &v);
        let mut out = vec![0.0; 17];
        st.read_column(1, &mut out);
        assert_eq!(out, v);
        assert_eq!(st.load(5, 1), v[5]);
        assert_eq!(st.column_bytes(), 17 * 8);
        assert_eq!(st.format_name(), "float64");
    }

    #[test]
    fn f32_store_rounds_once() {
        let mut st = DenseStore::<f32>::with_shape(9, 1);
        let v = ramp(9);
        st.write_column(0, &v);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(st.load(i, 0), x as f32 as f64);
        }
        assert!((st.bits_per_value() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn f16_and_bf16_stores_decode_to_nearest() {
        let v = ramp(33);
        let mut h = DenseStore::<F16>::with_shape(33, 1);
        let mut b = DenseStore::<BF16>::with_shape(33, 1);
        h.write_column(0, &v);
        b.write_column(0, &v);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(h.load(i, 0), F16::from_f64(x).to_f64());
            assert_eq!(b.load(i, 0), BF16::from_f64(x).to_f64());
        }
    }

    #[test]
    fn chunked_reads_cover_column() {
        let mut st = DenseStore::<f32>::with_shape(100, 2);
        let v = ramp(100);
        st.write_column(1, &v);
        let mut full = vec![0.0; 100];
        st.read_column(1, &mut full);
        let mut pieced = vec![0.0; 100];
        for start in (0..100).step_by(32) {
            let len = 32.min(100 - start);
            st.read_chunk(1, start, &mut pieced[start..start + len]);
        }
        assert_eq!(full, pieced);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn wrong_column_length_panics() {
        let mut st = DenseStore::<f64>::with_shape(4, 1);
        st.write_column(0, &[1.0, 2.0]);
    }

    #[test]
    fn boxed_storage_delegates_every_method() {
        let mut st: Box<dyn ColumnStorage> = Box::new(DenseStore::<f32>::with_shape(40, 2));
        let v = ramp(40);
        st.write_column(1, &v);
        assert_eq!(st.rows(), 40);
        assert_eq!(st.cols(), 2);
        assert_eq!(st.chunk_align(), 1);
        assert_eq!(st.column_bytes(), 40 * 4);
        assert!((st.bits_per_value() - 32.0).abs() < 1e-12);
        assert_eq!(st.format_name(), "float32");
        let mut out = vec![0.0; 40];
        st.read_column(1, &mut out);
        for (i, &x) in v.iter().enumerate() {
            let expect = x as f32 as f64;
            assert_eq!(out[i], expect);
            assert_eq!(st.load(i, 1), expect);
        }
        // Fused kernels go through the inner store's implementation.
        let w = vec![1.0; 40];
        let dot = st.dot_chunk(1, 0, &w);
        let serial: f64 = out.iter().sum();
        assert_eq!(dot.to_bits(), serial.to_bits());
        let mut acc = vec![0.0; 40];
        st.axpy_chunk(1, 0, 2.0, &mut acc);
        for (a, o) in acc.iter().zip(&out) {
            assert_eq!(*a, 2.0 * o);
        }
    }

    #[test]
    #[should_panic(expected = "basis-format factory")]
    fn boxed_with_shape_is_rejected() {
        let _ = <Box<dyn ColumnStorage>>::with_shape(4, 4);
    }

    #[test]
    fn zero_row_store_reports_zero_bits_per_value() {
        let st = DenseStore::<f64>::with_shape(0, 3);
        assert_eq!(st.bits_per_value(), 0.0);
        assert!(!st.bits_per_value().is_nan());
    }
}
