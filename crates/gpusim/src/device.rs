//! Device descriptions: the published peak numbers the cost model uses.

/// GPU resource peaks. All rates are aggregate device peaks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Global-memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Peak FP64 throughput in FLOP/s (FMA counted as 2).
    pub fp64_flops: f64,
    /// Peak FP32 throughput in FLOP/s.
    pub fp32_flops: f64,
    /// Peak 32-bit integer-ALU throughput in ops/s. On Hopper/Ampere the
    /// INT32 units share issue with FP32, sustaining about half the FP32
    /// rate on mixed code — this is the rate that makes decompression
    /// instruction overhead visible (the §IV-C "l = 16 does not saturate
    /// the bandwidth" effect).
    pub int_ops: f64,
    /// Warp-shuffle throughput in ops/s (shared special pipe).
    pub shfl_ops: f64,
    /// Load/store-unit transaction throughput in 32-byte sectors/s.
    pub sector_rate: f64,
    pub sm_count: u32,
}

/// NVIDIA H100 PCIe (the paper's evaluation platform, §V-A): 80 GB,
/// 2000 GB/s, 25.6 TFLOP/s FP64, 51.2 TFLOP/s FP32, 114 SMs.
pub const H100_PCIE: DeviceSpec = DeviceSpec {
    name: "H100-PCIe",
    mem_bw: 2000.0e9,
    fp64_flops: 25.6e12,
    fp32_flops: 51.2e12,
    int_ops: 25.6e12 / 2.0,
    shfl_ops: 6.4e12,
    // 114 SMs x 4 LSUs x ~1.5 GHz sectors.
    sector_rate: 684.0e9,
    sm_count: 114,
};

/// NVIDIA A100 SXM4-40GB (the cuSZp2 comparison platform of §III-B):
/// 1555 GB/s, 9.7 TFLOP/s FP64, 19.5 TFLOP/s FP32, 108 SMs.
pub const A100_SXM: DeviceSpec = DeviceSpec {
    name: "A100-SXM4",
    mem_bw: 1555.0e9,
    fp64_flops: 9.7e12,
    fp32_flops: 19.5e12,
    int_ops: 19.5e12 / 2.0,
    shfl_ops: 4.8e12,
    sector_rate: 648.0e9,
    sm_count: 108,
};

impl DeviceSpec {
    /// The paper's introduction ratio: double-precision operations
    /// executable per f64 loaded from memory (≈100 for the H100).
    pub fn flops_per_f64_loaded(&self) -> f64 {
        self.fp64_flops / (self.mem_bw / 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_matches_paper_quoted_numbers() {
        assert_eq!(H100_PCIE.mem_bw, 2.0e12);
        assert_eq!(H100_PCIE.fp64_flops, 25.6e12);
        assert_eq!(H100_PCIE.fp32_flops, 2.0 * H100_PCIE.fp64_flops);
        // "an algorithm can execute up to 100 double-precision (64-bit)
        // computations per double-precision value retrieved" (§I).
        let r = H100_PCIE.flops_per_f64_loaded();
        assert!((r - 102.4).abs() < 0.5, "got {r}");
    }
}
