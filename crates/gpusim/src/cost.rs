//! Multi-resource roofline cost model.
//!
//! Kernel time is the maximum over the independent hardware resources —
//! memory bandwidth, FP64/FP32 pipes, the integer ALU (which executes
//! the decompression bit manipulation), the shuffle pipe, and the
//! load/store units. This is the standard bound-and-bottleneck model the
//! paper's introduction applies by hand; with measured instruction
//! counts it yields the Fig. 4 curves and the §IV-C bandwidth numbers.

use crate::counters::Counters;
use crate::device::DeviceSpec;

/// Per-resource time decomposition for one kernel run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    pub mem_time: f64,
    pub fp64_time: f64,
    pub fp32_time: f64,
    pub int_time: f64,
    pub shfl_time: f64,
    pub ldst_time: f64,
    /// Predicted kernel time: max over all resources.
    pub total: f64,
}

impl CostBreakdown {
    /// Name of the binding resource.
    pub fn bottleneck(&self) -> &'static str {
        let pairs = [
            (self.mem_time, "memory-bandwidth"),
            (self.fp64_time, "fp64-pipe"),
            (self.fp32_time, "fp32-pipe"),
            (self.int_time, "int-alu"),
            (self.shfl_time, "shuffle-pipe"),
            (self.ldst_time, "load-store-units"),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|&(_, n)| n)
            .unwrap_or("memory-bandwidth")
    }

    /// Achieved memory bandwidth in bytes/s given total traffic.
    pub fn achieved_bandwidth(&self, bytes: u64) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            bytes as f64 / self.total
        }
    }
}

/// Predict the execution time of a kernel with the given counters.
pub fn estimate(dev: &DeviceSpec, c: &Counters) -> CostBreakdown {
    let mut b = CostBreakdown {
        mem_time: c.total_bytes() as f64 / dev.mem_bw,
        fp64_time: c.fp64 as f64 / dev.fp64_flops,
        fp32_time: c.fp32 as f64 / dev.fp32_flops,
        // CLZ executes on the integer pipe.
        int_time: (c.int + c.clz) as f64 / dev.int_ops,
        shfl_time: c.shfl as f64 / dev.shfl_ops,
        ldst_time: (c.sectors_read + c.sectors_written) as f64 / dev.sector_rate,
        total: 0.0,
    };
    b.total = b
        .mem_time
        .max(b.fp64_time)
        .max(b.fp32_time)
        .max(b.int_time)
        .max(b.shfl_time)
        .max(b.ldst_time);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::H100_PCIE;

    #[test]
    fn pure_streaming_is_bandwidth_bound() {
        let c = Counters {
            bytes_read: 2_000_000_000,
            sectors_read: 2_000_000_000 / 32,
            ..Counters::default()
        };
        let b = estimate(&H100_PCIE, &c);
        assert_eq!(b.bottleneck(), "memory-bandwidth");
        assert!((b.total - 1e-3).abs() < 1e-6, "2 GB at 2 TB/s is 1 ms");
        assert!((b.achieved_bandwidth(c.total_bytes()) - 2.0e12).abs() < 1e6);
    }

    #[test]
    fn flop_heavy_kernel_is_fp64_bound() {
        let c = Counters {
            bytes_read: 8_000_000,
            fp64: 25_600_000_000,
            ..Counters::default()
        };
        let b = estimate(&H100_PCIE, &c);
        assert_eq!(b.bottleneck(), "fp64-pipe");
        assert!((b.total - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn crossover_at_the_papers_ratio() {
        // §I: ~100 FP64 ops per loaded f64 is the compute/memory
        // crossover on the H100.
        let n = 1_000_000u64;
        let mem_only = Counters {
            bytes_read: 8 * n,
            ..Counters::default()
        };
        let at_crossover = Counters {
            bytes_read: 8 * n,
            fp64: 103 * n,
            ..Counters::default()
        };
        assert_eq!(
            estimate(&H100_PCIE, &mem_only).bottleneck(),
            "memory-bandwidth"
        );
        assert_eq!(
            estimate(&H100_PCIE, &at_crossover).bottleneck(),
            "fp64-pipe"
        );
    }
}
