//! Instruction and memory-traffic counters.

/// Instruction classes tracked by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Double-precision floating point (FMA counts as 2 FLOPs).
    Fp64,
    /// Single-precision floating point.
    Fp32,
    /// 32/64-bit integer ALU (add, shift, mask, compare, select).
    Int,
    /// Count-leading-zeros (the `count_zero` intrinsic of §IV-C).
    Clz,
    /// Warp shuffle.
    Shfl,
}

/// Aggregated execution counters for a kernel run. Counts are per
/// *lane-operation* (one instruction executed by one active lane).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub fp64: u64,
    pub fp32: u64,
    pub int: u64,
    pub clz: u64,
    pub shfl: u64,
    /// Bytes moved from global memory (sector-granular).
    pub bytes_read: u64,
    /// Bytes moved to global memory (sector-granular).
    pub bytes_written: u64,
    /// 32-byte sectors touched by loads.
    pub sectors_read: u64,
    /// 32-byte sectors touched by stores.
    pub sectors_written: u64,
}

impl Counters {
    #[inline]
    pub fn bump(&mut self, class: InstrClass, n: u64) {
        match class {
            InstrClass::Fp64 => self.fp64 += n,
            InstrClass::Fp32 => self.fp32 += n,
            InstrClass::Int => self.int += n,
            InstrClass::Clz => self.clz += n,
            InstrClass::Shfl => self.shfl += n,
        }
    }

    /// Merge another counter set (used when reducing over blocks).
    pub fn merge(&mut self, o: &Counters) {
        self.fp64 += o.fp64;
        self.fp32 += o.fp32;
        self.int += o.int;
        self.clz += o.clz;
        self.shfl += o.shfl;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.sectors_read += o.sectors_read;
        self.sectors_written += o.sectors_written;
    }

    /// Total instructions of all classes.
    pub fn total_instrs(&self) -> u64 {
        self.fp64 + self.fp32 + self.int + self.clz + self.shfl
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_merge() {
        let mut a = Counters::default();
        a.bump(InstrClass::Fp64, 10);
        a.bump(InstrClass::Int, 5);
        a.bump(InstrClass::Clz, 1);
        let mut b = Counters::default();
        b.bump(InstrClass::Fp64, 3);
        b.bytes_read = 64;
        b.sectors_read = 2;
        a.merge(&b);
        assert_eq!(a.fp64, 13);
        assert_eq!(a.int, 5);
        assert_eq!(a.total_instrs(), 19);
        assert_eq!(a.total_bytes(), 64);
    }
}
