//! Simulated SpMV kernels: CSR scalar-row vs SELL-C-σ warp-per-slice.
//!
//! This is where the sparse-format decision of `spla::select` becomes
//! visible in the execution model. Both kernels are *functional* (their
//! output is asserted bit-identical to the CPU `SparseMatrix::spmv`,
//! which accumulates each row serially with separate mul/add — no FMA
//! contraction) but they drive the warp's coalescing counters very
//! differently:
//!
//! * **CSR scalar-row** — one lane per row, 32 consecutive rows per
//!   warp. In step `k` lane `i` loads entry `row_ptr[rᵢ] + k`: lanes
//!   sit ~`mean_row_len` elements apart, so every lane touches its own
//!   32-byte sector and the value/index streams are nearly
//!   uncoalesced — the classic reason GPU libraries abandon scalar CSR.
//! * **SELL-C-σ warp-per-slice** (`C = 32`) — lane `r` owns slice lane
//!   `r`. In step `k` the warp loads `slice_ptr[s] + k·32 + r`:
//!   32 *consecutive* values (8 sectors) and 32 consecutive indices
//!   (4 sectors) per step, fully coalesced; padding lanes predicate
//!   off. The price is the σ-permutation scatter on the `y` store.
//!
//! Metadata streams (`row_ptr`, `slice_ptr`, slice widths, the
//! permutation) are ignored by the accounting in *both* kernels: they
//! are `O(rows)` against the `O(nnz)` value/index traffic the format
//! comparison is about. The `x` gather is scattered in both kernels
//! alike.

use crate::counters::Counters;
use crate::launch::launch_over;
use crate::warp::WARP;
use spla::{Csr, SellCSigma, SparseMatrix};

/// Simulated scalar-row CSR SpMV (`y = A x`): one lane per row, counted
/// loads/FLOPs, output bit-identical to `Csr::spmv`.
pub fn spmv_csr_sim(a: &Csr, x: &[f64]) -> (Vec<f64>, Counters) {
    assert_eq!(x.len(), a.cols(), "x length mismatch");
    let mut y = vec![0.0f64; a.rows()];
    if a.nnz() == 0 {
        return (y, Counters::default());
    }
    let row_ptr = a.row_ptr();
    let col_idx = a.col_indices();
    let values = a.values();
    let counters = launch_over(&mut y, WARP, |w, b, tile| {
        let base = b * WARP;
        let lanes = tile.len();
        let max_len = (0..lanes)
            .map(|i| row_ptr[base + i + 1] - row_ptr[base + i])
            .max()
            .unwrap_or(0);
        let mut acc = [0.0f64; WARP];
        for k in 0..max_len {
            // Per-lane entry index; predicated-off lanes (k beyond
            // their row) replay an active lane's address so they add
            // no sectors, like a real predicated load.
            let mut idxs = [0usize; WARP];
            let mut active = [false; WARP];
            let mut fallback = 0usize;
            for i in 0..lanes {
                let (lo, hi) = (row_ptr[base + i], row_ptr[base + i + 1]);
                if lo + k < hi {
                    idxs[i] = lo + k;
                    active[i] = true;
                    fallback = lo + k;
                }
            }
            for i in 0..WARP {
                if !active[i] {
                    idxs[i] = fallback;
                }
            }
            let cols = w.load_u32(col_idx, &idxs);
            let vals = w.load_f64(values, &idxs);
            // x gather through the just-loaded column indices.
            let mut xidxs = [0usize; WARP];
            let mut xfallback = 0usize;
            for i in 0..lanes {
                if active[i] {
                    xidxs[i] = cols[i] as usize;
                    xfallback = xidxs[i];
                }
            }
            for i in 0..WARP {
                if !active[i] {
                    xidxs[i] = xfallback;
                }
            }
            let xv = w.load_f64(x, &xidxs);
            for i in 0..lanes {
                if active[i] {
                    // Separate mul + add: bit-compatible with the CPU
                    // kernels (no FMA contraction).
                    let p = w.f64_mul(vals[i], xv[i]);
                    acc[i] = w.f64_add(acc[i], p);
                }
            }
        }
        tile.copy_from_slice(&acc[..lanes]);
        // Coalesced output store: 32 consecutive rows.
        let out_idxs: Vec<usize> = (0..lanes).map(|i| base + i).collect();
        w.account_store_f64(&out_idxs);
    });
    (y, counters)
}

/// Simulated SELL-C-σ SpMV (`y = A x`, original row order): one warp
/// per slice, `C` must equal the warp width 32. Counted loads/FLOPs,
/// output bit-identical to `Csr::spmv`.
///
/// # Panics
/// If the matrix's slice height is not 32.
pub fn spmv_sell_sim(a: &SellCSigma, x: &[f64]) -> (Vec<f64>, Counters) {
    assert_eq!(
        a.slice_height(),
        WARP,
        "simulated SELL kernel requires C = warp width (32)"
    );
    assert_eq!(x.len(), a.cols(), "x length mismatch");
    let mut y = vec![0.0f64; a.rows()];
    if a.nnz() == 0 {
        return (y, Counters::default());
    }
    let slice_ptr = a.slice_ptr();
    let slice_width = a.slice_widths();
    let perm = a.permutation();
    let row_len = a.row_lengths();
    let col_idx = a.col_indices();
    let values = a.values();

    // Kernel output in permuted (storage) order; scattered below.
    let mut yp = vec![0.0f64; perm.len()];
    let counters = launch_over(&mut yp, WARP, |w, s, tile| {
        let base = slice_ptr[s];
        let width = slice_width[s] as usize;
        let lanes: [Option<u32>; WARP] = std::array::from_fn(|r| {
            let p = perm[s * WARP + r];
            (p != u32::MAX).then_some(p)
        });
        let mut acc = [0.0f64; WARP];
        for k in 0..width {
            // Fully coalesced: lane r reads slot base + k*32 + r.
            let idxs: [usize; WARP] = std::array::from_fn(|r| base + k * WARP + r);
            let cols = w.load_u32(col_idx, &idxs);
            let vals = w.load_f64(values, &idxs);
            let mut xidxs = [0usize; WARP];
            let mut active = [false; WARP];
            let mut xfallback = 0usize;
            for r in 0..WARP {
                if let Some(row) = lanes[r] {
                    if (k as u32) < row_len[row as usize] {
                        xidxs[r] = cols[r] as usize;
                        active[r] = true;
                        xfallback = xidxs[r];
                    }
                }
            }
            for r in 0..WARP {
                if !active[r] {
                    xidxs[r] = xfallback;
                }
            }
            let xv = w.load_f64(x, &xidxs);
            for r in 0..WARP {
                if active[r] {
                    let p = w.f64_mul(vals[r], xv[r]);
                    acc[r] = w.f64_add(acc[r], p);
                }
            }
        }
        tile.copy_from_slice(&acc);
        // Permutation scatter of the output: the coalescing price of
        // σ-sorting.
        let out_idxs: Vec<usize> = lanes.iter().flatten().map(|&p| p as usize).collect();
        w.account_store_f64(&out_idxs);
    });
    for (p, &v) in perm.iter().zip(&yp) {
        if *p != u32::MAX {
            y[*p as usize] = v;
        }
    }
    (y, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::estimate;
    use crate::device::H100_PCIE;
    use spla::{gen, Coo};

    fn reference(a: &Csr, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.rows()];
        a.spmv_serial(x, &mut y);
        y
    }

    #[test]
    fn csr_sim_matches_cpu_spmv_bitwise() {
        let a = gen::conv_diff_3d(9, 8, 7, [0.3, 0.2, 0.1], 0.2);
        let x: Vec<f64> = (0..a.cols()).map(|i| ((i as f64) * 0.37).sin()).collect();
        let (y, c) = spmv_csr_sim(&a, &x);
        let expect = reference(&a, &x);
        for i in 0..a.rows() {
            assert_eq!(y[i].to_bits(), expect[i].to_bits(), "row {i}");
        }
        assert_eq!(c.fp64, 2 * a.nnz() as u64, "one mul + one add per nnz");
    }

    #[test]
    fn sell_sim_matches_cpu_spmv_bitwise() {
        // Irregular rows + a non-multiple-of-32 row count exercise the
        // σ-permutation, padding lanes, and the trailing slice.
        let n = 1003;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 3.0 + (i % 5) as f64);
            for k in 0..(i % 7) {
                let c = (i + 11 * (k + 1)) % n;
                if c != i {
                    m.push(i, c, -0.125 - (k as f64) * 0.0625);
                }
            }
        }
        let a = m.to_csr();
        let s = SellCSigma::from_csr(&a, 32, 256);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.21).cos()).collect();
        let (y, c) = spmv_sell_sim(&s, &x);
        let expect = reference(&a, &x);
        for i in 0..n {
            assert_eq!(y[i].to_bits(), expect[i].to_bits(), "row {i}");
        }
        assert_eq!(c.fp64, 2 * a.nnz() as u64);
    }

    #[test]
    fn sell_coalesces_where_csr_does_not() {
        // 7-point stencil: ~7 entries per row, so scalar-CSR lanes sit
        // 7 elements apart (one sector each) while SELL streams 32
        // consecutive elements per step.
        let a = gen::conv_diff_3d(16, 16, 16, [0.4, 0.2, 0.1], 0.2);
        let s = SellCSigma::from_csr(&a, 32, 256);
        let x: Vec<f64> = (0..a.cols()).map(|i| ((i as f64) * 0.61).sin()).collect();
        let (y_csr, c_csr) = spmv_csr_sim(&a, &x);
        let (y_sell, c_sell) = spmv_sell_sim(&s, &x);
        for i in 0..a.rows() {
            assert_eq!(y_csr[i].to_bits(), y_sell[i].to_bits(), "row {i}");
        }
        // Identical arithmetic, very different memory behaviour.
        assert_eq!(c_csr.fp64, c_sell.fp64);
        assert!(
            (c_sell.sectors_read as f64) < 0.6 * c_csr.sectors_read as f64,
            "SELL must coalesce: {} vs {} sectors",
            c_sell.sectors_read,
            c_csr.sectors_read
        );
        // ... which the roofline turns into kernel time.
        let t_csr = estimate(&H100_PCIE, &c_csr).total;
        let t_sell = estimate(&H100_PCIE, &c_sell).total;
        assert!(
            t_sell < t_csr,
            "SELL should be faster on the model: {t_sell:.3e} vs {t_csr:.3e}"
        );
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let empty = Coo::new(0, 0).to_csr();
        let (y, c) = spmv_csr_sim(&empty, &[]);
        assert!(y.is_empty());
        assert_eq!(c, Counters::default());

        // Rows 10..20 are empty (including a whole empty warp region is
        // impossible at n=40, but zero-length rows inside a warp are).
        let mut m = Coo::new(40, 40);
        for i in 0..40 {
            if !(10..20).contains(&i) {
                m.push(i, i, 2.0);
            }
        }
        let a = m.to_csr();
        let x = vec![1.5; 40];
        let (y, _) = spmv_csr_sim(&a, &x);
        let (ys, _) = spmv_sell_sim(&SellCSigma::from_csr(&a, 32, 40), &x);
        let expect = reference(&a, &x);
        assert_eq!(y, expect);
        assert_eq!(ys, expect);
    }
}
