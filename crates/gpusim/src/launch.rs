//! Grid launch: one warp per block over an output range, blocks run in
//! parallel on the host, counters reduced deterministically.

use crate::counters::Counters;
use crate::warp::WarpCtx;
use rayon::prelude::*;

/// Simulated blocks per pool task: a block is one warp tile (typically
/// 32 lanes), far too little work to deal out individually. Counter
/// merges are exact integer sums, so grouping never changes results.
const BLOCKS_PER_TASK: usize = 16;

/// Launch `kernel` once per chunk of `out` (`chunk` elements per block,
/// block = one simulated warp's tile). The kernel receives its block id
/// and a mutable view of its output tile. Returns merged counters.
pub fn launch_over<T: Send>(
    out: &mut [T],
    chunk: usize,
    kernel: impl Fn(&mut WarpCtx, usize, &mut [T]) + Sync,
) -> Counters {
    out.par_chunks_mut(chunk)
        .enumerate()
        .with_min_len(BLOCKS_PER_TASK)
        .map(|(b, tile)| {
            let mut w = WarpCtx::new();
            kernel(&mut w, b, tile);
            w.counters
        })
        .reduce(Counters::default, |mut a, b| {
            a.merge(&b);
            a
        })
}

/// Launch `kernel` once per block without a writable output (pure
/// accounting / reduction kernels).
pub fn launch(blocks: usize, kernel: impl Fn(&mut WarpCtx, usize) + Sync) -> Counters {
    (0..blocks)
        .into_par_iter()
        .with_min_len(BLOCKS_PER_TASK)
        .map(|b| {
            let mut w = WarpCtx::new();
            kernel(&mut w, b);
            w.counters
        })
        .reduce(Counters::default, |mut a, b| {
            a.merge(&b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_over_runs_every_block_once() {
        let mut out = vec![0.0f64; 1000];
        let c = launch_over(&mut out, 32, |w, b, tile| {
            for (i, v) in tile.iter_mut().enumerate() {
                *v = w.f64_add(b as f64, i as f64);
            }
        });
        assert_eq!(out[0], 0.0);
        assert_eq!(out[33], 1.0 + 1.0); // block 1, offset 1
        assert_eq!(c.fp64, 1000);
    }

    #[test]
    fn counters_deterministic_across_runs() {
        let run = || {
            launch(64, |w, b| {
                for _ in 0..(b % 7) {
                    w.i_add(1, 2);
                }
            })
        };
        assert_eq!(run(), run());
    }
}
