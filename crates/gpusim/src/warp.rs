//! The 32-lane warp execution context.
//!
//! Kernels are written warp-synchronously: per-lane scalar phases use
//! the counted arithmetic wrappers (`i_*`, `f64_*`, [`WarpCtx::clz`]),
//! warp-collective phases use shuffles ([`WarpCtx::shfl_xor_u32`]) and
//! coalesced memory accessors. Every wrapper both *performs* the
//! operation (the simulation is functional — results are bit-exact) and
//! *counts* it, so the instruction mix reported for a kernel is whatever
//! its control flow actually executed.

use crate::counters::{Counters, InstrClass};

/// Lanes per warp (fixed at 32: the paper mandates `BS = 32` because of
/// exactly this, §IV-C optimization (2)).
pub const WARP: usize = 32;

/// Execution context of one warp.
#[derive(Default)]
pub struct WarpCtx {
    pub counters: Counters,
}

impl WarpCtx {
    pub fn new() -> Self {
        WarpCtx::default()
    }

    // ---- counted per-lane scalar ALU wrappers -------------------------

    #[inline(always)]
    pub fn i_and(&mut self, a: u64, b: u64) -> u64 {
        self.counters.bump(InstrClass::Int, 1);
        a & b
    }

    #[inline(always)]
    pub fn i_or(&mut self, a: u64, b: u64) -> u64 {
        self.counters.bump(InstrClass::Int, 1);
        a | b
    }

    #[inline(always)]
    pub fn i_shl(&mut self, a: u64, s: u32) -> u64 {
        self.counters.bump(InstrClass::Int, 1);
        if s >= 64 {
            0
        } else {
            a << s
        }
    }

    #[inline(always)]
    pub fn i_shr(&mut self, a: u64, s: u32) -> u64 {
        self.counters.bump(InstrClass::Int, 1);
        if s >= 64 {
            0
        } else {
            a >> s
        }
    }

    #[inline(always)]
    pub fn i_add(&mut self, a: u64, b: u64) -> u64 {
        self.counters.bump(InstrClass::Int, 1);
        a.wrapping_add(b)
    }

    #[inline(always)]
    pub fn i_sub(&mut self, a: i64, b: i64) -> i64 {
        self.counters.bump(InstrClass::Int, 1);
        a.wrapping_sub(b)
    }

    #[inline(always)]
    pub fn i_max(&mut self, a: u32, b: u32) -> u32 {
        self.counters.bump(InstrClass::Int, 1);
        a.max(b)
    }

    /// Predicated select (one ISETP+SEL pair, counted as one ALU op as
    /// NVCC fuses these in the decompression inner loop).
    #[inline(always)]
    pub fn i_select(&mut self, cond: bool, t: u64, f: u64) -> u64 {
        self.counters.bump(InstrClass::Int, 1);
        if cond {
            t
        } else {
            f
        }
    }

    /// The `count_zero` intrinsic (`__clz`): §IV-C calls it "mandatory
    /// for good performance".
    #[inline(always)]
    pub fn clz(&mut self, v: u64) -> u32 {
        self.counters.bump(InstrClass::Clz, 1);
        v.leading_zeros()
    }

    // ---- counted floating-point wrappers (counters hold FLOPs) --------

    #[inline(always)]
    pub fn f64_add(&mut self, a: f64, b: f64) -> f64 {
        self.counters.bump(InstrClass::Fp64, 1);
        a + b
    }

    #[inline(always)]
    pub fn f64_mul(&mut self, a: f64, b: f64) -> f64 {
        self.counters.bump(InstrClass::Fp64, 1);
        a * b
    }

    /// Fused multiply-add: two FLOPs, one instruction.
    #[inline(always)]
    pub fn f64_fma(&mut self, a: f64, b: f64, c: f64) -> f64 {
        self.counters.bump(InstrClass::Fp64, 2);
        a.mul_add(b, c)
    }

    #[inline(always)]
    pub fn f32_fma(&mut self, a: f32, b: f32, c: f32) -> f32 {
        self.counters.bump(InstrClass::Fp32, 2);
        a.mul_add(b, c)
    }

    /// Account `n` additional FP64 FLOPs without executing them (used by
    /// the arithmetic-intensity sweep, where the synthetic FLOP count is
    /// the independent variable of Fig. 4).
    #[inline(always)]
    pub fn account_f64_flops(&mut self, n: u64) {
        self.counters.bump(InstrClass::Fp64, n);
    }

    #[inline(always)]
    pub fn account_f32_flops(&mut self, n: u64) {
        self.counters.bump(InstrClass::Fp32, n);
    }

    // ---- warp collectives ---------------------------------------------

    /// Butterfly shuffle: lane `i` receives the value of lane `i ^ mask`.
    pub fn shfl_xor_u32(&mut self, vals: &[u32; WARP], mask: u32) -> [u32; WARP] {
        self.counters.bump(InstrClass::Shfl, WARP as u64);
        std::array::from_fn(|i| vals[(i as u32 ^ mask) as usize % WARP])
    }

    /// Warp max-reduction via 5 butterfly rounds (the `emax` reduction
    /// of the FRSZ2 compression kernel, §IV-C optimization (2)).
    pub fn reduce_max_u32(&mut self, vals: &[u32; WARP]) -> u32 {
        let mut cur = *vals;
        let mut mask = 1u32;
        while mask < WARP as u32 {
            let other = self.shfl_xor_u32(&cur, mask);
            for i in 0..WARP {
                cur[i] = self.i_max(cur[i], other[i]);
            }
            mask <<= 1;
        }
        cur[0]
    }

    // ---- coalesced global memory ---------------------------------------

    /// Count the 32-byte sectors touched by per-lane accesses of
    /// `size` bytes at element indices `idxs`. Device allocations are
    /// sector-aligned (cudaMalloc guarantees 256 B), so only element
    /// offsets matter — host heap addresses are deliberately ignored.
    fn account_sectors(&mut self, _base: usize, idxs: &[usize], size: usize, write: bool) {
        // Warp-level coalescing: collect distinct sectors.
        let mut sectors = [usize::MAX; WARP];
        let mut count = 0usize;
        for &i in idxs {
            let s = (i * size) / 32;
            if !sectors[..count].contains(&s) {
                sectors[count] = s;
                count += 1;
            }
        }
        let c = self.counters_mut();
        if write {
            c.sectors_written += count as u64;
            c.bytes_written += 32 * count as u64;
        } else {
            c.sectors_read += count as u64;
            c.bytes_read += 32 * count as u64;
        }
    }

    #[inline]
    fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Coalesced per-lane `u32` loads.
    pub fn load_u32(&mut self, mem: &[u32], idxs: &[usize; WARP]) -> [u32; WARP] {
        self.account_sectors(mem.as_ptr() as usize, idxs, 4, false);
        std::array::from_fn(|i| mem[idxs[i]])
    }

    /// Coalesced per-lane `u16` loads.
    pub fn load_u16(&mut self, mem: &[u16], idxs: &[usize; WARP]) -> [u16; WARP] {
        self.account_sectors(mem.as_ptr() as usize, idxs, 2, false);
        std::array::from_fn(|i| mem[idxs[i]])
    }

    /// Per-lane `u32` loads that hit in L1 (the word was fetched by an
    /// overlapping earlier load): no DRAM bytes, but the load/store
    /// units still issue the transactions — the unaligned-read cost that
    /// keeps `frsz2_21` from outrunning `frsz2_32` (§IV-C).
    pub fn load_u32_l1(&mut self, mem: &[u32], idxs: &[usize; WARP]) -> [u32; WARP] {
        let mut sectors = [usize::MAX; WARP];
        let mut count = 0usize;
        for &i in idxs {
            let s = (i * 4) / 32;
            if !sectors[..count].contains(&s) {
                sectors[count] = s;
                count += 1;
            }
        }
        self.counters.sectors_read += count as u64;
        std::array::from_fn(|i| mem[idxs[i]])
    }

    /// Coalesced per-lane `f64` loads.
    pub fn load_f64(&mut self, mem: &[f64], idxs: &[usize; WARP]) -> [f64; WARP] {
        self.account_sectors(mem.as_ptr() as usize, idxs, 8, false);
        std::array::from_fn(|i| mem[idxs[i]])
    }

    /// Coalesced per-lane `f32` loads.
    pub fn load_f32(&mut self, mem: &[f32], idxs: &[usize; WARP]) -> [f32; WARP] {
        self.account_sectors(mem.as_ptr() as usize, idxs, 4, false);
        std::array::from_fn(|i| mem[idxs[i]])
    }

    /// One lane loads a scalar, broadcast to the warp (the per-block
    /// `emax` read: "cached for all threads of the warp", §IV-C).
    ///
    /// Bills 4 bytes of DRAM traffic, not a whole sector: consecutive
    /// warps read consecutive exponents, so each 32 B sector is shared
    /// by 8 blocks through L2 — this is what makes FRSZ2's effective
    /// rate 33 bits/value rather than 40 (Eq. 3 discussion in §IV-C).
    pub fn load_broadcast_u32(&mut self, mem: &[u32], idx: usize) -> u32 {
        self.counters.bytes_read += 4;
        self.counters.sectors_read += 1; // one LSU transaction regardless
        self.counters.bump(InstrClass::Shfl, 1); // broadcast
        mem[idx]
    }

    /// Coalesced per-lane `u32` stores.
    pub fn store_u32(&mut self, mem: &mut [u32], idxs: &[usize; WARP], vals: &[u32; WARP]) {
        self.account_sectors(mem.as_ptr() as usize, idxs, 4, true);
        for (i, &idx) in idxs.iter().enumerate() {
            mem[idx] = vals[i];
        }
    }

    /// Single-lane `u32` store (block exponent).
    pub fn store_scalar_u32(&mut self, mem: &mut [u32], idx: usize, val: u32) {
        self.account_sectors(mem.as_ptr() as usize, &[idx], 4, true);
        mem[idx] = val;
    }

    /// Coalesced per-lane `f64` stores.
    pub fn store_f64(&mut self, mem: &mut [f64], idxs: &[usize; WARP], vals: &[f64; WARP]) {
        self.account_sectors(mem.as_ptr() as usize, idxs, 8, true);
        for (i, &idx) in idxs.iter().enumerate() {
            mem[idx] = vals[i];
        }
    }

    /// Account the traffic of a coalesced `u32` store whose data was
    /// already materialized by a host-side helper (used by the packed
    /// FRSZ2 store path, where the bit packer writes the words).
    pub fn account_store_only(&mut self, mem: &[u32], idxs: &[usize; WARP], _vals: &[u32; WARP]) {
        self.account_sectors(mem.as_ptr() as usize, idxs, 4, true);
    }

    /// Account the traffic of per-lane `f64` stores at element indices
    /// `idxs` whose data is written elsewhere (the launcher's output
    /// tile, or a host-side permutation scatter). Used by the SpMV
    /// kernels, where CSR writes `y` coalesced but SELL-C-σ scatters
    /// through the row permutation.
    pub fn account_store_f64(&mut self, idxs: &[usize]) {
        self.account_sectors(0, idxs, 8, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_wrappers_compute_and_count() {
        let mut w = WarpCtx::new();
        assert_eq!(w.i_and(0b1100, 0b1010), 0b1000);
        assert_eq!(w.i_shl(1, 10), 1024);
        assert_eq!(w.i_shr(1024, 3), 128);
        assert_eq!(w.i_shl(1, 80), 0, "oversized shifts saturate to zero");
        assert_eq!(w.clz(1u64 << 52), 11);
        assert_eq!(w.counters.int, 4);
        assert_eq!(w.counters.clz, 1);
        assert_eq!(w.f64_fma(2.0, 3.0, 1.0), 7.0);
        assert_eq!(w.counters.fp64, 2, "FMA counts two FLOPs");
    }

    #[test]
    fn reduce_max_matches_scalar_max() {
        let mut w = WarpCtx::new();
        let vals: [u32; WARP] = std::array::from_fn(|i| ((i * 37) % 29) as u32 + 1);
        let m = w.reduce_max_u32(&vals);
        assert_eq!(m, *vals.iter().max().unwrap());
        // 5 butterfly rounds: 5*32 shuffles and 5*32 max ops.
        assert_eq!(w.counters.shfl, 160);
        assert_eq!(w.counters.int, 160);
    }

    #[test]
    fn coalesced_f64_load_touches_eight_sectors() {
        let mut w = WarpCtx::new();
        let mem: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let idxs: [usize; WARP] = std::array::from_fn(|i| i);
        let vals = w.load_f64(&mem, &idxs);
        assert_eq!(vals[7], 7.0);
        // 32 consecutive f64 = 256 bytes = exactly 8 sectors.
        assert_eq!(w.counters.sectors_read, 8);
        assert_eq!(w.counters.bytes_read, 256);
    }

    #[test]
    fn strided_load_wastes_sectors() {
        let mut w = WarpCtx::new();
        let mem: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        // Stride 8: every lane in its own sector.
        let idxs: [usize; WARP] = std::array::from_fn(|i| i * 8);
        w.load_f64(&mem, &idxs);
        assert!(
            w.counters.sectors_read >= 32,
            "uncoalesced access must cost full sectors"
        );
    }

    #[test]
    fn u16_loads_coalesce_two_per_sector_pair() {
        let mut w = WarpCtx::new();
        let mem: Vec<u16> = (0..64).map(|i| i as u16).collect();
        let idxs: [usize; WARP] = std::array::from_fn(|i| i);
        w.load_u16(&mem, &idxs);
        // 32 consecutive u16 = 64 bytes = exactly 2 sectors.
        assert_eq!(w.counters.sectors_read, 2);
    }

    #[test]
    fn broadcast_costs_one_transaction_four_bytes() {
        let mut w = WarpCtx::new();
        let mem = vec![7u32; 100];
        assert_eq!(w.load_broadcast_u32(&mem, 50), 7);
        assert_eq!(w.counters.sectors_read, 1);
        assert_eq!(
            w.counters.bytes_read, 4,
            "L2-shared sector bills only its data"
        );
    }
}
