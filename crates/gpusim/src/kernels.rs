//! Simulated GPU kernels: FRSZ2 compression/decompression and the
//! arithmetic-intensity streaming benchmark behind Figure 4.
//!
//! The FRSZ2 kernels are functional re-expressions of the CUDA kernels
//! described in §IV, written against the counted warp API: one warp per
//! 32-value block, warp-shuffle `emax` reduction during compression,
//! per-lane bit manipulation with `clz` during decompression. Tests
//! assert bit-identical output against the CPU codec in `frsz2::codec`.

use crate::cost::{estimate, CostBreakdown};
use crate::counters::Counters;
use crate::device::DeviceSpec;
use crate::launch::launch_over;
use crate::warp::{WarpCtx, WARP};
use frsz2::Frsz2Config;

const MASK52: u64 = (1u64 << 52) - 1;

#[inline]
fn mask64(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Per-lane FRSZ2 decode with counted operations (§IV-B steps 2-4).
/// Mirrors `frsz2::codec::decode_code` bit for bit.
fn decode_lane(w: &mut WarpCtx, c: u64, emax: u32, l: u32) -> f64 {
    let sign = w.i_shr(c, l - 1);
    let field = w.i_and(c, mask64(l - 1));
    if field == 0 {
        return f64::from_bits(w.i_shl(sign, 63));
    }
    // Step 2: count the inserted zeros (clz + constant adjust).
    let kz = w.clz(field);
    let k = w.i_sub(kz as i64, (64 - (l - 1)) as i64) as u32;
    // Step 3: actual exponent.
    let e_new = w.i_sub(emax as i64, k as i64);
    if e_new >= 1 {
        // Step 4: move the leading 1 to bit 52, drop it, assemble.
        let amt = w.i_sub(l as i64 - 2 - 52, k as i64) as i32;
        let sig = if amt >= 0 {
            w.i_shr(field, amt as u32)
        } else {
            w.i_shl(field, (-amt) as u32)
        };
        let mant = w.i_and(sig, MASK52);
        let exp_part = w.i_shl(e_new as u64, 52);
        let hi = w.i_shl(sign, 63);
        let lo = w.i_or(hi, exp_part);
        let bits = w.i_or(lo, mant);
        f64::from_bits(bits)
    } else {
        // Subnormal result (never taken for Krylov data; counted anyway).
        let amt = w.i_sub(l as i64 - 2 - 51, emax as i64) as i32;
        let m = if amt >= 0 {
            w.i_shr(field, amt as u32)
        } else {
            w.i_shl(field, (-amt) as u32)
        };
        let s63 = w.i_shl(sign, 63);
        let m52 = w.i_and(m, MASK52);
        let bits = w.i_or(s63, m52);
        f64::from_bits(bits)
    }
}

/// Per-lane FRSZ2 encode with counted operations (§IV-A steps 2-5).
/// Mirrors `frsz2::codec::encode_bits` (truncating mode) bit for bit.
fn encode_lane(w: &mut WarpCtx, bits: u64, emax: u32, l: u32) -> u64 {
    let eraw = w.i_shr(bits, 52);
    let e = w.i_and(eraw, 0x7FF) as u32;
    let sign = w.i_shr(bits, 63);
    let m = w.i_and(bits, MASK52);
    let e_eff = w.i_max(e.max(1), 1); // exponent of zero/subnormal is 1
    let sig = w.i_select(e != 0, m | (1u64 << 52), m);
    let shift = w.i_sub((emax - e_eff) as i64 + 54, l as i64) as i32;
    let field = if shift >= 64 {
        0
    } else if shift >= 0 {
        w.i_shr(sig, shift as u32)
    } else {
        w.i_shl(sig, (-shift) as u32)
    };
    let shifted = w.i_shl(sign, l - 1);
    w.i_or(shifted, field)
}

/// Simulated decompression of an FRSZ2 vector (`BS = 32` only — the
/// warp-width mandate of §IV-C). Returns values and execution counters.
///
/// `n` must be a multiple of 32 (full warps; real kernels predicate the
/// tail off, which the accounting here does not model).
pub fn frsz2_decompress_sim(
    cfg: Frsz2Config,
    words: &[u32],
    exps: &[u32],
    n: usize,
) -> (Vec<f64>, Counters) {
    assert_eq!(cfg.block_size(), WARP, "simulated kernels require BS = 32");
    assert_eq!(n % WARP, 0, "simulated kernels require full warps");
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    let mut out = vec![0.0f64; n];
    let counters = launch_over(&mut out, WARP, |w, b, tile| {
        let emax = w.load_broadcast_u32(exps, b);
        let base = b * wpb;
        match l {
            32 => {
                let idxs: [usize; WARP] = std::array::from_fn(|i| base + i);
                let cs = w.load_u32(words, &idxs);
                for (i, t) in tile.iter_mut().enumerate() {
                    *t = decode_lane(w, cs[i] as u64, emax, 32);
                }
            }
            16 => {
                // Two codes per word: lanes gather their word, then
                // extract the half-word (+2 integer ops per value).
                let idxs: [usize; WARP] = std::array::from_fn(|i| base + i / 2);
                let cs = w.load_u32(words, &idxs);
                for (i, t) in tile.iter_mut().enumerate() {
                    let sh = w.i_shl((i as u64) & 1, 4) as u32; // (i&1)*16
                    let word = w.i_shr(cs[i] as u64, sh);
                    let c = w.i_and(word, 0xFFFF);
                    *t = decode_lane(w, c, emax, 16);
                }
            }
            l => {
                // Unaligned: per-lane bit offset, one or two word loads,
                // funnel shift — the "complex index computation and
                // unaligned memory read" overhead of §IV-C.
                let off: [usize; WARP] = std::array::from_fn(|i| i * l as usize);
                let w0: [usize; WARP] = std::array::from_fn(|i| base + off[i] / 32);
                let w1: [usize; WARP] = std::array::from_fn(|i| (w0[i] + 1).min(base + wpb - 1));
                let lo = w.load_u32(words, &w0);
                // The second word of each straddling value overlaps the
                // next lane's first word: an L1 hit, but a second LSU
                // transaction per lane.
                let hi = w.load_u32_l1(words, &w1);
                for (i, t) in tile.iter_mut().enumerate() {
                    // offset math: mul+mod counted as 2 ops
                    let shift = w.i_and(off[i] as u64, 31) as u32;
                    let _ = w.i_add(off[i] as u64, 0); // word index add
                    let hi_shifted = w.i_shl(hi[i] as u64, 32);
                    let pair = w.i_or(lo[i] as u64, hi_shifted);
                    let cut = w.i_shr(pair, shift);
                    let c = w.i_and(cut, mask64(l));
                    *t = decode_lane(w, c, emax, l);
                }
            }
        }
    });
    (out, counters)
}

/// Simulated compression (`BS = 32`, truncating): warp-shuffle `emax`
/// butterfly, per-lane encode, coalesced stores (§IV-A steps 1-6).
pub fn frsz2_compress_sim(cfg: Frsz2Config, input: &[f64]) -> (Vec<u32>, Vec<u32>, Counters) {
    assert_eq!(cfg.block_size(), WARP, "simulated kernels require BS = 32");
    assert_eq!(
        input.len() % WARP,
        0,
        "simulated kernels require full warps"
    );
    assert_eq!(
        cfg.rounding(),
        frsz2::Rounding::Truncate,
        "the GPU kernel implements the paper's truncating mode"
    );
    let l = cfg.bits();
    let wpb = cfg.words_per_block();
    let blocks = cfg.blocks_for(input.len());
    let mut words = vec![0u32; cfg.words_for_len(input.len())];
    let mut exps = vec![0u32; blocks];

    // One warp per block; output tiles are the word regions.
    let counters = {
        let exps_slices: Vec<&mut u32> = exps.iter_mut().collect();
        let mut paired: Vec<(usize, &mut [u32], &mut u32)> = words
            .chunks_mut(wpb)
            .zip(exps_slices)
            .enumerate()
            .map(|(b, (w, e))| (b, w, e))
            .collect();
        use rayon::prelude::*;
        paired
            .par_iter_mut()
            // One item = one 32-value block; bundle several per task so
            // the per-task overhead stays negligible. Counter merges
            // are exact, so grouping cannot change the result.
            .with_min_len(16)
            .map(|(b, block_words, exp_slot)| {
                let mut w = WarpCtx::new();
                let base = *b * WARP;
                let idxs: [usize; WARP] = std::array::from_fn(|i| base + i);
                let vals = w.load_f64(input, &idxs);

                // Step 1: per-lane exponent extraction + butterfly max.
                let mut e_lanes = [0u32; WARP];
                for (i, &v) in vals.iter().enumerate() {
                    let eraw = w.i_shr(v.to_bits(), 52);
                    let e = w.i_and(eraw, 0x7FF) as u32;
                    e_lanes[i] = w.i_max(e, 1);
                }
                let emax = w.reduce_max_u32(&e_lanes);
                w.store_scalar_u32(std::slice::from_mut(&mut **exp_slot), 0, emax);

                // Steps 2-6: encode and store.
                match l {
                    32 => {
                        let mut cs = [0u32; WARP];
                        for (i, &v) in vals.iter().enumerate() {
                            cs[i] = encode_lane(&mut w, v.to_bits(), emax, 32) as u32;
                        }
                        let idxs: [usize; WARP] = std::array::from_fn(|i| i);
                        w.store_u32(block_words, &idxs, &cs);
                    }
                    _ => {
                        // Aligned sub-word and unaligned paths funnel
                        // through the CPU bit packer for the data while
                        // the ops are counted per lane (encode + pack).
                        for (i, &v) in vals.iter().enumerate() {
                            let c = encode_lane(&mut w, v.to_bits(), emax, l);
                            let _ = w.i_shl(c, (i as u32 * l) % 32); // pack shift
                            frsz2::bitpack::write_bits(block_words, i * l as usize, l, c);
                        }
                        // Stores: one transaction per word region.
                        let word_idxs: [usize; WARP] = std::array::from_fn(|i| i.min(wpb - 1));
                        let zero = [0u32; WARP];
                        w.account_store_only(block_words, &word_idxs, &zero);
                    }
                }
                w.counters
            })
            .reduce(Counters::default, |mut a, b| {
                a.merge(&b);
                a
            })
    };
    (words, exps, counters)
}

/// Storage formats of the Fig. 4 streaming benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFormat {
    /// Native double precision (no accessor).
    F64Native,
    /// Native single precision: loads f32, computes f32.
    F32Native,
    /// Accessor with f64 storage, f64 arithmetic.
    AccF64,
    /// Accessor with f32 storage, f64 arithmetic.
    AccF32,
    /// Accessor with binary16 storage, f64 arithmetic (extension).
    AccF16,
    /// Accessor with FRSZ2 storage (`BS = 32`, bit length `l`).
    Frsz2(u32),
}

impl StreamFormat {
    /// Label as in Fig. 4's legend.
    pub fn label(&self) -> String {
        match self {
            StreamFormat::F64Native => "float64".into(),
            StreamFormat::F32Native => "float32".into(),
            StreamFormat::AccF64 => "Acc<float64>".into(),
            StreamFormat::AccF32 => "Acc<float32>".into(),
            StreamFormat::AccF16 => "Acc<float16>".into(),
            StreamFormat::Frsz2(l) => format!("Acc<frsz2_{l}>"),
        }
    }

    /// The seven series of Fig. 4.
    pub fn figure4_set() -> Vec<StreamFormat> {
        vec![
            StreamFormat::F64Native,
            StreamFormat::F32Native,
            StreamFormat::AccF64,
            StreamFormat::AccF32,
            StreamFormat::Frsz2(16),
            StreamFormat::Frsz2(21),
            StreamFormat::Frsz2(32),
        ]
    }
}

/// One measured streaming pass over `n` deterministic values: loads (and
/// decompresses) every value, no synthetic FLOPs yet. Returns the
/// counters and a checksum of the decoded values (proves the functional
/// path ran).
pub fn stream_base_counters(fmt: StreamFormat, n: usize) -> (Counters, f64) {
    assert_eq!(n % WARP, 0);
    let data: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.618).sin()).collect();
    match fmt {
        StreamFormat::F64Native | StreamFormat::AccF64 => {
            let mut sink = vec![0.0f64; n];
            let c = launch_over(&mut sink, WARP, |w, b, tile| {
                let idxs: [usize; WARP] = std::array::from_fn(|i| b * WARP + i);
                let vals = w.load_f64(&data, &idxs);
                tile.copy_from_slice(&vals);
            });
            (c, sink.iter().sum())
        }
        StreamFormat::F32Native => {
            // Native single precision: no accessor, no widening.
            let narrow: Vec<f32> = data.iter().map(|&v| v as f32).collect();
            let mut sink = vec![0.0f64; n];
            let c = launch_over(&mut sink, WARP, |w, b, tile| {
                let idxs: [usize; WARP] = std::array::from_fn(|i| b * WARP + i);
                let vals = w.load_f32(&narrow, &idxs);
                for (t, &v) in tile.iter_mut().zip(&vals) {
                    *t = v as f64;
                }
            });
            (c, sink.iter().sum())
        }
        StreamFormat::AccF32 => {
            let narrow: Vec<f32> = data.iter().map(|&v| v as f32).collect();
            let mut sink = vec![0.0f64; n];
            let c = launch_over(&mut sink, WARP, |w, b, tile| {
                let idxs: [usize; WARP] = std::array::from_fn(|i| b * WARP + i);
                let vals = w.load_f32(&narrow, &idxs);
                for (t, &v) in tile.iter_mut().zip(&vals) {
                    // The accessor's F2F.F64.F32 conversion (fp64 pipe).
                    *t = w.f64_add(v as f64, 0.0);
                }
            });
            (c, sink.iter().sum())
        }
        StreamFormat::AccF16 => {
            let narrow: Vec<u16> = data.iter().map(|&v| numfmt_f16_bits(v)).collect();
            let mut sink = vec![0.0f64; n];
            let c = launch_over(&mut sink, WARP, |w, b, tile| {
                let idxs: [usize; WARP] = std::array::from_fn(|i| b * WARP + i);
                let vals = w.load_u16(&narrow, &idxs);
                for (t, &v) in tile.iter_mut().zip(&vals) {
                    let _ = w.i_and(v as u64, 0x7FFF); // unpack
                    *t = w.f64_add(f16_bits_to_f64(v), 0.0); // cvt
                }
            });
            (c, sink.iter().sum())
        }
        StreamFormat::Frsz2(l) => {
            let cfg = Frsz2Config::new(32, l);
            let v = frsz2::Frsz2Vector::compress(cfg, &data);
            let (out, c) = frsz2_decompress_sim(cfg, v.words(), v.exponents(), n);
            (c, out.iter().sum())
        }
    }
}

fn numfmt_f16_bits(v: f64) -> u16 {
    numfmt::F16::from_f64(v).to_bits()
}

fn f16_bits_to_f64(bits: u16) -> f64 {
    numfmt::F16::from_bits(bits).to_f64()
}

/// One point of the Fig. 4 sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    pub ai: f64,
    pub gflops: f64,
    pub bottleneck: &'static str,
    /// Achieved memory bandwidth in GB/s at this point.
    pub bandwidth_gbs: f64,
}

/// Fig. 4: GFLOP/s as a function of arithmetic intensity for one storage
/// format. The streaming pass is *measured* once (instruction counts
/// from the simulated kernel); the synthetic per-value FLOPs — the
/// benchmark's independent variable — are added to the measured
/// counters, exactly like the real benchmark's unrolled FMA loop.
pub fn ai_series(dev: &DeviceSpec, fmt: StreamFormat, n: usize, ais: &[f64]) -> Vec<SweepPoint> {
    let (base, _checksum) = stream_base_counters(fmt, n);
    ais.iter()
        .map(|&ai| {
            let mut c = base;
            let flops = (ai * n as f64) as u64;
            match fmt {
                StreamFormat::F32Native => c.fp32 += flops,
                _ => c.fp64 += flops,
            }
            let cost = estimate(dev, &c);
            SweepPoint {
                ai,
                gflops: flops as f64 / cost.total / 1e9,
                bottleneck: cost.bottleneck(),
                bandwidth_gbs: cost.achieved_bandwidth(c.total_bytes()) / 1e9,
            }
        })
        .collect()
}

/// §IV-C bandwidth claim: the streaming-read bandwidth of a format as a
/// fraction of the device peak (frsz2_32 reaches ~99.6 % on the H100).
pub fn stream_bandwidth_fraction(dev: &DeviceSpec, fmt: StreamFormat, n: usize) -> f64 {
    let (c, _) = stream_base_counters(fmt, n);
    let cost = estimate(dev, &c);
    cost.achieved_bandwidth(c.total_bytes()) / dev.mem_bw
}

/// Cost of one pass for reporting.
pub fn stream_cost(dev: &DeviceSpec, fmt: StreamFormat, n: usize) -> (Counters, CostBreakdown) {
    let (c, _) = stream_base_counters(fmt, n);
    let cost = estimate(dev, &c);
    (c, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::H100_PCIE;

    fn wave(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.37).sin() * 0.93).collect()
    }

    #[test]
    fn simulated_decompression_matches_cpu_codec() {
        let data = wave(320);
        for l in [16u32, 21, 32] {
            let cfg = Frsz2Config::new(32, l);
            let v = frsz2::Frsz2Vector::compress(cfg, &data);
            let (out, counters) = frsz2_decompress_sim(cfg, v.words(), v.exponents(), 320);
            let expect = v.decompress();
            for i in 0..320 {
                assert_eq!(
                    out[i].to_bits(),
                    expect[i].to_bits(),
                    "l={l} value {i} differs from CPU codec"
                );
            }
            assert!(counters.int > 0 && counters.clz > 0);
        }
    }

    #[test]
    fn simulated_compression_matches_cpu_codec() {
        let data = wave(128);
        for l in [16u32, 21, 32] {
            let cfg = Frsz2Config::new(32, l);
            let v = frsz2::Frsz2Vector::compress(cfg, &data);
            let (words, exps, counters) = frsz2_compress_sim(cfg, &data);
            assert_eq!(exps, v.exponents(), "l={l} exponents differ");
            assert_eq!(words, v.words(), "l={l} code words differ");
            assert!(counters.shfl > 0, "emax must use warp shuffles");
        }
    }

    #[test]
    fn decompression_instruction_budget_is_tight() {
        // §I: ~46 spare operations per value at 32 bits. The l=32 decode
        // must fit comfortably.
        let data = wave(32_000);
        let cfg = Frsz2Config::new(32, 32);
        let v = frsz2::Frsz2Vector::compress(cfg, &data);
        let (_, c) = frsz2_decompress_sim(cfg, v.words(), v.exponents(), 32_000);
        let per_value = (c.int + c.clz) as f64 / 32_000.0;
        assert!(
            per_value < 20.0,
            "decompression must stay under ~20 ops/value, got {per_value}"
        );
        assert!(per_value > 5.0, "counting should see the real work");
    }

    #[test]
    fn frsz2_32_saturates_bandwidth_frsz2_16_does_not_double() {
        let n = 1 << 16;
        let f32bw = stream_bandwidth_fraction(&H100_PCIE, StreamFormat::F32Native, n);
        let z32 = stream_bandwidth_fraction(&H100_PCIE, StreamFormat::Frsz2(32), n);
        // §IV-C: frsz2_32 reaches ≈99.6 % of attainable bandwidth.
        assert!(z32 > 0.95, "frsz2_32 bandwidth fraction {z32}");
        assert!(f32bw > 0.95);
        // l = 16 is *not* 2x float32 at equal intensity: it leaves the
        // bandwidth roof because decompression saturates the int pipe.
        let t32 = stream_cost(&H100_PCIE, StreamFormat::F32Native, n).1.total;
        let t16 = stream_cost(&H100_PCIE, StreamFormat::Frsz2(16), n).1.total;
        let speedup = t32 / t16;
        assert!(
            speedup < 1.9,
            "frsz2_16 must not be a full 2x over float32, got {speedup}"
        );
    }

    #[test]
    fn frsz2_21_no_faster_than_frsz2_32() {
        // §IV-C: "the overhead in the more complex index computation and
        // the unaligned memory read operation is too high to translate
        // to higher performance".
        let n = 1 << 16;
        let t21 = stream_cost(&H100_PCIE, StreamFormat::Frsz2(21), n).1.total;
        let t32 = stream_cost(&H100_PCIE, StreamFormat::Frsz2(32), n).1.total;
        assert!(
            t21 > t32 * 0.85,
            "frsz2_21 ({t21:.3e}s) should not meaningfully beat frsz2_32 ({t32:.3e}s)"
        );
    }

    #[test]
    fn accessor_is_zero_cost_when_memory_bound() {
        // Fig. 4: Acc<float64> identical to native float64 while
        // memory-bound.
        let n = 1 << 14;
        let ais = [1.0, 4.0, 16.0];
        let native = ai_series(&H100_PCIE, StreamFormat::F64Native, n, &ais);
        let acc = ai_series(&H100_PCIE, StreamFormat::AccF64, n, &ais);
        for (a, b) in native.iter().zip(&acc) {
            assert!(
                (a.gflops - b.gflops).abs() < 1e-9,
                "accessor overhead visible"
            );
        }
    }

    #[test]
    fn fig4_orderings_hold() {
        let n = 1 << 14;
        let low_ai = [4.0];
        let perf = |f| ai_series(&H100_PCIE, f, n, &low_ai)[0].gflops;
        let f64p = perf(StreamFormat::F64Native);
        let f32p = perf(StreamFormat::F32Native);
        let z32 = perf(StreamFormat::Frsz2(32));
        let z16 = perf(StreamFormat::Frsz2(16));
        // Memory-bound ordering: f32 ≈ frsz2_32 ≈ 2x f64; frsz2_16 fastest.
        assert!(f32p > 1.8 * f64p);
        assert!(z32 > 1.8 * f64p);
        assert!(z16 > z32);
        // High intensity: everyone meets at the fp64 roof (float32
        // computes in fp32 and reaches its own, higher roof).
        let high = [2000.0];
        let f64h = ai_series(&H100_PCIE, StreamFormat::F64Native, n, &high)[0].gflops;
        let z32h = ai_series(&H100_PCIE, StreamFormat::Frsz2(32), n, &high)[0].gflops;
        let f32h = ai_series(&H100_PCIE, StreamFormat::F32Native, n, &high)[0].gflops;
        assert!((f64h - z32h).abs() / f64h < 0.05);
        assert!(f32h > 1.5 * f64h, "native f32 saturates at the fp32 roof");
    }
}
