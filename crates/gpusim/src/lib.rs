//! Warp-level GPU execution simulator with a roofline cost model.
//!
//! Stand-in for the paper's CUDA kernels (no GPU is attached in this
//! reproduction — see DESIGN.md §1). Kernels are written against a
//! 32-lane warp API ([`warp::WarpCtx`]) providing the primitives the
//! paper's implementation relies on: warp shuffles for the `emax`
//! butterfly reduction, `clz` (the `count_zero` intrinsic of §IV-C),
//! coalesced global-memory accesses, and per-class instruction
//! accounting.
//!
//! Every operation a kernel executes is **counted as it executes** —
//! the instruction mix is measured from the simulated run, not typed in
//! — and [`cost::estimate`] converts the counters into a kernel-time
//! prediction through a multi-resource roofline with H100-PCIe
//! parameters (2000 GB/s, 25.6 TFLOP/s FP64; §V-A). The Fig. 4
//! saturation points and format orderings then follow from the same
//! arithmetic the paper's introduction performs by hand ("an algorithm
//! can execute up to 100 double-precision computations per value
//! retrieved").
//!
//! Functional correctness is cross-checked: the simulated FRSZ2 warp
//! kernels must produce bit-identical output to the CPU codec in
//! `frsz2::codec`.

pub mod cost;
pub mod counters;
pub mod device;
pub mod kernels;
pub mod launch;
pub mod spmv;
pub mod warp;

pub use cost::{estimate, CostBreakdown};
pub use counters::{Counters, InstrClass};
pub use device::{DeviceSpec, A100_SXM, H100_PCIE};
pub use warp::WarpCtx;
