//! The orthogonalization kernels (`h = Vᵀw`, `w ← w − Vh`) against each
//! basis storage format — the memory-bound core that CB-GMRES
//! accelerates by compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use frsz2::Frsz2Store;
use krylov::Basis;
use numfmt::{ColumnStorage, DenseStore, F16};

fn bench_ortho(c: &mut Criterion) {
    let n = 200_000;
    let k = 20; // columns already in the basis
    let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).sin()).collect();

    fn setup<S: ColumnStorage>(n: usize, k: usize) -> Basis<S> {
        let mut basis = Basis::<S>::new(n, k + 1);
        for j in 0..k {
            let v: Vec<f64> = (0..n).map(|i| ((i + j * 31) as f64 * 0.11).sin()).collect();
            basis.write(j, &v);
        }
        basis
    }

    macro_rules! run {
        ($name:literal, $store:ty) => {{
            let basis = setup::<$store>(n, k);
            let mut g = c.benchmark_group("ortho");
            g.sample_size(10);
            g.throughput(Throughput::Bytes((k * basis.column_bytes()) as u64));
            let mut h = vec![0.0; k];
            g.bench_function(BenchmarkId::new("dots", $name), |b| {
                b.iter(|| basis.dots(k, &w, &mut h))
            });
            let alpha = vec![0.001; k];
            let mut wv = w.clone();
            g.bench_function(BenchmarkId::new("axpys", $name), |b| {
                b.iter(|| basis.axpys(k, &alpha, &mut wv))
            });
            g.finish();
        }};
    }

    run!("float64", DenseStore<f64>);
    run!("float32", DenseStore<f32>);
    run!("float16", DenseStore<F16>);
    run!("frsz2_32", Frsz2Store);
}

criterion_group!(benches, bench_ortho);
criterion_main!(benches);
