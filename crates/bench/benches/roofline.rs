//! CPU-native arithmetic-intensity sweep: the Fig. 4 benchmark run for
//! real on this host (the modeled-H100 version lives in
//! `fig04_roofline`). Shapes differ from the paper's because a CPU has
//! ~10 spare ops per loaded value, not ~100 — which is itself a
//! documented observation of the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use frsz2::{Frsz2Config, Frsz2Vector};

fn bench_roofline(c: &mut Criterion) {
    let n = 1 << 21; // 16 MiB of f64: past LLC
    let data: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.618).sin()).collect();
    let f32data: Vec<f32> = data.iter().map(|&v| v as f32).collect();
    let z = Frsz2Vector::compress(Frsz2Config::new(32, 32), &data);

    for ai in [1u32, 8, 64] {
        let mut g = c.benchmark_group(format!("ai_{ai}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(n as u64));
        let flops = ai;
        g.bench_with_input(BenchmarkId::new("float64", ai), &ai, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &v in &data {
                    let mut x = v;
                    for _ in 0..flops {
                        x = x.mul_add(1.0000001, 1e-30);
                    }
                    acc += x;
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("acc_float32", ai), &ai, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for &v in &f32data {
                    let mut x = v as f64;
                    for _ in 0..flops {
                        x = x.mul_add(1.0000001, 1e-30);
                    }
                    acc += x;
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("acc_frsz2_32", ai), &ai, |b, _| {
            let mut buf = vec![0.0f64; 4096];
            b.iter(|| {
                let mut acc = 0.0f64;
                let mut start = 0;
                while start < n {
                    let len = 4096.min(n - start);
                    z.decompress_range(start, &mut buf[..len]);
                    for &v in &buf[..len] {
                        let mut x = v;
                        for _ in 0..flops {
                            x = x.mul_add(1.0000001, 1e-30);
                        }
                        acc += x;
                    }
                    start += len;
                }
                acc
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_roofline);
criterion_main!(benches);
