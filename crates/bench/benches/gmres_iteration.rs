//! Whole-solve wall time per storage format on a small suite problem
//! (end-to-end counterpart of the `ortho` microbench).

use bench::formats::{parse, solve};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krylov::GmresOptions;

fn bench_gmres(c: &mut Criterion) {
    let m = spla::suite::build("atmosmodd", 0.45).expect("matrix");
    let a = m.matrix;
    let (_, b) = spla::dense::manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        target_rrn: 1e-10,
        max_iters: 600,
        record_history: false,
        ..GmresOptions::default()
    };

    let mut g = c.benchmark_group("gmres_solve");
    g.sample_size(10);
    for fmt in ["float64", "float32", "float16", "frsz2_32"] {
        let spec = parse(fmt).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(fmt), fmt, |bch, _| {
            bch.iter(|| solve(&a, &b, &x0, &opts, &spec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gmres);
criterion_main!(benches);
