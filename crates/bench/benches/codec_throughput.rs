//! Compression/decompression throughput of FRSZ2 on the host CPU,
//! against the cast formats. (The H100 numbers come from the gpusim
//! cost model — `fig04_roofline`; this bench gives real, if CPU-scale,
//! wall-clock rates.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use frsz2::{Frsz2Config, Frsz2Vector};

fn krylov_like(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i as f64) * 0.618).sin()).collect()
}

fn bench_codec(c: &mut Criterion) {
    let n = 1 << 20;
    let data = krylov_like(n);
    let mut g = c.benchmark_group("frsz2");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for l in [16u32, 21, 32, 64] {
        let cfg = Frsz2Config::new(32, l);
        g.bench_with_input(BenchmarkId::new("compress", l), &l, |b, _| {
            b.iter(|| Frsz2Vector::compress(cfg, &data))
        });
        let v = Frsz2Vector::compress(cfg, &data);
        let mut out = vec![0.0; n];
        g.bench_with_input(BenchmarkId::new("decompress", l), &l, |b, _| {
            b.iter(|| v.decompress_into(&mut out))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("cast");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("f32_roundtrip", |b| {
        let mut out = vec![0.0f64; n];
        b.iter(|| {
            for (o, &x) in out.iter_mut().zip(&data) {
                *o = x as f32 as f64;
            }
        })
    });
    g.bench_function("f16_roundtrip", |b| {
        let mut out = vec![0.0f64; n];
        b.iter(|| {
            for (o, &x) in out.iter_mut().zip(&data) {
                *o = numfmt::F16::from_f64(x).to_f64();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
