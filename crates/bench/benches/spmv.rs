//! SpMV throughput on the suite operators (GMRES step 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    g.sample_size(10);
    for name in ["atmosmodd", "cfd2", "PR02R"] {
        let m = spla::suite::build(name, 0.6).expect("suite matrix");
        let a = m.matrix;
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; a.rows()];
        g.throughput(Throughput::Bytes(a.spmv_bytes() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| a.spmv(&x, &mut y))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
