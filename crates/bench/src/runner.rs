//! Shared experiment plumbing: CLI options, problem setup, solve loops.

use crate::formats::{self, FormatSpec, Precond};
use krylov::{GmresOptions, SolveResult};
use spla::dense::manufactured_rhs;
use spla::suite::{self, SuiteMatrix};
use spla::Csr;

/// Common command-line options of the experiment binaries.
///
/// `--scale S` linear-dimension scale of the synthetic analogues
/// (default 1.0), `--runs N` repetitions for timing figures, `--matrix
/// NAME` restrict to one matrix, `--format NAME` restrict to one format,
/// `--mtx PATH` load a real MatrixMarket file instead of the analogue,
/// `--max-iters N` iteration cap, `--precond NAME` right preconditioner
/// (`none`/`jacobi`/`block_jacobi`; figures 5 and 9).
#[derive(Clone, Debug)]
pub struct Cli {
    pub scale: f64,
    pub runs: usize,
    pub matrix: Option<String>,
    pub format: Option<String>,
    pub mtx: Option<String>,
    pub max_iters: usize,
    /// Override the stopping target (probe/calibration use).
    pub target: Option<f64>,
    pub precond: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1.0,
            runs: 3,
            matrix: None,
            format: None,
            mtx: None,
            max_iters: 20_000,
            target: None,
            precond: None,
        }
    }
}

impl Cli {
    /// Parse `std::env::args`, ignoring unknown flags (each binary may
    /// add its own).
    pub fn parse() -> Cli {
        Cli::parse_from(std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument list (testable).
    pub fn parse_from(args: Vec<String>) -> Cli {
        let mut cli = Cli::default();
        let mut i = 0;
        while i < args.len() {
            let next = args.get(i + 1).cloned();
            let mut took = true;
            match (args[i].as_str(), next) {
                ("--scale", Some(v)) => cli.scale = v.parse().expect("bad --scale"),
                ("--runs", Some(v)) => cli.runs = v.parse().expect("bad --runs"),
                ("--matrix", Some(v)) => cli.matrix = Some(v),
                ("--format", Some(v)) => cli.format = Some(v),
                ("--mtx", Some(v)) => cli.mtx = Some(v),
                ("--max-iters", Some(v)) => cli.max_iters = v.parse().expect("bad --max-iters"),
                ("--target", Some(v)) => cli.target = Some(v.parse().expect("bad --target")),
                ("--precond", Some(v)) => cli.precond = Some(v),
                _ => took = false,
            }
            i += if took { 2 } else { 1 };
        }
        cli
    }

    /// Matrices selected by this invocation.
    pub fn matrices(&self) -> Vec<&'static str> {
        match &self.matrix {
            Some(m) => suite::names().into_iter().filter(|n| *n == m).collect(),
            None => suite::names(),
        }
    }

    /// Formats selected: `--format NAME` overrides the figure's
    /// default series (so e.g. `--format adaptive` runs the adaptive
    /// driver alone against the chosen preconditioner).
    pub fn formats<'a>(&'a self, default: &[&'a str]) -> Vec<&'a str> {
        match &self.format {
            Some(f) => vec![f.as_str()],
            None => default.to_vec(),
        }
    }

    /// Build the `--precond` preconditioner for `matrix` (identity
    /// when the flag is absent).
    pub fn build_precond(&self, matrix: &Csr) -> Precond {
        let name = self.precond.as_deref().unwrap_or("none");
        Precond::parse(name, matrix).unwrap_or_else(|| panic!("unknown preconditioner {name}"))
    }
}

/// A fully-prepared problem: operator, RHS, expected solution, target.
pub struct Problem {
    pub name: String,
    pub matrix: Csr,
    pub b: Vec<f64>,
    pub x_expected: Vec<f64>,
    pub target_rrn: f64,
}

/// Build a suite problem (or load `--mtx`) with the §V-B deterministic
/// right-hand side.
pub fn prepare(name: &str, cli: &Cli) -> Problem {
    let (matrix, target_rrn) = match &cli.mtx {
        Some(path) => {
            let file =
                std::fs::File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
            let coo = spla::io::read_matrix_market(std::io::BufReader::new(file))
                .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
            let t = suite::entry(name).map(|e| e.target_rrn).unwrap_or(1e-10);
            (coo.to_csr(), t)
        }
        None => {
            let SuiteMatrix { entry, matrix } =
                suite::build(name, cli.scale).unwrap_or_else(|| panic!("unknown matrix {name}"));
            // Synthetic analogues use the §V-C-calibrated analogue target;
            // real .mtx inputs use the paper's Table I value.
            let t = suite::analogue_target(name).unwrap_or(entry.target_rrn);
            (matrix, t)
        }
    };
    let (x_expected, b) = manufactured_rhs(&matrix);
    Problem {
        name: name.to_string(),
        matrix,
        b,
        x_expected,
        target_rrn,
    }
}

/// Default solver options for a problem (restart 100, §V-B).
pub fn default_opts(p: &Problem, cli: &Cli) -> GmresOptions {
    GmresOptions {
        restart: 100,
        max_iters: cli.max_iters,
        target_rrn: cli.target.unwrap_or(p.target_rrn),
        record_history: true,
        ..GmresOptions::default()
    }
}

/// Solve `p` with the given format.
pub fn solve_problem(p: &Problem, opts: &GmresOptions, spec: &FormatSpec) -> SolveResult {
    let x0 = vec![0.0; p.matrix.rows()];
    formats::solve(&p.matrix, &p.b, &x0, opts, spec)
}

/// [`solve_problem`] under an explicit right preconditioner.
pub fn solve_problem_precond(
    p: &Problem,
    opts: &GmresOptions,
    spec: &FormatSpec,
    precond: &Precond,
) -> SolveResult {
    let x0 = vec![0.0; p.matrix.rows()];
    formats::solve_precond(&p.matrix, &p.b, &x0, opts, spec, precond)
}

/// Run `p` once per named format and collect the results (convergence
/// figures 5/6/9).
pub fn convergence_histories(
    p: &Problem,
    opts: &GmresOptions,
    format_names: &[&str],
) -> Vec<(String, SolveResult)> {
    convergence_histories_precond(p, opts, format_names, &Precond::None(krylov::Identity))
}

/// [`convergence_histories`] with a shared preconditioner: every
/// format runs against the *same* `M⁻¹`, so the series differ only in
/// basis storage — the equal-traffic comparison `--precond` asks for.
pub fn convergence_histories_precond(
    p: &Problem,
    opts: &GmresOptions,
    format_names: &[&str],
    precond: &Precond,
) -> Vec<(String, SolveResult)> {
    format_names
        .iter()
        .map(|name| {
            let spec = formats::parse(name).unwrap_or_else(|| panic!("unknown format {name}"));
            let r = solve_problem_precond(p, opts, &spec, precond);
            eprintln!(
                "  {name}: iters={} converged={} final_rrn={:.2e} bits/value={:.1}",
                r.stats.iterations,
                r.stats.converged,
                r.stats.final_rrn,
                r.stats.basis_bits_per_value,
            );
            (name.to_string(), r)
        })
        .collect()
}

/// Emit residual histories in long CSV form and print the run summary.
///
/// Histories may be empty (`record_history: false`): all per-history
/// columns go through the guarded [`krylov::history_summary`] — this
/// path must never index or `unwrap()` a history point.
pub fn report_histories(csv_name: &str, runs: &[(String, SolveResult)]) {
    let mut rows = Vec::new();
    for (name, r) in runs {
        for h in &r.history {
            rows.push(vec![
                name.clone(),
                h.iteration.to_string(),
                format!("{:.6e}", h.rrn),
                if h.explicit { "explicit" } else { "implicit" }.to_string(),
            ]);
        }
    }
    let path = crate::report::write_csv(csv_name, &["format", "iteration", "rrn", "kind"], &rows)
        .expect("write csv");
    let summary: Vec<Vec<String>> = runs
        .iter()
        .map(|(name, r)| {
            let h = krylov::history_summary(&r.history);
            vec![
                name.clone(),
                r.stats.iterations.to_string(),
                if r.stats.converged { "yes" } else { "NO" }.to_string(),
                format!("{:.2e}", r.stats.final_rrn),
                format!("{:.1}", r.stats.basis_bits_per_value),
                h.implicit_explicit_gap
                    .map_or_else(|| "-".to_string(), |g| format!("{g:.2}")),
            ]
        })
        .collect();
    crate::report::print_table(
        &[
            "format",
            "iterations",
            "converged",
            "final_rrn",
            "bits/value",
            "restart_gap",
        ],
        &summary,
    );
    println!("(history csv: {path})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_builds_all_suite_matrices() {
        let cli = Cli {
            scale: 0.2,
            ..Cli::default()
        };
        for name in cli.matrices() {
            let p = prepare(name, &cli);
            assert_eq!(p.b.len(), p.matrix.rows(), "{name}");
            assert!(p.target_rrn > 0.0);
        }
    }

    #[test]
    fn cli_matrix_filter() {
        let cli = Cli {
            matrix: Some("cfd2".into()),
            ..Cli::default()
        };
        assert_eq!(cli.matrices(), vec!["cfd2"]);
    }

    #[test]
    fn report_histories_tolerates_disabled_history() {
        // Regression: `record_history: false` produces empty histories;
        // the whole report path (CSV + summary table with the guarded
        // restart-gap column) must not panic on them.
        let cli = Cli {
            scale: 0.15,
            ..Cli::default()
        };
        let p = prepare("atmosmodd", &cli);
        let opts = GmresOptions {
            record_history: false,
            target_rrn: 1e-6,
            max_iters: 300,
            ..GmresOptions::default()
        };
        let spec = crate::formats::parse("frsz2_32").unwrap();
        let r = solve_problem(&p, &opts, &spec);
        assert!(r.history.is_empty());
        report_histories("test_empty_history", &[("frsz2_32".into(), r)]);
        let _ = std::fs::remove_file("results/test_empty_history.csv");
    }
}
