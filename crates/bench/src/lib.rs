//! Experiment harness shared by the figure/table binaries.
//!
//! * [`formats`] — resolves the paper's storage-format names
//!   (`float64`, `float32`, `float16`, `frsz2_32`, Table II compressor
//!   configs) to concrete solver invocations,
//! * [`runner`] — builds suite problems, runs solves, times them,
//! * [`report`] — aligned-column console tables and CSV emission into
//!   `results/`.

pub mod formats;
pub mod model;
pub mod report;
pub mod runner;
