//! Experiment harness shared by the figure/table binaries.
//!
//! * [`formats`] — resolves the paper's storage-format names
//!   (`float64`, `float32`, `float16`, `frsz2_32`, Table II compressor
//!   configs) to concrete solver invocations,
//! * [`runner`] — builds suite problems, runs solves, times them,
//! * [`report`] — aligned-column console tables, CSV emission into
//!   `results/`, and `BENCH_<name>.json` emission for the perf
//!   trajectory,
//! * [`json`] — the offline JSON emitter/parser and the `BENCH_*.json`
//!   schema validator used by the `bench_json` binary and CI.

pub mod formats;
pub mod json;
pub mod model;
pub mod report;
pub mod runner;
