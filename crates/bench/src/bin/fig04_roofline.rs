//! Figure 4: compute performance vs arithmetic intensity for each
//! storage format on the (modeled) H100, plus the §IV-C bandwidth
//! paragraph (frsz2_32 at ≈99.6 % of peak; cuSZp2 comparison).
//!
//! The streaming kernels run functionally in the warp simulator — the
//! instruction counts are measured, the device peaks are the H100's
//! published numbers, and the curves come out of the multi-resource
//! roofline (`gpusim::cost`).

use bench::report::{print_table, write_csv};
use gpusim::kernels::{ai_series, stream_bandwidth_fraction, stream_cost, StreamFormat};
use gpusim::H100_PCIE;

fn main() {
    // 27 arithmetic-intensity settings (paper: 27 points, log-spaced).
    let ais: Vec<f64> = (0..27)
        .map(|i| f64::powf(10.0, i as f64 * 3.25 / 26.0))
        .collect();
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);

    let formats = StreamFormat::figure4_set();
    let mut series = Vec::new();
    for &fmt in &formats {
        series.push((fmt.label(), ai_series(&H100_PCIE, fmt, n, &ais)));
    }

    println!("=== Fig. 4: GFLOP/s vs arithmetic intensity (modeled H100, n = {n}) ===\n");
    let mut header: Vec<String> = vec!["AI [FLOP/value]".into()];
    header.extend(series.iter().map(|(l, _)| l.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (i, &ai) in ais.iter().enumerate() {
        let mut row = vec![format!("{ai:.2}")];
        for (label, s) in &series {
            row.push(format!("{:.0}", s[i].gflops));
            csv_rows.push(vec![
                label.clone(),
                format!("{ai}"),
                format!("{}", s[i].gflops),
                s[i].bottleneck.to_string(),
            ]);
        }
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    let path = write_csv(
        "fig04_roofline",
        &["format", "ai", "gflops", "bottleneck"],
        &csv_rows,
    )
    .expect("write csv");
    println!("\n(csv: {path})");

    println!("\n=== §IV-C bandwidth detail ===");
    let mut brows = Vec::new();
    for &fmt in &formats {
        let frac = stream_bandwidth_fraction(&H100_PCIE, fmt, n);
        let (c, cost) = stream_cost(&H100_PCIE, fmt, n);
        brows.push(vec![
            fmt.label(),
            format!("{:.1}", frac * H100_PCIE.mem_bw / 1e9),
            format!("{:.1}%", frac * 100.0),
            format!("{:.1}", (c.int + c.clz) as f64 / n as f64),
            cost.bottleneck().to_string(),
        ]);
    }
    print_table(
        &[
            "format",
            "achieved GB/s",
            "% of peak",
            "decode ops/value",
            "bottleneck",
        ],
        &brows,
    );
    let z32 = stream_bandwidth_fraction(&H100_PCIE, StreamFormat::Frsz2(32), n);
    println!(
        "\nfrsz2_32 reaches {:.1}% of peak bandwidth (paper: 99.6% / 1991 GB/s).",
        z32 * 100.0
    );
    println!(
        "cuSZp2 reference points (§III-B, A100): best case 1241 GB/s = 80% of its \
         bandwidth, typical 500 GB/s = 32% -> frsz2_32 is {:.1}x-{:.1}x faster at the roofline.",
        z32 * 2000.0 / (0.80 * 1555.0),
        z32 * 2000.0 / (0.32 * 1555.0),
    );
}
