//! Figure 9: residual-norm development for the best- and worst-behaved
//! matrices for FRSZ2: atmosmodm (9a) and PR02R (9b).
//!
//! Reproduction targets: on atmosmodm, every compressed format shows a
//! residual *correction jump* at the first restart (iteration 100) —
//! the implicit Givens estimate is replaced by the explicitly
//! recomputed residual — and frsz2_32 recovers fastest, ordered by
//! significand bits. On PR02R, frsz2_32 departs from float64/float32
//! and stagnates for a long stretch (the within-block exponent-spread
//! flushing of §VI-A), while float16 never gets anywhere near.

//! `--format NAME` replaces the series with a single format (e.g.
//! `--format adaptive` to watch the escalation driver on PR02R), and
//! `--precond jacobi|block_jacobi` right-preconditions both panels
//! with a per-matrix `M⁻¹` shared across the series, keeping the
//! comparison at equal basis traffic.

use bench::runner::{convergence_histories_precond, default_opts, prepare, report_histories, Cli};
use krylov::Preconditioner;

fn main() {
    let mut cli = Cli::parse();
    if cli.max_iters == 20_000 {
        cli.max_iters = 6_000;
    }
    let formats = cli.formats(&["float64", "float32", "float16", "frsz2_32"]);

    let pa = prepare("atmosmodm", &cli);
    let precond_a = cli.build_precond(&pa.matrix);
    println!(
        "=== Fig. 9a: atmosmodm (FRSZ2 best case), precond {} ===",
        precond_a.name()
    );
    let opts_a = default_opts(&pa, &cli);
    let runs_a = convergence_histories_precond(&pa, &opts_a, &formats, &precond_a);
    report_histories("fig09a_atmosmodm", &runs_a);

    // Quantify the restart correction (the Fig. 9a jump).
    for (name, r) in &runs_a {
        let mut jump: f64 = 0.0;
        for w in r.history.windows(2) {
            if w[1].explicit && !w[0].explicit && w[0].rrn > 0.0 {
                jump = jump.max(w[1].rrn / w[0].rrn);
            }
        }
        println!("  {name}: largest explicit/implicit restart correction = {jump:.2}x");
    }

    let pb = prepare("PR02R", &cli);
    let precond_b = cli.build_precond(&pb.matrix);
    println!(
        "\n=== Fig. 9b: PR02R (FRSZ2 worst case), precond {} ===",
        precond_b.name()
    );
    let opts_b = default_opts(&pb, &cli);
    let runs_b = convergence_histories_precond(&pb, &opts_b, &formats, &precond_b);
    report_histories("fig09b_pr02r", &runs_b);
}
