//! Figure 5: residual-norm development for atmosmodd under absolute
//! error-bounded compression of the Krylov basis.
//!
//! Series: float64 (uncompressed), float32, float16, frsz2_32, and the
//! Table II absolute-bound codecs zfp_06, zfp_10, sz3_06, sz3_07,
//! sz3_08 (LibPressio-style round-trip storage). The paper's finding to
//! reproduce: frsz2_32 nearly matches float64; none of the prediction/
//! transform codecs match even float32, despite sz3_08 spending ~46
//! bits/value.
//!
//! `--format NAME` replaces the series with a single format (e.g.
//! `--format adaptive`), and `--precond jacobi|block_jacobi` runs the
//! whole figure right-preconditioned: every series shares the same
//! `M⁻¹`, so the comparison stays at equal basis traffic.

use bench::runner::{convergence_histories_precond, default_opts, prepare, report_histories, Cli};
use krylov::Preconditioner;

fn main() {
    let mut cli = Cli::parse();
    if cli.max_iters == 20_000 {
        cli.max_iters = 2_000; // figure window; override with --max-iters
    }
    let p = prepare("atmosmodd", &cli);
    let opts = default_opts(&p, &cli);
    let precond = cli.build_precond(&p.matrix);
    println!(
        "=== Fig. 5: atmosmodd (n = {}), target RRN {:.1e}, absolute bounds, precond {} ===",
        p.matrix.rows(),
        opts.target_rrn,
        precond.name()
    );
    let formats = cli.formats(&[
        "float64", "float32", "float16", "frsz2_32", "zfp_06", "zfp_10", "sz3_06", "sz3_07",
        "sz3_08",
    ]);
    let runs = convergence_histories_precond(&p, &opts, &formats, &precond);
    report_histories("fig05_convergence_abs", &runs);
}
