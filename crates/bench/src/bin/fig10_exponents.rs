//! Figure 10: base-2 exponent histogram of all non-zero values of the
//! PR02R matrix.
//!
//! The original spans exponents −178…36; the analogue reproduces the
//! property that matters — per-FRSZ2-block exponent spreads far beyond
//! the `l − 2` window, which flushes small values to zero during
//! normalization (the §VI-A stagnation mechanism).

use bench::report::{print_table, write_csv};
use bench::runner::{prepare, Cli};
use frsz2::Frsz2Config;
use spla::stats::{exponent_histogram, exponent_range};

fn main() {
    let cli = Cli::parse();
    let p = prepare("PR02R", &cli);
    let values = p.matrix.values();
    let hist = exponent_histogram(values);
    let (lo, hi) = exponent_range(values);

    println!(
        "=== Fig. 10: PR02R non-zero value exponents (analogue: {} nnz) ===",
        p.matrix.nnz()
    );
    println!(
        "exponent range: 2^{lo} .. 2^{hi} (paper's original: 2^-178 .. 2^36); spread = {} binades",
        hi - lo
    );

    // Compact the histogram into 4-binade buckets for the console.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut bucket_start = lo;
    let mut bucket_count = 0usize;
    for &(e, c) in &hist {
        csv.push(vec![e.to_string(), c.to_string()]);
        while e >= bucket_start + 4 {
            if bucket_count > 0 {
                rows.push(vec![
                    format!("2^{} .. 2^{}", bucket_start, bucket_start + 3),
                    bucket_count.to_string(),
                ]);
            }
            bucket_start += 4;
            bucket_count = 0;
        }
        bucket_count += c;
    }
    if bucket_count > 0 {
        rows.push(vec![
            format!("2^{} .. 2^{}", bucket_start, bucket_start + 3),
            bucket_count.to_string(),
        ]);
    }
    print_table(&["exponent bucket", "count"], &rows);

    // The quantitative consequence for FRSZ2 (what Fig. 9b stems from).
    let flush32 = frsz2::error::predicted_flush_fraction(Frsz2Config::new(32, 32), values);
    let flush64 = frsz2::error::predicted_flush_fraction(Frsz2Config::new(32, 64), values);
    println!(
        "\nfraction of nonzeros FRSZ2 would flush to zero if these values were a \
         Krylov block stream: l=32 -> {:.1}%, l=64 -> {:.1}%",
        flush32 * 100.0,
        flush64 * 100.0
    );

    let path = write_csv("fig10_exponents", &["exponent", "count"], &csv).expect("write csv");
    println!("(csv: {path})");
}
