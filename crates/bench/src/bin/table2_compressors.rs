//! Table II: the compressor configurations under comparison, with the
//! rate each one actually achieves on Krylov-like data.

use bench::report::print_table;
use lossy::registry;
use lossy::Compressor;

fn main() {
    // A Krylov-vector-like probe: unit-norm, uncorrelated mantissas,
    // clustered exponents.
    let n = 32 * 1024;
    let mut probe: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.618_033_988).sin()).collect();
    let nrm = (probe.iter().map(|v| v * v).sum::<f64>()).sqrt();
    probe.iter_mut().for_each(|v| *v /= nrm);

    let mut rows = Vec::new();
    for info in registry::TABLE_TWO.iter() {
        let codec = registry::by_name(info.name).expect("registered codec");
        let bpv = codec.bits_per_value(&probe);
        let mut out = vec![0.0; n];
        codec.roundtrip(&probe, &mut out);
        let max_err = probe
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            info.name.to_string(),
            info.bound_type.to_string(),
            info.bound.to_string(),
            format!("{bpv:.1}"),
            format!("{max_err:.1e}"),
        ]);
    }
    // FRSZ2 for reference.
    let frsz2 = lossy::frsz2_adapter::Frsz2Compressor::new(frsz2::Frsz2Config::new(32, 32));
    let mut out = vec![0.0; n];
    frsz2.roundtrip(&probe, &mut out);
    let max_err = probe
        .iter()
        .zip(&out)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    rows.push(vec![
        "frsz2_32 (ours)".into(),
        "fixed rate".into(),
        "32 bits".into(),
        format!("{:.1}", frsz2.bits_per_value(&probe)),
        format!("{max_err:.1e}"),
    ]);

    println!("=== Table II: compressor configurations (measured on a Krylov-like vector) ===");
    print_table(
        &[
            "name",
            "bound type",
            "requested bound",
            "achieved bits/value",
            "max |err|",
        ],
        &rows,
    );
}
