//! Figure 2: histograms of Krylov-vector values and base-2 exponents
//! for the atmosmodd problem, early and late in the solve.
//!
//! Reproduces the §III-A decorrelation argument: the *values* are
//! spread across their range with no pattern, while the *exponents*
//! cluster in a handful of binades — which is why FRSZ2 decorrelates
//! only the exponent.

use bench::report::{print_table, write_csv};
use bench::runner::{prepare, Cli};
use krylov::diagnostics::krylov_snapshot;
use numfmt::DenseStore;

fn main() {
    let cli = Cli::parse();
    let p = prepare("atmosmodd", &cli);

    for (label, iteration) in [("first-iterations", 1usize), ("late-iterations", 60)] {
        let snap = krylov_snapshot::<DenseStore<f64>, _>(&p.matrix, &p.b, iteration, 41)
            .expect("solver must reach the capture iteration");
        println!("\n=== Krylov basis vector at iteration {iteration} ({label}) ===");
        let (core, total) = snap.exponent_concentration;
        println!(
            "distinct exponents: {total}; {core} binades cover 90% of entries \
             (values uniform, exponents clustered -> only exponents are compressible)"
        );

        let rows: Vec<Vec<String>> = snap
            .exponent_histogram
            .iter()
            .map(|&(e, c)| vec![format!("2^{e}"), format!("{c}")])
            .collect();
        print_table(&["exponent", "count"], &rows);

        let csv_rows: Vec<Vec<String>> = snap
            .exponent_histogram
            .iter()
            .map(|&(e, c)| {
                vec![
                    label.into(),
                    "exponent".into(),
                    e.to_string(),
                    c.to_string(),
                ]
            })
            .chain(snap.value_histogram.iter().map(|&(v, c)| {
                vec![
                    label.into(),
                    "value".into(),
                    format!("{v:.6e}"),
                    c.to_string(),
                ]
            }))
            .collect();
        let path = write_csv(
            &format!("fig02_{label}"),
            &["phase", "kind", "bin", "count"],
            &csv_rows,
        )
        .expect("write csv");
        println!(
            "(value histogram: {} bins; full data in {path})",
            snap.value_histogram.len()
        );
    }
}
