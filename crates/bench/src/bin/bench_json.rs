//! Machine-readable perf harness: times the paper-critical paths (SpMV
//! in every sparse format, FRSZ2 codec round-trip, CB-GMRES solves on
//! CSR and on the auto-selected format, plus the adaptive-precision
//! stagnation pair `cb_gmres_frsz2_16_fixed` / `cb_gmres_adaptive` on
//! a similarity-scaled operator) at explicit thread counts and emits
//! schema-stable `BENCH_<name>.json` files plus a combined
//! `results/bench_json.csv`. The schema — field-by-field, with the
//! v1→v8 changelog — is documented in `docs/bench-schema.md`.
//!
//! Schema v5 adds the `service` suite: eight mixed-format jobs over
//! two operators cached by a long-lived `SolverService`, run
//! sequentially and concurrently. The per-job fingerprints must match
//! a 1-thread sequential reference byte for byte, and an
//! admission-control probe must see its over-budget job rejected with
//! a typed error.
//!
//! Schema v6 adds the `block` suite: the pinned `cb_gmres_frsz2_21`
//! configuration solved for b ∈ {1, 4, 16} right-hand sides through
//! the shared-space block driver (wide blocks at a width-scaled
//! restart). The width-1 block case must reproduce the in-suite
//! single-solve reference fingerprint byte for byte at every thread
//! count; `time_per_rhs_ms` / `spmv_gb_per_rhs` record the evidence
//! that b = 16 beats the pinned b = 1 case per RHS.
//!
//! Schema v7 adds the `sstep` suite: the pinned `cb_gmres_frsz2_21`
//! configuration solved through the s-step driver for s ∈ {1, 2, 4, 8}.
//! The s = 1 case must reproduce the in-suite single-solve reference
//! fingerprint byte for byte at every thread count, and every s > 1
//! case must converge to the same explicit target with strictly fewer
//! basis decode sweeps than s = 1 — the committed evidence that the
//! matrix-powers panel amortizes per-iteration decode traffic.
//!
//! Schema v8 adds the `faults` suite: the fault-tolerance layer under
//! deterministic injected failures — a basis bit-flip, a Hessenberg
//! NaN, a stagnating format rescued by retry-with-escalation, an
//! injected panic, and a deadline breach resumed from its checkpoint
//! bit-identically. Every case independently recomputes `‖b − Ax‖/‖b‖`
//! and the suite aborts if any injected fault produces a false
//! convergence (`undetected_corruptions` is pinned at 0); the
//! checkpoint-overhead case proves the restart-boundary probe changes
//! no bits and records its cost.
//!
//! ```text
//! bench_json [--quick] [--threads 1,2,4] [--runs N]
//! bench_json --validate BENCH_spmv.json [MORE.json ...]
//! bench_json --check-bidirectional BENCH_solve.json [MORE.json ...]
//! ```
//!
//! `--check-bidirectional` re-reads committed solve documents and
//! fails unless the `cb_gmres_adaptive_bidir` trajectory steps up the
//! escalation ladder at least once and back down at least once after —
//! the CI guard that keeps the committed artifact genuinely
//! bidirectional.
//!
//! Every case records a **fingerprint** (FNV-1a over the bit patterns
//! of its numeric output); the harness exits non-zero if any case's
//! fingerprint differs between thread counts, between sparse matrix
//! formats running the same computation (`spmv_csr` vs `spmv_ell` vs
//! `spmv_sell`; `cb_gmres_frsz2_21` vs `cb_gmres_frsz2_21_auto`), *or*
//! between a fused orthogonalization kernel and its
//! decompress-then-BLAS reference (`basis_dots` vs `basis_dots_ref`,
//! `basis_gemv` vs `basis_gemv_ref` — schema v3). All three contracts
//! are enforced wherever the benches run — including CI's
//! `bench-smoke` job, which also validates the JSON schema with
//! `--validate`. See `bench::json` for the schema.

use bench::json::{self, Json};
use bench::report;
use frsz2::{Frsz2AdaptiveStore, Frsz2Config, Frsz2Store, Frsz2Vector};
use krylov::{
    adaptive_gmres, block_gmres_with, gmres, gmres_with, sstep_gmres_dyn, AdaptiveOptions,
    GmresOptions, Identity, SStepOptions, SStepSolveResult, SolveResult, ESCALATION_LADDER,
};
use numfmt::ColumnStorage;
use spla::{auto_format, gen, Ell, SellCSigma, SparseMatrix};
use std::time::Instant;

struct Args {
    quick: bool,
    threads: Vec<usize>,
    runs: usize,
    validate: Vec<String>,
    check_bidirectional: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: Vec::new(),
        runs: 0,
        validate: Vec::new(),
        check_bidirectional: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                i += 1;
                let list = argv.get(i).expect("--threads needs a list, e.g. 1,2,4");
                args.threads = list
                    .split(',')
                    .map(|t| t.trim().parse().expect("bad thread count"))
                    .collect();
                assert!(
                    args.threads.iter().all(|&t| t >= 1),
                    "thread counts must be >= 1"
                );
            }
            "--runs" => {
                i += 1;
                args.runs = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("bad --runs");
            }
            "--validate" => {
                args.validate = argv[i + 1..].to_vec();
                assert!(
                    !args.validate.is_empty(),
                    "--validate needs at least one file"
                );
                break;
            }
            "--check-bidirectional" => {
                args.check_bidirectional = argv[i + 1..].to_vec();
                assert!(
                    !args.check_bidirectional.is_empty(),
                    "--check-bidirectional needs at least one file"
                );
                break;
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    if args.runs == 0 {
        args.runs = if args.quick { 3 } else { 5 };
    }
    if args.threads.is_empty() {
        let avail = available_threads();
        args.threads = if avail > 1 { vec![1, avail] } else { vec![1] };
    }
    args
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// FNV-1a over `u64` words: the determinism fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

fn fingerprint_f64s(values: &[f64]) -> String {
    let mut h = Fnv::new();
    for v in values {
        h.push(v.to_bits());
    }
    h.hex()
}

/// One measurement: `runs` timed repetitions after one warmup, under a
/// pool of exactly `threads` threads.
fn time_under_pool<F: FnMut()>(threads: usize, runs: usize, mut f: F) -> Vec<f64> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build");
    pool.install(|| {
        f(); // warmup
        (0..runs)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect()
    })
}

fn min_median_mean(samples: &[f64]) -> (f64, f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    (min, median, mean)
}

/// A `(case, threads)` measurement row plus its determinism hash.
struct CaseResult {
    name: String,
    threads: usize,
    runs: usize,
    min_ms: f64,
    median_ms: f64,
    mean_ms: f64,
    metrics: Vec<(String, f64)>,
    fingerprint: String,
    /// Per-cycle basis-format trajectory (adaptive solve cases; schema
    /// v2 optional key).
    format_trajectory: Option<Vec<String>>,
}

impl CaseResult {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("runs", Json::Num(self.runs as f64)),
            ("min_ms", Json::Num(self.min_ms)),
            ("median_ms", Json::Num(self.median_ms)),
            ("mean_ms", Json::Num(self.mean_ms)),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
        ];
        if let Some(traj) = &self.format_trajectory {
            pairs.push((
                "format_trajectory",
                Json::Arr(traj.iter().map(|f| Json::Str(f.clone())).collect()),
            ));
        }
        Json::obj(pairs)
    }
}

/// Fail the run (exit 1) if any case produced different bits at
/// different thread counts.
fn enforce_determinism(bench: &str, cases: &[CaseResult]) {
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for c in cases {
        match seen.iter().find(|(name, _)| *name == c.name) {
            None => seen.push((&c.name, &c.fingerprint)),
            Some((_, fp)) if *fp == c.fingerprint => {}
            Some((_, fp)) => {
                eprintln!(
                    "DETERMINISM VIOLATION in {bench}/{}: fingerprint {} at {} threads \
                     differs from {}",
                    c.name, c.fingerprint, c.threads, fp
                );
                std::process::exit(1);
            }
        }
    }
}

/// Fail the run (exit 1) if cases of the named group — the same
/// computation on different sparse formats — disagree on any
/// fingerprint. Together with [`enforce_determinism`] this pins the
/// output bits across *both* axes: thread count and matrix format.
fn enforce_cross_format(bench: &str, group: &[&str], cases: &[CaseResult]) {
    // A renamed case or group-list typo must not silently disable the
    // guard: every group member must actually be present and compared.
    for name in group {
        assert!(
            cases.iter().any(|c| c.name == *name),
            "cross-format group member {name} produced no cases in {bench}"
        );
    }
    let reference: Vec<&CaseResult> = cases.iter().filter(|c| c.name == group[0]).collect();
    for c in cases.iter().filter(|c| group.contains(&c.name.as_str())) {
        let r = reference
            .iter()
            .find(|r| r.threads == c.threads)
            .unwrap_or_else(|| {
                panic!(
                    "{bench}/{}: no {} reference measurement at {} threads",
                    c.name, group[0], c.threads
                )
            });
        if c.fingerprint != r.fingerprint {
            eprintln!(
                "CROSS-FORMAT DIVERGENCE in {bench}: {} fingerprint {} at {} threads \
                 differs from {} ({})",
                c.name, c.fingerprint, c.threads, group[0], r.fingerprint
            );
            std::process::exit(1);
        }
    }
}

fn emit_doc(
    bench: &str,
    quick: bool,
    config: Vec<(&str, Json)>,
    cases: &[CaseResult],
    speedup_case: &str,
) -> Json {
    let mut pairs = vec![
        ("schema_version", Json::Num(json::BENCH_SCHEMA_VERSION)),
        ("bench", Json::Str(bench.to_string())),
        ("quick", Json::Bool(quick)),
        ("threads_available", Json::Num(available_threads() as f64)),
        ("config", Json::obj(config)),
        (
            "cases",
            Json::Arr(cases.iter().map(CaseResult::to_json).collect()),
        ),
    ];
    // Speedup of the highest thread count over the lowest for the
    // designated case (min-of-runs times).
    let of_case: Vec<&CaseResult> = cases.iter().filter(|c| c.name == speedup_case).collect();
    if of_case.len() >= 2 {
        let lo = of_case.iter().min_by_key(|c| c.threads).unwrap();
        let hi = of_case.iter().max_by_key(|c| c.threads).unwrap();
        if hi.threads > lo.threads && hi.min_ms > 0.0 {
            pairs.push((
                "speedup",
                Json::obj(vec![
                    ("case", Json::Str(speedup_case.to_string())),
                    ("threads", Json::Num(hi.threads as f64)),
                    ("vs", Json::Num(lo.threads as f64)),
                    ("factor", Json::Num(lo.min_ms / hi.min_ms)),
                ]),
            ));
        }
    }
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// ---------------------------------------------------------------------
// The three suites.
// ---------------------------------------------------------------------

/// SpMV on a convection–diffusion operator (≥ 1M nnz in full mode),
/// measured once per sparse format (CSR / ELL / SELL-C-σ). All three
/// formats must produce bit-identical output — the harness exits
/// non-zero on any cross-format fingerprint divergence (see
/// [`enforce_cross_format`]).
fn bench_spmv(args: &Args) -> (Json, Vec<CaseResult>) {
    let s = if args.quick { 24 } else { 56 };
    let a = gen::conv_diff_3d(s, s, s, [0.4, 0.2, 0.1], 0.2);
    let auto = auto_format(&a);
    let ell = Ell::from_csr(&a);
    let sell = SellCSigma::from_csr(&a, 32, 256);
    let formats: [(&str, &dyn SparseMatrix); 3] =
        [("spmv_csr", &a), ("spmv_ell", &ell), ("spmv_sell", &sell)];
    let x: Vec<f64> = (0..a.cols()).map(|i| ((i as f64) * 0.37).sin()).collect();
    let mut y = vec![0.0; a.rows()];
    let mut cases = Vec::new();
    for (name, m) in formats {
        let bytes = m.spmv_bytes();
        for &threads in &args.threads {
            let samples = time_under_pool(threads, args.runs, || m.spmv(&x, &mut y));
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            cases.push(CaseResult {
                name: name.into(),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("nnz".into(), m.nnz() as f64),
                    ("rows".into(), m.rows() as f64),
                    ("storage_bytes".into(), m.storage_bytes() as f64),
                    ("gbps".into(), bytes as f64 / (min_ms * 1e-3) / 1e9),
                ],
                fingerprint: fingerprint_f64s(&y),
                format_trajectory: None,
            });
        }
    }
    enforce_cross_format("spmv", &["spmv_csr", "spmv_ell", "spmv_sell"], &cases);
    let config = vec![
        ("matrix", Json::Str(format!("conv_diff_3d {s}^3"))),
        ("rows", Json::Num(a.rows() as f64)),
        ("nnz", Json::Num(a.nnz() as f64)),
        ("bytes_per_spmv", Json::Num(a.spmv_bytes() as f64)),
        ("auto_format", Json::Str(auto.name().into())),
    ];
    (
        emit_doc("spmv", args.quick, config, &cases, "spmv_csr"),
        cases,
    )
}

/// FRSZ2 compress + decompress round-trip at all three paper bit
/// lengths (`l ∈ {16, 21, 32}`, schema v3), plus the fused
/// multi-column orthogonalization kernel microbenches
/// (`basis_dots`/`basis_gemv`) against their decompress-then-BLAS
/// references. Each fused/ref pair must produce bit-identical output
/// at every thread count — enforced by [`enforce_cross_format`].
fn bench_codec(args: &Args) -> (Json, Vec<CaseResult>) {
    let n: usize = if args.quick { 1 << 16 } else { 1 << 20 };
    let data: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin() * 0.9).collect();
    let mut out = vec![0.0; n];
    let mut cases = Vec::new();
    for &bits in &[16u32, 21, 32] {
        let cfg = Frsz2Config::new(32, bits);
        for &threads in &args.threads {
            let samples = time_under_pool(threads, args.runs, || {
                let v = Frsz2Vector::compress(cfg, &data);
                v.decompress_into(&mut out);
            });
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            cases.push(CaseResult {
                name: format!("codec_roundtrip_l{bits}"),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("values".into(), n as f64),
                    // Uncompressed bytes moved through the codec per
                    // round trip (one encode + one decode pass).
                    (
                        "gbps_uncompressed".into(),
                        (2 * n * 8) as f64 / (min_ms * 1e-3) / 1e9,
                    ),
                    // Compressed bytes moved per round trip (one pack
                    // write + one decode read) — the traffic CB-GMRES
                    // actually pays for basis storage (schema v3).
                    (
                        "gbps_compressed".into(),
                        (2 * cfg.storage_bytes(n)) as f64 / (min_ms * 1e-3) / 1e9,
                    ),
                    ("bits_per_value".into(), cfg.bits_per_value(n)),
                ],
                fingerprint: fingerprint_f64s(&out),
                format_trajectory: None,
            });
        }
    }

    // Kernel microbenches (schema v3): the fused multi-column basis
    // sweeps on a frsz2_21 basis vs their per-column
    // decompress-then-naive-BLAS references. The reference mirrors the
    // basis' chunk reduction exactly, so fingerprints must match
    // bit-for-bit — fusion changes speed, never results.
    let bn: usize = if args.quick { 1 << 14 } else { 1 << 17 };
    let bk = 8usize;
    let cfg21 = Frsz2Config::new(32, 21);
    let mut basis = krylov::Basis::from_store(Frsz2Store::with_config(cfg21, bn, bk));
    for j in 0..bk {
        let v: Vec<f64> = (0..bn)
            .map(|i| ((i + 31 * j) as f64 * 0.11).sin())
            .collect();
        basis.write(j, &v);
    }
    let w: Vec<f64> = (0..bn).map(|i| (i as f64 * 0.07).sin()).collect();
    let alphas: Vec<f64> = (0..bk).map(|j| 1e-3 * (j as f64 + 1.0)).collect();
    let chunk = basis.chunk_rows();
    let n_chunks = bn.div_ceil(chunk);
    let col_bytes = basis.column_bytes();
    // Compressed bytes streamed per sweep: all k columns once.
    let sweep_bytes = (bk * col_bytes) as f64;

    let mut h = vec![0.0; bk];
    let mut scratch = Vec::new();
    let mut wv = w.clone();
    let mut tile = vec![0.0; chunk];
    let mut partials = vec![0.0; n_chunks * bk];
    for &threads in &args.threads {
        // basis_dots: fused h = Vᵀw.
        let samples = time_under_pool(threads, args.runs, || {
            basis.dots_with(bk, &w, &mut h, &mut scratch);
        });
        push_kernel_case(
            &mut cases,
            "basis_dots",
            threads,
            args,
            &samples,
            sweep_bytes,
            fingerprint_f64s(&h),
        );

        // basis_dots_ref: per-column decompress-then-dot with the same
        // chunk-ordered partial reduction.
        let samples = time_under_pool(threads, args.runs, || {
            for (c, slot) in partials.chunks_mut(bk).enumerate() {
                let start = c * chunk;
                let len = chunk.min(bn - start);
                for (j, out_j) in slot.iter_mut().enumerate() {
                    basis.store().read_chunk(j, start, &mut tile[..len]);
                    let mut acc = 0.0;
                    for (a, b) in tile[..len].iter().zip(&w[start..start + len]) {
                        acc += a * b;
                    }
                    *out_j = acc;
                }
            }
            for (j, out_j) in h.iter_mut().enumerate() {
                *out_j = (0..n_chunks).map(|c| partials[c * bk + j]).sum();
            }
        });
        push_kernel_case(
            &mut cases,
            "basis_dots_ref",
            threads,
            args,
            &samples,
            sweep_bytes,
            fingerprint_f64s(&h),
        );

        // basis_gemv: fused w ← w + Σ αⱼ V[:,j]. Timed on a scratch
        // vector; the fingerprint comes from one fresh application so
        // it is independent of the run count.
        let samples = time_under_pool(threads, args.runs, || {
            basis.axpys(bk, &alphas, &mut wv);
        });
        wv.copy_from_slice(&w);
        basis.axpys(bk, &alphas, &mut wv);
        let fused_fp = fingerprint_f64s(&wv);
        push_kernel_case(
            &mut cases,
            "basis_gemv",
            threads,
            args,
            &samples,
            sweep_bytes,
            fused_fp,
        );

        // basis_gemv_ref: sequential per-column decompress-then-axpy
        // (chunk outer, column inner — the op order the fused kernel
        // must reproduce).
        let mut gemv_ref = |wv: &mut [f64]| {
            let mut start = 0;
            while start < bn {
                let len = chunk.min(bn - start);
                for (j, &a) in alphas.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    basis.store().read_chunk(j, start, &mut tile[..len]);
                    for (b, t) in wv[start..start + len].iter_mut().zip(&tile[..len]) {
                        *b += a * t;
                    }
                }
                start += len;
            }
        };
        let samples = time_under_pool(threads, args.runs, || gemv_ref(&mut wv));
        wv.copy_from_slice(&w);
        gemv_ref(&mut wv);
        let ref_fp = fingerprint_f64s(&wv);
        push_kernel_case(
            &mut cases,
            "basis_gemv_ref",
            threads,
            args,
            &samples,
            sweep_bytes,
            ref_fp,
        );
    }
    // Fused and reference kernels must agree bit-for-bit.
    enforce_cross_format("codec", &["basis_dots", "basis_dots_ref"], &cases);
    enforce_cross_format("codec", &["basis_gemv", "basis_gemv_ref"], &cases);

    let config = vec![
        ("values", Json::Num(n as f64)),
        ("block_size", Json::Num(32.0)),
        ("basis_rows", Json::Num(bn as f64)),
        ("basis_cols", Json::Num(bk as f64)),
        ("basis_format", Json::Str("frsz2_21".into())),
    ];
    (
        emit_doc("codec", args.quick, config, &cases, "codec_roundtrip_l21"),
        cases,
    )
}

/// Append one kernel-microbench case row (codec suite, schema v3):
/// `gbps_compressed` is the compressed basis bytes swept per call over
/// the min time — the bandwidth the paper's Figure 4 roofline is about.
fn push_kernel_case(
    cases: &mut Vec<CaseResult>,
    name: &str,
    threads: usize,
    args: &Args,
    samples: &[f64],
    sweep_bytes: f64,
    fingerprint: String,
) {
    let (min_ms, median_ms, mean_ms) = min_median_mean(samples);
    cases.push(CaseResult {
        name: name.into(),
        threads,
        runs: args.runs,
        min_ms,
        median_ms,
        mean_ms,
        metrics: vec![(
            "gbps_compressed".into(),
            sweep_bytes / (min_ms * 1e-3) / 1e9,
        )],
        fingerprint,
        format_trajectory: None,
    });
}

/// CB-GMRES solves with the paper's `l = 21` compressed basis on the
/// convection–diffusion system: once on CSR, once on the auto-selected
/// sparse format. The two cases must produce bit-identical residual
/// histories (the `SparseMatrix` bit-identity contract), enforced by
/// [`enforce_cross_format`].
fn bench_solve(args: &Args) -> (Json, Vec<CaseResult>) {
    let s = if args.quick { 12 } else { 20 };
    let a = gen::conv_diff_3d(s, s, s, [0.4, 0.2, 0.1], 0.2);
    let auto = auto_format(&a);
    let auto_matrix = auto.build(&a);
    let (_, b) = spla::dense::manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        restart: 100,
        max_iters: 5000,
        target_rrn: 1e-10,
        record_history: true,
        ..GmresOptions::default()
    };
    let cfg = Frsz2Config::new(32, 21);
    let solve = |a: &dyn SparseMatrix| -> SolveResult {
        gmres_with(a, &b, &x0, &opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        })
    };
    let operators: [(&str, &dyn SparseMatrix); 2] = [
        ("cb_gmres_frsz2_21", &a),
        ("cb_gmres_frsz2_21_auto", auto_matrix.as_ref()),
    ];
    let mut cases = Vec::new();
    for (name, op) in operators {
        for &threads in &args.threads {
            let mut last: Option<SolveResult> = None;
            let samples = time_under_pool(threads, args.runs, || last = Some(solve(op)));
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            let r = last.expect("at least one solve ran");
            assert!(r.stats.converged, "solve failed to converge");
            let mut h = Fnv::new();
            h.push(r.stats.iterations as u64);
            for point in &r.history {
                h.push(point.rrn.to_bits());
            }
            cases.push(CaseResult {
                name: name.into(),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("iterations".into(), r.stats.iterations as f64),
                    ("final_rrn".into(), r.stats.final_rrn),
                    ("basis_bits_per_value".into(), r.stats.basis_bits_per_value),
                ],
                fingerprint: h.hex(),
                format_trajectory: None,
            });
        }
    }
    // Residual histories must not depend on the matrix format.
    enforce_cross_format(
        "solve",
        &["cb_gmres_frsz2_21", "cb_gmres_frsz2_21_auto"],
        &cases,
    );

    // Stagnation pair (schema v2): a PR02R-like similarity-scaled
    // operator whose within-block exponent spread defeats frsz2_16 at
    // this target — the fixed solve stagnates by design — against the
    // adaptive-precision solver, which escalates
    // frsz2_16 → frsz2_21 → frsz2_32 → float64 on explicit-residual
    // evidence and must converge. Both run to completion at every
    // thread count; the adaptive fingerprint also covers the
    // escalation schedule.
    let s2 = if args.quick { 8 } else { 12 };
    let scaled = gen::wide_range_conv_diff(s2, s2, s2, 24, 0x5202);
    let (_, b2) = spla::dense::manufactured_rhs(&scaled);
    let x02 = vec![0.0; scaled.rows()];
    let stag_opts = GmresOptions {
        restart: 30,
        max_iters: 1200,
        target_rrn: 1e-10,
        record_history: true,
        ..GmresOptions::default()
    };
    let cfg16 = Frsz2Config::new(32, 16);
    let fixed16 = || -> SolveResult {
        gmres_with(&scaled, &b2, &x02, &stag_opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg16, rows, cols)
        })
    };
    let adaptive = || -> SolveResult {
        let aopts = AdaptiveOptions {
            gmres: stag_opts.clone(),
            ..AdaptiveOptions::default()
        };
        adaptive_gmres(&scaled, &b2, &x02, &aopts, &Identity)
    };
    let pair: [(&str, &dyn Fn() -> SolveResult); 2] = [
        ("cb_gmres_frsz2_16_fixed", &fixed16),
        ("cb_gmres_adaptive", &adaptive),
    ];
    for (name, run) in pair {
        for &threads in &args.threads {
            let mut last: Option<SolveResult> = None;
            let samples = time_under_pool(threads, args.runs, || last = Some(run()));
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            let r = last.expect("at least one solve ran");
            // The scenario contract — the whole point of the pair.
            if name == "cb_gmres_adaptive" {
                assert!(
                    r.stats.converged,
                    "adaptive solve failed to converge (rrn {:.2e}, trajectory {:?})",
                    r.stats.final_rrn, r.stats.format_trajectory
                );
                assert!(r.stats.escalations >= 1, "adaptive never escalated");
            } else {
                assert!(
                    !r.stats.converged,
                    "fixed frsz2_16 unexpectedly converged; the counterpoint is dead"
                );
            }
            let mut h = Fnv::new();
            h.push(r.stats.iterations as u64);
            for point in &r.history {
                h.push(point.rrn.to_bits());
            }
            // Pin the escalation schedule too, not just the residuals.
            for f in &r.stats.format_trajectory {
                for byte in f.as_bytes() {
                    h.push(u64::from(*byte));
                }
            }
            cases.push(CaseResult {
                name: name.into(),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("converged".into(), f64::from(u8::from(r.stats.converged))),
                    ("iterations".into(), r.stats.iterations as f64),
                    ("final_rrn".into(), r.stats.final_rrn),
                    ("escalations".into(), r.stats.escalations as f64),
                    ("basis_bits_per_value".into(), r.stats.basis_bits_per_value),
                ],
                fingerprint: h.hex(),
                format_trajectory: Some(r.stats.format_trajectory.clone()),
            });
        }
    }

    // Bidirectional driver (schema v4): same wide-range operator, but
    // with de-escalation armed at single-cycle hysteresis. The
    // committed trajectory must walk the ladder both ways — escalating
    // out of frsz2_16 stagnation *and* stepping back down once the
    // implicit and explicit residuals agree through a ≥10× drop.
    let bidir = || -> SolveResult {
        let aopts = AdaptiveOptions {
            gmres: stag_opts.clone(),
            de_escalate: true,
            de_escalation_cycles: 1,
            ..AdaptiveOptions::default()
        };
        adaptive_gmres(&scaled, &b2, &x02, &aopts, &Identity)
    };
    for &threads in &args.threads {
        let mut last: Option<SolveResult> = None;
        let samples = time_under_pool(threads, args.runs, || last = Some(bidir()));
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        let r = last.expect("at least one solve ran");
        assert!(
            r.stats.converged,
            "bidirectional adaptive solve failed to converge (rrn {:.2e}, trajectory {:?})",
            r.stats.final_rrn, r.stats.format_trajectory
        );
        assert!(
            r.stats.escalations >= 1,
            "bidirectional solve never escalated (trajectory {:?})",
            r.stats.format_trajectory
        );
        assert!(
            r.stats.de_escalations >= 1,
            "bidirectional solve never de-escalated (trajectory {:?})",
            r.stats.format_trajectory
        );
        let mut h = Fnv::new();
        h.push(r.stats.iterations as u64);
        for point in &r.history {
            h.push(point.rrn.to_bits());
        }
        for f in &r.stats.format_trajectory {
            for byte in f.as_bytes() {
                h.push(u64::from(*byte));
            }
        }
        cases.push(CaseResult {
            name: "cb_gmres_adaptive_bidir".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("converged".into(), f64::from(u8::from(r.stats.converged))),
                ("iterations".into(), r.stats.iterations as f64),
                ("final_rrn".into(), r.stats.final_rrn),
                ("escalations".into(), r.stats.escalations as f64),
                ("de_escalations".into(), r.stats.de_escalations as f64),
                ("basis_bits_per_value".into(), r.stats.basis_bits_per_value),
            ],
            fingerprint: h.hex(),
            format_trajectory: Some(r.stats.format_trajectory.clone()),
        });
    }

    // Runs-operator pair (schema v4): plateaus of 16 equal scaling
    // entries spread over 24 binades. Most 32-value blocks straddle at
    // most one plateau boundary, so the per-block store spends long
    // bit lengths only where they are needed — the regime where fixed
    // frsz2_16 stagnates but `frsz2_ab` converges below the whole-basis
    // frsz2_21 rate.
    let runs_m = gen::wide_range_conv_diff_runs(s2, s2, s2, 24, 16, 0x5202);
    let (_, b3) = spla::dense::manufactured_rhs(&runs_m);
    let x03 = vec![0.0; runs_m.rows()];
    let fixed16_runs = || -> SolveResult {
        gmres_with(&runs_m, &b3, &x03, &stag_opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg16, rows, cols)
        })
    };
    let ab_runs = || -> SolveResult {
        gmres::<Frsz2AdaptiveStore, _, _>(&runs_m, &b3, &x03, &stag_opts, &Identity)
    };
    let runs_pair: [(&str, &dyn Fn() -> SolveResult); 2] = [
        ("cb_gmres_frsz2_16_runs", &fixed16_runs),
        ("cb_gmres_frsz2_ab", &ab_runs),
    ];
    for (name, run) in runs_pair {
        for &threads in &args.threads {
            let mut last: Option<SolveResult> = None;
            let samples = time_under_pool(threads, args.runs, || last = Some(run()));
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            let r = last.expect("at least one solve ran");
            if name == "cb_gmres_frsz2_ab" {
                assert!(
                    r.stats.converged,
                    "frsz2_ab solve failed to converge (rrn {:.2e})",
                    r.stats.final_rrn
                );
                assert!(
                    r.stats.basis_bits_per_value < 22.0,
                    "frsz2_ab rate {:.2} bpv not below the frsz2_21 whole-basis rate",
                    r.stats.basis_bits_per_value
                );
            } else {
                assert!(
                    !r.stats.converged,
                    "fixed frsz2_16 unexpectedly converged on the runs operator; \
                     the counterpoint is dead"
                );
            }
            let mut h = Fnv::new();
            h.push(r.stats.iterations as u64);
            for point in &r.history {
                h.push(point.rrn.to_bits());
            }
            cases.push(CaseResult {
                name: name.into(),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("converged".into(), f64::from(u8::from(r.stats.converged))),
                    ("iterations".into(), r.stats.iterations as f64),
                    ("final_rrn".into(), r.stats.final_rrn),
                    ("basis_bits_per_value".into(), r.stats.basis_bits_per_value),
                ],
                fingerprint: h.hex(),
                format_trajectory: None,
            });
        }
    }

    let config = vec![
        ("matrix", Json::Str(format!("conv_diff_3d {s}^3"))),
        ("rows", Json::Num(a.rows() as f64)),
        ("format", Json::Str("frsz2_21".into())),
        ("auto_format", Json::Str(auto.name().into())),
        ("target_rrn", Json::Num(1e-10)),
        (
            "stagnation_matrix",
            Json::Str(format!(
                "conv_diff_3d {s2}^3 similarity-scaled (24 binades)"
            )),
        ),
        ("stagnation_rows", Json::Num(scaled.rows() as f64)),
        ("stagnation_restart", Json::Num(30.0)),
        ("stagnation_max_iters", Json::Num(1200.0)),
        (
            "runs_matrix",
            Json::Str(format!(
                "conv_diff_3d {s2}^3 similarity-scaled (24 binades, runs of 16)"
            )),
        ),
        ("runs_run_length", Json::Num(16.0)),
        ("bidir_de_escalation_drop", Json::Num(10.0)),
        ("bidir_de_escalation_cycles", Json::Num(1.0)),
    ];
    (
        emit_doc("solve", args.quick, config, &cases, "cb_gmres_frsz2_21"),
        cases,
    )
}

/// Block CB-GMRES (schema v6): the pinned `cb_gmres_frsz2_21`
/// operator and solver configuration, solved for b ∈ {1, 4, 16}
/// right-hand sides through the shared-space block driver, against an
/// in-suite single-solve reference with the identical configuration.
/// The width-1 block case must reproduce the single solve's
/// fingerprint byte for byte (the block driver delegates to the
/// single-RHS driver at b = 1), enforced by [`enforce_cross_format`]
/// at every thread count.
///
/// The wide cases run a width-scaled restart (12 instead of the
/// paper case's 100): the shared basis holds `b·(restart+1)` columns,
/// so a b = 16 block at the paper restart would need 16× the single
/// solve's basis footprint, and per-RHS decode traffic grows with the
/// square of the cycle length. Short cycles keep the b = 16 basis at
/// ~2× the single case's columns and, on this operator, carry no
/// iteration penalty (the boundary recompute refreshes every lane's
/// explicit residual). `time_per_rhs_ms` and `spmv_gb_per_rhs` are the
/// committed evidence: b = 16 beats the pinned b = 1 case per RHS
/// while amortizing each operator sweep over the whole block.
fn bench_block(args: &Args) -> (Json, Vec<CaseResult>) {
    let s = if args.quick { 12 } else { 20 };
    let a = gen::conv_diff_3d(s, s, s, [0.4, 0.2, 0.1], 0.2);
    let (_, b0) = spla::dense::manufactured_rhs(&a);
    let n = a.rows();
    let opts = GmresOptions {
        restart: 100,
        max_iters: 5000,
        target_rrn: 1e-10,
        record_history: true,
        ..GmresOptions::default()
    };
    // Width-scaled restart for the wide blocks (see the suite docs).
    let wide_restart = 12;
    let cfg = Frsz2Config::new(32, 21);
    // RHS family: lane 0 is the pinned manufactured problem; lane
    // k > 0 solves `A·x = A·xsol_k` for a frequency- and phase-shifted
    // smooth `xsol_k`, so every lane has single-solve difficulty and
    // the family is full-rank (a phase shift alone spans only a
    // two-dimensional space of sinusoids, which would hand the shared
    // seed a near-degenerate block).
    let rhs_family = |width: usize| -> Vec<Vec<f64>> {
        (0..width)
            .map(|k| {
                if k == 0 {
                    b0.clone()
                } else {
                    let mut xsol: Vec<f64> = (0..n)
                        .map(|i| ((i as f64) * (1.0 + 0.37 * k as f64) + (k as f64) * 0.73).sin())
                        .collect();
                    let nrm = xsol.iter().map(|v| v * v).sum::<f64>().sqrt();
                    xsol.iter_mut().for_each(|v| *v /= nrm);
                    a.mul_vec(&xsol)
                }
            })
            .collect()
    };
    let mut cases = Vec::new();

    // Single-solve reference: exactly the solve suite's
    // `cb_gmres_frsz2_21` case (same operator, options, store, and
    // fingerprint formula), re-run here so the block suite carries its
    // own pin — CI compares `block_solve_frsz2_21_b1` against it.
    let x0 = vec![0.0; n];
    for &threads in &args.threads {
        let mut last: Option<SolveResult> = None;
        let samples = time_under_pool(threads, args.runs, || {
            last = Some(gmres_with(&a, &b0, &x0, &opts, &Identity, |rows, cols| {
                Frsz2Store::with_config(cfg, rows, cols)
            }))
        });
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        let r = last.expect("at least one solve ran");
        assert!(r.stats.converged, "reference solve failed to converge");
        let mut h = Fnv::new();
        h.push(r.stats.iterations as u64);
        for point in &r.history {
            h.push(point.rrn.to_bits());
        }
        cases.push(CaseResult {
            name: "block_solve_frsz2_21_ref".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("width".into(), 1.0),
                ("time_per_rhs_ms".into(), min_ms),
                ("iterations".into(), r.stats.iterations as f64),
                ("operator_sweeps".into(), r.stats.spmv_count as f64),
                (
                    "spmv_gb_per_rhs".into(),
                    r.stats.spmv_count as f64 * SparseMatrix::storage_bytes(&a) as f64 / 1e9,
                ),
            ],
            fingerprint: h.hex(),
            format_trajectory: None,
        });
    }

    for width in [1usize, 4, 16] {
        let bs = rhs_family(width);
        let name = format!("block_solve_frsz2_21_b{width}");
        // b = 1 keeps the paper restart (its fingerprint is pinned to
        // the single solve); the wide blocks run the width-scaled one.
        let wopts = GmresOptions {
            restart: if width == 1 {
                opts.restart
            } else {
                wide_restart
            },
            ..opts.clone()
        };
        for &threads in &args.threads {
            let mut last: Option<krylov::BlockSolveResult> = None;
            let samples = time_under_pool(threads, args.runs, || {
                last = Some(block_gmres_with(
                    &a,
                    &bs,
                    None,
                    &wopts,
                    &Identity,
                    |rows, cols| Frsz2Store::with_config(cfg, rows, cols),
                ))
            });
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            let r = last.expect("at least one solve ran");
            assert!(
                r.all_converged(),
                "block solve (b = {width}) left an unconverged RHS"
            );
            // Per-lane fingerprint, lane order: at width 1 this is the
            // single-solve formula verbatim, so the cross-format guard
            // can compare it against `block_solve_frsz2_21_ref`.
            let mut h = Fnv::new();
            for (stats, history) in r.stats.iter().zip(&r.histories) {
                h.push(stats.iterations as u64);
                for point in history {
                    h.push(point.rrn.to_bits());
                }
            }
            let iterations: u64 = r.stats.iter().map(|s| s.iterations as u64).sum();
            cases.push(CaseResult {
                name: name.clone(),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("width".into(), width as f64),
                    ("restart".into(), wopts.restart as f64),
                    ("time_per_rhs_ms".into(), min_ms / width as f64),
                    ("iterations".into(), iterations as f64),
                    ("operator_sweeps".into(), r.operator_sweeps as f64),
                    (
                        "spmv_gb_per_rhs".into(),
                        r.operator_sweeps as f64 * SparseMatrix::storage_bytes(&a) as f64
                            / width as f64
                            / 1e9,
                    ),
                ],
                fingerprint: h.hex(),
                format_trajectory: None,
            });
        }
    }
    // The b = 1 block solve IS the single solve — byte for byte, at
    // every thread count. A divergence here fails the harness (and CI).
    enforce_cross_format(
        "block",
        &["block_solve_frsz2_21_ref", "block_solve_frsz2_21_b1"],
        &cases,
    );

    let config = vec![
        ("matrix", Json::Str(format!("conv_diff_3d {s}^3"))),
        ("rows", Json::Num(n as f64)),
        ("format", Json::Str("frsz2_21".into())),
        ("target_rrn", Json::Num(1e-10)),
        ("restart", Json::Num(100.0)),
        ("wide_restart", Json::Num(wide_restart as f64)),
        (
            "widths",
            Json::Arr(vec![Json::Num(1.0), Json::Num(4.0), Json::Num(16.0)]),
        ),
    ];
    (
        emit_doc(
            "block",
            args.quick,
            config,
            &cases,
            "block_solve_frsz2_21_b16",
        ),
        cases,
    )
}

/// s-step CB-GMRES (schema v7): the pinned `cb_gmres_frsz2_21`
/// configuration solved through the s-step driver for s ∈ {1, 2, 4, 8}.
///
/// Three contracts are enforced in-harness, so a regenerated artifact
/// cannot silently regress them:
///
/// * `sstep_solve_frsz2_21_s1` must reproduce the in-suite single-solve
///   reference `sstep_solve_frsz2_21_ref` (itself exactly the solve
///   suite's `cb_gmres_frsz2_21` case — same operator, options, store,
///   and fingerprint formula) byte for byte at every thread count: the
///   s = 1 driver delegates to the scalar cycle bit for bit.
/// * Every s > 1 case must converge to the same explicit 1e-10 target
///   with **strictly fewer** basis decode sweeps (`dot_sweeps +
///   gemv_sweeps`) than the s = 1 case at the same thread count —
///   the committed evidence that the matrix-powers panel amortizes
///   per-iteration decode traffic.
/// * No s > 1 case may breach its loss-of-orthogonality budget on this
///   operator (`loo_breaches = 0`, `loo_max` recorded per case).
fn bench_sstep(args: &Args) -> (Json, Vec<CaseResult>) {
    let s_dim = if args.quick { 12 } else { 20 };
    let a = gen::conv_diff_3d(s_dim, s_dim, s_dim, [0.4, 0.2, 0.1], 0.2);
    let (_, b0) = spla::dense::manufactured_rhs(&a);
    let n = a.rows();
    let opts = GmresOptions {
        restart: 100,
        max_iters: 5000,
        target_rrn: 1e-10,
        record_history: true,
        ..GmresOptions::default()
    };
    let cfg = Frsz2Config::new(32, 21);
    let format = krylov::basis_format::by_name("frsz2_21").expect("frsz2_21 registered");
    let x0 = vec![0.0; n];
    let mut cases = Vec::new();

    // Single-solve reference: exactly the solve suite's
    // `cb_gmres_frsz2_21` case, re-run here so the sstep suite carries
    // its own pin — CI compares `sstep_solve_frsz2_21_s1` against it.
    for &threads in &args.threads {
        let mut last: Option<SolveResult> = None;
        let samples = time_under_pool(threads, args.runs, || {
            last = Some(gmres_with(&a, &b0, &x0, &opts, &Identity, |rows, cols| {
                Frsz2Store::with_config(cfg, rows, cols)
            }))
        });
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        let r = last.expect("at least one solve ran");
        assert!(r.stats.converged, "reference solve failed to converge");
        let mut h = Fnv::new();
        h.push(r.stats.iterations as u64);
        for point in &r.history {
            h.push(point.rrn.to_bits());
        }
        cases.push(CaseResult {
            name: "sstep_solve_frsz2_21_ref".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("s".into(), 1.0),
                ("iterations".into(), r.stats.iterations as f64),
                ("final_rrn".into(), r.stats.final_rrn),
                ("dot_sweeps".into(), r.stats.basis_dot_sweeps as f64),
                ("gemv_sweeps".into(), r.stats.basis_gemv_sweeps as f64),
                (
                    "basis_sweeps".into(),
                    (r.stats.basis_dot_sweeps + r.stats.basis_gemv_sweeps) as f64,
                ),
            ],
            fingerprint: h.hex(),
            format_trajectory: None,
        });
    }

    for s in [1usize, 2, 4, 8] {
        let name = format!("sstep_solve_frsz2_21_s{s}");
        let sopts = SStepOptions {
            s,
            loo_budget: None,
            gmres: opts.clone(),
        };
        for &threads in &args.threads {
            let mut last: Option<SStepSolveResult> = None;
            let samples = time_under_pool(threads, args.runs, || {
                last = Some(sstep_gmres_dyn(
                    &a,
                    &b0,
                    &x0,
                    &sopts,
                    &Identity,
                    format.as_ref(),
                ))
            });
            let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
            let r = last.expect("at least one solve ran");
            assert!(
                r.solve.stats.converged,
                "s-step solve (s = {s}) failed to converge"
            );
            assert_eq!(
                r.loo_breaches, 0,
                "s-step solve (s = {s}) breached its LOO budget"
            );
            // Same fingerprint formula as the scalar solve cases: the
            // s = 1 delegation makes it byte-equal to the reference.
            let mut h = Fnv::new();
            h.push(r.solve.stats.iterations as u64);
            for point in &r.solve.history {
                h.push(point.rrn.to_bits());
            }
            let stats = &r.solve.stats;
            let loo_max = r.loo_per_cycle.iter().cloned().fold(0.0f64, f64::max);
            cases.push(CaseResult {
                name: name.clone(),
                threads,
                runs: args.runs,
                min_ms,
                median_ms,
                mean_ms,
                metrics: vec![
                    ("s".into(), s as f64),
                    (
                        "s_gated".into(),
                        r.s_per_cycle.iter().copied().max().unwrap_or(1) as f64,
                    ),
                    ("iterations".into(), stats.iterations as f64),
                    ("final_rrn".into(), stats.final_rrn),
                    ("dot_sweeps".into(), stats.basis_dot_sweeps as f64),
                    ("gemv_sweeps".into(), stats.basis_gemv_sweeps as f64),
                    (
                        "basis_sweeps".into(),
                        (stats.basis_dot_sweeps + stats.basis_gemv_sweeps) as f64,
                    ),
                    ("operator_sweeps".into(), stats.spmv_count as f64),
                    ("loo_max".into(), loo_max),
                    ("loo_breaches".into(), r.loo_breaches as f64),
                ],
                fingerprint: h.hex(),
                format_trajectory: None,
            });
        }
    }
    // The s = 1 s-step solve IS the scalar solve — byte for byte, at
    // every thread count. A divergence here fails the harness (and CI).
    enforce_cross_format(
        "sstep",
        &["sstep_solve_frsz2_21_ref", "sstep_solve_frsz2_21_s1"],
        &cases,
    );
    // Committed evidence: every s > 1 case spends strictly fewer
    // decode sweeps than s = 1 at the same thread count.
    for &threads in &args.threads {
        let sweeps = |name: &str| -> f64 {
            cases
                .iter()
                .find(|c| c.name == name && c.threads == threads)
                .and_then(|c| {
                    c.metrics
                        .iter()
                        .find(|(k, _)| k == "basis_sweeps")
                        .map(|(_, v)| *v)
                })
                .expect("basis_sweeps metric present")
        };
        let base = sweeps("sstep_solve_frsz2_21_s1");
        for s in [2, 4, 8] {
            let v = sweeps(&format!("sstep_solve_frsz2_21_s{s}"));
            assert!(
                v < base,
                "s = {s} must amortize decode sweeps ({v} vs {base} at {threads} threads)"
            );
        }
    }

    let config = vec![
        ("matrix", Json::Str(format!("conv_diff_3d {s_dim}^3"))),
        ("rows", Json::Num(n as f64)),
        ("format", Json::Str("frsz2_21".into())),
        ("target_rrn", Json::Num(1e-10)),
        ("restart", Json::Num(100.0)),
        (
            "s_values",
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(4.0),
                Json::Num(8.0),
            ]),
        ),
        ("max_sstep", Json::Num(format.max_sstep() as f64)),
    ];
    (
        emit_doc(
            "sstep",
            args.quick,
            config,
            &cases,
            "sstep_solve_frsz2_21_s4",
        ),
        cases,
    )
}

/// Concurrent `SolverService` throughput (schema v5): eight
/// mixed-format jobs over two cached operators, run once sequentially
/// (jobs one at a time) and once concurrently (`run_batch`, one OS
/// thread per job), each job under a private pool of `threads` workers.
/// The two cases must produce identical per-job fingerprints — the
/// service's headline guarantee, checked three ways:
///
/// * in-harness, every job's fingerprint is compared against a
///   1-thread sequential reference run,
/// * [`enforce_cross_format`] pins `service_concurrent` to
///   `service_sequential` at every thread count,
/// * [`enforce_determinism`] pins both cases across thread counts.
///
/// The suite also demonstrates admission control: a budget sized below
/// the float64 job's reservation must reject that job with the typed
/// `BudgetExceeded` error (recorded in `config`), never a panic.
fn bench_service(args: &Args) -> (Json, Vec<CaseResult>) {
    use solver_service::{
        estimated_basis_bytes, AdmissionPolicy, BasisSelection, JobSpec, PrecondSpec,
        ServiceConfig, ServiceError, SolverService,
    };

    let s = if args.quick { 10 } else { 14 };
    let smooth = gen::conv_diff_3d(s, s, s, [0.3, 0.2, 0.1], 0.3);
    let s2 = if args.quick { 6 } else { 8 };
    let wide = gen::wide_range_conv_diff(s2, s2, s2, 24, 0x5202);
    let (_, b_smooth) = spla::dense::manufactured_rhs(&smooth);
    let (_, b_wide) = spla::dense::manufactured_rhs(&wide);

    let service = SolverService::with_defaults();
    let smooth_info = service
        .register_csr("smooth", &smooth, PrecondSpec::Jacobi)
        .expect("register smooth");
    let wide_info = service
        .register_csr("wide", &wide, PrecondSpec::None)
        .expect("register wide");

    // Eight mixed-format jobs over the two cached operators: every
    // fixed ladder rung, the per-block adaptive store, the auto pick,
    // and the escalating adaptive driver. Targets sit at or above each
    // format's accuracy floor so every job converges.
    let job = |op: &str, b: &[f64], basis: BasisSelection, target: f64| {
        let mut spec = JobSpec::new(op, b.to_vec());
        spec.basis = basis;
        spec.opts.target_rrn = target;
        spec.opts.record_history = true;
        if op == "wide" {
            spec.opts.restart = 30;
            spec.opts.max_iters = 1200;
        }
        spec
    };
    let fixed = |name: &str| BasisSelection::Fixed(name.into());
    let specs: Vec<JobSpec> = vec![
        job("smooth", &b_smooth, fixed("frsz2_16"), 1e-2),
        job("smooth", &b_smooth, fixed("frsz2_21"), 1e-3),
        job("smooth", &b_smooth, fixed("frsz2_32"), 1e-6),
        job("smooth", &b_smooth, fixed("float64"), 1e-10),
        job("smooth", &b_smooth, fixed("frsz2_ab"), 1e-6),
        job("smooth", &b_smooth, BasisSelection::Auto, 1e-3),
        job("wide", &b_wide, fixed("float64"), 1e-10),
        job("wide", &b_wide, BasisSelection::Adaptive, 1e-10),
    ];

    let job_fingerprint = |r: &SolveResult| -> String {
        let mut h = Fnv::new();
        h.push(r.stats.iterations as u64);
        for point in &r.history {
            h.push(point.rrn.to_bits());
        }
        for f in &r.stats.format_trajectory {
            for byte in f.as_bytes() {
                h.push(u64::from(*byte));
            }
        }
        for v in &r.x {
            h.push(v.to_bits());
        }
        h.hex()
    };

    // The acceptance reference: every job run sequentially on ONE
    // thread. Concurrent runs at any thread count must reproduce these
    // fingerprints byte for byte.
    let reference: Vec<String> = specs
        .iter()
        .map(|spec| {
            let r = service.solve(spec).expect("reference solve");
            assert!(
                r.stats.converged,
                "service job on {:?} failed to converge (rrn {:.2e})",
                spec.operator, r.stats.final_rrn
            );
            job_fingerprint(&r)
        })
        .collect();

    let mut cases = Vec::new();
    let mut telemetry_cycles = 0u64;
    for &threads in &args.threads {
        let mut specs_t = specs.clone();
        for spec in &mut specs_t {
            spec.threads = threads;
        }

        // Sequential: jobs one at a time, each under its own pool.
        let mut fps: Vec<String> = Vec::new();
        let samples: Vec<f64> = {
            let run = |fps: &mut Vec<String>| {
                fps.clear();
                for spec in &specs_t {
                    fps.push(job_fingerprint(&service.solve(spec).expect("solve")));
                }
            };
            run(&mut fps); // warmup
            (0..args.runs)
                .map(|_| {
                    let t = Instant::now();
                    run(&mut fps);
                    t.elapsed().as_secs_f64() * 1e3
                })
                .collect()
        };
        assert_eq!(
            fps, reference,
            "sequential jobs diverged from the 1-thread reference"
        );
        push_service_case(
            &mut cases,
            "service_sequential",
            threads,
            args,
            &samples,
            &fps,
        );

        // Concurrent: the whole batch at once, one OS thread per job,
        // with per-cycle telemetry streamed through a channel.
        let mut fps: Vec<String> = Vec::new();
        let mut cycles = 0u64;
        let samples: Vec<f64> = {
            let mut run = |fps: &mut Vec<String>| {
                fps.clear();
                let (tx, rx) = std::sync::mpsc::channel();
                let results = service.run_batch_streaming(&specs_t, tx);
                cycles = rx.try_iter().count() as u64;
                for r in results {
                    fps.push(job_fingerprint(&r.expect("batch solve")));
                }
            };
            run(&mut fps); // warmup
            (0..args.runs)
                .map(|_| {
                    let t = Instant::now();
                    run(&mut fps);
                    t.elapsed().as_secs_f64() * 1e3
                })
                .collect()
        };
        assert_eq!(
            fps, reference,
            "concurrent batch diverged from the sequential 1-thread reference"
        );
        telemetry_cycles = cycles;
        push_service_case(
            &mut cases,
            "service_concurrent",
            threads,
            args,
            &samples,
            &fps,
        );
    }
    enforce_cross_format(
        "service",
        &["service_sequential", "service_concurrent"],
        &cases,
    );

    // Admission control demo: a budget below the smooth float64 job's
    // reservation rejects that job with a typed error — and leaves the
    // ledger clean for a job that fits.
    let opts = krylov::GmresOptions::default();
    let f64_cost = estimated_basis_bytes(
        krylov::basis_format::by_name("float64")
            .expect("float64")
            .as_ref(),
        smooth.rows(),
        opts.restart,
        1,
        1,
    );
    let budgeted = SolverService::new(ServiceConfig {
        basis_budget_bytes: Some(f64_cost - 1),
        admission: AdmissionPolicy::Reject,
    });
    budgeted
        .register_csr("smooth", &smooth, PrecondSpec::Jacobi)
        .expect("register under budget");
    let rejected = match budgeted.solve(&job("smooth", &b_smooth, fixed("float64"), 1e-10)) {
        Err(ServiceError::BudgetExceeded { requested, .. }) => requested,
        other => panic!("expected BudgetExceeded, got {other:?}"),
    };
    let admitted = budgeted
        .solve(&job("smooth", &b_smooth, fixed("frsz2_21"), 1e-3))
        .expect("compressed job fits the budget");
    assert!(admitted.stats.converged);

    let config = vec![
        ("jobs", Json::Num(specs.len() as f64)),
        ("operators", Json::Num(2.0)),
        (
            "smooth_matrix",
            Json::Str(format!(
                "conv_diff_3d {s}^3 ({} rows, {}, jacobi)",
                smooth_info.rows, smooth_info.sparse_format
            )),
        ),
        (
            "wide_matrix",
            Json::Str(format!(
                "conv_diff_3d {s2}^3 similarity-scaled, 24 binades ({} rows, {})",
                wide_info.rows, wide_info.sparse_format
            )),
        ),
        ("telemetry_cycles", Json::Num(telemetry_cycles as f64)),
        ("admission_budget_bytes", Json::Num((f64_cost - 1) as f64)),
        ("admission_rejected_requested", Json::Num(rejected as f64)),
    ];
    (
        emit_doc("service", args.quick, config, &cases, "service_concurrent"),
        cases,
    )
}

/// Append one service-suite case row: the fingerprint chains the
/// per-job fingerprints in submission order, and `jobs_per_second` is
/// the batch throughput at the min time.
fn push_service_case(
    cases: &mut Vec<CaseResult>,
    name: &str,
    threads: usize,
    args: &Args,
    samples: &[f64],
    job_fps: &[String],
) {
    let (min_ms, median_ms, mean_ms) = min_median_mean(samples);
    let mut h = Fnv::new();
    for fp in job_fps {
        for byte in fp.as_bytes() {
            h.push(u64::from(*byte));
        }
    }
    cases.push(CaseResult {
        name: name.into(),
        threads,
        runs: args.runs,
        min_ms,
        median_ms,
        mean_ms,
        metrics: vec![
            ("jobs".into(), job_fps.len() as f64),
            (
                "jobs_per_second".into(),
                job_fps.len() as f64 / (min_ms * 1e-3),
            ),
        ],
        fingerprint: h.hex(),
        format_trajectory: None,
    });
}

fn bench_faults(args: &Args) -> (Json, Vec<CaseResult>) {
    use solver_service::{
        BasisBitFlip, BasisSelection, FaultSpec, JobSpec, PrecondSpec, RetryPolicy, ServiceError,
        SolveCheckpoint, SolverService,
    };
    use std::time::Duration;

    let s = if args.quick { 8 } else { 10 };
    let smooth = gen::conv_diff_3d(s, s, s, [0.3, 0.2, 0.1], 0.3);
    let wide = gen::wide_range_conv_diff(6, 6, 6, 24, 0x5202);
    let (_, b_smooth) = spla::dense::manufactured_rhs(&smooth);
    let (_, b_wide) = spla::dense::manufactured_rhs(&wide);

    let service = SolverService::with_defaults();
    service
        .register_csr("smooth", &smooth, PrecondSpec::Jacobi)
        .expect("register smooth");
    service
        .register_csr("wide", &wide, PrecondSpec::None)
        .expect("register wide");

    let fingerprint = |r: &SolveResult| -> String {
        let mut h = Fnv::new();
        h.push(r.stats.iterations as u64);
        for point in &r.history {
            h.push(point.rrn.to_bits());
        }
        for v in &r.x {
            h.push(v.to_bits());
        }
        h.hex()
    };
    // The independent judge: recompute `‖b − Ax‖/‖b‖` from scratch,
    // outside the solver. A case that claims convergence while this
    // residual misses the target is an UNDETECTED corruption — the
    // failure mode the explicit-residual design makes structurally
    // impossible, pinned here as a hard zero.
    let recomputed_rrn = |a: &spla::Csr, b: &[f64], x: &[f64]| -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.spmv(x, &mut ax);
        let num: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        num / b.iter().map(|bi| bi * bi).sum::<f64>().sqrt()
    };
    let base = |op: &str, b: &[f64], format: &str, target: f64| {
        let mut spec = JobSpec::new(op, b.to_vec());
        spec.basis = BasisSelection::Fixed(format.into());
        spec.opts.target_rrn = target;
        spec.opts.restart = if op == "wide" { 30 } else { 10 };
        spec.opts.max_iters = if op == "wide" { 600 } else { 2000 };
        spec.opts.record_history = true;
        spec
    };
    let timed = |runs: usize, f: &mut dyn FnMut()| -> Vec<f64> {
        f(); // warmup
        (0..runs)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect()
    };

    let mut undetected = 0u64;
    let mut fault_runs = 0u64;
    let mut recoveries = 0u64;
    let mut retries_to_converge = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut probe_overhead_pct = 0.0f64;
    let mut cases = Vec::new();
    for &threads in &args.threads {
        let with_threads = |mut spec: JobSpec| {
            spec.threads = threads;
            spec
        };

        // --- basis bit-flip: corruption slows the solve, never fakes
        // a solution ------------------------------------------------
        let mut spec = with_threads(base("smooth", &b_smooth, "frsz2_21", 1e-8));
        spec.fault = Some(FaultSpec {
            basis_flip: Some(BasisBitFlip {
                nth_write: 3,
                index: 17,
                bit: 62,
            }),
            ..FaultSpec::default()
        });
        let (mut fp, mut injected, mut rrn) = (String::new(), 0u64, 0.0f64);
        let samples = timed(args.runs, &mut || {
            let report = service.solve_report(&spec).expect("bitflip job");
            assert!(
                report.faults_injected >= 1,
                "the planned bit flip must fire"
            );
            rrn = recomputed_rrn(&smooth, &b_smooth, &report.result.x);
            if report.result.stats.converged && rrn > spec.opts.target_rrn * 1.0001 {
                undetected += 1;
            }
            injected = report.faults_injected;
            fp = fingerprint(&report.result);
        });
        fault_runs += 1;
        recoveries += 1; // detection asserted above; the solve survived
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        cases.push(CaseResult {
            name: "fault_bitflip_detected".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("faults_injected".into(), injected as f64),
                ("recomputed_rrn".into(), rrn),
                ("undetected_corruptions".into(), 0.0),
            ],
            fingerprint: fp,
            format_trajectory: None,
        });

        // --- NaN Hessenberg: poisoned projection becomes a typed
        // breakdown, and the restart recovers -----------------------
        let mut spec = with_threads(base("smooth", &b_smooth, "frsz2_21", 1e-8));
        spec.fault = Some(FaultSpec {
            nan_hessenberg_at: Some(7),
            ..FaultSpec::default()
        });
        let (mut fp, mut breakdowns, mut rrn) = (String::new(), 0u64, 0.0f64);
        let samples = timed(args.runs, &mut || {
            let r = service.solve(&spec).expect("nan job");
            assert!(
                r.stats.breakdowns >= 1,
                "the injected NaN must be detected as a breakdown"
            );
            assert!(r.stats.converged, "the restart must recover from it");
            rrn = recomputed_rrn(&smooth, &b_smooth, &r.x);
            if rrn > spec.opts.target_rrn * 1.0001 {
                undetected += 1;
            }
            breakdowns = r.stats.breakdowns as u64;
            fp = fingerprint(&r);
        });
        fault_runs += 1;
        recoveries += 1;
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        cases.push(CaseResult {
            name: "fault_nan_hessenberg_breakdown".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("breakdowns".into(), breakdowns as f64),
                ("recomputed_rrn".into(), rrn),
                ("undetected_corruptions".into(), 0.0),
            ],
            fingerprint: fp,
            format_trajectory: None,
        });

        // --- retry with escalation: frsz2_16 stagnates on the
        // wide-range operator; the ladder walk recovers --------------
        let mut spec = with_threads(base("wide", &b_wide, "frsz2_16", 1e-10));
        spec.retry = Some(RetryPolicy::quick(3));
        let (mut fp, mut attempts) = (String::new(), 0u64);
        let samples = timed(args.runs, &mut || {
            let report = service.solve_report(&spec).expect("retry job");
            assert!(report.result.stats.converged, "escalation must recover");
            assert!(report.attempts >= 2, "frsz2_16 cannot reach 1e-10");
            for (k, name) in report.formats_tried.iter().enumerate() {
                assert_eq!(
                    name, ESCALATION_LADDER[k],
                    "retries must walk the ladder one rung at a time"
                );
            }
            let rrn = recomputed_rrn(&wide, &b_wide, &report.result.x);
            if rrn > spec.opts.target_rrn * 1.0001 {
                undetected += 1;
            }
            attempts = report.attempts as u64;
            fp = fingerprint(&report.result);
        });
        fault_runs += 1;
        recoveries += 1;
        retries_to_converge = attempts - 1;
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        cases.push(CaseResult {
            name: "fault_retry_escalation_recovers".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("attempts".into(), attempts as f64),
                ("retries_to_converge".into(), (attempts - 1) as f64),
            ],
            fingerprint: fp,
            format_trajectory: None,
        });

        // --- injected panic: caught at the job boundary, retried at
        // the same rung ----------------------------------------------
        let mut doomed = with_threads(base("smooth", &b_smooth, "frsz2_21", 1e-8));
        doomed.fault = Some(FaultSpec {
            panic_on_attempt: Some(0),
            ..FaultSpec::default()
        });
        match service.solve(&doomed) {
            Err(ServiceError::JobPanicked { attempts: 1, .. }) => {}
            other => panic!("expected JobPanicked, got {other:?}"),
        }
        let mut spec = doomed.clone();
        spec.retry = Some(RetryPolicy::quick(1));
        let mut fp = String::new();
        let samples = timed(args.runs, &mut || {
            let report = service.solve_report(&spec).expect("retried panic job");
            assert!(report.result.stats.converged);
            assert_eq!(report.attempts, 2, "attempt 0 panics, attempt 1 is clean");
            let rrn = recomputed_rrn(&smooth, &b_smooth, &report.result.x);
            if rrn > spec.opts.target_rrn * 1.0001 {
                undetected += 1;
            }
            fp = fingerprint(&report.result);
        });
        fault_runs += 1;
        recoveries += 1;
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        cases.push(CaseResult {
            name: "fault_job_panic_isolated".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![("attempts".into(), 2.0)],
            fingerprint: fp,
            format_trajectory: None,
        });

        // --- deadline + checkpoint + resume: halt at the first
        // boundary, resume bit-identically ---------------------------
        let plain = with_threads(base("smooth", &b_smooth, "frsz2_21", 1e-8));
        let reference = service.solve(&plain).expect("reference solve");
        assert!(reference.stats.restarts >= 2, "need several boundaries");
        let reference_fp = fingerprint(&reference);
        let mut rushed = plain.clone();
        rushed.deadline = Some(Duration::ZERO);
        rushed.fault = Some(FaultSpec {
            sleep_per_boundary_ms: 1,
            ..FaultSpec::default()
        });
        let mut fp = String::new();
        let samples = timed(args.runs, &mut || {
            let err = service.solve(&rushed).expect_err("deadline must fire");
            let ServiceError::DeadlineExceeded { checkpoint, .. } = err else {
                panic!("expected DeadlineExceeded");
            };
            assert_eq!(checkpoint.restarts, 0, "halted at the entry boundary");
            let bytes = checkpoint.encode(None);
            checkpoint_bytes = bytes.len() as u64;
            let restored = SolveCheckpoint::decode(&bytes, None).expect("decode checkpoint");
            let mut resumed = plain.clone();
            resumed.resume = Some(Box::new(restored));
            let r = service.solve(&resumed).expect("resumed solve");
            fp = fingerprint(&r);
            assert_eq!(
                fp, reference_fp,
                "resume must be bit-identical to the uninterrupted solve"
            );
        });
        fault_runs += 1;
        recoveries += 1;
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        cases.push(CaseResult {
            name: "fault_deadline_checkpoint_resume".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("checkpoint_bytes".into(), checkpoint_bytes as f64),
                ("resume_bit_identical".into(), 1.0),
            ],
            fingerprint: fp.clone(),
            format_trajectory: None,
        });

        // --- checkpoint overhead: the boundary probe must be a pure
        // spectator — same bits, negligible time ---------------------
        let plain_samples = timed(args.runs, &mut || {
            fp = fingerprint(&service.solve(&plain).expect("plain solve"));
        });
        let plain_fp = fp.clone();
        let mut probed = plain.clone();
        probed.deadline = Some(Duration::from_secs(3600)); // arms the probe, never fires
        let samples = timed(args.runs, &mut || {
            fp = fingerprint(&service.solve(&probed).expect("probed solve"));
        });
        assert_eq!(fp, plain_fp, "the boundary probe must not change bits");
        let (plain_min, _, _) = min_median_mean(&plain_samples);
        let (min_ms, median_ms, mean_ms) = min_median_mean(&samples);
        probe_overhead_pct = (min_ms - plain_min) / plain_min * 100.0;
        cases.push(CaseResult {
            name: "fault_checkpoint_overhead".into(),
            threads,
            runs: args.runs,
            min_ms,
            median_ms,
            mean_ms,
            metrics: vec![
                ("plain_min_ms".into(), plain_min),
                ("probe_overhead_percent".into(), probe_overhead_pct),
            ],
            fingerprint: fp.clone(),
            format_trajectory: None,
        });
    }

    assert_eq!(
        undetected, 0,
        "an injected fault produced a false convergence — the explicit-residual \
         detection contract is broken"
    );
    let config = vec![
        (
            "smooth_matrix",
            Json::Str(format!(
                "conv_diff_3d {s}^3 ({} rows, jacobi)",
                smooth.rows()
            )),
        ),
        (
            "wide_matrix",
            Json::Str(format!(
                "conv_diff_3d 6^3 similarity-scaled, 24 binades ({} rows)",
                wide.rows()
            )),
        ),
        ("fault_runs", Json::Num(fault_runs as f64)),
        (
            "recovery_success_rate",
            Json::Num(recoveries as f64 / fault_runs as f64),
        ),
        ("retries_to_converge", Json::Num(retries_to_converge as f64)),
        ("checkpoint_bytes", Json::Num(checkpoint_bytes as f64)),
        ("probe_overhead_percent", Json::Num(probe_overhead_pct)),
        ("undetected_corruptions", Json::Num(undetected as f64)),
    ];
    (
        emit_doc(
            "faults",
            args.quick,
            config,
            &cases,
            "fault_bitflip_detected",
        ),
        cases,
    )
}

fn validate_files(files: &[String]) {
    let mut failed = false;
    for path in files {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| json::parse(&text).map_err(|e| format!("parse error: {e}")))
            .and_then(|doc| json::validate_bench(&doc).map_err(|e| format!("schema error: {e}")));
        match verdict {
            Ok(n) => println!("{path}: ok ({n} cases)"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// CI guard over *committed* solve documents: every
/// `cb_gmres_adaptive_bidir` case must report at least one escalation
/// and one de-escalation, and its trajectory must actually step up the
/// [`ESCALATION_LADDER`] before stepping back down. This is what keeps
/// a committed `BENCH_solve.json` honest about bidirectionality — a
/// regenerated artifact whose driver silently stopped de-escalating
/// fails here, not at review time.
fn check_bidirectional_files(files: &[String]) {
    let rung = |name: &str| -> Option<usize> { ESCALATION_LADDER.iter().position(|&f| f == name) };
    let mut failed = false;
    let mut checked = 0usize;
    for path in files {
        let doc = match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read: {e}"))
            .and_then(|text| json::parse(&text).map_err(|e| format!("parse error: {e}")))
        {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let cases = doc.get("cases").and_then(Json::as_arr).unwrap_or(&[]);
        for case in cases {
            let name = case.get("name").and_then(Json::as_str).unwrap_or("");
            if name != "cb_gmres_adaptive_bidir" {
                continue;
            }
            checked += 1;
            let metric = |key: &str| {
                case.get("metrics")
                    .and_then(|m| m.get(key))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            if metric("escalations") < 1.0 || metric("de_escalations") < 1.0 {
                eprintln!(
                    "{path}: cb_gmres_adaptive_bidir reports escalations={} \
                     de_escalations={} — the committed trajectory is not bidirectional",
                    metric("escalations"),
                    metric("de_escalations"),
                );
                failed = true;
                continue;
            }
            // The trajectory itself must show an up-step followed by a
            // later down-step on the ladder's rung order.
            let traj: Vec<usize> = case
                .get("format_trajectory")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(|f| f.as_str().and_then(rung))
                .collect();
            let first_up = traj.windows(2).position(|w| w[1] > w[0]);
            let down_after = first_up.map(|up| {
                traj.windows(2)
                    .enumerate()
                    .any(|(i, w)| i > up && w[1] < w[0])
            });
            if down_after != Some(true) {
                eprintln!(
                    "{path}: cb_gmres_adaptive_bidir trajectory {traj:?} (ladder rungs) \
                     never steps down after stepping up"
                );
                failed = true;
            }
        }
    }
    if checked == 0 {
        eprintln!("no cb_gmres_adaptive_bidir case found in {files:?}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bidirectional trajectory ok ({checked} case rows)");
}

fn main() {
    let args = parse_args();
    if !args.validate.is_empty() {
        return validate_files(&args.validate);
    }
    if !args.check_bidirectional.is_empty() {
        return check_bidirectional_files(&args.check_bidirectional);
    }

    println!(
        "bench_json: quick={} runs={} threads={:?} (host parallelism {})",
        args.quick,
        args.runs,
        args.threads,
        available_threads()
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for (bench, build) in [
        ("spmv", bench_spmv as fn(&Args) -> (Json, Vec<CaseResult>)),
        ("codec", bench_codec),
        ("solve", bench_solve),
        ("service", bench_service),
        ("block", bench_block),
        ("sstep", bench_sstep),
        ("faults", bench_faults),
    ] {
        let (doc, cases) = build(&args);
        enforce_determinism(bench, &cases);
        let path = report::write_bench_json(bench, &doc).expect("write json");
        println!("wrote {path}");
        for c in &cases {
            csv_rows.push(vec![
                bench.to_string(),
                c.name.clone(),
                c.threads.to_string(),
                c.runs.to_string(),
                format!("{:.6}", c.min_ms),
                format!("{:.6}", c.median_ms),
                format!("{:.6}", c.mean_ms),
            ]);
            table_rows.push(vec![
                c.name.clone(),
                c.threads.to_string(),
                report::fmt_g(c.min_ms),
                report::fmt_g(c.median_ms),
                c.fingerprint[..8].to_string(),
            ]);
        }
        if let Some(s) = doc.get("speedup") {
            println!(
                "  speedup {}x at {} threads (vs {})",
                report::fmt_g(s.get("factor").and_then(Json::as_f64).unwrap_or(0.0)),
                s.get("threads").and_then(Json::as_f64).unwrap_or(0.0),
                s.get("vs").and_then(Json::as_f64).unwrap_or(0.0),
            );
        }
    }
    let csv = report::write_csv(
        "bench_json",
        &[
            "bench",
            "case",
            "threads",
            "runs",
            "min_ms",
            "median_ms",
            "mean_ms",
        ],
        &csv_rows,
    )
    .expect("write csv");
    report::print_table(
        &["case", "threads", "min_ms", "median_ms", "fingerprint"],
        &table_rows,
    );
    println!("(csv: {csv})");
}
