//! Figure 6: residual-norm development for atmosmodd under point-wise
//! relative and fixed-rate compression of the Krylov basis.
//!
//! Series: float64/float32/float16/frsz2_32 plus sz_pwrel_04,
//! sz3_pwrel_04, zfp_fr_16, zfp_fr_32. Reproduction targets: pointwise
//! relative bounds converge better than absolute ones (magnitudes are
//! preserved, §VI-A), fixed-rate ZFP is the best of the external
//! codecs, and frsz2_32 still has the best convergence of all tested
//! compressors.

use bench::runner::{convergence_histories, default_opts, prepare, report_histories, Cli};

fn main() {
    let mut cli = Cli::parse();
    if cli.max_iters == 20_000 {
        cli.max_iters = 2_000;
    }
    let p = prepare("atmosmodd", &cli);
    let opts = default_opts(&p, &cli);
    println!(
        "=== Fig. 6: atmosmodd (n = {}), target RRN {:.1e}, pointwise-relative bounds ===",
        p.matrix.rows(),
        opts.target_rrn
    );
    let formats = [
        "float64",
        "float32",
        "float16",
        "frsz2_32",
        "sz_pwrel_04",
        "sz3_pwrel_04",
        "zfp_fr_16",
        "zfp_fr_32",
    ];
    let runs = convergence_histories(&p, &opts, &formats);
    report_histories("fig06_convergence_pwrel", &runs);
}
