//! Figure 7: final relative residual norm for every suite matrix under
//! the four storage formats (float64/float32/float16/frsz2_32).
//!
//! Reproduction target: every format reaches the target on every
//! matrix except float16 on PR02R and StocF-1465, where the information
//! loss is too large.

use bench::formats::standard_formats;
use bench::report::{fmt_g, print_table, write_csv};
use bench::runner::{default_opts, prepare, solve_problem, Cli};

fn main() {
    let mut cli = Cli::parse();
    if cli.max_iters == 20_000 {
        cli.max_iters = 6_000;
    }
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for name in cli.matrices() {
        let p = prepare(name, &cli);
        let opts = default_opts(&p, &cli);
        for spec in standard_formats() {
            if cli.format.as_deref().is_some_and(|f| f != spec.name()) {
                continue;
            }
            let r = solve_problem(&p, &opts, &spec);
            eprintln!(
                "  {name} {}: rrn {:.2e} ({})",
                spec.name(),
                r.stats.final_rrn,
                if r.stats.converged {
                    "ok"
                } else {
                    "MISSED TARGET"
                }
            );
            rows.push(vec![
                name.to_string(),
                spec.name(),
                fmt_g(opts.target_rrn),
                fmt_g(r.stats.final_rrn),
                if r.stats.converged { "yes" } else { "NO" }.to_string(),
            ]);
            csv.push(vec![
                name.to_string(),
                spec.name(),
                format!("{:e}", opts.target_rrn),
                format!("{:e}", r.stats.final_rrn),
                r.stats.converged.to_string(),
            ]);
        }
    }
    println!("\n=== Fig. 7: final relative residual norms ===");
    print_table(
        &["matrix", "format", "target", "final_rrn", "reached"],
        &rows,
    );
    let path = write_csv(
        "fig07_final_rrn",
        &["matrix", "format", "target", "final_rrn", "converged"],
        &csv,
    )
    .expect("write csv");
    println!("(csv: {path})");
}
