//! Calibration sweep: solve every suite matrix with the four standard
//! storage formats and report iterations/targets/timings, so the
//! analogue parameters can be tuned to the paper's qualitative shape.
//! Not one of the paper's figures — a development tool.

use bench::formats::standard_formats;
use bench::report::{fmt_g, print_table};
use bench::runner::{default_opts, prepare, solve_problem, Cli};

fn main() {
    let cli = Cli::parse();
    let mut rows = Vec::new();
    for name in cli.matrices() {
        let p = prepare(name, &cli);
        let opts = default_opts(&p, &cli);
        for spec in standard_formats() {
            if let Some(only) = &cli.format {
                if spec.name() != *only {
                    continue;
                }
            }
            let r = solve_problem(&p, &opts, &spec);
            rows.push(vec![
                name.to_string(),
                format!("{}", p.matrix.rows()),
                spec.name(),
                format!("{}", r.stats.iterations),
                if r.stats.converged { "yes" } else { "NO" }.to_string(),
                fmt_g(r.stats.final_rrn),
                fmt_g(p.target_rrn),
                format!("{:.2}s", r.stats.wall_time.as_secs_f64()),
            ]);
            println!(
                "done: {name} {} iters={} conv={} rrn={:.2e} t={:.2}s",
                r.stats.format,
                r.stats.iterations,
                r.stats.converged,
                r.stats.final_rrn,
                r.stats.wall_time.as_secs_f64()
            );
        }
    }
    println!();
    print_table(
        &[
            "matrix",
            "n",
            "format",
            "iters",
            "conv",
            "final_rrn",
            "target",
            "time",
        ],
        &rows,
    );
}
