//! Figure 8: iterations to the target, relative to float64 (0 when the
//! target is never reached), for every suite matrix.
//!
//! Reproduction targets: the atmosmod family orders
//! float64 < frsz2_32 < float32 < float16; PR02R shows frsz2_32 at
//! ~3.5x float64; float16 scores 0 on PR02R and StocF-1465; everything
//! else barely differs.

use bench::formats::standard_formats;
use bench::report::{print_table, write_csv};
use bench::runner::{default_opts, prepare, solve_problem, Cli};

fn main() {
    let mut cli = Cli::parse();
    if cli.max_iters == 20_000 {
        cli.max_iters = 6_000;
    }
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for name in cli.matrices() {
        let p = prepare(name, &cli);
        let opts = default_opts(&p, &cli);
        let mut f64_iters = None;
        let mut cells = Vec::new();
        for spec in standard_formats() {
            let r = solve_problem(&p, &opts, &spec);
            eprintln!(
                "  {name} {}: {} iterations ({})",
                spec.name(),
                r.stats.iterations,
                if r.stats.converged {
                    "ok"
                } else {
                    "no convergence"
                }
            );
            if spec.name() == "float64" {
                f64_iters = Some(r.stats.iterations);
            }
            cells.push((spec.name(), r.stats.converged, r.stats.iterations));
        }
        let base = f64_iters.expect("float64 always runs") as f64;
        let mut row = vec![name.to_string()];
        for (fmt, converged, iters) in cells {
            // Paper convention: 0 when the target is not reached.
            let rel = if converged { iters as f64 / base } else { 0.0 };
            row.push(format!("{rel:.2}"));
            csv.push(vec![
                name.to_string(),
                fmt,
                format!("{rel}"),
                iters.to_string(),
                converged.to_string(),
            ]);
        }
        rows.push(row);
    }
    println!("\n=== Fig. 8: iterations relative to float64 (0 = target not reached) ===");
    print_table(
        &["matrix", "float64", "float32", "float16", "frsz2_32"],
        &rows,
    );
    let path = write_csv(
        "fig08_iterations",
        &[
            "matrix",
            "format",
            "relative_iterations",
            "iterations",
            "converged",
        ],
        &csv,
    )
    .expect("write csv");
    println!("(csv: {path})");
}
