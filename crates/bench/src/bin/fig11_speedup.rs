//! Figure 11: end-to-end speedup over float64 storage for every suite
//! matrix (mean over repeated runs, with error bars).
//!
//! Two timings are reported per cell:
//! * the **modeled H100 time** — the solver's measured traffic and
//!   decompression instruction counts through the gpusim roofline
//!   (headline number: this host has no GPU, see DESIGN.md §1), and
//! * the **CPU wall clock** of this host (secondary; a 2-core CPU has
//!   ~10 spare ops per loaded value instead of the H100's ~100, so
//!   decompression overhead that vanishes on the GPU is visible here).
//!
//! Reproduction targets (modeled H100): frsz2_32 beats float32 on the
//! atmosmod group, a bar is removed when the format misses the target
//! (float16 on PR02R/StocF-1465), PR02R drags the frsz2_32 average
//! below float32's, and excluding PR02R the two averages match
//! (paper: 1.16 vs 1.09, 1.16 excluding PR02R).

use bench::formats::standard_formats;
use bench::model::h100_time;
use bench::report::{mean_std, print_table, write_csv};
use bench::runner::{default_opts, prepare, solve_problem, Cli};

fn main() {
    let mut cli = Cli::parse();
    if cli.max_iters == 20_000 {
        cli.max_iters = 6_000;
    }
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // speedups per format across matrices, for the averages footer.
    let mut h100_speedups: Vec<(String, String, f64)> = Vec::new();

    for name in cli.matrices() {
        let p = prepare(name, &cli);
        let opts = default_opts(&p, &cli);
        let spmv_bytes = p.matrix.spmv_bytes();
        let n = p.matrix.rows();

        // Reference: float64.
        let f64_spec = standard_formats().remove(0);
        let mut f64_wall = Vec::new();
        let mut f64_h100 = 0.0;
        for _ in 0..cli.runs {
            let r = solve_problem(&p, &opts, &f64_spec);
            f64_wall.push(r.stats.wall_time.as_secs_f64());
            f64_h100 = h100_time(&f64_spec, &r.stats, n, spmv_bytes);
        }
        let (f64_mean, _) = mean_std(&f64_wall);

        for spec in standard_formats().into_iter().skip(1) {
            let mut walls = Vec::new();
            let mut h100 = 0.0;
            let mut converged = true;
            for _ in 0..cli.runs {
                let r = solve_problem(&p, &opts, &spec);
                walls.push(r.stats.wall_time.as_secs_f64());
                h100 = h100_time(&spec, &r.stats, n, spmv_bytes);
                converged &= r.stats.converged;
            }
            let (w_mean, w_std) = mean_std(&walls);
            // "The entire bar is removed ... if a storage format does not
            // reach the targeted relative residual norm."
            let (h100_speedup, wall_speedup, wall_err) = if converged {
                (
                    f64_h100 / h100,
                    f64_mean / w_mean,
                    w_std * f64_mean / (w_mean * w_mean),
                )
            } else {
                (0.0, 0.0, 0.0)
            };
            eprintln!(
                "  {name} {}: modeled-H100 speedup {h100_speedup:.2}, wall {wall_speedup:.2}",
                spec.name()
            );
            rows.push(vec![
                name.to_string(),
                spec.name(),
                if converged {
                    format!("{h100_speedup:.2}")
                } else {
                    "-".into()
                },
                if converged {
                    format!("{wall_speedup:.2} ± {wall_err:.2}")
                } else {
                    "-".into()
                },
            ]);
            csv.push(vec![
                name.to_string(),
                spec.name(),
                format!("{h100_speedup}"),
                format!("{wall_speedup}"),
                format!("{wall_err}"),
                converged.to_string(),
            ]);
            if converged {
                h100_speedups.push((spec.name(), name.to_string(), h100_speedup));
            }
        }
    }

    println!(
        "\n=== Fig. 11: speedup relative to float64 (runs = {}) ===",
        cli.runs
    );
    print_table(
        &[
            "matrix",
            "format",
            "modeled-H100 speedup",
            "CPU-wall speedup",
        ],
        &rows,
    );
    let path = write_csv(
        "fig11_speedup",
        &[
            "matrix",
            "format",
            "h100_speedup",
            "wall_speedup",
            "wall_std",
            "converged",
        ],
        &csv,
    )
    .expect("write csv");
    println!("(csv: {path})");

    // §VI-B averages (modeled H100).
    for fmt in ["float32", "frsz2_32"] {
        let all: Vec<f64> = h100_speedups
            .iter()
            .filter(|(f, _, _)| f == fmt)
            .map(|&(_, _, s)| s)
            .collect();
        let no_pr02r: Vec<f64> = h100_speedups
            .iter()
            .filter(|(f, m, _)| f == fmt && m != "PR02R")
            .map(|&(_, _, s)| s)
            .collect();
        let (m_all, _) = mean_std(&all);
        let (m_no, _) = mean_std(&no_pr02r);
        println!(
            "average modeled-H100 speedup {fmt}: {m_all:.2} (excl. PR02R: {m_no:.2}) \
             [paper: float32 1.16, frsz2_32 1.09, frsz2_32 excl. PR02R 1.16]"
        );
    }
}
