//! Table I: the computational-fluid-dynamics test matrices — the
//! paper's published metadata side by side with the synthetic analogues
//! actually built at the current scale.

use bench::report::{fmt_g, print_table};
use bench::runner::Cli;
use spla::stats::exponent_range;
use spla::suite;

fn main() {
    let cli = Cli::parse();
    let mut rows = Vec::new();
    for e in suite::TABLE_ONE.iter() {
        let m = suite::build(e.name, cli.scale).expect("suite matrix");
        let (lo, hi) = exponent_range(m.matrix.values());
        rows.push(vec![
            e.name.to_string(),
            e.paper_rows.to_string(),
            e.paper_nnz.to_string(),
            fmt_g(e.target_rrn),
            m.matrix.rows().to_string(),
            m.matrix.nnz().to_string(),
            fmt_g(suite::analogue_target(e.name).unwrap_or(e.target_rrn)),
            format!("{:.1e}", m.matrix.asymmetry()),
            format!("2^{lo}..2^{hi}"),
        ]);
    }
    println!(
        "=== Table I: paper metadata vs synthetic analogues (scale {}) ===",
        cli.scale
    );
    print_table(
        &[
            "matrix",
            "paper rows",
            "paper nnz",
            "paper RRN",
            "analogue rows",
            "analogue nnz",
            "analogue RRN",
            "asymmetry",
            "value exps",
        ],
        &rows,
    );
    println!(
        "\nAnalogue targets follow the paper's own procedure (§V-C): the accuracy a \
         20k-iteration float64 GMRES reaches on *this* system, with wiggle room."
    );
}
